"""CI smoke for the resilience-query service, at the process level.

Drives a real ``repro serve`` subprocess the way an operator would:

1. cold query via the ``repro query`` CLI (computes the sweep);
2. the same query again — must come back ``[cached]`` from the store;
3. ``/metrics`` scrape — request and cache-hit families must be there;
4. SIGKILL the server while a large verdict is in flight, restart it
   on the same port, and assert the Lazy-Pirate client retried cleanly
   and still got the right answer;
5. SIGTERM the restarted server — graceful exit 0, answer store intact.

Run from the repo root: ``python .github/scripts/serve_smoke.py``.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC = os.path.join(REPO_ROOT, "src")
ENV = dict(os.environ, PYTHONPATH=SRC)
STORE = "/tmp/serve_smoke_answers.json"

sys.path.insert(0, SRC)
from repro.serve import QueryClient  # noqa: E402

COLD_ARGS = [
    "verdict",
    "--topology", "maximal-outerplanar(10)",
    "--scheme", "right-hand",
    "--sizes", "2,3",
    "--samples", "200",
]
#: big enough that SIGKILL lands mid-compute even on a fast runner
SLOW_PARAMS = {
    "topology": "maximal-outerplanar(14)",
    "scheme": "right-hand",
    "sizes": [2, 3, 4],
    "samples": 8000,
    "seed": 0,
}


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def start_server(port: int, metrics_port: int) -> subprocess.Popen:
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", str(port),
            "--metrics-port", str(metrics_port),
            "--store", STORE,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=ENV,
        cwd=REPO_ROOT,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if "listening on" in line:
            return proc
    proc.kill()
    raise SystemExit("repro serve did not come up")


def query(port: int, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "query", *args, "--port", str(port)],
        capture_output=True,
        text=True,
        env=ENV,
        cwd=REPO_ROOT,
        timeout=180,
    )


def main() -> None:
    if os.path.exists(STORE):
        os.remove(STORE)
    port, metrics_port = free_port(), free_port()
    server = start_server(port, metrics_port)

    # --- 1+2: cold then warm via the repro query CLI -------------------
    cold = query(port, *COLD_ARGS)
    assert cold.returncode == 0, f"cold query failed: {cold.stdout}{cold.stderr}"
    assert "[cached]" not in cold.stdout, f"first query must compute: {cold.stdout}"
    warm = query(port, *COLD_ARGS)
    assert warm.returncode == 0, f"warm query failed: {warm.stdout}{warm.stderr}"
    assert "[cached]" in warm.stdout, f"repeat query must hit the store: {warm.stdout}"
    print(f"cold/warm ok: {warm.stdout.strip()}")

    # --- 3: /metrics carries the request + cache-hit families ----------
    exposition = urllib.request.urlopen(
        f"http://127.0.0.1:{metrics_port}/metrics", timeout=10
    ).read().decode()
    for family in (
        'repro_serve_requests_total{op="verdict",status="ok"}',
        'repro_serve_cache_hits_total{tier="store"}',
        "repro_serve_request_seconds_bucket{",
    ):
        assert family in exposition, f"missing metric family {family!r}:\n{exposition}"
    print("metrics scrape ok")

    # --- 4: SIGKILL mid-request, restart, Lazy-Pirate retries ----------
    box: dict = {}

    def slow_query() -> None:
        try:
            with QueryClient(port=port, timeout=60, retries=20, retry_backoff=0.3) as client:
                box["reply"] = client.request("verdict", SLOW_PARAMS)
                box["stats"] = dict(client.stats)
        except Exception as error:  # noqa: BLE001 - asserted below
            box["error"] = error

    thread = threading.Thread(target=slow_query)
    thread.start()
    time.sleep(0.4)  # let the request get in flight on the compute worker
    server.send_signal(signal.SIGKILL)
    server.wait(timeout=30)
    server = start_server(port, metrics_port)
    thread.join(timeout=180)
    assert not thread.is_alive(), "client never returned after the restart"
    assert "error" in box or "reply" in box
    assert "error" not in box, f"client failed instead of retrying: {box['error']!r}"
    reply = box["reply"]
    assert reply["ok"] and reply["result"]["verdict"]["resilient"] is True, reply
    assert box["stats"]["retries"] >= 1, f"kill went unnoticed: {box['stats']}"
    print(f"kill/restart ok: answer after {box['stats']['retries']} retries")

    # --- 5: graceful SIGTERM, store intact -----------------------------
    server.send_signal(signal.SIGTERM)
    code = server.wait(timeout=60)
    assert code == 0, f"SIGTERM exit code {code}"
    with open(STORE) as handle:
        store = json.load(handle)
    records = store.get("records", [])
    assert any(
        record["experiment"] == "resilience"
        and record["topology"] == "maximal-outerplanar(10)"
        for record in records
    ), f"cold answer missing from the store: {records}"
    print(f"graceful shutdown ok: exit 0, store intact ({len(records)} records)")


if __name__ == "__main__":
    main()
