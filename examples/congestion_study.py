"""The *other* price of locality: congestion under simultaneous reroutes.

The DSN'22 paper prices locality in resilience and stretch; the
congestion line of work (Bankhamer, Elsässer, Schmid 2020/2021) asks
what happens to *link load* when many flows hit failures at once and
every switch reroutes with purely local rules.  This study reproduces
that setting on the 2021 paper's fabric of choice:

1. a ``fat_tree(4)`` carries a permutation matrix while random link
   failures grow — the comparison harness races the repo's algorithms
   (arborescence baseline, distance-2/3 exploration, naive greedy) on
   identical scenario grids;
2. an incast (all-to-one) matrix shows how failures concentrate load on
   the survivors around the sink;
3. a greedy adversary searches for the few failures that inflate the
   worst link load the most — the congestion analogue of the paper's
   resilience adversaries;
4. a ``hypercube(3)`` rerun shows the effect of a richer path diversity.

Run:  python examples/congestion_study.py
"""

from repro.experiments import resolve_topology, scheme
from repro.traffic import (
    all_to_one,
    compare_congestion,
    congestion_table,
    greedy_congestion_attack,
    permutation,
)


def main() -> None:
    # topologies and schemes are resolved by registry name — the same
    # names the CLI and `repro.experiments.run_grid` use
    fabric = resolve_topology("fattree(4)")
    arborescence = scheme("arborescence")
    print(
        f"fat_tree(4): {fabric.number_of_nodes()} switches, "
        f"{fabric.number_of_edges()} links"
    )

    # --- 1. permutation traffic vs growing random failures -------------
    demands = permutation(fabric, seed=1)
    result = compare_congestion(
        fabric,
        demands,
        sizes=[0, 1, 2, 4],
        samples=5,
        seed=0,
        graph_name="fat_tree(4)",
        matrix_name="permutation",
    )
    print("\npermutation matrix, identical failure grids per algorithm:")
    print(congestion_table(result.curves))
    for name, reason in result.skipped:
        print(f"  (skipped {name}: {reason})")

    # --- 2. incast: everyone sends to one core switch -------------------
    sink = ("core", 0)
    incast = all_to_one(fabric, sink)
    result = compare_congestion(
        fabric,
        incast,
        algorithms=[arborescence.instantiate()],
        sizes=[0, 2, 4, 8],
        samples=5,
        seed=0,
        graph_name="fat_tree(4)",
        matrix_name=f"all-to-one({sink})",
    )
    print(f"\nincast into {sink}: load concentrates as failures grow:")
    print(congestion_table(result.curves))

    # --- 3. adversarial: which failures hurt the most? ------------------
    attack = greedy_congestion_attack(fabric, arborescence.instantiate(), incast, max_failures=4)
    print(
        f"\ngreedy worst-case load attack (connectivity preserved): "
        f"|F| = {attack.size} inflates max link load "
        f"{attack.baseline_max_load} -> {attack.max_load} ({attack.amplification:.2f}x)"
    )
    for u, v in sorted(attack.failures, key=repr):
        print(f"  fail {u}-{v}")

    # --- 4. the same story on a hypercube ------------------------------
    cube = resolve_topology("hypercube(3)")
    result = compare_congestion(
        cube,
        permutation(cube, seed=1),
        sizes=[0, 1, 2, 4],
        samples=5,
        seed=0,
        graph_name="hypercube(3)",
        matrix_name="permutation",
    )
    print(f"\nhypercube(3) ({cube.number_of_nodes()} nodes, {cube.number_of_edges()} links):")
    print(congestion_table(result.curves))


if __name__ == "__main__":
    main()
