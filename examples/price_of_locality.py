"""The price of locality (§III): high connectivity does not save you.

On the complete graph K8, even when the adversary is forced to leave
source and destination connected, *no* static local pattern survives —
the Theorem 1 adversary reads the pattern's own forwarding tables and
tailors a failure set around them.  The example shows:

1. the surviving link-disjoint path(s) after the attack;
2. the packet's actual walk, looping forever next to them.

Run:  python examples/price_of_locality.py
"""

from repro.core import Network, route
from repro.core.adversary import attack_r_tolerance
from repro.core.algorithms import Distance2Algorithm, RandomCyclicPermutations
from repro.graphs import complete_graph
from repro.graphs.connectivity import link_disjoint_paths, st_edge_connectivity


def main() -> None:
    r = 1
    n = 3 + 5 * r
    graph = complete_graph(n)
    source, destination = 0, n - 1

    for algorithm in (Distance2Algorithm(), RandomCyclicPermutations(seed=42)):
        print(f"=== attacking '{algorithm.name}' on K{n} (promise: r={r}) ===")
        result = attack_r_tolerance(graph, algorithm, source, destination, r=r)
        failures = result.failures
        connectivity = st_edge_connectivity(graph, source, destination, failures)
        paths = link_disjoint_paths(graph, source, destination, failures)
        print(f"  adversary failed {len(failures)} of {graph.number_of_edges()} links "
              f"({result.method})")
        print(f"  s-t connectivity after failures: {connectivity} (promise kept)")
        for path in paths:
            print(f"  surviving path: {' - '.join(map(str, path))}")
        pattern = algorithm.build(graph, source, destination)
        walk = route(Network(graph), pattern, source, destination, failures)
        trace = " -> ".join(map(str, walk.path[:14]))
        print(f"  packet outcome: {walk.outcome.value}; walk: {trace} ...")
        print()

    print("Theorem 1: this is unavoidable — K_{3+5r} admits no r-tolerant")
    print("pattern, even though Ω(n) disjoint paths survive the failures.")


if __name__ == "__main__":
    main()
