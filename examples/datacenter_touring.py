"""Header-free touring of a full-mesh pod (§VII, Theorem 17).

A nine-switch full mesh is decomposed into four link-disjoint Hamiltonian
cycles (Walecki).  A single set of port-to-port rules — no source, no
destination, identical for every packet — tours every switch as long as
at most three links fail.  The example compares against a naive fixed
port-cycle pattern, which a single unlucky failure already derails.

Touring patterns double as broadcast/flooding primitives and as
destination routing with constant table space (the paper's §VII remarks).

Run:  python examples/datacenter_touring.py
"""

import random

from repro.core.algorithms import HamiltonianTouring, RandomPortCycles
from repro.core.simulator import Network, tour
from repro.graphs import complete_graph
from repro.graphs.edges import edge


def coverage(graph, pattern, failures, start=0):
    walk = tour(Network(graph), pattern, start, failures)
    return len(walk.recurrent), walk


def main() -> None:
    n, k = 9, 4
    graph = complete_graph(n)
    hamiltonian = HamiltonianTouring().build(graph)
    naive = RandomPortCycles(seed=7).build(graph)
    print(f"K{n} pod: {graph.number_of_edges()} links, "
          f"{k} link-disjoint Hamiltonian cycles, tolerates {k - 1} failures\n")

    rng = random.Random(2022)
    links = sorted(edge(u, v) for u, v in graph.edges)
    print(f"{'|F|':>4}  {'Walecki tour':>14}  {'naive port-cycles':>18}")
    for size in (0, 1, 2, 3, 5, 8):
        trials_walecki, trials_naive = [], []
        for _ in range(30):
            failures = frozenset(rng.sample(links, size))
            covered, _ = coverage(graph, hamiltonian, failures)
            trials_walecki.append(covered == n)
            covered, _ = coverage(graph, naive, failures)
            trials_naive.append(covered == n)
        note = "  <- beyond the k-1 promise" if size > k - 1 else ""
        print(f"{size:>4}  {sum(trials_walecki):>11}/30  {sum(trials_naive):>15}/30{note}")

    print("\nWithin the promise (|F| <= 3) the Theorem 17 pattern never")
    print("misses a switch; the naive pattern fails already at |F| = 1.")


if __name__ == "__main__":
    main()
