"""Broadcast by touring, with local completion detection (§VII).

A metro ring-of-fans (outerplanar) floods a control message using a
single header-free port pattern; the originating switch detects — purely
locally, by comparing out-ports — when the message has reached every
switch that is still connected.  Links fail mid-deployment; the broadcast
keeps covering whatever remains reachable.

Run:  python examples/broadcast_flooding.py
"""

from repro import failure_set
from repro.core.algorithms import RightHandTouring
from repro.core.applications import TouringBroadcast
from repro.graphs import maximal_outerplanar
from repro.graphs.connectivity import component_of


def main() -> None:
    graph = maximal_outerplanar(12, seed=9)
    broadcast = TouringBroadcast(RightHandTouring())

    print(f"metro network: {graph.number_of_nodes()} switches, "
          f"{graph.number_of_edges()} links (maximal outerplanar)\n")

    scenarios = [
        ("no failures", failure_set()),
        ("two failures", failure_set((0, 1), (4, 5))),
        ("five failures", failure_set((0, 1), (4, 5), (2, 3), (8, 9), (0, 11))),
        ("segment cut off", failure_set((0, 1), (1, 2), (0, 2), (1, 3), (2, 3), (1, 11))),
    ]
    for name, failures in scenarios:
        alive = [e for e in graph.edges if (min(e), max(e)) not in failures]
        result = broadcast.run(graph, source=6, failures=failures)
        component = component_of(graph, 6, failures)
        status = "complete" if result.completed and result.covers(component) else "incomplete"
        print(f"{name:<16} informed {len(result.informed):>2}/{len(component)} reachable "
              f"switches in {result.hops:>2} hops — {status}")

    print("\nThe source detects completion by comparing the out-port for the")
    print("returning packet with the one it used at start (§VII, verbatim).")


if __name__ == "__main__":
    main()
