"""Quickstart: static local fast rerouting in 60 lines.

Builds a small full-mesh network, installs Algorithm 1's failover rules
(perfectly resilient on any graph with at most five nodes, Theorem 8),
fails links at "runtime", and routes packets — no reconvergence, no
header rewriting, every decision purely local.

Run:  python examples/quickstart.py
"""

from repro import failure_set, route
from repro.core import Network
from repro.core.algorithms import K5SourceRouting, RightHandTouring
from repro.core.simulator import tour
from repro.graphs import complete_graph, fan_graph


def main() -> None:
    # --- 1. routing with source+destination rules on a full mesh -------
    graph = complete_graph(5)
    network = Network(graph)
    source, destination = 0, 4
    pattern = K5SourceRouting().build(graph, source, destination)

    print("K5 full mesh, routing 0 -> 4 under growing failure sets:")
    for failures in (
        failure_set(),
        failure_set((0, 4)),
        failure_set((0, 4), (1, 4), (2, 4)),
        failure_set((0, 4), (0, 1), (0, 2), (1, 4), (2, 4)),
    ):
        result = route(network, pattern, source, destination, failures)
        print(
            f"  |F|={len(failures)}: {result.outcome.value:<10} "
            f"path={' -> '.join(map(str, result.path))}"
        )

    # --- 2. touring an outerplanar ring-of-trees without any header ----
    ring = fan_graph(7)
    touring = RightHandTouring().build(ring)
    failures = failure_set((0, 3), (0, 4))
    walk = tour(ring, touring, start=1, failures=failures)
    print("\nfan-7 (outerplanar), touring from node 1 with 2 failed links:")
    print(f"  nodes toured forever: {sorted(walk.recurrent)}")
    print(f"  (Corollary 6: outerplanar graphs are exactly the tourable ones)")


if __name__ == "__main__":
    main()
