"""A condensed §VIII case study on the synthetic Topology Zoo.

Classifies a 52-topology slice of the suite per routing model and prints
the Fig. 7 style table plus the Fig. 8 density breakdown.  (The full
260-topology run lives in ``benchmarks/bench_fig7_classification.py``.)

Run:  python examples/topology_zoo_study.py
"""

from repro.analysis import fig7_table, fig8_table, run_case_study
from repro.graphs.zoo import generate_zoo


def main() -> None:
    suite = generate_zoo()[::5]  # every fifth topology, all families
    print(f"classifying {len(suite)} synthetic Topology Zoo instances ...\n")
    result = run_case_study(suite=suite, minor_budget=2_000, destination_cap=150)
    print(fig7_table(result))
    print()
    print(fig8_table(result))
    print(f"\nelapsed: {result.elapsed_seconds:.1f}s "
          f"({result.elapsed_seconds / result.total * 1000:.0f} ms per topology)")


if __name__ == "__main__":
    main()
