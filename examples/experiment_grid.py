"""The unified experiment API: registries -> session -> grid -> records.

The paper is a *comparison*: how much resilience, stretch, table space
and congestion does each static local rerouting scheme give up for
locality?  This study runs that comparison end to end through
``repro.experiments``:

1. look schemes and topologies up **by registry name** (the same names
   the CLI uses), inspecting their applicability predicates;
2. run a (topologies x schemes x failure model) grid on one shared
   ``ExperimentSession`` — every scheme faces identical seeded failure
   scenarios;
3. serialize the typed ``ExperimentRecord`` rows to a JSON result store
   (merge-don't-overwrite) and to CSV.

Run:  python examples/experiment_grid.py
"""

import pathlib
import tempfile

from repro.experiments import (
    ExperimentSession,
    FailureModel,
    ResultStore,
    list_schemes,
    run_grid,
    scheme,
    topology,
)


def main() -> None:
    # --- 1. the registries --------------------------------------------
    print("schemes tagged for congestion comparisons:")
    for spec in list_schemes(tag="congestion-default"):
        print(f"  {spec.name:<14} {spec.arity:<24} {spec.theorem}")

    ring = topology("ring").build(12)
    tour = scheme("tour")
    print(f"\ntour applicable on ring(12): {tour.applicable(ring)}")
    petersen = topology("petersen").build()
    print(f"tour applicable on petersen: {tour.applicable(petersen)} "
          f"(requires {tour.requires})")

    # --- 2. one session, one grid, identical scenarios per scheme -----
    session = ExperimentSession()
    result = run_grid(
        topologies=["ring(12)", "fattree"],
        schemes=["arborescence", "distance2", "distance3", "tour", "greedy"],
        failure_models=[FailureModel(sizes=(0, 1, 2, 4), samples=4, seed=0)],
        metrics=("resilience", "congestion", "stretch", "table_space"),
        matrix="permutation",
        session=session,
    )
    print("\nthe grid (one row per record):")
    print(result.table())
    for topology_name, scheme_name, reason in result.skipped:
        print(f"  skipped {scheme_name} on {topology_name}: {reason}")

    # --- 3. records persist: JSON store (merging) + CSV ---------------
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(pathlib.Path(tmp) / "results.json")
        store.merge(result.records)
        # a second run with different seeds merges alongside, not over
        rerun = run_grid(
            topologies=["ring(12)"],
            schemes=["arborescence"],
            failure_models=[FailureModel(sizes=(0, 2), samples=4, seed=7)],
            metrics=("congestion",),
            session=session,
            store=store,
        )
        merged = store.load_records()
        print(f"\nstore after merge: {len(result.records)} + {len(rerun.records)} "
              f"records -> {len(merged)} (same-key records replaced, others kept)")
        csv_path = pathlib.Path(tmp) / "results.csv"
        store.write_csv(csv_path)
        print(f"CSV export: {len(csv_path.read_text().splitlines()) - 1} rows")


if __name__ == "__main__":
    main()
