"""Fig. 6 — the Netrail ISP topology and per-destination resilience.

Netrail cannot be toured under perfect resilience (it hides a K2,3
minor), but destination-based perfect resilience is available for the
destinations whose removal leaves an outerplanar graph.  This example:

1. classifies the topology exactly as the paper's §VIII pipeline does;
2. builds the Corollary 5 pattern for each good destination and verifies
   it against *all* 2^10 failure sets;
3. shows a concrete failover walk.

Run:  python examples/netrail_sometimes.py
"""

from repro import classify, failure_set
from repro.core import Network, route
from repro.core.algorithms import TourToDestination
from repro.core.resilience import check_pattern_resilience
from repro.graphs import fig6_netrail


def main() -> None:
    graph = fig6_netrail()
    classification = classify(graph, name="Netrail", minor_budget=100_000)
    print("Netrail (Fig. 6):", f"{classification.n} nodes, {classification.m} links,",
          classification.planarity)
    print(f"  touring:            {classification.touring.value}")
    print(f"  destination-based:  {classification.destination.value}")
    print(f"  source-destination: {classification.source_destination.value}")
    print(f"  good destinations:  {classification.good_destination_fraction:.0%} of nodes\n")

    router = TourToDestination()
    for destination in sorted(graph.nodes):
        if not router.supports(graph, destination):
            continue
        pattern = router.build(graph, destination)
        verdict = check_pattern_resilience(graph, pattern, destination)
        print(f"  destination {destination}: perfectly resilient "
              f"({verdict.scenarios_checked} scenarios, exhaustive={verdict.exhaustive})")

        failures = failure_set(("v1", "v2"), ("v2", "v6"))
        result = route(Network(graph), pattern, "v4", destination, failures)
        print(f"    sample walk v4 -> {destination} with {sorted(failures)} failed:")
        print(f"    {' -> '.join(map(str, result.path))} [{result.outcome.value}]")
        break

    print("\nThe remaining destinations have no Cor-5 pattern; the paper marks")
    print("such topologies 'sometimes' — resilience depends on the destination.")


if __name__ == "__main__":
    main()
