"""Serving resilience queries: warm caches and reliable request-reply.

Starts the ``repro serve`` service in-process (normally you would run
``PYTHONPATH=src python -m repro.cli serve --port 7421 --store
answers.json`` in its own terminal), then talks to it over real TCP
with the Lazy-Pirate client:

* a **cold** query pays graph construction, routing-state build and the
  full failure sweep;
* repeating it is a **warm** hit on the disk-backed answer cache —
  byte-identical result, served in well under a millisecond;
* ``budget_seconds`` turns an oversized sweep into a best-effort
  partial verdict (``exhaustive=False``) instead of an unbounded wait.

Run:  python examples/serve_quickstart.py
"""

import asyncio
import tempfile
import threading
import time

from repro.experiments import ResultStore
from repro.serve import QueryClient, QueryService, ResilienceServer


def start_server(store_path) -> tuple[threading.Thread, "ResilienceServer", asyncio.AbstractEventLoop]:
    """The in-process stand-in for ``repro serve`` (one warm session)."""
    box = {}
    ready = threading.Event()

    def run():
        async def main():
            server = ResilienceServer(
                service=QueryService(store=ResultStore(store_path)), port=0
            )
            await server.start()
            box["server"], box["loop"] = server, asyncio.get_event_loop()
            ready.set()
            await server.serve_forever()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    if not ready.wait(20):
        raise RuntimeError("server did not start")
    return thread, box["server"], box["loop"]


def main() -> None:
    with tempfile.TemporaryDirectory() as scratch:
        thread, server, loop = start_server(f"{scratch}/answers.json")
        print(f"service listening on 127.0.0.1:{server.bound_port}")

        with QueryClient(port=server.bound_port) as client:
            print(f"ping -> {client.ping()['result']}")

            # --- cold vs warm: the same verdict twice -------------------
            params = dict(
                topology="maximal-outerplanar(10)",
                scheme="right-hand",
                sizes=[2, 3],
                samples=200,
            )
            start = time.perf_counter()
            cold = client.verdict(**params)
            cold_ms = (time.perf_counter() - start) * 1000
            start = time.perf_counter()
            warm = client.verdict(**params)
            warm_ms = (time.perf_counter() - start) * 1000
            verdict = cold["result"]["verdict"]
            print(
                f"cold verdict: resilient={verdict['resilient']} "
                f"({verdict['scenarios_checked']} scenarios, {cold_ms:.1f} ms)"
            )
            print(
                f"warm verdict: cached={warm['cached']} ({warm_ms:.2f} ms), "
                f"answer identical: {warm['result'] == cold['result']}"
            )

            # --- explicit failure sets ---------------------------------
            reply = client.verdict(
                topology="grid(3)",
                scheme="greedy",
                destination=0,
                failure_sets=[[[0, 1], [1, 2]], [[3, 4]]],
            )
            verdict = reply["result"]["verdict"]
            print(
                f"explicit masks on grid(3)/greedy: resilient={verdict['resilient']} "
                f"({verdict['scenarios_checked']} scenarios checked)"
            )

            # --- a deadline turns big sweeps into partial answers ------
            reply = client.verdict(
                topology="maximal-outerplanar(14)",
                scheme="right-hand",
                sizes=[2, 3, 4],
                samples=2000,
                budget_seconds=0.01,
            )
            print(
                f"budgeted sweep: partial={reply['partial']} "
                f"(exhaustive={reply['result']['verdict']['exhaustive']}, "
                f"{reply['result']['verdict']['scenarios_checked']} scenarios before the cut)"
            )

            stats = client.server_stats()
            print(
                f"server stats: {stats['requests_handled']} requests, "
                f"{stats['store_hits']} answer-cache hits, "
                f"{stats['batches']} batches"
            )

        loop.call_soon_threadsafe(server.request_stop)
        thread.join(20)
        print("server stopped cleanly")


if __name__ == "__main__":
    main()
