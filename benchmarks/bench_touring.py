"""§VII / Figs 12, 13 — touring: Cor 6 characterization and Thm 17.

* Lemmas 3, 4: on ``K4`` and ``K2,3`` the exhaustive adversary finds a
  (start, failure set) witness against any fixed port-cycle pattern —
  with at most 2 resp. 1 failures, exactly as in Figs 12/13.
* Cor 6 positive: right-hand-rule touring survives every failure set on
  outerplanar graphs.
* Thm 17: Hamiltonian-decomposition touring survives ``k-1`` failures on
  2k-connected complete / complete bipartite graphs.
"""

from repro.analysis import simple_table
from repro.core.adversary import attack_touring
from repro.core.algorithms import HamiltonianTouring, RandomPortCycles, RightHandTouring
from repro.core.resilience import check_k_resilient_touring, check_perfect_touring
from repro.graphs import construct


def test_lemmas_3_4_impossibility(benchmark, report):
    gadgets = {
        "K4 (Fig. 12)": construct.complete_graph(4),
        "K2,3 (Fig. 13)": construct.complete_bipartite(2, 3),
    }
    rows = []

    def attack_all():
        rows.clear()
        for name, graph in gadgets.items():
            for seed in range(6):
                witness = attack_touring(graph, RandomPortCycles(seed=seed))
                rows.append([name, f"port cycles #{seed}", witness is not None,
                             len(witness[1]) if witness else "-"])
        return rows

    benchmark.pedantic(attack_all, rounds=1, iterations=1)
    assert all(row[2] for row in rows)
    report(
        "lemmas34_touring_impossible",
        "Lemmas 3/4: every port-cycle pattern fails to tour K4 / K2,3\n"
        + simple_table(["gadget", "pattern", "witness found", "|F|"], rows),
    )


def test_corollary6_positive(benchmark, report):
    graphs = {
        "C8": construct.cycle_graph(8),
        "fan-7": construct.fan_graph(7),
        "maximal outerplanar (n=7)": construct.maximal_outerplanar(7, seed=2),
        "star-6": construct.star_graph(6),
    }

    def verify_all():
        return {name: check_perfect_touring(g, RightHandTouring()) for name, g in graphs.items()}

    verdicts = benchmark.pedantic(verify_all, rounds=1, iterations=1)
    assert all(v.resilient for v in verdicts.values())
    rows = [[name, v.resilient, v.scenarios_checked] for name, v in verdicts.items()]
    report(
        "cor6_outerplanar_touring",
        "Corollary 6 (positive): right-hand rule tours outerplanar graphs "
        "under every failure set\n" + simple_table(["graph", "tours", "scenarios"], rows),
    )


def test_theorem17_k_resilient_touring(benchmark, report):
    cases = [
        ("K5", construct.complete_graph(5), 2),
        ("K7", construct.complete_graph(7), 3),
        ("K4,4", construct.complete_bipartite(4, 4), 2),
        ("K6,6", construct.complete_bipartite(6, 6), 3),
    ]

    def verify_all():
        rows = []
        for name, graph, k in cases:
            verdict = check_k_resilient_touring(graph, HamiltonianTouring(), max_failures=k - 1)
            rows.append([name, k, k - 1, verdict.resilient, verdict.scenarios_checked])
        return rows

    rows = benchmark.pedantic(verify_all, rounds=1, iterations=1)
    assert all(row[3] for row in rows)
    report(
        "thm17_hamiltonian_touring",
        "Theorem 17: 2k-connected K_n / K_{n,n} toured under k-1 failures\n"
        + simple_table(["graph", "k cycles", "failures tolerated", "tours", "scenarios"], rows),
    )


def test_touring_frontier(benchmark, report):
    """Cor 6 is exact: the K4/K2,3 boundary (Table/Fig 9 touring row)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name, graph, expected in [
        ("K3", construct.complete_graph(3), True),
        ("K4", construct.complete_graph(4), False),
        ("K2,2", construct.complete_bipartite(2, 2), True),
        ("K2,3", construct.complete_bipartite(2, 3), False),
    ]:
        from repro.graphs.planarity import is_outerplanar

        rows.append([name, is_outerplanar(graph), expected])
        assert is_outerplanar(graph) == expected
    report(
        "cor6_frontier",
        "Corollary 6 frontier: touring possible iff outerplanar\n"
        + simple_table(["graph", "outerplanar", "tourable (paper)"], rows),
    )
