"""Fig. 7 — perfect-resilience classification of the Topology Zoo suite.

Regenerates the per-model classification percentages over the 260
synthetic Zoo topologies and prints them next to the paper's numbers.
The paper's qualitative shape to reproduce: roughly one third of all
topologies possible in every model; touring otherwise impossible;
destination-based routing mostly impossible/sometimes; source-destination
routing almost never provably impossible (2.7%) with a large unknown
band.
"""

from repro.analysis import fig7_table, run_case_study
from repro.graphs.zoo import generate_zoo

#: the paper's Fig. 7 values (percent), read off §VIII's prose
PAPER_FIG7 = {
    ("touring", "impossible"): 66.5,
    ("touring", "possible"): 33.5,
    ("destination", "impossible"): 42.5,
    ("destination", "unknown"): 1.1,
    ("destination", "sometimes"): 23.4,
    ("destination", "possible"): 33.0,
    ("source_destination", "impossible"): 2.7,
    ("source_destination", "unknown"): 31.8,
    ("source_destination", "sometimes"): 32.6,
    ("source_destination", "possible"): 33.0,
}


def test_fig7_classification(benchmark, zoo_study, report):
    suite = generate_zoo()[:40]

    def classify_subset():
        return run_case_study(suite=suite, minor_budget=1_500, destination_cap=200)

    benchmark.pedantic(classify_subset, rounds=1, iterations=1)
    report("fig7_classification", fig7_table(zoo_study, paper=PAPER_FIG7))


def test_fig7_shape_matches_paper(benchmark, zoo_study):
    """The headline qualitative claims of §VIII hold on the synthetic suite."""
    from repro.core.classification import Possibility

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # about one third of all topologies allow perfect resilience in all models
    assert 28 <= zoo_study.percentage("touring", Possibility.POSSIBLE) <= 40
    # destination-based impossibility dominates touring-possible's complement
    assert zoo_study.percentage("destination", Possibility.IMPOSSIBLE) > 35
    # source-destination impossibility is rare
    assert zoo_study.percentage("source_destination", Possibility.IMPOSSIBLE) < 8
    # the unknown band exists only for the routing models, not touring
    assert zoo_study.percentage("touring", Possibility.UNKNOWN) == 0
