"""Ablations for the design choices DESIGN.md calls out.

* **Table space** (§VII motivation): rule counts per routing model — the
  reason touring matters in practice.
* **Random failures** (§IX future work): delivery probability under
  uniform random failures, conditioned on the §II promise, for perfectly
  resilient schemes vs the ideal-resilience baseline vs naive greedy.
* **Stretch** (§I.B trade-off): failover walks are longer than shortest
  surviving paths.
* **Minor-engine ablation**: the contraction heuristic vs the exact
  search — why the engine runs both.
"""

from repro.analysis import (
    compare_curves,
    measure_stretch,
    simple_table,
    table_space_report,
)
from repro.core.algorithms import (
    ArborescenceRouting,
    GreedyLowestNeighbor,
    K5SourceRouting,
)
from repro.core.model import destination_as_source_destination
from repro.graphs import construct
from repro.graphs.minors import MinorSearchStats, has_minor, pattern_k33_minus1


def test_table_space_ablation(benchmark, report):
    graphs = {
        "C16 ring": construct.cycle_graph(16),
        "K8 mesh": construct.complete_graph(8),
        "4x4 grid": construct.grid_graph(4, 4),
        "wheel-10": construct.wheel_graph(10),
    }

    def account():
        return table_space_report(graphs)

    entries = benchmark.pedantic(account, rounds=1, iterations=1)
    rows = [
        [e.name, e.source_destination_rules, e.destination_rules, e.touring_rules,
         f"{e.touring_saving:.0f}x"]
        for e in entries
    ]
    report(
        "ablation_table_space",
        "Rule counts per routing model (§VII: touring saves table space)\n"
        + simple_table(["topology", "pi^{s,t} rules", "pi^t rules", "pi^∀ rules", "saving"], rows),
    )
    assert all(e.touring_rules < e.destination_rules for e in entries)


def test_random_failure_ablation(benchmark, report):
    graph = construct.complete_graph(5)
    algorithms = [
        K5SourceRouting(),
        destination_as_source_destination(ArborescenceRouting()),
        destination_as_source_destination(GreedyLowestNeighbor()),
    ]
    sizes = [0, 2, 4, 6, 8]

    def sweep():
        return compare_curves(graph, algorithms, 0, 4, sizes=sizes, samples=150, seed=11)

    curves = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [curve.algorithm] + [f"{p:.2f}" for p in curve.probabilities] for curve in curves
    ]
    report(
        "ablation_random_failures",
        "P[delivered | s,t connected] on K5 under random failures (§IX outlook)\n"
        + simple_table(["algorithm"] + [f"|F|={s}" for s in sizes], rows),
    )
    # the perfectly resilient scheme dominates everywhere
    perfect = curves[0]
    assert all(p == 1.0 for p in perfect.probabilities)
    assert min(curves[2].probabilities) < 1.0


def test_stretch_ablation(benchmark, report):
    graph = construct.complete_graph(5)
    algorithms = [
        K5SourceRouting(),
        destination_as_source_destination(ArborescenceRouting()),
    ]

    def sweep():
        return [
            measure_stretch(graph, algorithm, 0, 4, max_failures=6, samples=250, seed=13)
            for algorithm in algorithms
        ]

    summaries = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [s.algorithm, f"{s.delivery_rate:.2f}", f"{s.mean_stretch:.2f}", f"{s.max_stretch:.1f}"]
        for s in summaries
    ]
    report(
        "ablation_stretch",
        "Hop stretch of failover walks on K5 (robust routes are longer)\n"
        + simple_table(["algorithm", "delivery", "mean stretch", "max stretch"], rows),
    )
    assert summaries[0].delivery_rate == 1.0


def test_classification_positives_ablation(benchmark, report, zoo_study):
    """Paper-exact pipeline vs our sound small-graph positives.

    The paper's §VIII procedure marks a graph "possible" only via
    outerplanarity; Theorems 8/9/12/13 justify also marking small
    K5/K3,3-minor graphs possible.  On the Zoo suite this barely moves
    the percentages (real topologies are rarely that small) — which is
    why the paper could ignore it — but the ablation quantifies it.
    """
    from repro.analysis import run_case_study
    from repro.core.classification import Possibility, classify
    from repro.graphs.zoo import generate_zoo

    subset = generate_zoo()[::9]

    def run_both():
        exact = [
            classify(z.graph, minor_budget=1_000, use_small_positives=False) for z in subset
        ]
        extended = [
            classify(z.graph, minor_budget=1_000, use_small_positives=True) for z in subset
        ]
        return exact, extended

    exact, extended = benchmark.pedantic(run_both, rounds=1, iterations=1)
    moved = sum(
        1
        for a, b in zip(exact, extended)
        if (a.destination, a.source_destination) != (b.destination, b.source_destination)
    )
    rows = [
        ["paper-exact", sum(1 for c in exact if c.destination is Possibility.POSSIBLE)],
        ["with Thm 8/9/12/13 positives", sum(1 for c in extended if c.destination is Possibility.POSSIBLE)],
    ]
    report(
        "ablation_classification_positives",
        f"Classification ablation on {len(subset)} topologies: {moved} changed class\n"
        + simple_table(["pipeline", "destination-possible count"], rows),
    )


def test_minor_engine_ablation(benchmark, report):
    host = construct.grid_graph(5, 6)  # contains K3,3^-1
    pattern = pattern_k33_minus1()

    def run_modes():
        heuristic = MinorSearchStats()
        with_heuristic = has_minor(host, pattern, heuristic_rounds=60, budget=50, stats=heuristic)
        exact_only = MinorSearchStats()
        without = has_minor(host, pattern, heuristic_rounds=0, budget=500_000, stats=exact_only)
        return (with_heuristic, heuristic), (without, exact_only)

    (fast_out, fast_stats), (slow_out, slow_stats) = benchmark.pedantic(
        run_modes, rounds=1, iterations=1
    )
    rows = [
        ["heuristic first", fast_out.value, fast_stats.heuristic_rounds, fast_stats.recursion_nodes],
        ["exact only", slow_out.value, slow_stats.heuristic_rounds, slow_stats.recursion_nodes],
    ]
    report(
        "ablation_minor_engine",
        "Minor engine: heuristic-first vs exact-only on a 5x6 grid / K3,3^-1\n"
        + simple_table(["mode", "outcome", "heuristic rounds", "exact nodes"], rows),
    )
    assert fast_out.value == "yes" and slow_out.value == "yes"
    assert fast_stats.recursion_nodes <= slow_stats.recursion_nodes
