"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, prints
it, and writes it under ``benchmarks/results/`` so EXPERIMENTS.md can
reference stable artifacts.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def report(results_dir):
    """Write (and echo) a named benchmark artifact."""

    def _write(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}\n")

    return _write


@pytest.fixture(scope="session")
def zoo_study():
    """The full §VIII case study, computed once per benchmark session."""
    from repro.analysis import run_case_study

    return run_case_study()
