"""§VIII runtime — "most instances can be classified quickly".

Benchmarks the classification pipeline itself: per-topology latency on a
representative sub-suite (this is the part the paper ran through SageMath
and minorminer).
"""

import pytest

from repro.analysis import simple_table
from repro.core.classification import classify
from repro.graphs.zoo import generate_zoo


@pytest.fixture(scope="module")
def suite():
    return generate_zoo()


def test_classification_throughput(benchmark, suite, report):
    subset = suite[::7]  # ~37 topologies over all families

    def classify_subset():
        return [classify(z.graph, name=z.name, minor_budget=1_500) for z in subset]

    results = benchmark(classify_subset)
    rows = [
        [c.name, c.n, c.m, c.planarity, c.destination.value, c.source_destination.value]
        for c in results[:12]
    ]
    report(
        "zoo_runtime",
        f"§VIII classification throughput: {len(subset)} topologies per round\n"
        "first rows:\n"
        + simple_table(["topology", "n", "m", "planarity", "dest", "source-dest"], rows),
    )


def test_single_topology_latency(benchmark, suite):
    largest_planar = max(
        (z for z in suite if z.family == "grid"), key=lambda z: z.m
    )
    benchmark(lambda: classify(largest_planar.graph, minor_budget=1_500))
