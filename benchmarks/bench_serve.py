"""Service benchmark: cold vs warm query latency and concurrent throughput.

Starts a real ``repro serve`` subprocess (warm ``ExperimentSession``,
disk-backed answer cache) and drives it with the Lazy-Pirate client:

* **cold vs warm** — the same gadget verdict query (a seeded
  multi-size failure sweep on a maximal-outerplanar gadget under
  right-hand touring) first against a fresh server (pays graph build +
  ``EngineState`` + decision tables + the full sweep) and then
  repeatedly against the warm server (answer served from the memoized
  ``ResultStore``).  The tracked ``cold_vs_warm_speedup`` must stay
  above 2x — this is the whole point of a persistent service;
* **throughput** — a concurrent load generator: several client threads
  issuing a mix of distinct explicit-mask verdicts (exercises the
  coalescing worker) and repeated warm hits, reporting requests/s and
  p50/p99 latency.

Results merge into ``BENCH_serve.json`` at the repo root (a new
trajectory, same ``ResultStore`` machinery as ``BENCH_engine.json``).
Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_serve.py
"""

from __future__ import annotations

import os
import pathlib
import re
import subprocess
import sys
import threading
import time

from repro.analysis import simple_table
from repro.experiments import ExperimentRecord, ResultStore
from repro.serve import QueryClient

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_SERVE_JSON = REPO_ROOT / "BENCH_serve.json"

#: the acceptance bar: a warm answer must be at least this much faster
COLD_VS_WARM_MIN_SPEEDUP = 2.0
#: the gadget verdict workload (full run)
GADGET_TOPOLOGY = "maximal-outerplanar(12)"
GADGET_SCHEME = "right-hand"
GADGET_SIZES = [2, 3, 4]
GADGET_SAMPLES = 600
#: warm-phase repetitions and load-generator shape
WARM_REPEATS = 30
LOAD_THREADS = 4
LOAD_REQUESTS_PER_THREAD = 25


class ServeProcess:
    """A ``repro serve`` subprocess bound to an ephemeral port."""

    def __init__(self, store_path: pathlib.Path):
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--store",
                str(store_path),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        self.port: int | None = None
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                break
            match = re.search(r"listening on [\d.]+:(\d+)", line)
            if match:
                self.port = int(match.group(1))
                break
        if self.port is None:
            self.stop()
            raise RuntimeError("repro serve did not come up")

    def stop(self) -> int:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=30)
            except subprocess.TimeoutExpired:  # pragma: no cover - hard failure
                self.proc.kill()
                self.proc.wait()
        return self.proc.returncode

    def __enter__(self) -> "ServeProcess":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    return ordered[round(q * (len(ordered) - 1))]


def _gadget_params(quick: bool) -> dict:
    if quick:
        return {
            "topology": "maximal-outerplanar(8)",
            "scheme": GADGET_SCHEME,
            "sizes": [2, 3],
            "samples": 100,
            "seed": 0,
        }
    return {
        "topology": GADGET_TOPOLOGY,
        "scheme": GADGET_SCHEME,
        "sizes": GADGET_SIZES,
        "samples": GADGET_SAMPLES,
        "seed": 0,
    }


def bench_cold_vs_warm(port: int, quick: bool) -> dict:
    params = _gadget_params(quick)
    with QueryClient(port=port, timeout=120, retries=2) as client:
        start = time.perf_counter()
        cold_reply = client.request("verdict", params)
        cold_seconds = time.perf_counter() - start
        assert cold_reply["ok"] and not cold_reply["cached"], cold_reply
        warm_latencies = []
        repeats = 5 if quick else WARM_REPEATS
        for _ in range(repeats):
            start = time.perf_counter()
            warm_reply = client.request("verdict", params)
            warm_latencies.append(time.perf_counter() - start)
            assert warm_reply["ok"] and warm_reply["cached"], warm_reply
        # byte-identical answer, served without recomputation
        assert warm_reply["result"] == cold_reply["result"]
    warm_p50 = _percentile(warm_latencies, 0.50)
    return {
        "workload": f"verdict {params['topology']} / {params['scheme']} "
        f"sizes={params['sizes']} samples={params['samples']}",
        "scenarios_checked": cold_reply["result"]["verdict"]["scenarios_checked"],
        "cold_seconds": cold_seconds,
        "warm_p50_seconds": warm_p50,
        "warm_p99_seconds": _percentile(warm_latencies, 0.99),
        "warm_repeats": repeats,
        "cold_vs_warm_speedup": cold_seconds / warm_p50,
    }


def bench_throughput(port: int, quick: bool) -> dict:
    """Concurrent load generator: distinct + repeated verdict queries."""
    topology = "maximal-outerplanar(8)" if quick else GADGET_TOPOLOGY
    threads = 2 if quick else LOAD_THREADS
    per_thread = 5 if quick else LOAD_REQUESTS_PER_THREAD
    # the distinct-query pool: single-link explicit masks, one identity
    # per link, cycled by every thread (first pass computes, later
    # passes and sibling threads coalesce/hit)
    from repro.experiments.registry import resolve_topology
    from repro.serve.protocol import failure_set_to_json

    links = sorted(resolve_topology(topology).edges())
    pool = [failure_set_to_json(frozenset({link})) for link in links]
    latencies: list[list[float]] = [[] for _ in range(threads)]
    errors: list[Exception] = []
    barrier = threading.Barrier(threads + 1)

    def worker(slot: int) -> None:
        try:
            with QueryClient(port=port, timeout=120, retries=2) as client:
                barrier.wait(timeout=60)
                for i in range(per_thread):
                    mask = pool[(slot * per_thread + i) % len(pool)]
                    start = time.perf_counter()
                    reply = client.request(
                        "verdict",
                        {
                            "topology": topology,
                            "scheme": GADGET_SCHEME,
                            "failure_sets": [mask],
                        },
                    )
                    latencies[slot].append(time.perf_counter() - start)
                    assert reply["ok"], reply
        except Exception as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    pool_threads = [
        threading.Thread(target=worker, args=(slot,), daemon=True)
        for slot in range(threads)
    ]
    for thread in pool_threads:
        thread.start()
    barrier.wait(timeout=60)
    start = time.perf_counter()
    for thread in pool_threads:
        thread.join(timeout=600)
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    flat = [sample for slot in latencies for sample in slot]
    return {
        "threads": threads,
        "requests": len(flat),
        "seconds": elapsed,
        "requests_per_second": len(flat) / elapsed,
        "p50_seconds": _percentile(flat, 0.50),
        "p99_seconds": _percentile(flat, 0.99),
    }


def bench_store() -> ResultStore:
    """The serve performance trajectory (new ``BENCH_`` artifact)."""
    return ResultStore(BENCH_SERVE_JSON)


def run_benchmark(quick: bool = False, deadline_seconds: float | None = None) -> dict:
    import tempfile

    from repro.runtime import Deadline

    deadline = Deadline(deadline_seconds) if deadline_seconds is not None else None
    with tempfile.TemporaryDirectory() as scratch:
        with ServeProcess(pathlib.Path(scratch) / "answers.json") as server:
            verdict = bench_cold_vs_warm(server.port, quick)
            partial = False
            if deadline is not None and deadline.expired():
                # phases are the deadline's units: the throughput phase
                # is skipped whole, never truncated mid-measurement
                throughput = None
                partial = True
            else:
                throughput = bench_throughput(server.port, quick)
            exit_code = server.stop()
    assert exit_code == 0, f"serve exited {exit_code}"
    results = {
        "benchmark": "serve",
        "cpu_count": os.cpu_count(),
        "thresholds": {"cold_vs_warm_min_speedup": COLD_VS_WARM_MIN_SPEEDUP},
        "verdict": verdict,
        "throughput": throughput,
    }
    if partial:
        results["partial"] = True
        print("deadline cut the benchmark: partial results, skipping BENCH merge")
        return results
    if not quick:
        # --quick is a CI smoke on a smaller workload: never let its
        # numbers masquerade as the tracked full-benchmark record
        store = bench_store()
        store.merge_raw(results)
        store.merge(
            [
                ExperimentRecord(
                    experiment="bench_serve_cold_vs_warm",
                    topology=GADGET_TOPOLOGY,
                    scheme=GADGET_SCHEME,
                    failure_model=f"random(sizes={'/'.join(map(str, GADGET_SIZES))},"
                    f"samples={GADGET_SAMPLES},seed=0)",
                    metrics={
                        "cold_seconds": verdict["cold_seconds"],
                        "warm_p50_seconds": verdict["warm_p50_seconds"],
                        "warm_p99_seconds": verdict["warm_p99_seconds"],
                        "cold_vs_warm_speedup": verdict["cold_vs_warm_speedup"],
                        "scenarios_checked": verdict["scenarios_checked"],
                    },
                    runtime_seconds=verdict["cold_seconds"],
                ),
                ExperimentRecord(
                    experiment="bench_serve_throughput",
                    topology=GADGET_TOPOLOGY,
                    scheme=GADGET_SCHEME,
                    failure_model="explicit(single-link pool)",
                    metrics={
                        "requests_per_second": throughput["requests_per_second"],
                        "p50_seconds": throughput["p50_seconds"],
                        "p99_seconds": throughput["p99_seconds"],
                        "threads": throughput["threads"],
                        "requests": throughput["requests"],
                    },
                    runtime_seconds=throughput["seconds"],
                ),
            ]
        )
    return results


def format_report(results: dict) -> str:
    verdict = results["verdict"]
    throughput = results["throughput"]
    rows = [
        [
            "cold (fresh server)",
            f"{verdict['cold_seconds'] * 1000:.1f}",
            "-",
            "full sweep + state build",
        ],
        [
            "warm (answer cache)",
            f"{verdict['warm_p50_seconds'] * 1000:.1f}",
            f"{verdict['warm_p99_seconds'] * 1000:.1f}",
            f"{verdict['cold_vs_warm_speedup']:.1f}x faster",
        ],
    ]
    if throughput is not None:
        rows.append(
            [
                f"concurrent x{throughput['threads']}",
                f"{throughput['p50_seconds'] * 1000:.1f}",
                f"{throughput['p99_seconds'] * 1000:.1f}",
                f"{throughput['requests_per_second']:.0f} req/s",
            ]
        )
    else:
        rows.append(["concurrent", "-", "-", "- (deadline cut)"])
    return (
        "repro serve: cold vs warm latency and concurrent throughput\n"
        f"(workload: {verdict['workload']}; "
        f"bar: warm >= {COLD_VS_WARM_MIN_SPEEDUP:.0f}x faster than cold)\n"
        + simple_table(["phase", "p50 ms", "p99 ms", "note"], rows)
    )


def test_serve_cold_vs_warm(report):
    results = run_benchmark()
    report("serve", format_report(results))
    assert (
        results["verdict"]["cold_vs_warm_speedup"] >= COLD_VS_WARM_MIN_SPEEDUP
    ), results["verdict"]
    assert results["throughput"]["requests_per_second"] > 0, results["throughput"]


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: smaller gadget and load, no BENCH_serve.json write",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="skip phases once this many seconds have elapsed; partial "
        "results are reported but never merged into BENCH_serve.json",
    )
    cli_args = parser.parse_args()
    results = run_benchmark(quick=cli_args.quick, deadline_seconds=cli_args.deadline)
    print(format_report(results))
    if not cli_args.quick and not results.get("partial"):
        print(f"machine-readable results: {BENCH_SERVE_JSON}")
