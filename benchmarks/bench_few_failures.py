"""§VI / Thms 14, 15 — few-failure impossibility scaling.

Measures, for growing complete and complete bipartite graphs, the size of
the breaking failure set found by the padding adversary, against the
paper's budgets ``6n - 33`` and ``3a + 4b - 21``.  The *shape* to
reproduce: linear growth with slope 6 (resp. the 3/4 mix); absolute
constants differ by the padding-count deviation documented in DESIGN.md.
"""

from repro.analysis import simple_table
from repro.core.adversary import (
    attack_complete_bipartite,
    attack_complete_graph,
    complete_bipartite_budget,
    complete_graph_budget,
)
from repro.core.algorithms import Distance2Algorithm
from repro.graphs import construct


def test_theorem14_scaling(benchmark, report):
    sizes = (8, 10, 12, 14, 16, 20, 24)
    rows = []

    def attack_all():
        rows.clear()
        for n in sizes:
            graph = construct.complete_graph(n)
            result = attack_complete_graph(graph, Distance2Algorithm(), 0, n - 1)
            rows.append([n, len(result.failures), complete_graph_budget(n), 6 * (n - 7) + 15])
        return rows

    benchmark.pedantic(attack_all, rounds=1, iterations=1)
    report(
        "thm14_kn_scaling",
        "Theorem 14: breaking-|F| on K_n vs the paper bound 6n-33\n"
        + simple_table(["n", "measured |F|", "paper 6n-33", "ours 6(n-7)+15"], rows),
    )
    # the shape: slope 6 per node
    deltas = [
        (rows[i + 1][1] - rows[i][1]) / (rows[i + 1][0] - rows[i][0])
        for i in range(len(rows) - 1)
    ]
    assert all(delta == 6 for delta in deltas), deltas


def test_theorem15_scaling(benchmark, report):
    shapes = ((4, 4), (4, 6), (5, 5), (6, 6), (6, 8))
    rows = []

    def attack_all():
        rows.clear()
        for a, b in shapes:
            graph = construct.complete_bipartite(a, b)
            result = attack_complete_bipartite(graph, Distance2Algorithm(), 0, a)
            rows.append([f"K{a},{b}", len(result.failures), complete_bipartite_budget(a, b)])
        return rows

    benchmark.pedantic(attack_all, rounds=1, iterations=1)
    report(
        "thm15_kab_scaling",
        "Theorem 15: breaking-|F| on K_{a,b} vs the paper bound 3a+4b-21\n"
        + simple_table(["graph", "measured |F|", "paper 3a+4b-21"], rows),
    )


def test_positive_side_tightness(benchmark, report):
    """Thm 14 is asymptotically tight: <= n-2 failures are always survivable.

    [2, Thm 6.1]: on ``K_n`` with at most ``n - 2`` failures, s and t stay
    within distance 2, so the distance-2 pattern delivers.  Verified
    exhaustively on K5 and K6.
    """
    from repro.core.resilience import all_failure_sets, check_pattern_resilience

    rows = []

    def verify():
        rows.clear()
        for n in (5, 6):
            graph = construct.complete_graph(n)
            pattern = Distance2Algorithm().build(graph, 0, n - 1)
            verdict = check_pattern_resilience(
                graph,
                pattern,
                n - 1,
                sources=[0],
                failure_sets=all_failure_sets(graph, max_failures=n - 2),
            )
            rows.append([n, n - 2, verdict.resilient, verdict.scenarios_checked])
        return rows

    benchmark.pedantic(verify, rounds=1, iterations=1)
    assert all(row[2] for row in rows)
    report(
        "thm14_tightness",
        "Positive counterpart: K_n survives any n-2 failures (distance-2)\n"
        + simple_table(["n", "|F| <=", "delivered always", "scenarios"], rows),
    )
