"""Table I — the feasibility landscape of local fast rerouting.

Regenerates every cell of Table I empirically:

* r-tolerance (r > 1): preserved under subgraphs (checked), not under
  minors (Thm 2's construction), possible on ``K_{2r+1}`` /
  ``K_{2r-1,2r-1}``, impossible on ``K_{5r+3}``;
* bounded link failures: possible for ``f < n - 1`` on ``K_n`` (and
  ``f < min(a,b) - 1`` on ``K_{a,b}``), impossible for ``f`` at the
  Theorem 14/15 budgets.
"""

from repro.analysis import simple_table
from repro.core.adversary import attack_complete_graph, attack_r_tolerance
from repro.core.algorithms import Distance2Algorithm, Distance3BipartiteAlgorithm
from repro.core.resilience import all_failure_sets, check_pattern_resilience, check_r_tolerance
from repro.graphs import construct


def test_table1_landscape(benchmark, report):
    rows = []

    def run_all():
        rows.clear()
        # --- r-tolerance row, r = 2 ---
        r = 2
        verdict = check_r_tolerance(construct.complete_graph(2 * r + 1), Distance2Algorithm(), 0, 2 * r, r=r)
        rows.append(["r-tolerance r=2", "possible", f"K{2*r+1}", verdict.resilient, verdict.scenarios_checked])
        verdict = check_r_tolerance(
            construct.complete_bipartite(2 * r - 1, 2 * r - 1), Distance3BipartiteAlgorithm(), 0, 3, r=r
        )
        rows.append(["r-tolerance r=2", "possible", f"K{2*r-1},{2*r-1}", verdict.resilient, verdict.scenarios_checked])
        attack = attack_r_tolerance(
            construct.complete_graph(5 * r + 3), Distance2Algorithm(), 0, 5 * r + 2, r=r
        )
        rows.append(["r-tolerance r=2", "impossible", f"K{5*r+3}", attack is not None, len(attack.failures)])

        # --- subgraph closure (yes) ---
        sub = construct.minus_links(construct.complete_graph(5), [(1, 3)])
        verdict = check_r_tolerance(sub, Distance2Algorithm(), 0, 4, r=2)
        rows.append(["r-tolerance r=2", "subgraph closure", "K5 minus a link", verdict.resilient, verdict.scenarios_checked])

        # --- bounded failures row ---
        n = 6
        graph = construct.complete_graph(n)
        pattern = Distance2Algorithm().build(graph, 0, n - 1)
        verdict = check_pattern_resilience(
            graph, pattern, n - 1, sources=[0], failure_sets=all_failure_sets(graph, max_failures=n - 2)
        )
        rows.append(["bounded failures", "possible f<n-1", f"K{n}, f<={n-2}", verdict.resilient, verdict.scenarios_checked])
        attack = attack_complete_graph(construct.complete_graph(10), Distance2Algorithm(), 0, 9)
        rows.append(["bounded failures", "impossible f=O(n)", "K10", attack is not None, len(attack.failures)])
        return rows

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert all(row[3] for row in rows)
    report(
        "table1_landscape",
        "Table I — feasibility landscape (empirical regeneration)\n"
        + simple_table(["model row", "cell", "instance", "holds", "scenarios / |F|"], rows),
    )


def test_theorem2_minors_not_closed(benchmark, report):
    """Thm 2: r-tolerance is *not* minor-closed for r >= 2.

    The construction: take the Theorem 1 graph G' = K13 (not 2-tolerant),
    build G = G' + new source s' with r-1 paths to s and a direct (s', t)
    link.  G is 2-tolerant for (s', t) — the direct link plus the promise
    — while its minor G' is not.
    """
    import networkx as nx

    def build_and_check():
        base = construct.complete_graph(13)  # Theorem 1 graph for r=2
        graph = nx.Graph(base)
        s_new, t = "s'", 12
        graph.add_edge(s_new, 0)  # one path to the old source (r-1 = 1)
        graph.add_edge(s_new, t)  # the direct link
        # 2-tolerance for (s', t): if λ(s', t) >= 2 after failures, both
        # (s',0) and (s',t) survive (s' has degree 2), so routing directly
        # over (s', t) always works.
        class DirectFirst(Distance2Algorithm):
            pass

        verdict = check_r_tolerance(
            graph,
            DirectFirst(),
            s_new,
            t,
            r=2,
            failure_sets=[frozenset()] + [frozenset({link}) for link in map(tuple, [])],
        )
        # exhaustive enumeration is too large; the promise argument is
        # structural: λ(s',t) >= 2 forces both incident links of s' alive.
        attack = attack_r_tolerance(base, Distance2Algorithm(), 0, 12, r=2)
        return verdict, attack

    verdict, attack = benchmark.pedantic(build_and_check, rounds=1, iterations=1)
    assert verdict.resilient
    assert attack is not None
    report(
        "thm2_minor_closure_fails",
        "Theorem 2: G (K13 + guarded source) is 2-tolerant for (s', t), "
        f"yet its minor K13 is not (adversary witness with |F|={len(attack.failures)})",
    )
