"""Table I — the feasibility landscape of local fast rerouting.

Regenerates every cell of Table I empirically and emits the result as
typed :class:`~repro.experiments.results.ExperimentRecord` streams
(the same shape the engine/congestion benches and ``run_grid`` use):

* r-tolerance (r > 1): preserved under subgraphs (checked), not under
  minors (Thm 2's construction), possible on ``K_{2r+1}`` /
  ``K_{2r-1,2r-1}``, impossible on ``K_{5r+3}``;
* bounded link failures: possible for ``f < n - 1`` on ``K_n``
  (exhaustively, and re-checked through the registry via a seeded
  ``run_grid`` sweep of the ``distance2`` scheme on ``complete(6)``),
  impossible for ``f`` at the Theorem 14/15 budgets.

Every cell becomes one record (``experiment="table1"``; the
``run_grid`` cross-check keeps its native ``"resilience"`` records),
merged into ``BENCH_engine.json`` alongside the perf trajectory.
Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_table1_landscape.py
"""

from __future__ import annotations

import time

import networkx as nx

from bench_engine_speedup import BENCH_JSON, bench_store
from repro.analysis import simple_table
from repro.core.adversary import attack_complete_graph, attack_r_tolerance
from repro.core.algorithms import Distance2Algorithm, Distance3BipartiteAlgorithm
from repro.core.resilience import all_failure_sets, check_pattern_resilience, check_r_tolerance
from repro.experiments import ExperimentRecord, FailureModel, run_grid
from repro.graphs import construct
from repro.runtime import Deadline


def _cell(row: str, cell: str, instance: str, scheme: str, holds: bool, scenarios: int, elapsed: float) -> ExperimentRecord:
    """One Table I cell as a typed record."""
    return ExperimentRecord(
        experiment="table1",
        topology=instance,
        scheme=scheme,
        failure_model=cell,
        metrics={"holds": holds, "scenarios_checked": scenarios},
        params={"row": row, "cell": cell},
        runtime_seconds=elapsed,
    )


def _table1_cells(quick: bool) -> list[ExperimentRecord]:
    records: list[ExperimentRecord] = []
    r = 2

    # --- r-tolerance row: possible on K_{2r+1} and K_{2r-1,2r-1} ---
    start = time.perf_counter()
    verdict = check_r_tolerance(construct.complete_graph(2 * r + 1), Distance2Algorithm(), 0, 2 * r, r=r)
    records.append(
        _cell("r-tolerance r=2", "possible", f"K{2 * r + 1}", "distance2",
              verdict.resilient, verdict.scenarios_checked, time.perf_counter() - start)
    )
    start = time.perf_counter()
    verdict = check_r_tolerance(
        construct.complete_bipartite(2 * r - 1, 2 * r - 1), Distance3BipartiteAlgorithm(), 0, 3, r=r
    )
    records.append(
        _cell("r-tolerance r=2", "possible", f"K{2 * r - 1},{2 * r - 1}", "distance3",
              verdict.resilient, verdict.scenarios_checked, time.perf_counter() - start)
    )

    # --- r-tolerance row: impossible on K_{5r+3} (adversary witness) ---
    start = time.perf_counter()
    attack = attack_r_tolerance(construct.complete_graph(5 * r + 3), Distance2Algorithm(), 0, 5 * r + 2, r=r)
    records.append(
        _cell("r-tolerance r=2", "impossible", f"K{5 * r + 3}", "distance2",
              attack is not None, len(attack.failures), time.perf_counter() - start)
    )

    # --- subgraph closure (yes) ---
    start = time.perf_counter()
    sub = construct.minus_links(construct.complete_graph(5), [(1, 3)])
    verdict = check_r_tolerance(sub, Distance2Algorithm(), 0, 4, r=2)
    records.append(
        _cell("r-tolerance r=2", "subgraph closure", "K5 minus a link", "distance2",
              verdict.resilient, verdict.scenarios_checked, time.perf_counter() - start)
    )

    # --- Thm 2: r-tolerance is *not* minor-closed for r >= 2 ---
    # The construction: G = K13 + a new source s' with one path to the
    # old source and a direct (s', t) link.  G is 2-tolerant for
    # (s', t) by the promise argument (λ(s',t) >= 2 forces both of s's
    # two incident links alive, so the direct link always routes),
    # while its minor K13 is not (adversary witness).
    start = time.perf_counter()
    base = construct.complete_graph(13)
    graph = nx.Graph(base)
    s_new, t = "s'", 12
    graph.add_edge(s_new, 0)
    graph.add_edge(s_new, t)
    verdict = check_r_tolerance(
        graph, Distance2Algorithm(), s_new, t, r=2, failure_sets=[frozenset()]
    )
    attack = attack_r_tolerance(base, Distance2Algorithm(), 0, 12, r=2)
    records.append(
        _cell("r-tolerance r=2", "minor closure fails (Thm 2)", "K13 + guarded source", "distance2",
              verdict.resilient and attack is not None, len(attack.failures), time.perf_counter() - start)
    )

    # --- bounded failures row: possible for f < n - 1 (exhaustive) ---
    n = 5 if quick else 6
    start = time.perf_counter()
    complete = construct.complete_graph(n)
    pattern = Distance2Algorithm().build(complete, 0, n - 1)
    verdict = check_pattern_resilience(
        complete, pattern, n - 1, sources=[0],
        failure_sets=all_failure_sets(complete, max_failures=n - 2),
    )
    records.append(
        _cell("bounded failures", "possible f<n-1", f"K{n}, f<={n - 2}", "distance2",
              verdict.resilient, verdict.scenarios_checked, time.perf_counter() - start)
    )

    # --- bounded failures row: impossible at the Thm 14/15 budget ---
    start = time.perf_counter()
    attack = attack_complete_graph(construct.complete_graph(10), Distance2Algorithm(), 0, 9)
    records.append(
        _cell("bounded failures", "impossible f=O(n)", "K10", "distance2",
              attack is not None, len(attack.failures), time.perf_counter() - start)
    )
    return records


def run_benchmark(quick: bool = False, deadline_seconds: float | None = None) -> dict:
    deadline = Deadline(deadline_seconds) if deadline_seconds is not None else None
    cells = _table1_cells(quick)
    partial = False
    if deadline is not None and deadline.expired():
        # cells are the unit of progress: the grid cross-check is
        # skipped whole rather than truncated
        grid = None
        partial = True
    else:
        # the same "possible f<n-1" claim once more, this time through
        # the public registry pipeline: a seeded random sweep of the
        # distance2 scheme over complete(6) via run_grid, so Table I is
        # wired into the exact record stream `repro experiments` emits
        grid_topology = "complete(5)" if quick else "complete(6)"
        grid = run_grid(
            [grid_topology],
            ["distance2"],
            failure_models=[FailureModel(sizes=(1, 2, 3), samples=20 if quick else 100, seed=0)],
            metrics=["resilience"],
            deadline=deadline,
        )
    results = {
        "benchmark": "table1_landscape",
        "cells": [
            {
                "row": record.params["row"],
                "cell": record.params["cell"],
                "instance": record.topology,
                "holds": record.metrics["holds"],
                "scenarios_checked": record.metrics["scenarios_checked"],
                "runtime_seconds": record.runtime_seconds,
            }
            for record in cells
        ],
        "grid_cross_check": None
        if grid is None
        else {
            "topology": grid_topology,
            "records": len(grid.records),
            "exhaustive": grid.exhaustive,
            "resilient": all(record.metrics.get("resilient") for record in grid.records),
        },
    }
    if partial or (grid is not None and not grid.exhaustive):
        results["partial"] = True
        print("deadline cut the landscape: partial results, skipping BENCH merge")
        return results
    if not quick:
        store = bench_store()
        store.merge_raw({"table1": results})
        store.merge(cells + grid.records)
    results["records"] = cells + grid.records
    return results


def format_report(results: dict) -> str:
    rows = [
        [cell["row"], cell["cell"], cell["instance"], str(cell["holds"]), str(cell["scenarios_checked"])]
        for cell in results["cells"]
    ]
    grid = results["grid_cross_check"]
    if grid is not None:
        rows.append(
            ["bounded failures", "run_grid cross-check", f"{grid['topology']} x distance2",
             str(grid["resilient"]), f"{grid['records']} records"]
        )
    return (
        "Table I — feasibility landscape (empirical regeneration)\n"
        + simple_table(["model row", "cell", "instance", "holds", "scenarios / |F|"], rows)
    )


def test_table1_landscape(report):
    results = run_benchmark(quick=True)
    report("table1_landscape", format_report(results))
    assert all(cell["holds"] for cell in results["cells"])
    grid = results["grid_cross_check"]
    assert grid is not None and grid["resilient"] and grid["exhaustive"]


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: smaller instances, no BENCH_engine.json write",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="skip remaining phases once this many seconds have elapsed; "
        "partial results are reported but never merged",
    )
    cli_args = parser.parse_args()
    results = run_benchmark(quick=cli_args.quick, deadline_seconds=cli_args.deadline)
    print(format_report(results))
    if not cli_args.quick and not results.get("partial"):
        print(f"machine-readable results: {BENCH_JSON}")
