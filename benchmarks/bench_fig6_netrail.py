"""Fig. 6 — the Netrail topology: the canonical "sometimes" instance.

Touring is impossible (K2,3 minor after merging v3/v4), but for some
destinations the remaining graph is outerplanar, so destination-based
perfect resilience holds there — verified by actually building the Cor 5
pattern and checking it against every failure set.
"""

from repro.analysis import simple_table
from repro.core.algorithms import TourToDestination
from repro.core.classification import Possibility, classify
from repro.core.resilience import check_pattern_resilience
from repro.graphs import construct


def test_fig6_netrail(benchmark, report):
    graph = construct.fig6_netrail()

    def run():
        classification = classify(graph, name="Netrail", minor_budget=100_000)
        router = TourToDestination()
        verified = {}
        for destination in sorted(graph.nodes):
            if router.supports(graph, destination):
                pattern = router.build(graph, destination)
                verdict = check_pattern_resilience(graph, pattern, destination)
                verified[destination] = verdict.resilient
        return classification, verified

    classification, verified = benchmark.pedantic(run, rounds=1, iterations=1)
    assert classification.touring is Possibility.IMPOSSIBLE
    assert classification.destination is Possibility.SOMETIMES
    assert classification.source_destination is Possibility.SOMETIMES
    assert verified and all(verified.values())
    rows = [[t, ok] for t, ok in sorted(verified.items())]
    report(
        "fig6_netrail",
        "Fig. 6 — Netrail: touring impossible; 'sometimes' for routing\n"
        f"classification: touring={classification.touring.value}, "
        f"destination={classification.destination.value}, "
        f"source-destination={classification.source_destination.value}\n"
        f"good destinations ({classification.good_destination_fraction:.0%} of nodes), "
        "each verified exhaustively with the Cor 5 pattern:\n"
        + simple_table(["destination", "perfectly resilient"], rows),
    )
