"""Fig. 8 — the (size, density) classification frontier.

Regenerates the scatter behind Fig. 8: sparse tree-like topologies are
all possible; as density grows, first "sometimes", then impossibility
dominates; for source-destination routing the impossibility frontier sits
at much higher density than for destination-based routing.
"""

from repro.analysis import fig8_table
from repro.core.classification import Possibility


def test_fig8_density(benchmark, zoo_study, report):
    def render():
        return fig8_table(zoo_study)

    table = benchmark.pedantic(render, rounds=1, iterations=1)
    rows = [
        f"{name:<28} n={n:<4} |E|/n={density:4.2f}  dest={dest:<10} sd={sd}"
        for name, n, density, dest, sd in zoo_study.scatter_rows()
    ]
    report("fig8_density", table + "\n\nper-topology rows:\n" + "\n".join(rows))


def test_fig8_density_frontier(benchmark, zoo_study):
    """Quantitative shape: density separates the classes on average."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_class = {}
    for c in zoo_study.classifications:
        by_class.setdefault(c.destination, []).append(c.density)
    mean = lambda xs: sum(xs) / len(xs)
    # possible (outerplanar) topologies are the sparsest on average,
    # impossible ones the densest
    assert mean(by_class[Possibility.POSSIBLE]) < mean(by_class[Possibility.SOMETIMES])
    assert mean(by_class[Possibility.SOMETIMES]) < mean(by_class[Possibility.IMPOSSIBLE])


def test_fig8_sd_frontier_higher_than_dest(benchmark, zoo_study):
    """Source-destination impossibility needs denser graphs (Fig. 8 right)."""
    from repro.core.classification import Possibility

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    dest_imp = [c.density for c in zoo_study.classifications if c.destination is Possibility.IMPOSSIBLE]
    sd_imp = [c.density for c in zoo_study.classifications if c.source_destination is Possibility.IMPOSSIBLE]
    assert sd_imp, "some dense cores must be source-destination impossible"
    assert min(sd_imp) > min(dest_imp)
