"""Fig. 8 — the (size, density) classification frontier.

Regenerates the scatter behind Fig. 8: sparse tree-like topologies are
all possible; as density grows, first "sometimes", then impossibility
dominates; for source-destination routing the impossibility frontier sits
at much higher density than for destination-based routing.

Frontier statistics merge into ``BENCH_engine.json`` as typed
:class:`~repro.experiments.ExperimentRecord` rows (one per routing
model and possibility class) plus a ``fig8`` summary section, so the
tracked artifact carries the density frontier alongside the speedup and
congestion numbers.
"""

import time

from bench_engine_speedup import bench_store

from repro.analysis import fig8_table
from repro.core.classification import Possibility
from repro.experiments import ExperimentRecord

#: the two routing models Fig. 8 compares, as record scheme names
MODELS = {"destination": "destination", "source_destination": "source_destination"}


def frontier_records(zoo_study, elapsed_seconds: float = 0.0) -> list[ExperimentRecord]:
    """One typed record per (routing model, possibility class).

    Metrics are the per-class density statistics behind the Fig. 8
    scatter: how many topologies land in the class and where its
    density band sits.  The record identity uses the possibility class
    as the failure-model axis so all six cells merge independently.
    """
    records = []
    for model, scheme_name in MODELS.items():
        by_class: dict[Possibility, list[float]] = {}
        for c in zoo_study.classifications:
            by_class.setdefault(getattr(c, model), []).append(c.density)
        for possibility in Possibility:
            densities = by_class.get(possibility, [])
            if not densities:
                continue
            records.append(
                ExperimentRecord(
                    experiment="bench_fig8_density",
                    topology="zoo",
                    scheme=scheme_name,
                    failure_model=possibility.value,
                    metrics={
                        "topologies": len(densities),
                        "mean_density": sum(densities) / len(densities),
                        "min_density": min(densities),
                        "max_density": max(densities),
                    },
                    runtime_seconds=elapsed_seconds / (2 * len(Possibility)),
                )
            )
    return records


def frontier_summary(zoo_study) -> dict:
    """The ``fig8`` BENCH section: the frontier minima Fig. 8 highlights."""
    dest_imp = [
        c.density for c in zoo_study.classifications if c.destination is Possibility.IMPOSSIBLE
    ]
    sd_imp = [
        c.density
        for c in zoo_study.classifications
        if c.source_destination is Possibility.IMPOSSIBLE
    ]
    return {
        "benchmark": "fig8_density",
        "topologies": zoo_study.total,
        "dest_impossible_min_density": min(dest_imp) if dest_imp else None,
        "sd_impossible_min_density": min(sd_imp) if sd_imp else None,
    }


def test_fig8_density(benchmark, zoo_study, report):
    def render():
        return fig8_table(zoo_study)

    start = time.perf_counter()
    table = benchmark.pedantic(render, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    rows = [
        f"{name:<28} n={n:<4} |E|/n={density:4.2f}  dest={dest:<10} sd={sd}"
        for name, n, density, dest, sd in zoo_study.scatter_rows()
    ]
    report("fig8_density", table + "\n\nper-topology rows:\n" + "\n".join(rows))
    store = bench_store()
    store.merge_raw({"fig8": frontier_summary(zoo_study)})
    store.merge(frontier_records(zoo_study, elapsed_seconds=elapsed))


def test_fig8_density_frontier(benchmark, zoo_study):
    """Quantitative shape: density separates the classes on average."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_class = {}
    for c in zoo_study.classifications:
        by_class.setdefault(c.destination, []).append(c.density)
    mean = lambda xs: sum(xs) / len(xs)
    # possible (outerplanar) topologies are the sparsest on average,
    # impossible ones the densest
    assert mean(by_class[Possibility.POSSIBLE]) < mean(by_class[Possibility.SOMETIMES])
    assert mean(by_class[Possibility.SOMETIMES]) < mean(by_class[Possibility.IMPOSSIBLE])


def test_fig8_sd_frontier_higher_than_dest(benchmark, zoo_study):
    """Source-destination impossibility needs denser graphs (Fig. 8 right)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    dest_imp = [c.density for c in zoo_study.classifications if c.destination is Possibility.IMPOSSIBLE]
    sd_imp = [c.density for c in zoo_study.classifications if c.source_destination is Possibility.IMPOSSIBLE]
    assert sd_imp, "some dense cores must be source-destination impossible"
    assert min(sd_imp) > min(dest_imp)


def test_fig8_records_round_trip(zoo_study):
    """The frontier records are valid, mergeable typed records."""
    from repro.experiments import records_round_trip

    records = frontier_records(zoo_study)
    assert records, "the zoo study must populate at least one frontier cell"
    assert records_round_trip(records)
    # both routing models contribute, and every record carries the
    # density band metrics
    schemes = {record.scheme for record in records}
    assert schemes == set(MODELS.values())
    for record in records:
        assert record.metrics["min_density"] <= record.metrics["mean_density"]
        assert record.metrics["mean_density"] <= record.metrics["max_density"]
