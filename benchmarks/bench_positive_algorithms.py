"""§IV/§V positives (Thms 8, 9, 12, 13; Fig. 4) — exhaustive verification.

Each algorithm is checked against *every* failure set of its graph family
(the families are small enough that exhaustive enumeration is exact).
The benchmark time is the cost of the full verification sweep.
"""

from repro.analysis import simple_table
from repro.core.algorithms import (
    K33Minus2Routing,
    K33SourceRouting,
    K5Minus2Routing,
    K5SourceRouting,
)
from repro.core.resilience import (
    check_perfect_resilience_destination,
    check_perfect_resilience_source_destination,
)
from repro.graphs import construct


def test_theorem8_k5(benchmark, report):
    verdict = benchmark.pedantic(
        lambda: check_perfect_resilience_source_destination(
            construct.complete_graph(5), K5SourceRouting()
        ),
        rounds=1,
        iterations=1,
    )
    assert verdict.resilient and verdict.exhaustive
    report(
        "thm8_algorithm1",
        f"Theorem 8 (Algorithm 1 on K5): perfectly resilient, "
        f"{verdict.scenarios_checked} (source, F) scenarios, exhaustive",
    )


def test_theorem9_k33(benchmark, report):
    verdict = benchmark.pedantic(
        lambda: check_perfect_resilience_source_destination(
            construct.complete_bipartite(3, 3), K33SourceRouting()
        ),
        rounds=1,
        iterations=1,
    )
    assert verdict.resilient and verdict.exhaustive
    report(
        "thm9_k33_tables",
        f"Theorem 9 (K3,3 tables, same-part table repaired): perfectly resilient, "
        f"{verdict.scenarios_checked} scenarios, exhaustive",
    )


def test_theorem12_k5_minus2(benchmark, report):
    variants = {
        "matching removal": construct.k_minus(5, 2),
        "adjacent removal at t (Fig. 5)": construct.minus_links(
            construct.complete_graph(5), [(4, 2), (4, 3)]
        ),
    }

    def verify_all():
        return {
            name: check_perfect_resilience_destination(graph, K5Minus2Routing())
            for name, graph in variants.items()
        }

    verdicts = benchmark.pedantic(verify_all, rounds=1, iterations=1)
    rows = [
        [name, v.resilient, v.scenarios_checked] for name, v in verdicts.items()
    ]
    assert all(v.resilient for v in verdicts.values())
    report(
        "thm12_k5_minus2",
        "Theorem 12 (K5^-2, destination-based; Fig. 4 table with two repairs)\n"
        + simple_table(["variant", "perfectly resilient", "scenarios"], rows),
    )


def test_theorem13_k33_minus2(benchmark, report):
    variants = {
        "matching removal": construct.k_bipartite_minus(3, 3, 2),
        "both removals at t": construct.minus_links(
            construct.complete_bipartite(3, 3), [(2, 3), (2, 4)]
        ),
    }

    def verify_all():
        return {
            name: check_perfect_resilience_destination(graph, K33Minus2Routing())
            for name, graph in variants.items()
        }

    verdicts = benchmark.pedantic(verify_all, rounds=1, iterations=1)
    rows = [[name, v.resilient, v.scenarios_checked] for name, v in verdicts.items()]
    assert all(v.resilient for v in verdicts.values())
    report(
        "thm13_k33_minus2",
        "Theorem 13 (K3,3^-2, destination-based)\n"
        + simple_table(["variant", "perfectly resilient", "scenarios"], rows),
    )


def test_minor_closure_spot_checks(benchmark, report):
    """Positive results transfer to minors ([2]): spot-checked subfamilies."""
    cases = [
        ("K4 (minor of K5)", construct.complete_graph(4), K5SourceRouting(), "sd"),
        ("C6 (minor of K3,3)", construct.cycle_graph(6), K33SourceRouting(), "sd"),
        ("W4 = K5^-2 variant", construct.wheel_graph(4), K5Minus2Routing(), "dest"),
        ("K2,3 (minor of K3,3^-2... via Cor 5)", construct.complete_bipartite(2, 3), K33Minus2Routing(), "dest"),
    ]

    def verify_all():
        rows = []
        for name, graph, algorithm, kind in cases:
            if kind == "sd":
                verdict = check_perfect_resilience_source_destination(graph, algorithm)
            else:
                verdict = check_perfect_resilience_destination(graph, algorithm)
            rows.append([name, verdict.resilient, verdict.scenarios_checked])
        return rows

    rows = benchmark.pedantic(verify_all, rounds=1, iterations=1)
    assert all(row[1] for row in rows)
    report(
        "positive_minor_closure",
        "Positive results on minors/subgraphs (Thm 8/9/12/13 closure)\n"
        + simple_table(["graph", "perfectly resilient", "scenarios"], rows),
    )
