"""Engine speedup benchmark: naive vs scalar engine vs numpy mask walks.

Two workloads, both straight from the paper's experimental core:

* **gadget** — exhaustive destination-resilience checking of a 16-link
  outerplanar gadget (2^16 failure sets, every connected source), the
  shape of every Table 1 / impossibility verification.  This workload
  additionally times the vectorized numpy backend
  (``ExperimentSession(backend="numpy")``) against the scalar engine —
  the tracked ``numpy_vs_engine_speedup`` must stay above 1;
* **zoo** — the routing-bound component of the §VIII case study:
  exhaustively verifying Cor-5 ``TourToDestination`` patterns on the
  small Topology Zoo instances that support them.

Results are printed, written to ``benchmarks/results/`` like every other
benchmark, and additionally dumped machine-readable to
``BENCH_engine.json`` at the repo root so the perf trajectory can be
tracked across PRs.  Runnable standalone too::

    PYTHONPATH=src python benchmarks/bench_engine_speedup.py
"""

from __future__ import annotations

import os
import pathlib
import time

from repro.analysis import simple_table
from repro.core.model import touring_as_destination
from repro.core.resilience import check_pattern_resilience, check_perfect_resilience_destination
from repro.experiments import (
    ExperimentRecord,
    ExperimentSession,
    ResultStore,
    naive_session,
    scheme,
    topology,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_engine.json"

#: the acceptance bar for the exhaustive 16-link gadget check
GADGET_MIN_SPEEDUP = 3.0
#: the vectorized backend must beat the scalar engine on the gadget
NUMPY_MIN_SPEEDUP = 1.0
#: telemetry-on must cost at most 3% over telemetry-off on the gadget
TELEMETRY_MAX_OVERHEAD = 1.03
#: how many eligible zoo topologies to verify (bounds naive runtime)
ZOO_TOPOLOGY_CAP = 4


def sixteen_link_gadget(n: int = 10):
    """An outerplanar gadget with a perfectly resilient π^t scheme.

    Outerplanar so that right-hand-rule touring is perfectly resilient
    (Cor 6) — the check must sweep *all* ``2^links`` failure sets instead
    of stopping at an early counterexample.  The default ``n=10`` yields
    the benchmark's 16-link instance; ``--quick`` shrinks it.
    """
    graph = topology("maximal-outerplanar").build(n, 1)  # 2n - 3 links; drop one chord
    for u, v in sorted(graph.edges):
        if abs(u - v) not in (1, n - 1):
            graph.remove_edge(u, v)
            break
    assert graph.number_of_edges() == 2 * n - 4
    return graph


def _interleaved_best_pair(rounds: int, baseline, variant):
    """Best-of-N for two workloads with ALTERNATING runs.

    Container clock drift between back-to-back timing blocks runs ±8%,
    far above the 3% telemetry bar — timing all baseline runs before
    all variant runs folds that drift into the ratio.  Alternating
    baseline/variant within each round samples the same drift for both,
    so the minima stay comparable.
    """
    best_base = best_var = None
    result_base = result_var = None
    for _ in range(rounds):
        start = time.perf_counter()
        result_base = baseline()
        elapsed = time.perf_counter() - start
        best_base = elapsed if best_base is None else min(best_base, elapsed)
        start = time.perf_counter()
        result_var = variant()
        elapsed = time.perf_counter() - start
        best_var = elapsed if best_var is None else min(best_var, elapsed)
    return best_base, result_base, best_var, result_var


def bench_gadget(n: int = 10) -> dict:
    from repro import obs
    from repro.core.engine.vectorized import numpy_available

    graph = sixteen_link_gadget(n)
    algorithm = touring_as_destination(scheme("right-hand").instantiate())

    def engine_run():
        # a fresh session per run keeps every timing cold-cache
        return check_perfect_resilience_destination(
            graph, algorithm, destinations=[0], session=ExperimentSession()
        )

    telemetry = obs.Telemetry()  # metrics registry, no trace file

    def telemetry_run():
        with obs.installed(telemetry):
            return engine_run()

    engine_seconds, fast, telemetry_seconds, instrumented = _interleaved_best_pair(
        3, engine_run, telemetry_run
    )
    assert instrumented.resilient and instrumented.exhaustive
    assert instrumented.scenarios_checked == fast.scenarios_checked
    assert telemetry.registry.value("repro_engine_walks_total", kind="covers") > 0
    numpy_seconds = None
    if numpy_available():
        start = time.perf_counter()
        vectorized = check_perfect_resilience_destination(
            graph, algorithm, destinations=[0], session=ExperimentSession(backend="numpy")
        )
        numpy_seconds = time.perf_counter() - start
        assert vectorized.resilient and vectorized.exhaustive
        assert vectorized.scenarios_checked == fast.scenarios_checked
    start = time.perf_counter()
    slow = check_perfect_resilience_destination(
        graph, algorithm, destinations=[0], session=naive_session()
    )
    naive_seconds = time.perf_counter() - start
    assert fast.resilient and slow.resilient
    assert fast.scenarios_checked == slow.scenarios_checked
    assert fast.exhaustive and slow.exhaustive
    results = {
        "graph": f"maximal-outerplanar n={n} minus one chord",
        "links": graph.number_of_edges(),
        "failure_sets": 2 ** graph.number_of_edges(),
        "scenarios": fast.scenarios_checked,
        "naive_seconds": naive_seconds,
        "engine_seconds": engine_seconds,
        "speedup": naive_seconds / engine_seconds,
        "telemetry_seconds": telemetry_seconds,
        "telemetry_overhead": telemetry_seconds / engine_seconds,
    }
    if numpy_seconds is not None:
        # only ever recorded as real numbers: a no-numpy machine must
        # not overwrite the tracked speedup with nulls (the CI honesty
        # check reads these fields)
        results["numpy_seconds"] = numpy_seconds
        results["numpy_vs_engine_speedup"] = engine_seconds / numpy_seconds
    return results


def bench_zoo(cap: int = ZOO_TOPOLOGY_CAP) -> dict:
    """Exhaustive Cor-5 pattern verification on small zoo topologies."""
    from repro.graphs.zoo import generate_zoo

    router = scheme("tour").instantiate()
    jobs = []
    for zoo_member in generate_zoo(seed=2022):
        graph = zoo_member.graph
        if graph.number_of_edges() > 16 or graph.number_of_edges() < 6:
            continue
        destinations = [t for t in sorted(graph.nodes) if router.supports(graph, t)]
        if destinations:
            jobs.append((zoo_member.name, graph, destinations[:2]))
        if len(jobs) >= cap:
            break
    scenarios = 0
    engine_session = ExperimentSession()
    start = time.perf_counter()
    for _, graph, destinations in jobs:
        for destination in destinations:
            pattern = router.build(graph, destination)
            verdict = check_pattern_resilience(graph, pattern, destination, session=engine_session)
            assert verdict.resilient
            scenarios += verdict.scenarios_checked
    engine_seconds = time.perf_counter() - start
    start = time.perf_counter()
    for _, graph, destinations in jobs:
        for destination in destinations:
            pattern = router.build(graph, destination)
            verdict = check_pattern_resilience(
                graph, pattern, destination, session=naive_session()
            )
            assert verdict.resilient
    naive_seconds = time.perf_counter() - start
    return {
        "topologies": [name for name, _, _ in jobs],
        "patterns": sum(len(d) for _, _, d in jobs),
        "scenarios": scenarios,
        "naive_seconds": naive_seconds,
        "engine_seconds": engine_seconds,
        "speedup": naive_seconds / engine_seconds,
    }


def bench_store() -> ResultStore:
    """The shared cross-PR performance record (both benches merge here)."""
    return ResultStore(BENCH_JSON)


def run_benchmark(quick: bool = False, deadline_seconds: float | None = None) -> dict:
    from repro.runtime import Deadline

    deadline = Deadline(deadline_seconds) if deadline_seconds is not None else None
    gadget = bench_gadget(n=8 if quick else 10)
    partial = False
    if deadline is not None and deadline.expired():
        # workloads are the deadline's units here: the gadget ate the
        # budget, so the zoo workload is skipped whole, never truncated
        zoo = None
        partial = True
    else:
        zoo = bench_zoo(cap=2 if quick else ZOO_TOPOLOGY_CAP)
    results = {
        "benchmark": "engine_speedup",
        "cpu_count": os.cpu_count(),
        "thresholds": {
            "gadget_min_speedup": GADGET_MIN_SPEEDUP,
            "numpy_min_speedup": NUMPY_MIN_SPEEDUP,
            "telemetry_max_overhead": TELEMETRY_MAX_OVERHEAD,
        },
        "gadget": gadget,
        "zoo": zoo,
    }
    if partial:
        results["partial"] = True
        # deadline-cut runs never masquerade as the tracked full record
        print("deadline cut the benchmark: partial results, skipping BENCH merge")
        return results
    if not quick:
        # --quick is a CI smoke on a smaller workload: never let its
        # numbers masquerade as the tracked full-benchmark record.
        # The store merges: top-level sections by key, records by
        # (experiment, topology, scheme, failure model) identity.
        store = bench_store()
        store.merge_raw(results)
        store.merge(
            [
                ExperimentRecord(
                    experiment="bench_engine_speedup",
                    topology=gadget["graph"],
                    scheme="tour (as destination)",
                    failure_model="exhaustive",
                    metrics={
                        "speedup": gadget["speedup"],
                        "naive_seconds": gadget["naive_seconds"],
                        "engine_seconds": gadget["engine_seconds"],
                        "telemetry_seconds": gadget["telemetry_seconds"],
                        "telemetry_overhead": gadget["telemetry_overhead"],
                        "scenarios": gadget["scenarios"],
                    },
                    runtime_seconds=gadget["naive_seconds"] + gadget["engine_seconds"],
                ),
                ExperimentRecord(
                    experiment="bench_engine_speedup",
                    topology="zoo-small-slice",
                    scheme="tour",
                    failure_model="exhaustive",
                    metrics={
                        "speedup": zoo["speedup"],
                        "naive_seconds": zoo["naive_seconds"],
                        "engine_seconds": zoo["engine_seconds"],
                        "scenarios": zoo["scenarios"],
                    },
                    runtime_seconds=zoo["naive_seconds"] + zoo["engine_seconds"],
                ),
            ]
        )
        if gadget.get("numpy_seconds") is not None:
            store.merge(
                [
                    ExperimentRecord(
                        experiment="bench_numpy_backend",
                        topology=gadget["graph"],
                        scheme="tour (as destination)",
                        failure_model="exhaustive",
                        metrics={
                            "numpy_vs_engine_speedup": gadget["numpy_vs_engine_speedup"],
                            "numpy_seconds": gadget["numpy_seconds"],
                            "engine_seconds": gadget["engine_seconds"],
                            "scenarios": gadget["scenarios"],
                        },
                        params={"backend": "numpy"},
                        runtime_seconds=gadget["numpy_seconds"],
                    )
                ]
            )
    return results


def format_report(results: dict) -> str:
    gadget = results["gadget"]
    rows = [
        [
            name,
            f"{results[name]['scenarios']:,}",
            f"{results[name]['naive_seconds']:.2f}",
            f"{results[name]['engine_seconds']:.2f}",
            f"{results[name]['speedup']:.1f}x",
        ]
        if results.get(name) is not None
        else [name, "-", "-", "-", "- (deadline cut)"]
        for name in ("gadget", "zoo")
    ]
    if gadget.get("numpy_seconds") is not None:
        numpy_line = (
            f"numpy backend on the gadget sweep: {gadget['numpy_seconds']:.2f} s, "
            f"{gadget['numpy_vs_engine_speedup']:.1f}x over the scalar engine "
            f"(bar: >= {NUMPY_MIN_SPEEDUP:.0f}x)\n"
        )
    else:
        numpy_line = "numpy backend: not installed (scalar engine only)\n"
    numpy_line += (
        f"telemetry-on gadget sweep: {gadget['telemetry_seconds']:.2f} s, "
        f"{(gadget['telemetry_overhead'] - 1) * 100:+.1f}% vs telemetry-off "
        f"(bar: <= {(TELEMETRY_MAX_OVERHEAD - 1) * 100:.0f}%)\n"
    )
    return (
        "Engine speedup: naive simulator vs indexed+memoized engine\n"
        f"(gadget = exhaustive {gadget['links']}-link destination check; "
        f"bar: >= {GADGET_MIN_SPEEDUP:.0f}x)\n"
        + numpy_line
        + simple_table(["workload", "scenarios", "naive s", "engine s", "speedup"], rows)
    )


def test_engine_speedup(report):
    results = run_benchmark()
    report("engine_speedup", format_report(results))
    assert results["gadget"]["speedup"] >= GADGET_MIN_SPEEDUP, results["gadget"]
    # zoo verification must never get slower than the naive path
    assert results["zoo"]["speedup"] >= 1.0, results["zoo"]
    assert (
        results["gadget"]["telemetry_overhead"] <= TELEMETRY_MAX_OVERHEAD
    ), results["gadget"]
    if results["gadget"].get("numpy_seconds") is not None:
        assert (
            results["gadget"]["numpy_vs_engine_speedup"] >= NUMPY_MIN_SPEEDUP
        ), results["gadget"]


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: smaller gadget and zoo slice, no BENCH_engine.json write",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="skip workloads once this many seconds have elapsed; partial "
        "results are reported but never merged into BENCH_engine.json",
    )
    cli_args = parser.parse_args()
    results = run_benchmark(quick=cli_args.quick, deadline_seconds=cli_args.deadline)
    print(format_report(results))
    if not cli_args.quick and not results.get("partial"):
        print(f"machine-readable results: {BENCH_JSON}")
