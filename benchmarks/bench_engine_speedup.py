"""Engine speedup benchmark: naive vs scalar engine vs numpy mask walks.

Two workloads, both straight from the paper's experimental core:

* **gadget** — exhaustive destination-resilience checking of a 16-link
  outerplanar gadget (2^16 failure sets, every connected source), the
  shape of every Table 1 / impossibility verification.  This workload
  additionally times the vectorized numpy backend
  (``ExperimentSession(backend="numpy")``) against the scalar engine —
  the tracked ``numpy_vs_engine_speedup`` must stay above 1;
* **zoo** — the routing-bound component of the §VIII case study:
  exhaustively verifying Cor-5 ``TourToDestination`` patterns on the
  small Topology Zoo instances that support them;
* **multiword** — a 256-link fat-tree(8) arborescence sweep, four
  64-bit words past the old single-word mask ceiling: the multi-word
  vectorized backend against the warm scalar engine on a bounded
  failure-set family that stays resilient (so both backends sweep the
  whole family instead of early-exiting).  Pattern construction is
  backend-independent and excluded from the timing;
* **parallel_grid** — a small ``run_grid`` executed serially and with
  ``processes=2`` warm forked workers.  Byte-identity of the stitched
  records (wall clock normalised out) is asserted on every machine;
  the scaling ratio is only recorded where ``cpu_count > 1``, because
  on a single core the fork fan-out pays overhead for no parallelism;
* **sampled** — ``repro.failures`` Monte-Carlo estimation vs exhaustive
  enumeration of the same delivery probability (arborescence on
  grid(3,3) under iid failures).  The 95% Wilson CI must bracket the
  enumerated truth — the tracked speedup is only honest if the cheap
  answer is also a correct one.

Results are printed, written to ``benchmarks/results/`` like every other
benchmark, and additionally dumped machine-readable to
``BENCH_engine.json`` at the repo root so the perf trajectory can be
tracked across PRs.  Runnable standalone too::

    PYTHONPATH=src python benchmarks/bench_engine_speedup.py
"""

from __future__ import annotations

import os
import pathlib
import time

from repro.analysis import simple_table
from repro.core.model import touring_as_destination
from repro.core.resilience import check_pattern_resilience, check_perfect_resilience_destination
from repro.experiments import (
    ExperimentRecord,
    ExperimentSession,
    FailureModel,
    ResultStore,
    naive_session,
    run_grid,
    scheme,
    topology,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_engine.json"

#: the acceptance bar for the exhaustive 16-link gadget check
GADGET_MIN_SPEEDUP = 3.0
#: the vectorized backend must beat the scalar engine on the gadget
NUMPY_MIN_SPEEDUP = 1.0
#: multi-word masks must beat the warm scalar engine past 64 links
MULTIWORD_MIN_SPEEDUP = 1.5
#: telemetry-on must cost at most 3% over telemetry-off on the gadget
TELEMETRY_MAX_OVERHEAD = 1.03
#: Monte-Carlo estimation must beat exhaustive enumeration of the same truth
SAMPLED_MIN_SPEEDUP = 2.0
#: how many eligible zoo topologies to verify (bounds naive runtime)
ZOO_TOPOLOGY_CAP = 4


def sixteen_link_gadget(n: int = 10):
    """An outerplanar gadget with a perfectly resilient π^t scheme.

    Outerplanar so that right-hand-rule touring is perfectly resilient
    (Cor 6) — the check must sweep *all* ``2^links`` failure sets instead
    of stopping at an early counterexample.  The default ``n=10`` yields
    the benchmark's 16-link instance; ``--quick`` shrinks it.
    """
    graph = topology("maximal-outerplanar").build(n, 1)  # 2n - 3 links; drop one chord
    for u, v in sorted(graph.edges):
        if abs(u - v) not in (1, n - 1):
            graph.remove_edge(u, v)
            break
    assert graph.number_of_edges() == 2 * n - 4
    return graph


def _interleaved_best_pair(rounds: int, baseline, variant):
    """Best-of-N for two workloads with ALTERNATING runs.

    Container clock drift between back-to-back timing blocks runs ±8%,
    far above the 3% telemetry bar — timing all baseline runs before
    all variant runs folds that drift into the ratio.  Alternating
    baseline/variant within each round samples the same drift for both,
    so the minima stay comparable.
    """
    best_base = best_var = None
    result_base = result_var = None
    for _ in range(rounds):
        start = time.perf_counter()
        result_base = baseline()
        elapsed = time.perf_counter() - start
        best_base = elapsed if best_base is None else min(best_base, elapsed)
        start = time.perf_counter()
        result_var = variant()
        elapsed = time.perf_counter() - start
        best_var = elapsed if best_var is None else min(best_var, elapsed)
    return best_base, result_base, best_var, result_var


def bench_gadget(n: int = 10) -> dict:
    from repro import obs
    from repro.core.engine.vectorized import numpy_available

    graph = sixteen_link_gadget(n)
    algorithm = touring_as_destination(scheme("right-hand").instantiate())

    def engine_run():
        # a fresh session per run keeps every timing cold-cache
        return check_perfect_resilience_destination(
            graph, algorithm, destinations=[0], session=ExperimentSession()
        )

    telemetry = obs.Telemetry()  # metrics registry, no trace file

    def telemetry_run():
        with obs.installed(telemetry):
            return engine_run()

    engine_seconds, fast, telemetry_seconds, instrumented = _interleaved_best_pair(
        3, engine_run, telemetry_run
    )
    assert instrumented.resilient and instrumented.exhaustive
    assert instrumented.scenarios_checked == fast.scenarios_checked
    assert telemetry.registry.value("repro_engine_walks_total", kind="covers") > 0
    numpy_seconds = None
    if numpy_available():
        start = time.perf_counter()
        vectorized = check_perfect_resilience_destination(
            graph, algorithm, destinations=[0], session=ExperimentSession(backend="numpy")
        )
        numpy_seconds = time.perf_counter() - start
        assert vectorized.resilient and vectorized.exhaustive
        assert vectorized.scenarios_checked == fast.scenarios_checked
    start = time.perf_counter()
    slow = check_perfect_resilience_destination(
        graph, algorithm, destinations=[0], session=naive_session()
    )
    naive_seconds = time.perf_counter() - start
    assert fast.resilient and slow.resilient
    assert fast.scenarios_checked == slow.scenarios_checked
    assert fast.exhaustive and slow.exhaustive
    results = {
        "graph": f"maximal-outerplanar n={n} minus one chord",
        "links": graph.number_of_edges(),
        "failure_sets": 2 ** graph.number_of_edges(),
        "scenarios": fast.scenarios_checked,
        "naive_seconds": naive_seconds,
        "engine_seconds": engine_seconds,
        "speedup": naive_seconds / engine_seconds,
        "telemetry_seconds": telemetry_seconds,
        "telemetry_overhead": telemetry_seconds / engine_seconds,
    }
    if numpy_seconds is not None:
        # only ever recorded as real numbers: a no-numpy machine must
        # not overwrite the tracked speedup with nulls (the CI honesty
        # check reads these fields)
        results["numpy_seconds"] = numpy_seconds
        results["numpy_vs_engine_speedup"] = engine_seconds / numpy_seconds
    return results


def bench_zoo(cap: int = ZOO_TOPOLOGY_CAP) -> dict:
    """Exhaustive Cor-5 pattern verification on small zoo topologies."""
    from repro.graphs.zoo import generate_zoo

    router = scheme("tour").instantiate()
    jobs = []
    for zoo_member in generate_zoo(seed=2022):
        graph = zoo_member.graph
        if graph.number_of_edges() > 16 or graph.number_of_edges() < 6:
            continue
        destinations = [t for t in sorted(graph.nodes) if router.supports(graph, t)]
        if destinations:
            jobs.append((zoo_member.name, graph, destinations[:2]))
        if len(jobs) >= cap:
            break
    scenarios = 0
    engine_session = ExperimentSession()
    start = time.perf_counter()
    for _, graph, destinations in jobs:
        for destination in destinations:
            pattern = router.build(graph, destination)
            verdict = check_pattern_resilience(graph, pattern, destination, session=engine_session)
            assert verdict.resilient
            scenarios += verdict.scenarios_checked
    engine_seconds = time.perf_counter() - start
    start = time.perf_counter()
    for _, graph, destinations in jobs:
        for destination in destinations:
            pattern = router.build(graph, destination)
            verdict = check_pattern_resilience(
                graph, pattern, destination, session=naive_session()
            )
            assert verdict.resilient
    naive_seconds = time.perf_counter() - start
    return {
        "topologies": [name for name, _, _ in jobs],
        "patterns": sum(len(d) for _, _, d in jobs),
        "scenarios": scenarios,
        "naive_seconds": naive_seconds,
        "engine_seconds": engine_seconds,
        "speedup": naive_seconds / engine_seconds,
    }


def bench_multiword(samples: int = 400, rounds: int = 3) -> dict | None:
    """Fat-tree(8) arborescence sweep: multi-word numpy vs warm scalar.

    256 links means four 64-bit mask words — the workload the old
    single-word backend had to hand back to the scalar engine.  The
    failure-set family is bounded to ``max_failures=3`` so the pattern
    stays resilient and *both* backends sweep every set (an early
    counterexample would hand the scalar engine its early-exit win and
    measure nothing about mask walks).  Arborescence pattern
    construction dominates cold end-to-end time and is identical on
    both backends, so it is built once up front and excluded.
    """
    from repro import obs
    from repro.core.engine import mask_words
    from repro.core.engine.vectorized import numpy_available
    from repro.core.resilience import sampled_failure_sets
    from repro.experiments.registry import resolve_topology

    if not numpy_available():
        return None
    graph = resolve_topology("fattree(8)")
    links = graph.number_of_edges()
    assert links > 64, "the workload must live past the single-word ceiling"
    destination = sorted(graph.nodes, key=repr)[0]
    pattern = scheme("arborescence").instantiate().build(graph, destination)
    failure_sets = list(sampled_failure_sets(graph, samples=samples, max_failures=3, seed=0))

    scalar_session = ExperimentSession(backend="engine")
    numpy_session = ExperimentSession(backend="numpy")
    telemetry = obs.Telemetry()

    def scalar_run():
        return check_pattern_resilience(
            graph, pattern, destination, failure_sets=failure_sets, session=scalar_session
        )

    def numpy_run():
        with obs.installed(telemetry):
            return check_pattern_resilience(
                graph, pattern, destination, failure_sets=failure_sets, session=numpy_session
            )

    # warm both sessions' per-graph state so the timing isolates the sweep
    scalar_run()
    numpy_run()
    scalar_seconds, scalar_verdict, numpy_seconds, numpy_verdict = _interleaved_best_pair(
        rounds, scalar_run, numpy_run
    )
    assert scalar_verdict.resilient and numpy_verdict.resilient
    assert scalar_verdict.exhaustive == numpy_verdict.exhaustive
    assert scalar_verdict.scenarios_checked == numpy_verdict.scenarios_checked
    # a fallback would mean the "numpy" timing silently ran scalar code
    assert "repro_numpy_fallbacks_total" not in telemetry.registry.families()
    assert telemetry.registry.value("repro_numpy_chunks_total") > 0
    return {
        "graph": "fattree(8)",
        "links": links,
        "mask_words": mask_words(links),
        "failure_sets": len(failure_sets),
        "scenarios": numpy_verdict.scenarios_checked,
        "scalar_seconds": scalar_seconds,
        "numpy_seconds": numpy_seconds,
        "numpy_vs_scalar_speedup": scalar_seconds / numpy_seconds,
    }


def bench_parallel_grid(processes: int = 2) -> dict:
    """Warm-worker ``run_grid`` fan-out vs the serial loop.

    Byte-identity (records compared with ``runtime_seconds`` zeroed —
    wall clock is the only legal diff) is asserted unconditionally.
    The speedup ratio is only recorded on real multi-core hosts.
    """
    grid_kwargs = dict(
        topologies=["ring(12)"],
        schemes=["arborescence", "greedy"],
        failure_models=[FailureModel(sizes=(0, 1, 2), samples=3, seed=0)],
    )
    start = time.perf_counter()
    serial = run_grid(session=ExperimentSession(), **grid_kwargs)
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_grid(
        session=ExperimentSession(processes=processes), **grid_kwargs
    )
    parallel_seconds = time.perf_counter() - start

    def normalized(result):
        dicts = []
        for record in result.records:
            data = record.to_dict()
            data["runtime_seconds"] = 0.0  # wall clock is the only legal diff
            dicts.append(data)
        return dicts

    byte_identical = normalized(serial) == normalized(parallel)
    assert byte_identical, "parallel run_grid must stitch serial-identical records"
    results = {
        "grid": "ring(12) x [arborescence, greedy] x random(sizes=0/1/2,samples=3,seed=0)",
        "cells": len(serial.records),
        "processes": processes,
        "cpu_count": os.cpu_count(),
        "byte_identical": byte_identical,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
    }
    if (os.cpu_count() or 1) > 1:
        results["parallel_speedup"] = serial_seconds / parallel_seconds
    return results


def bench_sampled(samples: int = 400) -> dict:
    """Sampled estimation vs exhaustive enumeration of the same truth.

    The workload ``repro.failures`` exists for: arborescence routing on
    grid(3,3) under iid link failures (p = 0.15) sits mid-range
    (P[delivered] ~ 0.66), so the exact probability takes a full
    2^12-subset weighted enumeration while the Monte-Carlo estimator
    reaches a Wilson-bounded answer from ``samples`` draws.  Honesty is
    part of the workload: the estimate's 95% CI must bracket the
    enumerated truth, otherwise the speedup measures a wrong answer.
    """
    import itertools

    from repro.experiments.registry import resolve_topology
    from repro.failures import IIDModel, MaskEvaluator, estimate_resilience
    from repro.failures.models import canonical_links

    graph = resolve_topology("grid(3,3)")
    algorithm = scheme("arborescence").instantiate()
    model = IIDModel(p=0.15, samples=samples, seed=0)
    links = canonical_links(graph)

    evaluator = MaskEvaluator(graph, algorithm, session=ExperimentSession())
    start = time.perf_counter()
    truth = 0.0
    for size in range(len(links) + 1):
        weight = model.p**size * (1.0 - model.p) ** (len(links) - size)
        for combo in itertools.combinations(links, size):
            ok, _ = evaluator.delivered(frozenset(combo))
            if ok:
                truth += weight
    exhaustive_seconds = time.perf_counter() - start

    start = time.perf_counter()
    estimate = estimate_resilience(graph, algorithm, model, session=ExperimentSession())
    sampled_seconds = time.perf_counter() - start
    assert estimate.exhaustive and estimate.samples == samples
    assert (
        estimate.ci_low <= truth <= estimate.ci_high
    ), f"CI [{estimate.ci_low}, {estimate.ci_high}] misses enumerated truth {truth}"
    return {
        "graph": "grid(3,3)",
        "model": model.label,
        "subsets_enumerated": 2 ** len(links),
        "samples": estimate.samples,
        "truth": truth,
        "estimate": estimate.estimate,
        "ci_low": estimate.ci_low,
        "ci_high": estimate.ci_high,
        "ci_brackets_truth": True,
        "exhaustive_seconds": exhaustive_seconds,
        "sampled_seconds": sampled_seconds,
        "speedup": exhaustive_seconds / sampled_seconds,
    }


def bench_store() -> ResultStore:
    """The shared cross-PR performance record (both benches merge here)."""
    return ResultStore(BENCH_JSON)


def run_benchmark(quick: bool = False, deadline_seconds: float | None = None) -> dict:
    from repro.runtime import Deadline

    deadline = Deadline(deadline_seconds) if deadline_seconds is not None else None
    gadget = bench_gadget(n=8 if quick else 10)
    # workloads are the deadline's units here: once the budget is spent,
    # every remaining workload is skipped whole, never truncated
    partial = False
    zoo = multiword = parallel_grid = sampled = None
    if deadline is not None and deadline.expired():
        partial = True
    else:
        zoo = bench_zoo(cap=2 if quick else ZOO_TOPOLOGY_CAP)
    if not partial:
        if deadline is not None and deadline.expired():
            partial = True
        else:
            multiword = bench_multiword(
                samples=120 if quick else 400, rounds=1 if quick else 3
            )
    if not partial:
        if deadline is not None and deadline.expired():
            partial = True
        else:
            parallel_grid = bench_parallel_grid()
    if not partial:
        if deadline is not None and deadline.expired():
            partial = True
        else:
            sampled = bench_sampled(samples=120 if quick else 400)
    results = {
        "benchmark": "engine_speedup",
        "cpu_count": os.cpu_count(),
        "thresholds": {
            "gadget_min_speedup": GADGET_MIN_SPEEDUP,
            "numpy_min_speedup": NUMPY_MIN_SPEEDUP,
            "multiword_min_speedup": MULTIWORD_MIN_SPEEDUP,
            "telemetry_max_overhead": TELEMETRY_MAX_OVERHEAD,
            "sampled_min_speedup": SAMPLED_MIN_SPEEDUP,
        },
        "gadget": gadget,
        "zoo": zoo,
        "multiword": multiword,
        "parallel_grid": parallel_grid,
        "sampled": sampled,
    }
    if partial:
        results["partial"] = True
        # deadline-cut runs never masquerade as the tracked full record
        print("deadline cut the benchmark: partial results, skipping BENCH merge")
        return results
    if not quick:
        # --quick is a CI smoke on a smaller workload: never let its
        # numbers masquerade as the tracked full-benchmark record.
        # The store merges: top-level sections by key, records by
        # (experiment, topology, scheme, failure model) identity.
        store = bench_store()
        store.merge_raw(results)
        store.merge(
            [
                ExperimentRecord(
                    experiment="bench_engine_speedup",
                    topology=gadget["graph"],
                    scheme="tour (as destination)",
                    failure_model="exhaustive",
                    metrics={
                        "speedup": gadget["speedup"],
                        "naive_seconds": gadget["naive_seconds"],
                        "engine_seconds": gadget["engine_seconds"],
                        "telemetry_seconds": gadget["telemetry_seconds"],
                        "telemetry_overhead": gadget["telemetry_overhead"],
                        "scenarios": gadget["scenarios"],
                    },
                    runtime_seconds=gadget["naive_seconds"] + gadget["engine_seconds"],
                ),
                ExperimentRecord(
                    experiment="bench_engine_speedup",
                    topology="zoo-small-slice",
                    scheme="tour",
                    failure_model="exhaustive",
                    metrics={
                        "speedup": zoo["speedup"],
                        "naive_seconds": zoo["naive_seconds"],
                        "engine_seconds": zoo["engine_seconds"],
                        "scenarios": zoo["scenarios"],
                    },
                    runtime_seconds=zoo["naive_seconds"] + zoo["engine_seconds"],
                ),
            ]
        )
        if gadget.get("numpy_seconds") is not None:
            store.merge(
                [
                    ExperimentRecord(
                        experiment="bench_numpy_backend",
                        topology=gadget["graph"],
                        scheme="tour (as destination)",
                        failure_model="exhaustive",
                        metrics={
                            "numpy_vs_engine_speedup": gadget["numpy_vs_engine_speedup"],
                            "numpy_seconds": gadget["numpy_seconds"],
                            "engine_seconds": gadget["engine_seconds"],
                            "scenarios": gadget["scenarios"],
                        },
                        params={"backend": "numpy"},
                        runtime_seconds=gadget["numpy_seconds"],
                    )
                ]
            )
        if multiword is not None:
            store.merge(
                [
                    ExperimentRecord(
                        experiment="bench_multiword_masks",
                        topology=multiword["graph"],
                        scheme="arborescence",
                        failure_model="random(max_failures=3,samples=400,seed=0)",
                        metrics={
                            "numpy_vs_scalar_speedup": multiword["numpy_vs_scalar_speedup"],
                            "scalar_seconds": multiword["scalar_seconds"],
                            "numpy_seconds": multiword["numpy_seconds"],
                            "links": multiword["links"],
                            "mask_words": multiword["mask_words"],
                            "scenarios": multiword["scenarios"],
                        },
                        params={"backend": "numpy"},
                        runtime_seconds=multiword["scalar_seconds"]
                        + multiword["numpy_seconds"],
                    )
                ]
            )
        if sampled is not None:
            store.merge(
                [
                    ExperimentRecord(
                        experiment="bench_sampled_estimate",
                        topology=sampled["graph"],
                        scheme="arborescence",
                        failure_model=sampled["model"],
                        metrics={
                            "speedup": sampled["speedup"],
                            "exhaustive_seconds": sampled["exhaustive_seconds"],
                            "sampled_seconds": sampled["sampled_seconds"],
                            "truth": sampled["truth"],
                            "estimate": sampled["estimate"],
                            "ci_low": sampled["ci_low"],
                            "ci_high": sampled["ci_high"],
                            "ci_brackets_truth": sampled["ci_brackets_truth"],
                            "samples": sampled["samples"],
                        },
                        runtime_seconds=sampled["exhaustive_seconds"]
                        + sampled["sampled_seconds"],
                    )
                ]
            )
        if parallel_grid is not None:
            grid_metrics = {
                "byte_identical": parallel_grid["byte_identical"],
                "cells": parallel_grid["cells"],
                "serial_seconds": parallel_grid["serial_seconds"],
                "parallel_seconds": parallel_grid["parallel_seconds"],
            }
            if "parallel_speedup" in parallel_grid:
                grid_metrics["parallel_speedup"] = parallel_grid["parallel_speedup"]
            store.merge(
                [
                    ExperimentRecord(
                        experiment="bench_parallel_grid",
                        topology="ring(12)",
                        scheme="arborescence+greedy",
                        failure_model="random(sizes=0/1/2,samples=3,seed=0)",
                        metrics=grid_metrics,
                        params={
                            "processes": parallel_grid["processes"],
                            "cpu_count": parallel_grid["cpu_count"],
                        },
                        runtime_seconds=parallel_grid["serial_seconds"]
                        + parallel_grid["parallel_seconds"],
                    )
                ]
            )
    return results


def format_report(results: dict) -> str:
    gadget = results["gadget"]
    rows = [
        [
            name,
            f"{results[name]['scenarios']:,}",
            f"{results[name]['naive_seconds']:.2f}",
            f"{results[name]['engine_seconds']:.2f}",
            f"{results[name]['speedup']:.1f}x",
        ]
        if results.get(name) is not None
        else [name, "-", "-", "-", "- (deadline cut)"]
        for name in ("gadget", "zoo")
    ]
    if gadget.get("numpy_seconds") is not None:
        numpy_line = (
            f"numpy backend on the gadget sweep: {gadget['numpy_seconds']:.2f} s, "
            f"{gadget['numpy_vs_engine_speedup']:.1f}x over the scalar engine "
            f"(bar: >= {NUMPY_MIN_SPEEDUP:.0f}x)\n"
        )
    else:
        numpy_line = "numpy backend: not installed (scalar engine only)\n"
    numpy_line += (
        f"telemetry-on gadget sweep: {gadget['telemetry_seconds']:.2f} s, "
        f"{(gadget['telemetry_overhead'] - 1) * 100:+.1f}% vs telemetry-off "
        f"(bar: <= {(TELEMETRY_MAX_OVERHEAD - 1) * 100:.0f}%)\n"
    )
    multiword = results.get("multiword")
    if multiword is not None:
        numpy_line += (
            f"multi-word masks on {multiword['graph']} "
            f"({multiword['links']} links, {multiword['mask_words']} words): "
            f"scalar {multiword['scalar_seconds']:.2f} s, "
            f"numpy {multiword['numpy_seconds']:.2f} s, "
            f"{multiword['numpy_vs_scalar_speedup']:.1f}x "
            f"(bar: >= {MULTIWORD_MIN_SPEEDUP:.1f}x)\n"
        )
    sampled = results.get("sampled")
    if sampled is not None:
        numpy_line += (
            f"sampled estimate on {sampled['graph']} ({sampled['model']}): "
            f"{sampled['estimate']:.3f} [{sampled['ci_low']:.3f}, "
            f"{sampled['ci_high']:.3f}] brackets enumerated truth "
            f"{sampled['truth']:.3f}; {sampled['sampled_seconds']:.3f} s vs "
            f"{sampled['exhaustive_seconds']:.3f} s exhaustive, "
            f"{sampled['speedup']:.1f}x (bar: >= {SAMPLED_MIN_SPEEDUP:.1f}x)\n"
        )
    parallel_grid = results.get("parallel_grid")
    if parallel_grid is not None:
        scaling = (
            f"{parallel_grid['parallel_speedup']:.2f}x over serial"
            if "parallel_speedup" in parallel_grid
            else f"scaling not recorded ({parallel_grid['cpu_count']} core)"
        )
        numpy_line += (
            f"parallel run_grid ({parallel_grid['cells']} cells, "
            f"processes={parallel_grid['processes']}): byte-identical to "
            f"serial; {scaling}\n"
        )
    return (
        "Engine speedup: naive simulator vs indexed+memoized engine\n"
        f"(gadget = exhaustive {gadget['links']}-link destination check; "
        f"bar: >= {GADGET_MIN_SPEEDUP:.0f}x)\n"
        + numpy_line
        + simple_table(["workload", "scenarios", "naive s", "engine s", "speedup"], rows)
    )


def test_engine_speedup(report):
    results = run_benchmark()
    report("engine_speedup", format_report(results))
    assert results["gadget"]["speedup"] >= GADGET_MIN_SPEEDUP, results["gadget"]
    # zoo verification must never get slower than the naive path
    assert results["zoo"]["speedup"] >= 1.0, results["zoo"]
    assert (
        results["gadget"]["telemetry_overhead"] <= TELEMETRY_MAX_OVERHEAD
    ), results["gadget"]
    if results["gadget"].get("numpy_seconds") is not None:
        assert (
            results["gadget"]["numpy_vs_engine_speedup"] >= NUMPY_MIN_SPEEDUP
        ), results["gadget"]
    if results.get("multiword") is not None:
        assert (
            results["multiword"]["numpy_vs_scalar_speedup"] >= MULTIWORD_MIN_SPEEDUP
        ), results["multiword"]
    if results.get("parallel_grid") is not None:
        assert results["parallel_grid"]["byte_identical"], results["parallel_grid"]
    if results.get("sampled") is not None:
        assert results["sampled"]["ci_brackets_truth"], results["sampled"]
        assert results["sampled"]["speedup"] >= SAMPLED_MIN_SPEEDUP, results["sampled"]


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: smaller gadget and zoo slice, no BENCH_engine.json write",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="skip workloads once this many seconds have elapsed; partial "
        "results are reported but never merged into BENCH_engine.json",
    )
    cli_args = parser.parse_args()
    results = run_benchmark(quick=cli_args.quick, deadline_seconds=cli_args.deadline)
    print(format_report(results))
    if not cli_args.quick and not results.get("partial"):
        print(f"machine-readable results: {BENCH_JSON}")
