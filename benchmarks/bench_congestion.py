"""Congestion benchmark: batched multi-flow router vs per-packet routing.

The traffic subsystem's pitch is that routing a whole matrix through a
static pattern costs one functional-graph pass per failure mask instead
of one simulated walk per flow.  This benchmark measures that on the
2021 congestion paper's setting — ``fat_tree(4)`` under incast
(all-to-one) and permutation matrices across a sampled failure grid —
and verifies, per scenario, that both routers report *identical* link
loads (the benchmark doubles as a large differential test).

Results merge into ``BENCH_engine.json`` under the ``congestion`` key
(the engine-speedup benchmark owns the other keys).  Runnable
standalone::

    PYTHONPATH=src python benchmarks/bench_congestion.py [--quick]
"""

from __future__ import annotations

import os
import time

from bench_engine_speedup import BENCH_JSON, bench_store

from repro.analysis import simple_table
from repro.experiments import ExperimentRecord, FailureModel, scheme, topology
from repro.traffic import (
    TrafficEngine,
    all_to_one,
    per_packet_loads,
    permutation,
    sample_failure_grid,
)

#: the batched router must never be slower than per-packet routing
MIN_SPEEDUP = 1.0


def run_benchmark(quick: bool = False, deadline_seconds: float | None = None) -> dict:
    # resolved via the topology registry — no private family switch here
    graph = topology("fattree").build(4)
    sink = ("core", 0)
    matrices = {
        "all-to-one(core0)": all_to_one(graph, sink),
        "permutation": permutation(graph, seed=1),
    }
    sizes = [0, 2] if quick else [0, 1, 2, 4, 8]
    samples = 3 if quick else 25
    grid = sample_failure_grid(graph, sizes, samples, seed=0)
    scenario_sets = [failures for size in sorted(grid) for failures in grid[size]]

    from repro.core.engine.vectorized import numpy_available
    from repro.runtime import Deadline

    deadline = Deadline(deadline_seconds) if deadline_seconds is not None else None
    partial = False
    algorithm = scheme("arborescence").instantiate()
    workloads = {}
    for name, demands in matrices.items():
        engine = TrafficEngine(graph, algorithm)
        start = time.perf_counter()
        # scalar backend: load_sweep is exactly the per-failure-set
        # engine.load loop, plus the clean deadline cut between sets
        batched = engine.load_sweep(demands, scenario_sets, deadline=deadline)
        batched_seconds = time.perf_counter() - start
        # a deadline cut yields a prefix; compare routers on what ran
        covered = scenario_sets[: len(batched)]
        if len(covered) < len(scenario_sets):
            partial = True
        if not covered:
            workloads[name] = {"partial": True, "scenarios": 0}
            continue
        numpy_seconds = None
        if numpy_available():
            vectorized = TrafficEngine(graph, algorithm, backend="numpy")
            start = time.perf_counter()
            numpy_reports = vectorized.load_sweep(demands, covered)
            numpy_seconds = time.perf_counter() - start
            for fast, slow in zip(numpy_reports, batched):
                assert fast.loads == slow.loads, "numpy router diverged from batched loads"
        # telemetry-on rerun of the batched sweep: identical loads, and
        # the overhead ratio is tracked in BENCH_engine.json
        from repro import obs

        telemetry = obs.Telemetry()  # metrics registry, no trace file
        with obs.installed(telemetry):
            start = time.perf_counter()
            instrumented = TrafficEngine(graph, algorithm).load_sweep(demands, covered)
            telemetry_seconds = time.perf_counter() - start
        for fast, slow in zip(instrumented, batched):
            assert fast.loads == slow.loads, "telemetry changed batched loads"
        assert telemetry.registry.value("repro_traffic_load_reports_total") == len(covered)
        start = time.perf_counter()
        naive = [
            per_packet_loads(graph, algorithm, demands, failures)
            for failures in covered
        ]
        per_packet_seconds = time.perf_counter() - start
        for fast, slow in zip(batched, naive):
            assert fast.loads == slow.loads, "batched router diverged from per-packet loads"
        workloads[name] = {
            "demands": len(demands),
            "scenarios": len(covered),
            "flows_routed": len(demands) * len(covered),
            "per_packet_seconds": per_packet_seconds,
            "batched_seconds": batched_seconds,
            "speedup": per_packet_seconds / batched_seconds,
            "telemetry_seconds": telemetry_seconds,
            "telemetry_overhead": telemetry_seconds / batched_seconds,
            "worst_max_load": max(report.max_load for report in batched),
            "min_delivered_fraction": min(report.delivered_fraction for report in batched),
        }
        if len(covered) < len(scenario_sets):
            workloads[name]["partial"] = True
        if numpy_seconds is not None:
            # never overwrite tracked numbers with nulls on no-numpy hosts
            workloads[name]["numpy_seconds"] = numpy_seconds
            workloads[name]["numpy_speedup"] = per_packet_seconds / numpy_seconds
    results = {
        "benchmark": "congestion",
        "graph": "fattree(4)",
        "algorithm": algorithm.name,
        "cpu_count": os.cpu_count(),
        "thresholds": {"min_speedup": MIN_SPEEDUP},
        "workloads": workloads,
    }
    if partial:
        results["partial"] = True
    if not quick and partial:
        # deadline-cut numbers are not comparable across runs: report
        # them, but never merge them over the tracked full-run results
        print("deadline cut the sweep: partial results, skipping BENCH merge")
    if not quick and not partial:
        store = bench_store()
        store.merge_raw({"congestion": results})
        store.merge(
            [
                ExperimentRecord(
                    experiment="bench_congestion",
                    topology="fattree(4)",
                    scheme="arborescence",
                    # shared label source: merge identity must match grid records
                    failure_model=FailureModel(sizes=tuple(sizes), samples=samples, seed=0).label,
                    metrics={
                        "speedup": data["speedup"],
                        "per_packet_seconds": data["per_packet_seconds"],
                        "batched_seconds": data["batched_seconds"],
                        "telemetry_seconds": data["telemetry_seconds"],
                        "telemetry_overhead": data["telemetry_overhead"],
                        "flows_routed": data["flows_routed"],
                        "worst_max_load": data["worst_max_load"],
                        **{
                            key: data[key]
                            for key in ("numpy_seconds", "numpy_speedup")
                            if key in data
                        },
                    },
                    params={"matrix": name},
                    runtime_seconds=data["per_packet_seconds"] + data["batched_seconds"],
                )
                for name, data in workloads.items()
            ]
        )
    return results


def format_report(results: dict) -> str:
    rows = [
        [
            name,
            data.get("flows_routed", "-"),
            f"{data['per_packet_seconds']:.2f}" if "per_packet_seconds" in data else "-",
            f"{data['batched_seconds']:.2f}" if "batched_seconds" in data else "-",
            f"{data['numpy_seconds']:.2f}" if data.get("numpy_seconds") else "-",
            f"{data['speedup']:.1f}x" if "speedup" in data else "-",
            data.get("worst_max_load", "-"),
        ]
        for name, data in results["workloads"].items()
    ]
    return (
        f"Congestion: batched multi-flow router vs per-packet walks on {results['graph']}\n"
        f"(algorithm: {results['algorithm']}; loads verified identical per scenario, "
        f"numpy load_sweep included when installed)\n"
        + simple_table(
            ["matrix", "flows", "per-packet s", "batched s", "numpy s", "speedup",
             "worst max load"],
            rows,
        )
    )


def test_congestion_speedup(report):
    results = run_benchmark()
    report("congestion", format_report(results))
    for name, data in results["workloads"].items():
        assert data["speedup"] >= MIN_SPEEDUP, (name, data)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: fewer scenarios, no BENCH_engine.json write",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop the sweep cleanly after this many seconds; partial "
        "results are reported but never merged into BENCH_engine.json",
    )
    cli_args = parser.parse_args()
    results = run_benchmark(quick=cli_args.quick, deadline_seconds=cli_args.deadline)
    print(format_report(results))
    if not cli_args.quick and not results.get("partial"):
        print(f"machine-readable results: {BENCH_JSON}")
