"""Fig. 2 — the two-rail cut example: 2-connected yet locally unroutable.

On the Fig. 2 graph the adversary searches for a failure set that keeps s
and t 2-connected while the pattern loops — the paper's illustration that
cut-crossing decisions cannot be coordinated locally.
"""

from repro.analysis import simple_table
from repro.core.adversary import exhaustive_attack
from repro.core.algorithms import GreedyLowestNeighbor, RandomCyclicPermutations
from repro.core.model import destination_as_source_destination
from repro.graphs import construct
from repro.graphs.connectivity import st_edge_connectivity


def test_fig2_two_rail_cut(benchmark, report):
    graph = construct.fig2_two_rail(3)
    patterns = [
        RandomCyclicPermutations(seed=0),
        RandomCyclicPermutations(seed=4),
        destination_as_source_destination(GreedyLowestNeighbor()),
    ]
    rows = []

    def attack_all():
        rows.clear()
        for algorithm in patterns:
            pattern = algorithm.build(graph, "s", "t")
            witness = exhaustive_attack(graph, pattern, "s", "t", min_connectivity=2)
            if witness is None:
                rows.append([algorithm.name, "-", "-", "survives 2-connected promise"])
            else:
                connectivity = st_edge_connectivity(graph, "s", "t", witness.failures)
                rows.append(
                    [algorithm.name, len(witness.failures), connectivity, sorted(witness.failures)]
                )
        return rows

    benchmark.pedantic(attack_all, rounds=1, iterations=1)
    report(
        "fig2_two_rail",
        "Fig. 2 — local rules vs a surviving 2-connected cut\n"
        + simple_table(["pattern", "|F|", "st-conn after F", "witness"], rows),
    )
    # at least the naive patterns must be defeated despite 2-connectivity
    assert any(row[1] != "-" for row in rows)
