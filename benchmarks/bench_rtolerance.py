"""§III / Table I row 1 — the price of locality: r-tolerance.

Negative side (Thm 1): on ``K_{3+5r}`` the constructive adversary defeats
every library pattern while keeping s and t r-connected.
Positive side (Thms 3, 5): ``K_{2r+1}`` and ``K_{2r-1,2r-1}`` are
r-tolerant via distance-2/3 exploration.
"""

import pytest

from repro.analysis import simple_table
from repro.core.adversary import attack_r_tolerance
from repro.core.algorithms import (
    Distance2Algorithm,
    Distance3BipartiteAlgorithm,
    RandomCyclicPermutations,
)
from repro.core.resilience import check_r_tolerance, sampled_failure_sets
from repro.graphs import construct
from repro.graphs.connectivity import st_edge_connectivity

ATTACKED = [Distance2Algorithm(), RandomCyclicPermutations(seed=1), RandomCyclicPermutations(seed=5)]


def test_theorem1_impossibility(benchmark, report):
    rows = []

    def attack_all():
        rows.clear()
        for r in (1, 2):
            n = 3 + 5 * r
            graph = construct.complete_graph(n)
            for algorithm in ATTACKED:
                result = attack_r_tolerance(graph, algorithm, 0, n - 1, r=r)
                connectivity = st_edge_connectivity(graph, 0, n - 1, result.failures)
                rows.append(
                    [f"K{n}", r, algorithm.name, len(result.failures), connectivity, result.method]
                )
        return rows

    benchmark.pedantic(attack_all, rounds=1, iterations=1)
    report(
        "table1_rtolerance_impossible",
        "Theorem 1: no pattern is r-tolerant on K_{3+5r} (adversary witnesses)\n"
        + simple_table(["graph", "r", "pattern", "|F|", "st-conn after F", "method"], rows),
    )
    for row in rows:
        assert row[4] >= row[1]  # the r-connectivity promise held


@pytest.mark.parametrize("r", [1, 2, 3])
def test_theorem3_possibility(benchmark, r, report):
    graph = construct.complete_graph(2 * r + 1)

    def check():
        if graph.number_of_edges() <= 17:
            return check_r_tolerance(graph, Distance2Algorithm(), 0, 2 * r, r=r)
        return check_r_tolerance(
            graph,
            Distance2Algorithm(),
            0,
            2 * r,
            r=r,
            failure_sets=sampled_failure_sets(graph, samples=600, seed=1),
        )

    verdict = benchmark.pedantic(check, rounds=1, iterations=1)
    assert verdict.resilient, str(verdict.counterexample)
    report(
        f"table1_k{2*r+1}_is_{r}tolerant",
        f"Theorem 3: K_{{{2*r+1}}} is {r}-tolerant "
        f"({verdict.scenarios_checked} promise scenarios checked, "
        f"{'exhaustive' if verdict.exhaustive else 'sampled'})",
    )


@pytest.mark.parametrize("r", [1, 2])
def test_theorem5_possibility(benchmark, r, report):
    n = 2 * r - 1 if r > 1 else 1
    graph = construct.complete_bipartite(max(n, 1), max(n, 1))

    def check():
        verdicts = []
        for t in (n, 1) if graph.number_of_nodes() > 2 else (1,):
            verdicts.append(
                check_r_tolerance(graph, Distance3BipartiteAlgorithm(), 0, t, r=r)
            )
        return verdicts

    verdicts = benchmark.pedantic(check, rounds=1, iterations=1)
    assert all(v.resilient for v in verdicts)
    report(
        f"table1_k{n}{n}_is_{r}tolerant",
        f"Theorem 5: K_{{{n},{n}}} is {r}-tolerant "
        f"({sum(v.scenarios_checked for v in verdicts)} promise scenarios)",
    )
