"""Fig. 9 — the feasibility landscape by graph family and routing model.

Regenerates the matrix: for each density step (K1..K7, K2,3, K3,3, K4,4
and the one-link-less variants at the frontiers) and each routing model,
whether perfect resilience is possible — determined by running the
library's positive algorithms (exhaustively verified) and adversaries.
"""

from repro.analysis import simple_table
from repro.core.adversary import attack_k44, attack_k7
from repro.core.algorithms import (
    Distance2Algorithm,
    K33Minus2Routing,
    K33SourceRouting,
    K5Minus2Routing,
    K5SourceRouting,
    RightHandTouring,
)
from repro.core.resilience import (
    check_perfect_resilience_destination,
    check_perfect_resilience_source_destination,
    check_perfect_touring,
)
from repro.graphs import construct
from repro.graphs.planarity import is_outerplanar


def _touring_cell(graph):
    if is_outerplanar(graph):
        verdict = check_perfect_touring(graph, RightHandTouring())
        return "possible" if verdict.resilient else "BUG"
    return "impossible"


def _destination_cell(graph):
    for algorithm in (K5Minus2Routing(), K33Minus2Routing()):
        try:
            verdict = check_perfect_resilience_destination(graph, algorithm)
        except ValueError:
            continue
        if verdict.resilient:
            return "possible"
    return "impossible (Thm 10/11 frontier)"


def _source_destination_cell(graph, name):
    for algorithm in (K5SourceRouting(), K33SourceRouting()):
        supported = True
        try:
            verdict = check_perfect_resilience_source_destination(graph, algorithm)
        except ValueError:
            supported = False
        if supported and verdict.resilient:
            return "possible"
    # frontier graphs: show the adversary wins
    if name.startswith("K7"):
        result = attack_k7(graph, Distance2Algorithm(), 0, max(graph.nodes))
        return f"impossible (|F|={len(result.failures)})"
    if name.startswith("K4,4"):
        result = attack_k44(graph, Distance2Algorithm(), 0, 4)
        return f"impossible (|F|={len(result.failures)})"
    return "open band (K6 territory)"


def test_fig9_matrix(benchmark, report):
    families = [
        ("K3", construct.complete_graph(3)),
        ("K4", construct.complete_graph(4)),
        ("K2,3", construct.complete_bipartite(2, 3)),
        ("K5^-2", construct.k_minus(5, 2)),
        ("K3,3^-2", construct.k_bipartite_minus(3, 3, 2)),
        ("K5^-1", construct.k_minus(5, 1)),
        ("K3,3^-1", construct.k_bipartite_minus(3, 3, 1)),
        ("K5", construct.complete_graph(5)),
        ("K3,3", construct.complete_bipartite(3, 3)),
        ("K7^-1", construct.k_minus(7, 1)),
        ("K4,4^-1", construct.k_bipartite_minus(4, 4, 1)),
        ("K7", construct.complete_graph(7)),
        ("K4,4", construct.complete_bipartite(4, 4)),
    ]

    def build_matrix():
        rows = []
        for name, graph in families:
            touring = _touring_cell(graph)
            destination = _destination_cell(graph)
            source_destination = _source_destination_cell(graph, name)
            rows.append([name, touring, destination, source_destination])
        return rows

    rows = benchmark.pedantic(build_matrix, rounds=1, iterations=1)
    report(
        "fig9_feasibility_matrix",
        "Fig. 9 — feasibility by family and routing model (empirical)\n"
        + simple_table(["graph", "touring", "destination only", "source-destination"], rows),
    )
    matrix = {row[0]: row for row in rows}
    # the paper's frontiers
    assert matrix["K3"][1] == "possible" and matrix["K4"][1] == "impossible"
    assert matrix["K5^-2"][2] == "possible" and matrix["K5^-1"][2].startswith("impossible")
    assert matrix["K3,3^-2"][2] == "possible" and matrix["K3,3^-1"][2].startswith("impossible")
    assert matrix["K5"][3] == "possible" and matrix["K3,3"][3] == "possible"
    assert matrix["K7"][3].startswith("impossible")
    assert matrix["K4,4"][3].startswith("impossible")
