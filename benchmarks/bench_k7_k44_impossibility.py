"""§IV / Figs 3 & 10 — impossibility on K7 and K4,4 (Thms 6, 7; Cors 3, 4).

The adversaries break every library pattern within the paper's failure
budgets: 15 failures on K7, 11 on K4,4, s and t still connected.
"""

from repro.analysis import simple_table
from repro.core.adversary import (
    K44_FAILURE_BUDGET,
    K7_FAILURE_BUDGET,
    attack_k44,
    attack_k7,
)
from repro.core.algorithms import (
    Distance2Algorithm,
    Distance3BipartiteAlgorithm,
    GreedyLowestNeighbor,
    RandomCyclicPermutations,
)
from repro.core.model import destination_as_source_destination
from repro.graphs import construct
from repro.graphs.connectivity import are_connected

K7_PATTERNS = [
    Distance2Algorithm(),
    RandomCyclicPermutations(seed=2),
    RandomCyclicPermutations(seed=9),
    destination_as_source_destination(GreedyLowestNeighbor()),
]
K44_PATTERNS = [
    Distance2Algorithm(),
    Distance3BipartiteAlgorithm(),
    RandomCyclicPermutations(seed=5),
    destination_as_source_destination(GreedyLowestNeighbor()),
]


def test_corollary3_k7(benchmark, report):
    graphs = {
        "K7": construct.complete_graph(7),
        "K7^-1": construct.minus_links(construct.complete_graph(7), [(0, 6)]),
    }
    rows = []

    def attack_all():
        rows.clear()
        for name, graph in graphs.items():
            for algorithm in K7_PATTERNS:
                result = attack_k7(graph, algorithm, 0, 6)
                rows.append([name, algorithm.name, len(result.failures),
                             are_connected(graph, 0, 6, result.failures)])
        return rows

    benchmark.pedantic(attack_all, rounds=1, iterations=1)
    report(
        "cor3_k7_impossibility",
        f"Corollary 3: every pattern on K7 broken with <= {K7_FAILURE_BUDGET} failures\n"
        + simple_table(["graph", "pattern", "|F|", "s-t connected"], rows),
    )
    for name, _, size, connected in rows:
        assert connected
        if name == "K7":
            assert size <= K7_FAILURE_BUDGET


def test_corollary4_k44(benchmark, report):
    graphs = {
        "K4,4": construct.complete_bipartite(4, 4),
        "K4,4^-1": construct.minus_links(construct.complete_bipartite(4, 4), [(0, 4)]),
    }
    rows = []

    def attack_all():
        rows.clear()
        for name, graph in graphs.items():
            for algorithm in K44_PATTERNS:
                result = attack_k44(graph, algorithm, 0, 4)
                rows.append([name, algorithm.name, len(result.failures),
                             are_connected(graph, 0, 4, result.failures)])
        return rows

    benchmark.pedantic(attack_all, rounds=1, iterations=1)
    report(
        "cor4_k44_impossibility",
        f"Corollary 4: every pattern on K4,4 broken with <= {K44_FAILURE_BUDGET} failures\n"
        + simple_table(["graph", "pattern", "|F|", "s-t connected"], rows),
    )
    for name, _, size, connected in rows:
        assert connected
        if name == "K4,4":
            assert size <= K44_FAILURE_BUDGET
