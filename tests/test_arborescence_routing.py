"""The Chiesa-style circular arborescence baseline (ideal resilience)."""

import pytest

from repro.core.algorithms import ArborescenceRouting
from repro.core.resilience import all_failure_sets, check_pattern_resilience
from repro.core.simulator import Network, route
from repro.graphs import construct
from repro.graphs.connectivity import are_connected


class TestFailureFree:
    @pytest.mark.parametrize(
        "builder,destination",
        [
            (lambda: construct.complete_graph(5), 0),
            (lambda: construct.complete_bipartite(3, 3), 4),
            (lambda: construct.grid_graph(3, 3), 8),
        ],
    )
    def test_delivers_without_failures(self, builder, destination):
        graph = builder()
        pattern = ArborescenceRouting().build(graph, destination)
        network = Network(graph)
        for source in graph.nodes:
            if source == destination:
                continue
            assert route(network, pattern, source, destination).delivered


class TestSingleFailure:
    def test_k5_survives_any_single_failure(self):
        graph = construct.complete_graph(5)
        pattern = ArborescenceRouting().build(graph, 4)
        verdict = check_pattern_resilience(
            graph, pattern, 4, failure_sets=all_failure_sets(graph, max_failures=1)
        )
        assert verdict.resilient, str(verdict.counterexample)

    def test_cycle_survives_any_single_failure(self):
        graph = construct.cycle_graph(6)
        pattern = ArborescenceRouting().build(graph, 0)
        verdict = check_pattern_resilience(
            graph, pattern, 0, failure_sets=all_failure_sets(graph, max_failures=1)
        )
        assert verdict.resilient, str(verdict.counterexample)


class TestIdealVersusPerfect:
    def test_not_perfectly_resilient_on_k5(self):
        # ideal resilience is weaker than perfect resilience (§I.B.1):
        # some failure set that keeps s-t connected defeats the baseline
        graph = construct.complete_graph(5)
        pattern = ArborescenceRouting().build(graph, 4)
        network = Network(graph)
        broken = None
        for failures in all_failure_sets(graph):
            for source in graph.nodes:
                if source == 4 or not are_connected(graph, source, 4, failures):
                    continue
                if not route(network, pattern, source, 4, failures).delivered:
                    broken = (source, failures)
                    break
            if broken:
                break
        assert broken is not None
