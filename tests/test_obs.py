"""The telemetry layer: metrics registry, span traces, stats reports,
and the hard guarantee that telemetry never changes experiment output."""

import json

import pytest

from repro import obs
from repro.core.engine.sweep import parallel_map
from repro.experiments import (
    ExperimentSession,
    FailureModel,
    run_grid,
)
from repro.obs import (
    MetricsRegistry,
    Telemetry,
    TraceError,
    TraceWriter,
    diff_snapshots,
    read_trace,
    validate_trace,
)
from repro.obs.stats import render_metrics_report, render_trace_report, sniff_kind


class TestMetricsRegistry:
    def test_counter_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        registry.count("walks_total", kind="route")
        registry.count("walks_total", 2, kind="route")
        registry.count("walks_total", kind="tour")
        assert registry.value("walks_total", kind="route") == 3
        assert registry.value("walks_total", kind="tour") == 1
        assert registry.value("walks_total", kind="covers") == 0

    def test_counters_only_go_up(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.count("walks_total", -1)

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.count("x_total")
        with pytest.raises(ValueError):
            registry.set_gauge("x_total", 3)

    def test_gauge_max_keeps_high_water_mark(self):
        registry = MetricsRegistry()
        registry.gauge_max("table_entries_max", 10)
        registry.gauge_max("table_entries_max", 4)
        registry.gauge_max("table_entries_max", 17)
        assert registry.value("table_entries_max") == 17

    def test_snapshot_is_canonical(self):
        """Two registries fed the same events in different orders
        serialize byte-identically — the merge workflow's foundation."""
        a, b = MetricsRegistry(), MetricsRegistry()
        a.count("w_total", kind="route")
        a.count("w_total", kind="tour")
        a.observe("s_seconds", 0.2)
        b.observe("s_seconds", 0.2)
        b.count("w_total", kind="tour")
        b.count("w_total", kind="route")
        assert json.dumps(a.snapshot(), sort_keys=True) == json.dumps(
            b.snapshot(), sort_keys=True
        )

    def test_merge_adds_counters_and_histograms_maxes_gauges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.count("w_total", 2)
        b.count("w_total", 3)
        a.gauge_max("hwm", 10)
        b.gauge_max("hwm", 7)
        a.observe("d_seconds", 0.002)
        b.observe("d_seconds", 0.2)
        a.merge(b.snapshot())
        assert a.value("w_total") == 5
        assert a.value("hwm") == 10
        state = a._families["d_seconds"].samples[()]
        assert state[2] == 2  # observation count
        assert state[1] == pytest.approx(0.202)

    def test_diff_drops_unchanged_and_subtracts(self):
        registry = MetricsRegistry()
        registry.count("before_total", 5)
        before = registry.snapshot()
        registry.count("after_total", 2)
        registry.count("before_total", 0)  # touched but unchanged
        delta = diff_snapshots(before, registry.snapshot())
        assert "before_total" not in delta["families"]
        assert delta["families"]["after_total"]["samples"][0]["value"] == 2

    def test_worker_delta_round_trip(self):
        """snapshot -> work -> diff -> merge equals doing the work locally."""
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.count("w_total", 1)
        worker.count("w_total", 1)  # forked state matches the parent
        entry = worker.snapshot()
        worker.count("w_total", 4)
        worker.observe("d_seconds", 0.01)
        parent.merge(diff_snapshots(entry, worker.snapshot()))
        assert parent.value("w_total") == 5

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.count("w_total", 2, help="walks", kind="route")
        registry.observe("d_seconds", 0.003, help="durations")
        text = registry.render_prometheus()
        assert "# HELP w_total walks" in text
        assert "# TYPE w_total counter" in text
        assert 'w_total{kind="route"} 2' in text
        assert 'd_seconds_bucket{le="0.005"} 1' in text
        assert 'd_seconds_bucket{le="+Inf"} 1' in text
        assert "d_seconds_count 1" in text

    def test_snapshot_file_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.count("w_total", 3, kind="route")
        path = tmp_path / "metrics.json"
        registry.write_snapshot(path)
        other = MetricsRegistry()
        other.merge(obs.load_snapshot(path))
        assert other.value("w_total", kind="route") == 3


class TestTraceWriter:
    def test_nested_spans_validate(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceWriter(path) as trace:
            with trace.span("outer", cells=2):
                with trace.span("inner"):
                    trace.point("fault_fired", kind="cell-error")
        events = validate_trace(path)
        kinds = [event["event"] for event in events]
        assert kinds == ["start", "start", "point", "end", "end"]
        inner_start = events[1]
        assert inner_start["parent"] == events[0]["span"]
        assert events[2]["parent"] == inner_start["span"]
        assert events[3]["dur"] >= 0

    def test_close_ends_dangling_spans(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace = TraceWriter(path)
        trace.start("never_ended")
        trace.close()
        assert validate_trace(path)[-1]["event"] == "end"

    def test_exception_in_span_recorded(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceWriter(path) as trace:
            with pytest.raises(RuntimeError):
                with trace.span("doomed"):
                    raise RuntimeError("boom")
        end = validate_trace(path)[-1]
        assert end["attrs"]["error"] == "RuntimeError"

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceWriter(path) as trace:
            with trace.span("whole"):
                pass
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "start", "span": 99')  # no newline
        assert len(read_trace(path)) == 2
        assert len(validate_trace(path)) == 2

    def test_forked_child_never_writes(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace = TraceWriter(path)
        trace._pid = trace._pid + 1  # simulate being a forked child
        trace.start("child_span")
        trace.end()
        trace.close()
        assert read_trace(path) == []

    def test_unbalanced_trace_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps(
                {"event": "start", "span": 1, "parent": None, "name": "x", "t": 0.0, "attrs": {}}
            )
            + "\n"
        )
        with pytest.raises(TraceError):
            validate_trace(path)

    def test_bad_parent_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        lines = [
            {"event": "start", "span": 1, "parent": None, "name": "a", "t": 0.0, "attrs": {}},
            {"event": "start", "span": 2, "parent": 7, "name": "b", "t": 0.1, "attrs": {}},
        ]
        path.write_text("".join(json.dumps(line) + "\n" for line in lines))
        with pytest.raises(TraceError):
            validate_trace(path)


class TestActivation:
    def test_off_by_default(self):
        assert obs.active() is None

    def test_installed_nests_and_restores(self):
        outer, inner = Telemetry(), Telemetry()
        with obs.installed(outer):
            assert obs.active() is outer
            with obs.installed(inner):
                assert obs.active() is inner
            assert obs.active() is outer
        assert obs.active() is None

    def test_module_span_and_point_are_noops_when_off(self):
        with obs.span("nothing"):
            obs.point("nothing_happened")

    def test_telemetry_without_trace_spans_are_noops(self):
        telemetry = Telemetry()
        with obs.installed(telemetry):
            with obs.span("no_trace_configured"):
                obs.point("still_fine")
        assert telemetry.registry is not None
        assert telemetry.trace is None


class TestStatsReports:
    def test_trace_report_aggregates_self_time(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceWriter(path) as trace:
            with trace.span("cell"):
                with trace.span("sweep"):
                    pass
                trace.point("fault_fired")
        report = render_trace_report(path)
        assert "cell" in report and "sweep" in report
        assert "fault_fired" in report
        assert sniff_kind(path) == "trace"

    def test_metrics_report_derives_hit_rates(self, tmp_path):
        registry = MetricsRegistry()
        registry.count("repro_engine_memo_hits_total", 3)
        registry.count("repro_engine_memo_misses_total", 1)
        path = tmp_path / "metrics.json"
        registry.write_snapshot(path)
        assert sniff_kind(path) == "metrics"
        report = render_metrics_report(path)
        assert "memo table: 75.0% hit rate" in report


def _grid_kwargs():
    return dict(
        schemes=["distance2", "greedy"],
        failure_models=[FailureModel(sizes=(0, 1), samples=2, seed=0)],
        matrix="permutation",
        matrix_seed=0,
    )


def _normalized(records):
    """Record dicts with wall-clock noise zeroed — the byte-identity view."""
    out = []
    for record in records:
        data = record.to_dict()
        data["runtime_seconds"] = 0.0
        out.append(data)
    return json.dumps(out, sort_keys=True)


class TestTelemetryNeverChangesResults:
    """The tentpole's hard constraint: telemetry on == telemetry off."""

    def test_grid_output_byte_identical_with_telemetry_on(self, tmp_path):
        plain = run_grid(["ring"], session=ExperimentSession(), **_grid_kwargs())
        telemetry = Telemetry(trace_path=tmp_path / "t.jsonl")
        with obs.installed(telemetry):
            traced = run_grid(["ring"], session=ExperimentSession(), **_grid_kwargs())
        telemetry.close()
        assert _normalized(plain.records) == _normalized(traced.records)
        # and the trace is schema-valid, with the expected span levels
        names = {event["name"] for event in validate_trace(tmp_path / "t.jsonl")}
        assert "grid_cell" in names
        assert "sweep_resilience" in names
        # records never carry telemetry (the field is for sidecar writers)
        assert all(record.telemetry == {} for record in traced.records)

    def test_worker_merged_counters_equal_serial(self):
        """parallel_map workers ship registry deltas that merge to the
        exact counters a serial run produces."""

        def task(n):
            telemetry = obs.active()
            telemetry.count("task_units_total", n)
            telemetry.observe("task_seconds", 0.01 * n)
            return n * n

        items = list(range(1, 9))
        serial_telemetry = Telemetry()
        with obs.installed(serial_telemetry):
            serial_out = parallel_map(task, items, processes=1)
        forked_telemetry = Telemetry()
        with obs.installed(forked_telemetry):
            forked_out = parallel_map(task, items, processes=3)
        assert sorted(serial_out) == sorted(forked_out)
        serial, forked = serial_telemetry.registry, forked_telemetry.registry
        assert serial.value("task_units_total") == sum(items)
        assert forked.value("task_units_total") == sum(items)
        serial_hist = serial._families["task_seconds"].samples[()]
        forked_hist = forked._families["task_seconds"].samples[()]
        assert serial_hist[0] == forked_hist[0]  # identical bucket counts
        assert serial_hist[2] == forked_hist[2] == len(items)


class TestProgressHeartbeat:
    def test_heartbeat_reports_done_total_and_errors(self):
        beats = []
        result = run_grid(
            ["ring"],
            session=ExperimentSession(),
            progress=beats.append,
            **_grid_kwargs(),
        )
        # ring x (distance2, greedy) x one failure model = 2 cells
        computed = 2
        assert result.resumed_cells == 0 and not result.skipped
        assert len(beats) == computed
        assert [beat["done"] for beat in beats] == list(range(1, computed + 1))
        assert beats[-1]["done"] == beats[-1]["total"] == computed
        assert beats[-1]["errors"] == len(result.errors)
        assert beats[-1]["eta"] == pytest.approx(0.0)
        assert beats[-1]["elapsed"] > 0

    def test_heartbeat_never_touches_records(self):
        plain = run_grid(["ring"], session=ExperimentSession(), **_grid_kwargs())
        beaten = run_grid(
            ["ring"], session=ExperimentSession(), progress=lambda info: None, **_grid_kwargs()
        )
        assert _normalized(plain.records) == _normalized(beaten.records)
