"""Theorem 9: the (repaired) K3,3 tables are perfectly resilient.

Both tables are checked exhaustively over all failure sets: the
different-part table exactly as published, the same-part table with the
three-entry repair documented in ``core/algorithms/k33_source.py`` (the
published table loops on ``F = {(t,v2),(t,v3),(s,v1)}``).
"""

import networkx as nx
import pytest

from repro.core.algorithms import K33SourceRouting
from repro.core.resilience import check_perfect_resilience_source_destination
from repro.core.simulator import Outcome, route
from repro.graphs import construct
from repro.graphs.edges import failure_set

ALGORITHM = K33SourceRouting()


def k33_pairs(same_part):
    pairs = []
    for s in range(6):
        for t in range(6):
            if s != t and ((s < 3) == (t < 3)) == same_part:
                pairs.append((s, t))
    return pairs


class TestExhaustiveK33:
    def test_different_part_pairs(self):
        verdict = check_perfect_resilience_source_destination(
            construct.complete_bipartite(3, 3), ALGORITHM, pairs=k33_pairs(same_part=False)
        )
        assert verdict.resilient, str(verdict.counterexample)

    def test_same_part_pairs(self):
        verdict = check_perfect_resilience_source_destination(
            construct.complete_bipartite(3, 3), ALGORITHM, pairs=k33_pairs(same_part=True)
        )
        assert verdict.resilient, str(verdict.counterexample)

    def test_published_table_counterexample_now_delivered(self):
        # the failure set on which the paper's same-part table loops
        g = construct.complete_bipartite(3, 3)
        pattern = ALGORITHM.build(g, 1, 0)
        result = route(g, pattern, 1, 0, failure_set((0, 4), (0, 5), (1, 3)))
        assert result.delivered


class TestSubgraphs:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: construct.k_bipartite_minus(3, 3, 1),
            lambda: construct.k_bipartite_minus(3, 3, 2),
            lambda: construct.complete_bipartite(2, 3),
            lambda: construct.complete_bipartite(2, 2),
            lambda: construct.cycle_graph(6),
            lambda: construct.path_graph(6),
            lambda: construct.star_graph(3),
        ],
    )
    def test_perfect_resilience(self, builder):
        verdict = check_perfect_resilience_source_destination(builder(), ALGORITHM)
        assert verdict.resilient, str(verdict.counterexample)


class TestEmbedding:
    def test_rejects_non_bipartite(self):
        with pytest.raises(ValueError):
            ALGORITHM.build(construct.complete_graph(3), 0, 2)

    def test_rejects_oversized_part(self):
        with pytest.raises(ValueError):
            ALGORITHM.build(construct.star_graph(4), 0, 1)  # 4 leaves in one part

    def test_supports(self):
        assert ALGORITHM.supports(construct.cycle_graph(6), 0, 3)
        assert not ALGORITHM.supports(construct.complete_graph(4), 0, 3)

    def test_disconnected_embedding(self):
        g = nx.Graph([(0, 1), (2, 3), (4, 5)])
        verdict = check_perfect_resilience_source_destination(g, ALGORITHM)
        assert verdict.resilient, str(verdict.counterexample)
