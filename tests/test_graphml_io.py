"""GraphML import/export: the bridge to the real Topology Zoo dataset."""

import networkx as nx

from repro.core.classification import classify
from repro.graphs.zoo import generate_zoo, load_graphml_zoo, save_graphml


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        suite = generate_zoo()[:6]
        written = save_graphml(suite, tmp_path)
        assert written == 6
        loaded = load_graphml_zoo(tmp_path)
        assert len(loaded) == 6
        by_name = {z.name: z for z in loaded}
        for original in suite:
            restored = by_name[original.name]
            assert nx.is_isomorphic(original.graph, restored.graph)
            assert restored.family == original.family

    def test_loaded_graphs_classify(self, tmp_path):
        suite = generate_zoo()[:2]
        save_graphml(suite, tmp_path)
        for topology in load_graphml_zoo(tmp_path):
            result = classify(topology.graph, name=topology.name, minor_budget=500)
            assert result.n == topology.n

    def test_multigraph_collapsed(self, tmp_path):
        multi = nx.MultiGraph()
        multi.add_edge("a", "b")
        multi.add_edge("a", "b")  # parallel link, as in some real Zoo files
        multi.add_edge("b", "b")  # self loop
        multi.add_edge("b", "c")
        nx.write_graphml(multi, tmp_path / "real.graphml")
        loaded = load_graphml_zoo(tmp_path)
        assert len(loaded) == 1
        graph = loaded[0].graph
        assert graph.number_of_edges() == 2
        assert not any(u == v for u, v in graph.edges)

    def test_empty_directory(self, tmp_path):
        assert load_graphml_zoo(tmp_path) == []
