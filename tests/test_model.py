"""Unit tests for the routing-model formalism (§II)."""

from repro.core.model import (
    LocalView,
    RoutingModel,
    destination_as_source_destination,
    touring_as_destination,
)
from repro.core.algorithms import GreedyLowestNeighbor, RightHandTouring
from repro.core.resilience import check_pattern_resilience
from repro.core.simulator import route
from repro.graphs import construct
from repro.graphs.edges import failure_set


class TestLocalView:
    def test_alive_set(self):
        view = LocalView(node=0, inport=None, alive=(1, 2), failed_links=frozenset())
        assert view.alive_set == frozenset({1, 2})

    def test_alive_without(self):
        view = LocalView(node=0, inport=1, alive=(1, 2, 3), failed_links=frozenset())
        assert view.alive_without(1) == (2, 3)
        assert view.alive_without(None, 2) == (1, 3)

    def test_frozen(self):
        view = LocalView(node=0, inport=None, alive=(), failed_links=frozenset())
        try:
            view.node = 5
            raised = False
        except Exception:
            raised = True
        assert raised


class TestModelEnum:
    def test_three_models(self):
        assert {m.value for m in RoutingModel} == {
            "source-destination",
            "destination",
            "port",
        }


class TestAdapters:
    def test_destination_as_source_destination(self):
        algorithm = destination_as_source_destination(GreedyLowestNeighbor())
        g = construct.complete_graph(4)
        pattern = algorithm.build(g, 0, 3)
        assert route(g, pattern, 0, 3).delivered

    def test_touring_as_destination_on_ring(self):
        algorithm = touring_as_destination(RightHandTouring())
        g = construct.cycle_graph(6)
        verdict = check_pattern_resilience(g, algorithm.build(g, 3), 3)
        assert verdict.resilient

    def test_touring_as_destination_under_failures(self):
        algorithm = touring_as_destination(RightHandTouring())
        g = construct.fan_graph(6)
        pattern = algorithm.build(g, 5)
        result = route(g, pattern, 1, 5, failure_set((0, 5)))
        assert result.delivered
