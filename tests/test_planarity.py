"""Unit tests for planarity and outerplanarity (the §VIII backbone)."""

import networkx as nx
import pytest

from repro.graphs import construct
from repro.graphs.planarity import density, is_outerplanar, is_planar, planarity_class


class TestPlanarity:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: construct.complete_graph(4),
            lambda: construct.k_minus(5, 1),
            lambda: construct.k_bipartite_minus(3, 3, 1),
            lambda: construct.grid_graph(5, 5),
            lambda: construct.wheel_graph(8),
            lambda: nx.path_graph(2),
        ],
    )
    def test_planar(self, builder):
        assert is_planar(builder())

    @pytest.mark.parametrize(
        "builder",
        [
            lambda: construct.complete_graph(5),
            lambda: construct.complete_bipartite(3, 3),
            lambda: construct.complete_graph(7),
            lambda: construct.complete_bipartite(4, 4),
            lambda: construct.petersen_graph(),
        ],
    )
    def test_nonplanar(self, builder):
        assert not is_planar(builder())

    def test_euler_filter(self):
        # dense graph rejected without running the LR test
        assert not is_planar(construct.complete_graph(40))


class TestOuterplanarity:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: construct.cycle_graph(8),
            lambda: construct.path_graph(5),
            lambda: construct.fan_graph(7),
            lambda: construct.star_graph(9),
            lambda: construct.complete_graph(3),
            lambda: construct.k_bipartite_minus(2, 3, 1),  # K2,3 minus a link
            lambda: construct.maximal_outerplanar(14, seed=7),
        ],
    )
    def test_outerplanar(self, builder):
        assert is_outerplanar(builder())

    @pytest.mark.parametrize(
        "builder",
        [
            lambda: construct.complete_graph(4),  # forbidden minor (Lemma 2)
            lambda: construct.complete_bipartite(2, 3),  # forbidden minor
            lambda: construct.wheel_graph(5),
            lambda: construct.grid_graph(3, 3),
            lambda: construct.fig6_netrail(),
            lambda: construct.complete_graph(5),
        ],
    )
    def test_not_outerplanar(self, builder):
        assert not is_outerplanar(builder())

    def test_disconnected_componentwise(self):
        g = nx.disjoint_union(construct.cycle_graph(4), construct.cycle_graph(5))
        assert is_outerplanar(g)
        g = nx.disjoint_union(construct.cycle_graph(4), construct.complete_graph(4))
        assert not is_outerplanar(g)

    def test_k33_minus_two_destination_case(self):
        # the Theorem 13 case split: K3,3 minus a node is K2,3 (not
        # outerplanar), minus a node and its relay is K2,2 (outerplanar)
        assert not is_outerplanar(construct.complete_bipartite(2, 3))
        assert is_outerplanar(construct.complete_bipartite(2, 2))


class TestClasses:
    def test_planarity_class_values(self):
        assert planarity_class(construct.cycle_graph(5)) == "outerplanar"
        assert planarity_class(construct.wheel_graph(6)) == "planar"
        assert planarity_class(construct.petersen_graph()) == "non-planar"

    def test_density(self):
        assert density(construct.cycle_graph(10)) == pytest.approx(1.0)
        assert density(construct.complete_graph(5)) == pytest.approx(2.0)
