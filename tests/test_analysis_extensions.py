"""Table-space accounting, random-failure curves, and stretch measurement."""

import math

import pytest

from repro.analysis import (
    compare_curves,
    delivery_curve,
    measure_stretch,
    measured_table_space,
    table_space,
    table_space_report,
)
from repro.core.algorithms import (
    ArborescenceRouting,
    Distance2Algorithm,
    GreedyLowestNeighbor,
    K5SourceRouting,
    RightHandTouring,
    TourToDestination,
)
from repro.graphs import construct


class TestTableSpace:
    def test_touring_needs_least_rules(self):
        space = table_space(construct.complete_graph(6), "K6")
        assert space.touring_rules < space.destination_rules
        assert space.destination_rules < space.source_destination_rules

    def test_exact_counts_on_ring(self):
        # ring: every node has degree 2, so 3 port keys per node
        space = table_space(construct.cycle_graph(5), "C5")
        assert space.touring_rules == 5 * 3
        assert space.destination_rules == 5 * 4 * 3
        assert space.source_destination_rules == 5 * 20 * 3

    def test_saving_ratio(self):
        space = table_space(construct.cycle_graph(10))
        assert space.touring_saving == pytest.approx(9.0)

    def test_report(self):
        report = table_space_report(
            {"C4": construct.cycle_graph(4), "K4": construct.complete_graph(4)}
        )
        assert [entry.name for entry in report] == ["C4", "K4"]


class TestMeasuredTableSpace:
    def test_touring_still_needs_least_rules_measured(self):
        graph = construct.fan_graph(6)
        space = measured_table_space(
            graph,
            destination_algorithm=ArborescenceRouting(),
            source_destination_algorithm=Distance2Algorithm(),
            touring_algorithm=RightHandTouring(),
            name="fan6",
        )
        assert 0 < space.touring_rules < space.destination_rules
        assert space.destination_rules < space.source_destination_rules
        assert space.touring_saving > 1.0

    def test_models_without_algorithm_report_zero(self):
        graph = construct.cycle_graph(4)
        space = measured_table_space(graph, touring_algorithm=RightHandTouring())
        assert space.destination_rules == 0
        assert space.source_destination_rules == 0
        assert space.touring_rules > 0

    def test_measured_is_deterministic(self):
        graph = construct.cycle_graph(5)
        runs = [
            measured_table_space(graph, destination_algorithm=ArborescenceRouting())
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_rejects_failures_outside_graph(self):
        graph = construct.cycle_graph(4)
        with pytest.raises(ValueError):
            measured_table_space(
                graph,
                touring_algorithm=RightHandTouring(),
                failure_sets=[frozenset({("v1", "nope")})],
            )


class TestDeliveryCurves:
    def test_perfect_pattern_stays_at_one(self):
        graph = construct.complete_graph(5)
        curve = delivery_curve(
            graph, K5SourceRouting(), 0, 4, sizes=[0, 2, 4, 6], samples=60, seed=1
        )
        assert all(p == 1.0 for p in curve.probabilities)

    def test_greedy_decays(self):
        graph = construct.complete_graph(5)
        curve = delivery_curve(
            graph, GreedyLowestNeighbor(), 0, 4, sizes=[0, 4, 6], samples=80, seed=2
        )
        assert curve.probabilities[0] == 1.0
        assert min(curve.probabilities) < 1.0

    def test_compare_orders_algorithms(self):
        graph = construct.complete_graph(5)
        curves = compare_curves(
            graph,
            [K5SourceRouting(), GreedyLowestNeighbor()],
            0,
            4,
            sizes=[5],
            samples=80,
            seed=3,
        )
        assert curves[0].probabilities[0] >= curves[1].probabilities[0]

    def test_curve_lookup(self):
        graph = construct.cycle_graph(5)
        curve = delivery_curve(graph, TourToDestination(), 0, 2, sizes=[0, 1], samples=30)
        assert curve.at(0) == 1.0


class TestStretch:
    def test_direct_routing_stretch_one_without_failures(self):
        graph = construct.complete_graph(5)
        summary = measure_stretch(graph, K5SourceRouting(), 0, 4, max_failures=0, samples=10)
        assert summary.mean_stretch == pytest.approx(1.0)
        assert summary.delivery_rate == 1.0

    def test_failover_costs_stretch(self):
        graph = construct.complete_graph(5)
        summary = measure_stretch(graph, K5SourceRouting(), 0, 4, max_failures=6, samples=200, seed=5)
        assert summary.delivery_rate == 1.0  # perfectly resilient
        assert summary.mean_stretch >= 1.0
        assert summary.max_stretch >= summary.mean_stretch

    def test_tour_to_destination_stretch(self):
        graph = construct.wheel_graph(6)
        summary = measure_stretch(graph, TourToDestination(), 1, 0, max_failures=4, samples=150, seed=6)
        assert summary.delivery_rate == 1.0
        assert not math.isnan(summary.mean_stretch)

    def test_baseline_drops_scenarios(self):
        graph = construct.complete_graph(5)
        summary = measure_stretch(
            graph, ArborescenceRouting(), 0, 4, max_failures=8, samples=200, seed=7
        )
        # the ideal-resilience baseline is not perfectly resilient
        assert summary.delivery_rate < 1.0
