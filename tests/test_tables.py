"""Unit tests for priority-table and cyclic-permutation patterns."""

from repro.core.simulator import Network
from repro.core.tables import ORIGIN, CyclicPermutationPattern, PriorityTable
from repro.graphs import construct
from repro.graphs.edges import failure_set


def view(graph, node, inport, failures=frozenset()):
    return Network(graph).view(node, inport, failures)


class TestPriorityTable:
    def test_priority_order(self):
        g = construct.complete_graph(4)
        table = PriorityTable(rules={0: {ORIGIN: (2, 1, 3)}})
        assert table.forward(view(g, 0, None)) == 2

    def test_skips_dead_candidates(self):
        g = construct.complete_graph(4)
        table = PriorityTable(rules={0: {ORIGIN: (2, 1, 3)}})
        assert table.forward(view(g, 0, None, failure_set((0, 2)))) == 1

    def test_deliver_first_overrides(self):
        g = construct.complete_graph(4)
        table = PriorityTable(rules={0: {ORIGIN: (2,)}}, deliver_first=3)
        assert table.forward(view(g, 0, None)) == 3

    def test_deliver_first_respects_failures(self):
        g = construct.complete_graph(4)
        table = PriorityTable(rules={0: {ORIGIN: (2,)}}, deliver_first=3)
        assert table.forward(view(g, 0, None, failure_set((0, 3)))) == 2

    def test_no_shortcut_exclusion(self):
        g = construct.complete_graph(4)
        table = PriorityTable(
            rules={0: {ORIGIN: (2,)}}, deliver_first=3, no_shortcut=frozenset({0})
        )
        assert table.forward(view(g, 0, None)) == 2

    def test_missing_inport_bounces(self):
        g = construct.complete_graph(4)
        table = PriorityTable(rules={0: {}})
        assert table.forward(view(g, 0, 1)) == 1

    def test_exhausted_bounces(self):
        g = construct.complete_graph(4)
        table = PriorityTable(rules={0: {1: (2,)}})
        assert table.forward(view(g, 0, 1, failure_set((0, 2)))) == 1

    def test_origin_without_rule_drops(self):
        g = construct.complete_graph(4)
        table = PriorityTable(rules={0: {}})
        assert table.forward(view(g, 0, None)) is None


class TestCyclicPermutation:
    def test_follows_cycle(self):
        g = construct.complete_graph(4)
        pattern = CyclicPermutationPattern(cycles={0: (1, 2, 3)})
        assert pattern.forward(view(g, 0, 1)) == 2
        assert pattern.forward(view(g, 0, 2)) == 3
        assert pattern.forward(view(g, 0, 3)) == 1

    def test_skips_failed(self):
        g = construct.complete_graph(4)
        pattern = CyclicPermutationPattern(cycles={0: (1, 2, 3)})
        assert pattern.forward(view(g, 0, 1, failure_set((0, 2)))) == 3

    def test_origin_takes_first_alive(self):
        g = construct.complete_graph(4)
        pattern = CyclicPermutationPattern(cycles={0: (2, 1, 3)})
        assert pattern.forward(view(g, 0, None)) == 2
        assert pattern.forward(view(g, 0, None, failure_set((0, 2)))) == 1

    def test_deliver_first(self):
        g = construct.complete_graph(4)
        pattern = CyclicPermutationPattern(cycles={0: (1, 2, 3)}, deliver_first=3)
        assert pattern.forward(view(g, 0, 1)) == 3

    def test_single_neighbour_bounce(self):
        g = construct.path_graph(2)
        pattern = CyclicPermutationPattern(cycles={0: (1,)})
        assert pattern.forward(view(g, 0, 1)) == 1

    def test_isolated_drops(self):
        g = construct.path_graph(2)
        pattern = CyclicPermutationPattern(cycles={0: (1,)})
        assert pattern.forward(view(g, 0, None, failure_set((0, 1)))) is None
