"""The §VIII case-study driver and reporting on a small sub-suite."""

import pytest

from repro.analysis import CaseStudyResult, fig7_table, fig8_table, run_case_study, simple_table
from repro.core.classification import Possibility
from repro.graphs.zoo import generate_zoo


@pytest.fixture(scope="module")
def small_result():
    suite = generate_zoo()[::13]  # 20 topologies across all families
    return run_case_study(suite=suite, minor_budget=1_500, destination_cap=100)


class TestCaseStudy:
    def test_counts_add_up(self, small_result):
        assert small_result.total == 20
        for model in ("touring", "destination", "source_destination"):
            assert sum(small_result.per_model_counts[model].values()) == 20

    def test_touring_is_binary(self, small_result):
        counts = small_result.per_model_counts["touring"]
        assert counts[Possibility.SOMETIMES] == 0
        assert counts[Possibility.UNKNOWN] == 0

    def test_percentages(self, small_result):
        total = sum(
            small_result.percentage("destination", p) for p in Possibility
        )
        assert total == pytest.approx(100.0)

    def test_scatter_rows(self, small_result):
        rows = small_result.scatter_rows()
        assert len(rows) == 20
        name, n, density, dest, sd = rows[0]
        assert isinstance(n, int) and density > 0

    def test_outerplanar_consistency(self, small_result):
        for c in small_result.classifications:
            if c.planarity == "outerplanar":
                assert c.touring is Possibility.POSSIBLE
            else:
                assert c.touring is Possibility.IMPOSSIBLE


class TestReporting:
    def test_fig7_renders(self, small_result):
        text = fig7_table(small_result)
        assert "Fig. 7" in text
        assert "Touring" in text
        assert "%" in text

    def test_fig7_with_paper_reference(self, small_result):
        text = fig7_table(small_result, paper={("touring", "possible"): 33.5})
        assert "(paper)" in text

    def test_fig8_renders(self, small_result):
        text = fig8_table(small_result)
        assert "Fig. 8" in text

    def test_simple_table(self):
        text = simple_table(["a", "bb"], [["1", "2"], ["33", "4"]])
        assert "a" in text and "33" in text
