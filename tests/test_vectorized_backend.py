"""The numpy mask-walk backend: gating, parity, caching, and plumbing.

The broad differential matrix lives in ``test_engine_equivalence.py``
(every fast backend × every checker × random graphs and gadgets); this
file covers what is specific to ``backend="numpy"``: the optional-
dependency gate, chunked batches, the scalar fallbacks, the traffic
``load_sweep``, and the grid/CLI plumbing.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

import networkx as nx

from repro.core.algorithms.naive import (
    GreedyLowestNeighbor,
    RandomCyclicDestinationOnly,
    RandomCyclicPermutations,
    RandomPortCycles,
)
from repro.core.engine import vectorized
from repro.core.engine.vectorized import MaskBatch, VectorizedUnsupported
from repro.core.resilience import (
    all_failure_sets,
    check_ideal_resilience,
    check_k_resilient_touring,
    check_pattern_resilience,
    check_perfect_resilience_destination,
    check_perfect_touring,
)
from repro.experiments import (
    ExperimentSession,
    FailureModel,
    naive_session,
    resolve_topology,
    run_grid,
    scheme,
    topology,
)
from repro.graphs.construct import complete_graph, cycle_graph
from repro.traffic import TrafficEngine, all_to_one, per_packet_loads, permutation


def numpy_session() -> ExperimentSession:
    return ExperimentSession(backend="numpy")


def verdict_tuple(verdict):
    t = (verdict.resilient, verdict.scenarios_checked, verdict.exhaustive)
    c = verdict.counterexample
    if c is not None:
        result = None
        if c.result is not None:
            result = (c.result.outcome, tuple(c.result.path), c.result.steps)
        t += (c.source, c.destination, c.failures, result, c.note)
    return t


def report_tuple(report):
    return (
        report.loads,
        report.demands,
        report.total_volume,
        report.delivered_volume,
        report.dropped_volume,
        report.looped_volume,
        report.disconnected_volume,
        report.delivered_hops,
        report.stretch_volume,
    )


class TestMaskBatch:
    def test_exhaustive_order_matches_all_failure_sets(self):
        from repro.core.engine import EngineState

        graph = complete_graph(4)
        state = EngineState(graph)
        batch = MaskBatch.exhaustive(state.network)
        masks = [
            chunk.mask_int(row) for chunk in batch.chunks for row in range(len(chunk))
        ]
        expected = [state.network.mask_of(f) for f in all_failure_sets(graph)]
        assert batch.total == len(expected) == 2 ** graph.number_of_edges()
        assert masks == expected

    def test_non_canonical_sets_become_fallbacks(self):
        from repro.core.engine import EngineState

        state = EngineState(cycle_graph(4))
        sets = [frozenset(), frozenset({(1, 0)}), frozenset({(0, 1)})]
        batch = MaskBatch.from_failure_sets(state.network, sets)
        assert batch.total == 3
        assert [position for position, _ in batch.fallbacks] == [1]
        assert [int(p) for chunk in batch.chunks for p in chunk.positions] == [0, 2]

    def test_chunking_preserves_verdicts(self, monkeypatch):
        # tiny chunks force every sweep through the multi-chunk paths
        monkeypatch.setattr(vectorized, "CHUNK_MASKS", 7)
        graph = cycle_graph(6)
        algorithm = RandomCyclicDestinationOnly(seed=5)
        fast = check_perfect_resilience_destination(graph, algorithm, session=numpy_session())
        slow = check_perfect_resilience_destination(graph, algorithm, session=naive_session())
        assert verdict_tuple(fast) == verdict_tuple(slow)
        tour = RandomPortCycles(seed=5)
        fast = check_perfect_touring(graph, tour, session=numpy_session())
        slow = check_perfect_touring(graph, tour, session=naive_session())
        assert verdict_tuple(fast) == verdict_tuple(slow)

    def test_mutated_failure_set_list_is_not_served_stale(self):
        # the per-state batch cache keys lists by identity; appending to
        # the same list between calls must re-pack, not serve the old
        # batch (the other backends would see the new set)
        graph = cycle_graph(6)
        pattern = RandomCyclicDestinationOnly(seed=9).build(graph, 0)
        sets = list(all_failure_sets(graph, max_failures=1))
        session = numpy_session()
        first = check_pattern_resilience(graph, pattern, 0, failure_sets=sets, session=session)
        sets.extend(all_failure_sets(graph, max_failures=2))
        second = check_pattern_resilience(graph, pattern, 0, failure_sets=sets, session=session)
        reference = check_pattern_resilience(
            graph, pattern, 0, failure_sets=sets, session=naive_session()
        )
        assert verdict_tuple(second) == verdict_tuple(reference)
        assert second.scenarios_checked != first.scenarios_checked

    def test_reconstructed_sets_round_trip(self):
        from repro.core.engine import EngineState
        from repro.core.engine.vectorized import reconstruct_failure_sets

        state = EngineState(cycle_graph(5))
        sets = [frozenset(), frozenset({(1, 0)}), frozenset({(0, 1), (2, 3)})]
        batch = MaskBatch.from_failure_sets(state.network, iter(sets))
        assert reconstruct_failure_sets(batch) == sets

    def test_labels_match_component_tracker(self):
        from repro.core.engine import EngineState

        graph = resolve_topology("two-rings")
        state = EngineState(graph)
        batch, exhaustive = vectorized.default_batch(state)
        assert exhaustive
        chunk = batch.chunks[0]
        labels = chunk.labels_for(state.network)
        for row in range(0, len(chunk), 37):
            expected = state.tracker.labels(chunk.mask_int(row))
            assert tuple(int(x) for x in labels[row]) == expected


class TestVectorizedPathIsTaken:
    def test_small_graph_sweep_actually_vectorizes(self, monkeypatch):
        calls = []
        original = vectorized._walk_delivered

        def spy(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(vectorized, "_walk_delivered", spy)
        graph = cycle_graph(6)
        check_perfect_resilience_destination(
            graph, GreedyLowestNeighbor(), session=numpy_session()
        )
        assert calls  # the numpy backend did not silently fall back

    def test_wide_graph_takes_the_multiword_vectorized_path(self, monkeypatch):
        # > 64 links spill into multi-word masks — no scalar fallback
        calls = []
        original = vectorized._walk_delivered

        def spy(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(vectorized, "_walk_delivered", spy)
        graph = nx.gnp_random_graph(13, 0.9, seed=3)
        assert graph.number_of_edges() > 64
        destinations = sorted(graph.nodes)[:1]
        fast = check_perfect_resilience_destination(
            graph, GreedyLowestNeighbor(), destinations=destinations, session=numpy_session()
        )
        assert calls  # the wide instance actually vectorized
        slow = check_perfect_resilience_destination(
            graph, GreedyLowestNeighbor(), destinations=destinations, session=naive_session()
        )
        assert verdict_tuple(fast) == verdict_tuple(slow)

    def test_generator_failure_sets_survive_the_fallback(self, monkeypatch):
        # force a post-materialization fallback and make sure the
        # one-shot iterator's contents still reach the scalar path
        monkeypatch.setattr(vectorized, "TABLE_BUDGET", 0)
        graph = cycle_graph(5)
        pattern = GreedyLowestNeighbor().build(graph, 0)
        generator = (f for f in all_failure_sets(graph, max_failures=2))
        fast = check_pattern_resilience(
            graph, pattern, 0, failure_sets=generator, session=numpy_session()
        )
        slow = check_pattern_resilience(
            graph,
            pattern,
            0,
            failure_sets=list(all_failure_sets(graph, max_failures=2)),
            session=naive_session(),
        )
        assert verdict_tuple(fast) == verdict_tuple(slow)

    def test_k_resilient_touring_generator_round_trip(self):
        graph = cycle_graph(6)
        fast = check_k_resilient_touring(
            graph, RandomPortCycles(seed=2), max_failures=2, session=numpy_session()
        )
        slow = check_k_resilient_touring(
            graph, RandomPortCycles(seed=2), max_failures=2, session=naive_session()
        )
        assert verdict_tuple(fast) == verdict_tuple(slow)

    def test_ideal_resilience_equivalence(self):
        graph = complete_graph(5)
        fast = check_ideal_resilience(graph, GreedyLowestNeighbor(), session=numpy_session())
        slow = check_ideal_resilience(graph, GreedyLowestNeighbor(), session=naive_session())
        assert verdict_tuple(fast) == verdict_tuple(slow)


class TestDisconnectedAndExotic:
    def test_two_rings_destination_and_touring(self):
        graph = resolve_topology("two-rings")
        fast = check_perfect_resilience_destination(
            graph, GreedyLowestNeighbor(), session=numpy_session()
        )
        slow = check_perfect_resilience_destination(
            graph, GreedyLowestNeighbor(), session=naive_session()
        )
        assert verdict_tuple(fast) == verdict_tuple(slow)
        fast = check_perfect_touring(graph, RandomPortCycles(seed=1), session=numpy_session())
        slow = check_perfect_touring(graph, RandomPortCycles(seed=1), session=naive_session())
        assert verdict_tuple(fast) == verdict_tuple(slow)

    def test_failing_pattern_counterexample_on_mixed_labels(self):
        graph = nx.Graph()
        graph.add_edges_from([(1, 2), (2, 10), (10, 1), (1, "x"), ("x", 2)])
        pattern = RandomCyclicDestinationOnly(seed=3).build(graph, 1)
        fast = check_pattern_resilience(graph, pattern, 1, session=numpy_session())
        slow = check_pattern_resilience(graph, pattern, 1, session=naive_session())
        assert verdict_tuple(fast) == verdict_tuple(slow)

    def test_sources_filter_counts_and_counterexamples(self):
        graph = cycle_graph(7)
        algorithm = RandomCyclicDestinationOnly(seed=11)
        pattern = algorithm.build(graph, 0)
        for sources in ([3], [1, 5], [0, 2, "ghost"]):
            fast = check_pattern_resilience(
                graph, pattern, 0, sources=sources, session=numpy_session()
            )
            slow = check_pattern_resilience(
                graph, pattern, 0, sources=sources, session=naive_session()
            )
            assert verdict_tuple(fast) == verdict_tuple(slow)


class TestTrafficLoadSweep:
    def test_load_sweep_equals_scalar_and_per_packet(self):
        from repro.traffic import sample_failure_grid

        graph = topology("fattree").build(4)
        algorithm = scheme("arborescence").instantiate()
        grid = sample_failure_grid(graph, [0, 1, 2, 4], 3, seed=0)
        sets = [failures for size in sorted(grid) for failures in grid[size]]
        demands = all_to_one(graph, ("core", 0))
        scalar = TrafficEngine(graph, algorithm)
        vec = TrafficEngine(graph, algorithm, backend="numpy")
        batched = vec.load_sweep(demands, sets)
        assert len(batched) == len(sets)
        for failures, report in zip(sets, batched):
            assert report_tuple(report) == report_tuple(scalar.load(demands, failures))
            assert report_tuple(report) == report_tuple(
                per_packet_loads(graph, algorithm, demands, failures)
            )

    def test_load_sweep_weird_sets_take_the_naive_fallback(self):
        graph = topology("ring").build(8)
        algorithm = scheme("greedy").instantiate()
        demands = permutation(graph, seed=2)
        sets = [
            frozenset(),
            frozenset({(1, 0)}),  # non-canonical: effectively alive
            frozenset({(0, 99)}),  # outside the graph
            frozenset({(2, 3), (4, 5)}),
        ]
        vec = TrafficEngine(graph, algorithm, backend="numpy")
        for failures, report in zip(sets, vec.load_sweep(demands, sets)):
            assert report_tuple(report) == report_tuple(
                per_packet_loads(graph, algorithm, demands, failures)
            )

    def test_session_traffic_engine_carries_the_backend(self):
        session = numpy_session()
        graph = topology("ring").build(6)
        engine = session.traffic_engine(graph, scheme("greedy").instantiate())
        assert engine.backend == "numpy"

    def test_bad_demand_endpoints_raise_like_the_scalar_router(self):
        from repro.traffic.matrices import Demand

        graph = cycle_graph(5)
        vec = TrafficEngine(graph, scheme("greedy").instantiate(), backend="numpy")
        with pytest.raises(ValueError, match="demand endpoint"):
            vec.load_sweep([Demand("ghost", 0, 1)], [frozenset()])


class TestMaskWidthBoundaries:
    """m = 63/64/65/128/129: every word-count boundary of the multi-word
    packing, bit-identical to the scalar engine — verdicts,
    counterexample order, and scenario counts all equal."""

    @staticmethod
    def boundary_sets(graph):
        from repro.graphs.edges import edge, edge_sort_key

        links = sorted((edge(u, v) for u, v in graph.edges), key=edge_sort_key)
        sets = [frozenset()] + [frozenset({link}) for link in links]
        half = len(links) // 2
        sets += [frozenset({links[i], links[i + half]}) for i in range(10)]
        return sets

    @pytest.mark.parametrize("m", [63, 64, 65, 128, 129])
    def test_destination_pattern_parity(self, m):
        graph = cycle_graph(m)
        assert graph.number_of_edges() == m
        pattern = RandomCyclicDestinationOnly(seed=m).build(graph, 0)
        sets = self.boundary_sets(graph)
        fast = check_pattern_resilience(
            graph, pattern, 0, failure_sets=sets, session=numpy_session()
        )
        slow = check_pattern_resilience(
            graph, pattern, 0, failure_sets=sets, session=ExperimentSession(backend="engine")
        )
        assert verdict_tuple(fast) == verdict_tuple(slow)

    @pytest.mark.parametrize("n", [65, 129])
    def test_touring_parity_past_64_nodes(self, n):
        # node bitsets also go multi-word: component coverage of the
        # two-phase touring walk must survive the word boundary
        graph = cycle_graph(n)
        sets = self.boundary_sets(graph)[: n + 6]
        fast = check_perfect_touring(
            graph, RandomPortCycles(seed=n), failure_sets=sets, session=numpy_session()
        )
        slow = check_perfect_touring(
            graph,
            RandomPortCycles(seed=n),
            failure_sets=sets,
            session=ExperimentSession(backend="engine"),
        )
        assert verdict_tuple(fast) == verdict_tuple(slow)


class TestFatTreeMultiWord:
    """fat-tree(8) (n=80, m=256): the ISSUE's flagship instance must ride
    the vectorized path end to end — zero fallback increments."""

    def test_resilience_zero_fallbacks_and_parity(self):
        from repro import obs

        graph = resolve_topology("fattree(8)")
        assert graph.number_of_edges() == 256
        destination = sorted(graph.nodes, key=repr)[0]
        telemetry = obs.Telemetry()
        with obs.installed(telemetry):
            fast = check_perfect_resilience_destination(
                graph,
                GreedyLowestNeighbor(),
                destinations=[destination],
                session=numpy_session(),
            )
        assert "repro_numpy_fallbacks_total" not in telemetry.registry.families()
        assert telemetry.registry.value("repro_numpy_chunks_total") > 0
        slow = check_perfect_resilience_destination(
            graph,
            GreedyLowestNeighbor(),
            destinations=[destination],
            session=ExperimentSession(backend="engine"),
        )
        assert verdict_tuple(fast) == verdict_tuple(slow)

    def test_load_sweep_parity_zero_fallbacks(self):
        from repro import obs
        from repro.traffic import sample_failure_grid

        graph = resolve_topology("fattree(8)")
        algorithm = scheme("greedy").instantiate()
        grid = sample_failure_grid(graph, [0, 1, 2], 4, seed=0)
        sets = [failures for size in sorted(grid) for failures in grid[size]]
        demands = permutation(graph, seed=3)
        scalar = TrafficEngine(graph, algorithm)
        vec = TrafficEngine(graph, algorithm, backend="numpy")
        telemetry = obs.Telemetry()
        with obs.installed(telemetry):
            batched = vec.load_sweep(demands, sets)
        assert "repro_numpy_fallbacks_total" not in telemetry.registry.families()
        for failures, report in zip(sets, batched):
            assert report_tuple(report) == report_tuple(scalar.load(demands, failures))


class TestFallbackAccounting:
    def test_fallback_counter_carries_the_reason(self, monkeypatch):
        from repro import obs

        monkeypatch.setattr(vectorized, "TABLE_BUDGET", 0)
        graph = cycle_graph(5)
        telemetry = obs.Telemetry()
        with obs.installed(telemetry):
            check_perfect_resilience_destination(
                graph, GreedyLowestNeighbor(), destinations=[0], session=numpy_session()
            )
        assert (
            telemetry.registry.value(
                "repro_numpy_fallbacks_total", site="pattern", reason="table_budget"
            )
            == 1
        )

    def test_recovered_iterator_is_packed_exactly_once(self, monkeypatch):
        # satellite: a consumed one-shot iterator is reconstructed once
        # and its packed batch pre-seeded into the state cache, so a
        # retry with the recovered list never re-walks batch packing
        from repro.core.engine import EngineState

        monkeypatch.setattr(vectorized, "TABLE_BUDGET", 0)
        calls = []
        original = MaskBatch.from_failure_sets.__func__

        def spy(cls, network, failure_sets):
            calls.append(1)
            return original(cls, network, failure_sets)

        monkeypatch.setattr(MaskBatch, "from_failure_sets", classmethod(spy))
        graph = cycle_graph(5)
        pattern = GreedyLowestNeighbor().build(graph, 0)
        state = EngineState(graph)
        family = list(all_failure_sets(graph, max_failures=2))
        generator = (failures for failures in family)
        with pytest.raises(VectorizedUnsupported) as info:
            vectorized.pattern_sweep_numpy(state, pattern, 0, failure_sets=generator)
        assert info.value.reason == "table_budget"
        recovered = info.value.failure_sets
        assert recovered == family
        assert len(calls) == 1
        with pytest.raises(VectorizedUnsupported):
            vectorized.pattern_sweep_numpy(state, pattern, 0, failure_sets=recovered)
        assert len(calls) == 1  # cache hit: no second pack

    def test_r_tolerance_fallback_reason(self, monkeypatch):
        from repro import obs
        from repro.core.algorithms.naive import RandomCyclicPermutations
        from repro.core.resilience import check_r_tolerance

        monkeypatch.setattr(vectorized, "TABLE_BUDGET", 0)
        graph = cycle_graph(5)
        telemetry = obs.Telemetry()
        with obs.installed(telemetry):
            check_r_tolerance(
                graph, RandomCyclicPermutations(seed=1), 0, 2, r=1, session=numpy_session()
            )
        assert (
            telemetry.registry.value(
                "repro_numpy_fallbacks_total", site="tolerance", reason="table_budget"
            )
            > 0
        )


class TestGridParity:
    def test_quick_grid_numpy_equals_naive(self):
        model = FailureModel(sizes=(0, 1), samples=2, seed=0)
        kwargs = dict(
            topologies=["ring", "grid"],
            schemes=["arborescence", "distance2", "greedy"],
            failure_models=[model],
        )
        fast = run_grid(session=numpy_session(), **kwargs)
        slow = run_grid(session=ExperimentSession(backend="naive"), **kwargs)
        assert len(fast.records) == len(slow.records)
        for a, b in zip(fast.records, slow.records):
            assert (a.experiment, a.topology, a.scheme, a.failure_model, a.status) == (
                b.experiment, b.topology, b.scheme, b.failure_model, b.status,
            )
            assert set(a.metrics) == set(b.metrics)
            for key, value in a.metrics.items():
                if isinstance(value, float):
                    assert value == pytest.approx(b.metrics[key], rel=1e-9)
                else:
                    assert value == b.metrics[key]


class TestCliBackend:
    def test_experiments_quick_with_numpy_backend(self, capsys):
        from repro.cli import main

        assert main(["experiments", "--quick", "--backend", "numpy"]) == 0
        out = capsys.readouterr().out
        assert "records (JSON round-trip ok)" in out

    def test_traffic_backend_flag(self, capsys):
        from repro.cli import main

        assert (
            main(["traffic", "ring(6)", "--algorithm", "greedy", "--sizes", "0,1",
                  "--samples", "2", "--backend", "numpy"])
            == 0
        )

    def test_missing_numpy_is_a_clean_cli_error(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setattr(vectorized, "np", None)
        assert main(["experiments", "--quick", "--backend", "numpy"]) == 2
        err = capsys.readouterr().err
        assert "numpy" in err and "backend" in err

    def test_missing_numpy_session_gating_error(self, monkeypatch):
        monkeypatch.setattr(vectorized, "np", None)
        with pytest.raises(RuntimeError, match="requires the optional numpy"):
            ExperimentSession(backend="numpy")
