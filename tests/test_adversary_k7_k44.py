"""Theorems 6, 7 and Corollaries 3, 4: the K7 and K4,4 adversaries."""

import pytest

from repro.core.adversary import (
    K44_FAILURE_BUDGET,
    K7_FAILURE_BUDGET,
    attack_k44,
    attack_k7,
)
from repro.core.algorithms import (
    Distance2Algorithm,
    Distance3BipartiteAlgorithm,
    GreedyLowestNeighbor,
    RandomCyclicPermutations,
)
from repro.core.model import destination_as_source_destination
from repro.graphs import construct
from repro.graphs.connectivity import are_connected

SD_PATTERNS = [
    Distance2Algorithm(),
    RandomCyclicPermutations(seed=2),
    RandomCyclicPermutations(seed=9),
    destination_as_source_destination(GreedyLowestNeighbor()),
]


class TestCorollary3:
    @pytest.mark.parametrize("algorithm", SD_PATTERNS, ids=lambda a: a.name)
    def test_k7_broken_within_budget(self, algorithm):
        graph = construct.complete_graph(7)
        result = attack_k7(graph, algorithm, 0, 6)
        assert result is not None
        assert result.size <= K7_FAILURE_BUDGET
        assert are_connected(graph, 0, 6, result.failures)

    def test_k7_minus_1(self):
        # Theorem 6 proper: the construction also works without the s-t link
        graph = construct.minus_links(construct.complete_graph(7), [(0, 6)])
        result = attack_k7(graph, Distance2Algorithm(), 0, 6)
        assert result is not None
        assert are_connected(graph, 0, 6, result.failures)


class TestCorollary4:
    @pytest.mark.parametrize(
        "algorithm",
        [Distance2Algorithm(), Distance3BipartiteAlgorithm(), RandomCyclicPermutations(seed=5)],
        ids=lambda a: a.name,
    )
    def test_k44_broken_within_budget(self, algorithm):
        graph = construct.complete_bipartite(4, 4)
        result = attack_k44(graph, algorithm, 0, 4)
        assert result is not None
        assert result.size <= K44_FAILURE_BUDGET
        assert are_connected(graph, 0, 4, result.failures)

    def test_k44_minus_1(self):
        graph = construct.minus_links(construct.complete_bipartite(4, 4), [(0, 4)])
        result = attack_k44(graph, Distance2Algorithm(), 0, 4)
        assert result is not None
        assert are_connected(graph, 0, 4, result.failures)

    def test_same_part_rejected(self):
        with pytest.raises(ValueError):
            attack_k44(construct.complete_bipartite(4, 4), Distance2Algorithm(), 0, 1)
