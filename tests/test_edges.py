"""Unit tests for canonical edges and failure sets."""

import pytest

from repro.graphs.edges import (
    EMPTY_FAILURES,
    edge,
    edges,
    failure_set,
    incident_failures,
    iter_subsets,
    other_endpoint,
)


class TestEdge:
    def test_orders_integers(self):
        assert edge(3, 1) == (1, 3)

    def test_orders_strings(self):
        assert edge("b", "a") == ("a", "b")

    def test_symmetric(self):
        assert edge(1, 2) == edge(2, 1)

    def test_hash_equal(self):
        assert hash(edge(1, 2)) == hash(edge(2, 1))

    def test_mixed_types_stable(self):
        assert edge("x", 1) == edge(1, "x")

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            edge(1, 1)

    def test_preserves_identity(self):
        u, v = edge(5, 2)
        assert {u, v} == {2, 5}


class TestEdges:
    def test_deduplicates_orientations(self):
        assert edges([(2, 1), (1, 2)]) == frozenset({(1, 2)})

    def test_failure_set_constructor(self):
        assert failure_set((1, 2), (3, 2)) == frozenset({(1, 2), (2, 3)})

    def test_empty(self):
        assert edges([]) == EMPTY_FAILURES


class TestIncidentFailures:
    def test_filters_by_node(self):
        failures = failure_set((1, 2), (2, 3), (4, 5))
        assert incident_failures(failures, 2) == failure_set((1, 2), (2, 3))

    def test_non_member(self):
        failures = failure_set((1, 2))
        assert incident_failures(failures, 9) == EMPTY_FAILURES

    def test_empty_failures(self):
        assert incident_failures(EMPTY_FAILURES, 1) == EMPTY_FAILURES


class TestOtherEndpoint:
    def test_both_directions(self):
        assert other_endpoint((1, 2), 1) == 2
        assert other_endpoint((1, 2), 2) == 1

    def test_non_endpoint_raises(self):
        with pytest.raises(ValueError):
            other_endpoint((1, 2), 3)


class TestIterSubsets:
    def test_counts_power_set(self):
        items = [edge(0, 1), edge(1, 2), edge(2, 3)]
        assert sum(1 for _ in iter_subsets(items)) == 8

    def test_size_cap(self):
        items = [edge(0, 1), edge(1, 2), edge(2, 3)]
        subsets = list(iter_subsets(items, max_size=1))
        assert len(subsets) == 4
        assert all(len(s) <= 1 for s in subsets)

    def test_increasing_size_order(self):
        items = [edge(0, 1), edge(1, 2)]
        sizes = [len(s) for s in iter_subsets(items)]
        assert sizes == sorted(sizes)
