"""Theorem 1 and Corollary 1: the r-tolerance adversary."""

import pytest

from repro.core.adversary import attack_r_tolerance, gadget_count, verify_attack
from repro.core.algorithms import Distance2Algorithm, RandomCyclicPermutations
from repro.graphs import construct
from repro.graphs.connectivity import st_edge_connectivity

PATTERNS = [Distance2Algorithm(), RandomCyclicPermutations(seed=1), RandomCyclicPermutations(seed=7)]


class TestTheorem1:
    @pytest.mark.parametrize("r", [1, 2])
    @pytest.mark.parametrize("algorithm", PATTERNS, ids=lambda a: a.name)
    def test_adversary_wins_on_k_3_plus_5r(self, r, algorithm):
        graph = construct.complete_graph(3 + 5 * r)
        result = attack_r_tolerance(graph, algorithm, 0, 3 + 5 * r - 1, r=r)
        assert result is not None
        # promise: s and t remain exactly >= r connected
        connectivity = st_edge_connectivity(graph, 0, 3 + 5 * r - 1, result.failures)
        assert connectivity >= r

    def test_witness_is_verified(self):
        graph = construct.complete_graph(8)
        algorithm = Distance2Algorithm()
        result = attack_r_tolerance(graph, algorithm, 0, 7, r=1)
        pattern = algorithm.build(graph, 0, 7)
        assert verify_attack(graph, pattern, 0, 7, result.failures, min_connectivity=1)

    def test_gadget_count(self):
        assert gadget_count(construct.complete_graph(8)) == 1
        assert gadget_count(construct.complete_graph(13)) == 2
        assert gadget_count(construct.complete_graph(18)) == 3

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            attack_r_tolerance(construct.complete_graph(5), Distance2Algorithm(), 0, 4, r=1)


class TestCorollary1:
    def test_supergraph_inherits_impossibility(self):
        # K9 contains K8 = K_{3+5} as a subgraph, so no pattern is
        # 1-tolerant on it either; the adversary still wins.
        graph = construct.complete_graph(9)
        result = attack_r_tolerance(graph, Distance2Algorithm(), 0, 8, r=1)
        assert result is not None


class TestConstructionQuality:
    def test_construction_not_fallback(self):
        # the proof-guided construction (not random search) should win
        graph = construct.complete_graph(13)
        result = attack_r_tolerance(graph, RandomCyclicPermutations(seed=3), 0, 12, r=2)
        assert result.method == "theorem-1 construction"
