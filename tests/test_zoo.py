"""The synthetic Topology Zoo suite (§VIII substitution)."""

import networkx as nx
import pytest

from repro.graphs.planarity import is_outerplanar, is_planar, planarity_class
from repro.graphs.zoo import FAMILY_MIX, generate_zoo


@pytest.fixture(scope="module")
def suite():
    return generate_zoo()


class TestSuiteShape:
    def test_size_is_260(self, suite):
        assert len(suite) == 260
        assert sum(count for _, count in FAMILY_MIX) == 260

    def test_deterministic(self, suite):
        again = generate_zoo()
        for a, b in zip(suite, again):
            assert a.name == b.name
            assert set(a.graph.edges) == set(b.graph.edges)

    def test_size_ranges(self, suite):
        ns = [z.n for z in suite]
        ms = [z.m for z in suite]
        assert min(ns) >= 3
        assert max(ns) <= 754
        assert max(ms) <= 895

    def test_all_connected(self, suite):
        assert all(nx.is_connected(z.graph) for z in suite)

    def test_all_simple(self, suite):
        for z in suite:
            assert not any(u == v for u, v in z.graph.edges)


class TestPlanarityMix:
    def test_matches_paper_aggregates(self, suite):
        classes = [planarity_class(z.graph) for z in suite]
        outerplanar = classes.count("outerplanar") / len(classes)
        planar = classes.count("planar") / len(classes)
        nonplanar = classes.count("non-planar") / len(classes)
        # paper: ~33.5% outerplanar, 55.8% planar, rest non-planar
        assert 0.28 <= outerplanar <= 0.40
        assert 0.45 <= planar <= 0.65
        assert 0.05 <= nonplanar <= 0.18


class TestFamilies:
    def test_outerplanar_families(self, suite):
        for z in suite:
            if z.family in ("tree", "ring", "max_outerplanar", "cactus"):
                assert is_outerplanar(z.graph), z.name

    def test_planar_families(self, suite):
        for z in suite:
            if z.family in ("wheel", "netrail_tree", "grid", "double_wheel", "apollonian", "prism"):
                assert is_planar(z.graph), z.name
                assert not is_outerplanar(z.graph), z.name

    def test_nonplanar_families(self, suite):
        for z in suite:
            if z.family in ("nonplanar_sparse", "nonplanar_dense"):
                assert not is_planar(z.graph), z.name

    def test_trees_are_trees(self, suite):
        for z in suite:
            if z.family == "tree":
                assert nx.is_tree(z.graph), z.name
