"""Theorems 14 and 15: few-failure impossibility via padding."""

import pytest

from repro.core.adversary import (
    attack_complete_bipartite,
    attack_complete_graph,
    complete_bipartite_budget,
    complete_graph_budget,
)
from repro.core.algorithms import Distance2Algorithm, RandomCyclicPermutations
from repro.graphs import construct
from repro.graphs.connectivity import are_connected


class TestTheorem14:
    @pytest.mark.parametrize("n", [8, 10, 14])
    def test_linear_failure_budget(self, n):
        graph = construct.complete_graph(n)
        result = attack_complete_graph(graph, Distance2Algorithm(), 0, n - 1)
        assert result is not None
        # measured budget: 6(n-7) padding + <= 15 inner (see DESIGN.md for
        # the paper's 6n-33 vs our 6n-27 accounting)
        assert result.size <= 6 * (n - 7) + 15
        assert are_connected(graph, 0, n - 1, result.failures)

    def test_budget_is_linear(self):
        sizes = {}
        for n in (9, 12):
            graph = construct.complete_graph(n)
            result = attack_complete_graph(graph, RandomCyclicPermutations(seed=1), 0, n - 1)
            sizes[n] = result.size
        assert sizes[12] - sizes[9] == 6 * 3  # slope 6 per node

    def test_small_n_rejected(self):
        with pytest.raises(ValueError):
            attack_complete_graph(construct.complete_graph(7), Distance2Algorithm(), 0, 6)

    def test_paper_budget_formula(self):
        assert complete_graph_budget(8) == 15
        assert complete_graph_budget(20) == 87


class TestTheorem15:
    @pytest.mark.parametrize("a,b", [(4, 4), (5, 5), (4, 6)])
    def test_bipartite_budget(self, a, b):
        graph = construct.complete_bipartite(a, b)
        result = attack_complete_bipartite(graph, Distance2Algorithm(), 0, a)
        assert result is not None
        assert result.size <= 3 * (b - 4) + 4 * (a - 4) + 11 + 4
        assert are_connected(graph, 0, a, result.failures)

    def test_small_parts_rejected(self):
        with pytest.raises(ValueError):
            attack_complete_bipartite(
                construct.complete_bipartite(3, 5), Distance2Algorithm(), 0, 3
            )

    def test_paper_budget_formula(self):
        assert complete_bipartite_budget(4, 4) == 7
        assert complete_bipartite_budget(8, 8) == 35
