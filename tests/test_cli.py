"""The ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest

from repro.cli import main


def run_cli(*args):
    return main(list(args))


class TestClassify:
    def test_netrail(self, capsys):
        assert run_cli("classify", "netrail", "--budget", "50000") == 0
        out = capsys.readouterr().out
        assert "sometimes" in out

    def test_ring(self, capsys):
        assert run_cli("classify", "ring") == 0
        assert "possible" in capsys.readouterr().out

    def test_edge_list_file(self, tmp_path, capsys):
        path = tmp_path / "net.txt"
        path.write_text("# comment\n0 1\n1 2\n2 0\n")
        assert run_cli("classify", str(path)) == 0
        assert "outerplanar" in capsys.readouterr().out


class TestRoute:
    def test_k5_with_failures(self, capsys):
        assert run_cli("route", "k5", "0", "4", "--fail", "0-4", "1-4") == 0
        out = capsys.readouterr().out
        assert "delivered" in out

    def test_wheel_destination_routing(self, capsys):
        assert run_cli("route", "wheel", "1", "0") == 0
        assert "delivered" in capsys.readouterr().out


class TestAttack:
    def test_k7(self, capsys):
        assert run_cli("attack", "k7", "k7") == 0
        out = capsys.readouterr().out
        assert "witness" in out

    def test_k44(self, capsys):
        assert run_cli("attack", "k44", "k44") == 0
        assert "witness" in capsys.readouterr().out

    def test_too_small_graph_reports(self, capsys):
        assert run_cli("attack", "rtolerance", "k7", "--r", "1") == 2
        assert "cannot attack" in capsys.readouterr().err


class TestTour:
    def test_fan(self, capsys):
        assert run_cli("tour", "fan", "--fail", "0-3") == 0
        assert "toured forever" in capsys.readouterr().out

    def test_k5_hamiltonian(self, capsys):
        assert run_cli("tour", "k5") == 0
        assert "Hamiltonian" in capsys.readouterr().out


class TestZoo:
    def test_small_slice(self, capsys):
        assert run_cli("zoo", "--stride", "40", "--budget", "1000") == 0
        assert "Fig. 7" in capsys.readouterr().out


def test_module_entry_point():
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "classify", "ring"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0
    assert "possible" in completed.stdout


class TestTraffic:
    def test_fat_tree_sweep_end_to_end(self, capsys):
        assert run_cli("traffic", "fattree", "--sizes", "0,2", "--samples", "3") == 0
        out = capsys.readouterr().out
        assert "congestion sweep" in out
        assert "arborescence" in out
        assert "mean max load" in out

    def test_single_algorithm_with_attack(self, capsys):
        code = run_cli(
            "traffic", "ring", "--matrix", "all-to-one", "--algorithm", "greedy",
            "--sizes", "0,1", "--samples", "2", "--attack", "1",
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "worst-case load attack" in out

    def test_unsupported_algorithm_reports(self, capsys):
        # fat-tree is not outerplanar, so the Cor-5 tour cannot build
        assert run_cli("traffic", "fattree", "--algorithm", "tour", "--samples", "2") == 2
        assert "cannot run" in capsys.readouterr().err

    def test_matrix_choices(self, capsys):
        for matrix in ("hotspot", "gravity", "all-to-all"):
            assert run_cli(
                "traffic", "hypercube", "--matrix", matrix, "--algorithm", "arborescence",
                "--sizes", "0,1", "--samples", "2",
            ) == 0
            assert "congestion sweep" in capsys.readouterr().out


class TestTelemetryCli:
    ARGS = (
        "experiments", "--topologies", "ring", "--schemes", "greedy",
        "--sizes", "0,1", "--samples", "2",
    )

    def test_trace_metrics_and_progress(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        code = run_cli(*self.ARGS, "--trace", str(trace), "--metrics", "--progress")
        assert code == 0
        captured = capsys.readouterr()
        assert "repro_grid_cells_total" in captured.out
        assert "repro_engine_walks_total" in captured.out
        assert "[grid] 1/1 cells, 0 errors" in captured.err
        from repro.obs import validate_trace

        names = {event["name"] for event in validate_trace(trace)}
        assert "grid_cell" in names

    def test_stats_renders_trace_and_snapshot(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        snapshot = tmp_path / "m.json"
        assert run_cli(
            *self.ARGS, "--trace", str(trace), "--metrics-out", str(snapshot)
        ) == 0
        capsys.readouterr()
        assert run_cli("stats", str(trace)) == 0
        assert "grid_cell" in capsys.readouterr().out
        assert run_cli("stats", str(trace), "--validate") == 0
        assert "valid trace" in capsys.readouterr().out
        assert run_cli("stats", str(snapshot)) == 0
        assert "repro_grid_cells_total" in capsys.readouterr().out

    def test_stats_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"event": "end", "span": 1, "name": "x", "t": 0.0, "attrs": {}}\n')
        assert run_cli("stats", str(bad)) != 0
        assert capsys.readouterr().err

    def test_resume_reports_staleness(self, tmp_path, capsys):
        journal = tmp_path / "cells.jsonl"
        assert run_cli(*self.ARGS, "--resume", str(journal)) == 0
        capsys.readouterr()
        assert run_cli(*self.ARGS, "--resume", str(journal)) == 0
        captured = capsys.readouterr()
        assert "resuming from" in captured.err
        assert "journaled cells, newest" in captured.err
        assert "resumed 1 cells" in captured.out
