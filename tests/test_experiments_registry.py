"""The scheme/topology registries: names, predicates, applicability."""

import networkx as nx
import pytest

from repro.core.model import (
    DestinationAlgorithm,
    SourceDestinationAlgorithm,
    TouringAlgorithm,
)
from repro.experiments import (
    SchemeNotApplicable,
    UnknownSchemeError,
    UnknownTopologyError,
    list_schemes,
    list_topologies,
    resolve_topology,
    scheme,
    topology,
)
from repro.graphs.edges import sorted_nodes

#: scheme -> a registered topology spec (string notation) where the
#: applicability predicate holds
APPLICABLE_ON = {
    "arborescence": "ring",
    "distance2": "ring",
    "distance3": "grid",
    "tour": "ring",
    "greedy": "ring",
    "right-hand": "fan",
    "hamiltonian": "k5",
    "two-stage-tour": "path(2)",
    "k5-source": "k5",
    "k33-source": "k33",
    "k5-minus2": "k-minus(5, 2)",
    "k33-minus2": "k-bipartite-minus(3, 3, 2)",
    "random-sd": "ring",
    "random-dest": "ring",
    "random-port": "ring",
}

#: scheme -> a registered topology where the predicate must refuse.
#: "two-rings" (disconnected) works for every scheme; schemes with a
#: sharper precondition also get a connected refusal case.
NOT_APPLICABLE_ON = {
    "arborescence": "two-rings",
    "distance2": "two-rings",
    "distance3": "k5",  # odd cycle: not bipartite
    "tour": "petersen",  # G - t never outerplanar
    "greedy": "two-rings",
    "right-hand": "wheel",  # K4 minor: planar but not outerplanar
    "hamiltonian": "grid",  # no Hamiltonian decomposition
    "two-stage-tour": "ring",  # no degree-1 destination
    "k5-source": "k7",  # more than five nodes
    "k33-source": "k44",  # not embeddable in K3,3
    "k5-minus2": "k7",
    "k33-minus2": "petersen",
    "random-sd": "two-rings",
    "random-dest": "two-rings",
    "random-port": "two-rings",
}


def _build_one_unit(algorithm, graph):
    """Build one pattern per the scheme's arity (the grid's first unit)."""
    nodes = sorted_nodes(graph.nodes)
    if isinstance(algorithm, TouringAlgorithm):
        return algorithm.build(graph)
    if isinstance(algorithm, SourceDestinationAlgorithm):
        return algorithm.build(graph, nodes[0], nodes[-1])
    assert isinstance(algorithm, DestinationAlgorithm)
    return algorithm.build(graph, nodes[0])


class TestSchemeRegistry:
    def test_every_scheme_has_cases(self):
        names = {spec.name for spec in list_schemes()}
        assert names == set(APPLICABLE_ON) == set(NOT_APPLICABLE_ON)

    def test_lookup_round_trip(self):
        for spec in list_schemes():
            assert scheme(spec.name) is spec
            assert spec.arity in (
                "per-source-destination",
                "per-destination",
                "per-graph",
            )
            assert spec.theorem and spec.requires and spec.resilience

    def test_unknown_scheme(self):
        with pytest.raises(UnknownSchemeError):
            scheme("no-such-scheme")

    @pytest.mark.parametrize("name", sorted(APPLICABLE_ON))
    def test_buildable_where_applicable(self, name):
        graph = resolve_topology(APPLICABLE_ON[name])
        spec = scheme(name)
        assert spec.applicable(graph)
        algorithm = spec.build_for(graph)  # predicate-checked
        pattern = _build_one_unit(algorithm, graph)
        assert pattern is not None

    @pytest.mark.parametrize("name", sorted(NOT_APPLICABLE_ON))
    def test_refused_where_not_applicable(self, name):
        graph = resolve_topology(NOT_APPLICABLE_ON[name])
        spec = scheme(name)
        assert not spec.applicable(graph)
        with pytest.raises(SchemeNotApplicable) as excinfo:
            spec.build_for(graph)
        # the refusal is explanatory, not a bare crash
        assert spec.name in str(excinfo.value)
        assert spec.requires in str(excinfo.value)

    def test_congestion_default_lineup_matches_harness(self):
        from repro.traffic.congestion import default_competitors

        tagged = [spec.factory.name for spec in list_schemes(tag="congestion-default")]
        assert tagged == [algorithm.name for algorithm in default_competitors()]

    def test_model_arity_is_consistent(self):
        for spec in list_schemes():
            algorithm = spec.instantiate()
            assert algorithm.model is spec.model


class TestTopologyRegistry:
    def test_every_default_builds(self):
        for spec in list_topologies():
            graph = spec.build()
            assert isinstance(graph, nx.Graph)
            assert graph.number_of_nodes() >= 1
            assert topology(spec.name) is spec

    def test_unknown_topology(self):
        with pytest.raises(UnknownTopologyError):
            topology("no-such-family")

    def test_size_notation(self):
        assert resolve_topology("ring(12)").number_of_nodes() == 12
        assert resolve_topology("torus(3, 5)").number_of_nodes() == 15
        assert resolve_topology("hypercube(3)").number_of_nodes() == 8
        assert resolve_topology(" fan ").number_of_nodes() == 8

    def test_bad_parameters_are_explicit(self):
        with pytest.raises(ValueError):
            topology("ring").build(8, 9)  # too many positional args
        with pytest.raises(ValueError):
            topology("ring").build(rim=8)  # not a parameter of ring

    def test_zoo_member_matches_generate_zoo(self):
        from repro.graphs.zoo import generate_zoo

        suite = generate_zoo(seed=2022)
        reference = next(t.graph for t in suite if t.family == "wheel")
        built = topology("zoo").build("wheel", 0, 2022)
        assert set(built.nodes) == set(reference.nodes)
        assert {frozenset(e) for e in built.edges} == {
            frozenset(e) for e in reference.edges
        }

    def test_datacenter_families_cover_cli_names(self):
        names = {spec.name for spec in list_topologies()}
        # the former private CLI switch, now registry-backed
        assert {
            "k5", "k7", "k33", "k44", "netrail", "petersen", "wheel",
            "grid", "ring", "fan", "fattree", "hypercube", "torus",
        } <= names


class TestNoPrivateLists:
    def test_cli_has_no_private_scheme_or_family_lists(self):
        import repro.cli as cli

        assert not hasattr(cli, "_TRAFFIC_ALGORITHMS")
        assert not hasattr(cli, "_FAMILIES")

    def test_congestion_module_has_no_private_scheme_list(self):
        import inspect

        from repro.traffic import congestion

        source = inspect.getsource(congestion.default_competitors)
        assert "list_schemes" in source
        # no hardcoded algorithm constructors in the default line-up
        assert "ArborescenceRouting()" not in source
