"""Traffic subsystem: matrices, batched load router, congestion sweeps.

The load-router tests are differential at their core: the batched
functional-graph router must reproduce, link for link and counter for
counter, what one naive simulated walk per demand produces — across all
three routing models and randomized graphs/failure sets (the ISSUE 2
acceptance bar).
"""

import random

import networkx as nx
import pytest

from repro.core.algorithms import (
    ArborescenceRouting,
    Distance2Algorithm,
    GreedyLowestNeighbor,
    RightHandTouring,
)
from repro.core.engine.sweep import EngineState
from repro.core.simulator import Network, route
from repro.graphs import construct
from repro.graphs.edges import edge, edge_sort_key, failure_set
from repro.traffic import (
    Demand,
    TrafficEngine,
    all_to_all,
    all_to_one,
    compare_congestion,
    congestion_table,
    congestion_vs_failures,
    gravity,
    greedy_congestion_attack,
    hotspot,
    per_packet_loads,
    permutation,
    route_matrix,
    sample_failure_grid,
    total_volume,
)


def random_connected_graph(seed, n_low=4, n_high=9, p=0.5):
    rng = random.Random(seed)
    while True:
        n = rng.randint(n_low, n_high)
        graph = nx.gnp_random_graph(n, p, seed=rng.randint(0, 10**6))
        if graph.number_of_edges() >= 3 and nx.is_connected(graph):
            return graph


def random_failures(graph, seed, fraction=2):
    rng = random.Random(seed)
    links = sorted((edge(u, v) for u, v in graph.edges), key=edge_sort_key)
    return frozenset(rng.sample(links, rng.randint(0, len(links) // fraction)))


def assert_reports_equal(fast, slow):
    assert fast.loads == slow.loads
    for field in (
        "demands",
        "total_volume",
        "delivered_volume",
        "dropped_volume",
        "looped_volume",
        "disconnected_volume",
        "delivered_hops",
    ):
        assert getattr(fast, field) == getattr(slow, field), field
    assert fast.stretch_volume == pytest.approx(slow.stretch_volume)


class TestMatrices:
    def test_all_to_one_shape(self):
        g = construct.complete_graph(5)
        demands = all_to_one(g, 0, volume=3)
        assert len(demands) == 4
        assert all(d.destination == 0 and d.volume == 3 for d in demands)

    def test_all_to_all_shape(self):
        g = construct.cycle_graph(4)
        demands = all_to_all(g)
        assert len(demands) == 12
        assert total_volume(demands) == 12

    def test_permutation_is_a_derangement(self):
        g = construct.complete_graph(7)
        demands = permutation(g, seed=3)
        assert len(demands) == 7
        assert sorted(d.source for d in demands) == sorted(g.nodes)
        assert sorted(d.destination for d in demands) == sorted(g.nodes)
        assert all(d.source != d.destination for d in demands)

    def test_generators_deterministic(self):
        g = construct.fat_tree(4)
        assert permutation(g, seed=5) == permutation(g, seed=5)
        assert hotspot(g, seed=5) == hotspot(g, seed=5)
        assert gravity(g, seed=5) == gravity(g, seed=5)

    def test_gravity_prefers_high_degree(self):
        g = construct.star_graph(5)  # hub 0 has degree 5, leaves 1
        demands = gravity(g, total_volume=600, seed=0)
        hub_volume = sum(d.volume for d in demands if 0 in (d.source, d.destination))
        assert hub_volume > total_volume(demands) / 2

    def test_demand_validation(self):
        with pytest.raises(ValueError):
            Demand(1, 1)
        with pytest.raises(ValueError):
            Demand(1, 2, volume=0)
        with pytest.raises(ValueError):
            all_to_one(construct.cycle_graph(3), "missing")


class TestLoadConservation:
    """Σ per-link load == Σ volume · (links on that demand's walk)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_total_load_equals_weighted_path_lengths(self, seed):
        graph = random_connected_graph(seed)
        failures = random_failures(graph, seed + 100)
        demands = all_to_all(graph, volume=2)
        algorithm = GreedyLowestNeighbor()
        report = route_matrix(graph, algorithm, demands, failures)
        network = Network(graph)
        patterns = {t: algorithm.build(graph, t) for t in graph.nodes}
        expected = sum(
            demand.volume
            * route(
                network, patterns[demand.destination], demand.source, demand.destination, failures
            ).steps
            for demand in demands
        )
        assert sum(report.loads.values()) == expected

    def test_failed_links_carry_no_load(self):
        graph = construct.complete_graph(5)
        failures = failure_set((0, 1), (2, 3))
        report = route_matrix(graph, ArborescenceRouting(), all_to_all(graph), failures)
        assert report.loads[(0, 1)] == 0
        assert report.loads[(2, 3)] == 0

    def test_volume_counters_partition_the_matrix(self):
        graph = random_connected_graph(17)
        failures = random_failures(graph, 18)
        report = route_matrix(graph, GreedyLowestNeighbor(), all_to_all(graph), failures)
        assert (
            report.delivered_volume + report.dropped_volume + report.looped_volume
            == report.total_volume
        )


class TestBatchedNaiveParity:
    """The acceptance bar: exact load parity across all three models."""

    @pytest.mark.parametrize("seed", range(8))
    def test_destination_model(self, seed):
        graph = random_connected_graph(seed)
        failures = random_failures(graph, seed + 50)
        demands = all_to_all(graph)
        for algorithm in (GreedyLowestNeighbor(), ArborescenceRouting()):
            fast = route_matrix(graph, algorithm, demands, failures)
            slow = per_packet_loads(graph, algorithm, demands, failures)
            assert_reports_equal(fast, slow)

    @pytest.mark.parametrize("seed", range(8))
    def test_source_destination_model(self, seed):
        graph = random_connected_graph(seed * 31 + 7)
        failures = random_failures(graph, seed + 200)
        demands = hotspot(graph, seed=seed)
        algorithm = Distance2Algorithm()
        assert_reports_equal(
            route_matrix(graph, algorithm, demands, failures),
            per_packet_loads(graph, algorithm, demands, failures),
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_touring_model(self, seed):
        graph = construct.maximal_outerplanar(4 + seed % 5, seed=seed)
        failures = random_failures(graph, seed + 300)
        demands = all_to_all(graph)
        algorithm = RightHandTouring()
        assert_reports_equal(
            route_matrix(graph, algorithm, demands, failures),
            per_packet_loads(graph, algorithm, demands, failures),
        )

    def test_exhaustive_failure_sets_on_a_gadget(self):
        """Every failure set of a small graph, not just sampled ones."""
        from repro.core.resilience import all_failure_sets

        graph = construct.fig2_two_rail(2)
        demands = all_to_one(graph, "t")
        engine = TrafficEngine(graph, GreedyLowestNeighbor())
        for failures in all_failure_sets(graph, max_failures=2):
            assert_reports_equal(
                engine.load(demands, failures),
                per_packet_loads(graph, GreedyLowestNeighbor(), demands, failures),
            )

    def test_fallback_for_failures_outside_the_graph(self):
        graph = construct.cycle_graph(5)
        failures = frozenset({("v1", "nowhere")})
        demands = all_to_one(graph, 0)
        assert_reports_equal(
            route_matrix(graph, GreedyLowestNeighbor(), demands, failures),
            per_packet_loads(graph, GreedyLowestNeighbor(), demands, failures),
        )

    def test_rejects_unknown_endpoints(self):
        graph = construct.cycle_graph(4)
        demands = [Demand("ghost", 0)]
        with pytest.raises(ValueError):
            route_matrix(graph, GreedyLowestNeighbor(), demands)
        with pytest.raises(ValueError):
            per_packet_loads(graph, GreedyLowestNeighbor(), demands)

    def test_engine_state_is_reusable(self):
        graph = construct.fat_tree(4)
        state = EngineState(graph)
        demands = permutation(graph, seed=2)
        first = route_matrix(state, ArborescenceRouting(), demands)
        second = route_matrix(graph, ArborescenceRouting(), demands)
        assert first.loads == second.loads


class TestLoadReport:
    def test_percentiles_and_max(self):
        graph = construct.cycle_graph(6)
        report = route_matrix(graph, GreedyLowestNeighbor(), all_to_one(graph, 0))
        assert report.max_load == max(report.loads.values())
        assert report.percentile(100) == report.max_load
        assert report.percentile(1) == min(report.loads.values())
        assert report.p99_load <= report.max_load

    def test_delivered_fraction_and_stretch(self):
        graph = construct.complete_graph(5)
        report = route_matrix(graph, ArborescenceRouting(), all_to_all(graph))
        assert report.delivered_fraction == 1.0
        assert report.mean_stretch >= 1.0


class TestCongestionSweeps:
    def test_curve_shape_and_failure_free_point(self):
        graph = construct.fat_tree(4)
        demands = permutation(graph, seed=1)
        curve = congestion_vs_failures(
            graph, ArborescenceRouting(), demands, sizes=[0, 2], samples=4, seed=0
        )
        assert [point.failures for point in curve.points] == [0, 2]
        baseline = curve.at(0)
        assert baseline.scenarios == 1
        assert baseline.delivered_fraction == 1.0
        assert baseline.mean_max_load == baseline.worst_max_load

    def test_sample_grid_is_deterministic_and_shared(self):
        graph = construct.hypercube(3)
        grid_a = sample_failure_grid(graph, [0, 2, 3], samples=5, seed=9)
        grid_b = sample_failure_grid(graph, [0, 2, 3], samples=5, seed=9)
        assert grid_a == grid_b
        assert grid_a[0] == [frozenset()]
        assert all(len(f) == 2 for f in grid_a[2])

    def test_compare_skips_unsupported_algorithms(self):
        graph = construct.fat_tree(4)  # not outerplanar: tour must be skipped
        result = compare_congestion(
            graph, permutation(graph, seed=1), sizes=[0, 1], samples=2, seed=0
        )
        skipped_names = {name for name, _ in result.skipped}
        assert "tour-to-destination (Cor 5)" in skipped_names
        assert len(result.curves) >= 2
        # every surviving competitor saw the same grid
        sizes = {tuple(p.failures for p in curve.points) for curve in result.curves}
        assert len(sizes) == 1
        assert congestion_table(result.curves)  # renders

    def test_greedy_attack_is_verified_and_connected(self):
        graph = construct.fat_tree(4)
        demands = all_to_one(graph, ("core", 0))
        attack = greedy_congestion_attack(graph, ArborescenceRouting(), demands, max_failures=2)
        assert attack.max_load >= attack.baseline_max_load
        survivors = nx.Graph(graph)
        survivors.remove_edges_from(attack.failures)
        assert nx.is_connected(survivors)
        # the witness is genuine: re-simulation reproduces the load
        verified = route_matrix(graph, ArborescenceRouting(), demands, attack.failures)
        assert verified.max_load == attack.max_load
