"""Corollaries 5 and 6 (positive side): right-hand-rule touring."""

import networkx as nx
import pytest

from repro.core.algorithms import RightHandTouring, TourToDestination, TwoStageTour
from repro.core.resilience import (
    check_pattern_resilience,
    check_perfect_touring,
    sampled_failure_sets,
)
from repro.graphs import construct
from repro.graphs.embeddings import NotOuterplanarError


class TestRightHandTouring:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: construct.cycle_graph(5),
            lambda: construct.path_graph(5),
            lambda: construct.fan_graph(6),
            lambda: construct.star_graph(4),
            lambda: construct.maximal_outerplanar(7, seed=1),
            lambda: construct.maximal_outerplanar(7, seed=5),
        ],
    )
    def test_exhaustive_perfect_touring(self, builder):
        verdict = check_perfect_touring(builder(), RightHandTouring())
        assert verdict.resilient, str(verdict.counterexample)

    def test_larger_graph_sampled(self):
        graph = construct.maximal_outerplanar(15, seed=3)
        verdict = check_perfect_touring(
            graph,
            RightHandTouring(),
            failure_sets=sampled_failure_sets(graph, samples=120, seed=9),
        )
        assert verdict.resilient, str(verdict.counterexample)

    def test_rejects_non_outerplanar(self):
        with pytest.raises(NotOuterplanarError):
            RightHandTouring().build(construct.complete_graph(4))

    def test_disconnected(self):
        g = nx.disjoint_union(construct.cycle_graph(4), construct.path_graph(3))
        verdict = check_perfect_touring(g, RightHandTouring())
        assert verdict.resilient, str(verdict.counterexample)


class TestTourToDestination:
    def test_supports(self):
        wheel = construct.wheel_graph(6)
        assert TourToDestination().supports(wheel, 0)  # hub removal -> ring
        assert not TourToDestination().supports(construct.complete_graph(5), 0)

    @pytest.mark.parametrize(
        "builder,destination",
        [
            (lambda: construct.wheel_graph(5), 0),
            (lambda: construct.wheel_graph(5), 3),
            (lambda: construct.cycle_graph(6), 2),
            (lambda: construct.fan_graph(6), 0),
        ],
    )
    def test_exhaustive_perfect_resilience(self, builder, destination):
        graph = builder()
        pattern = TourToDestination().build(graph, destination)
        verdict = check_pattern_resilience(graph, pattern, destination)
        assert verdict.resilient, str(verdict.counterexample)

    def test_netrail_good_destination(self):
        # Fig. 6: with v6 as destination, the remaining graph is
        # outerplanar and Cor 5 yields perfect resilience
        graph = construct.fig6_netrail()
        good = [t for t in graph.nodes if TourToDestination().supports(graph, t)]
        assert good
        pattern = TourToDestination().build(graph, good[0])
        verdict = check_pattern_resilience(graph, pattern, good[0])
        assert verdict.resilient, str(verdict.counterexample)


class TestTwoStageTour:
    def test_supports_degree_one_destination(self):
        g = construct.minus_links(construct.complete_bipartite(3, 3), [(2, 3), (2, 4)])
        assert TwoStageTour().supports(g, 2)

    def test_rejects_high_degree(self):
        assert not TwoStageTour().supports(construct.complete_bipartite(3, 3), 0)

    def test_exhaustive(self):
        g = construct.minus_links(construct.complete_bipartite(3, 3), [(2, 3), (2, 4)])
        pattern = TwoStageTour().build(g, 2)
        verdict = check_pattern_resilience(g, pattern, 2)
        assert verdict.resilient, str(verdict.counterexample)

    def test_build_rejects_unsupported(self):
        with pytest.raises(ValueError):
            TwoStageTour().build(construct.complete_bipartite(3, 3), 0)
