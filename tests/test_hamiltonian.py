"""Unit tests for Hamiltonian decompositions (Theorem 17 substrate)."""

import networkx as nx
import pytest

from repro.graphs import construct
from repro.graphs.hamiltonian import (
    bipartite_hamiltonian_decomposition,
    cycle_edges,
    hamiltonian_decomposition,
    is_hamiltonian_decomposition,
    walecki_decomposition,
)


class TestWalecki:
    @pytest.mark.parametrize("n", [3, 5, 7, 9, 11, 13])
    def test_partitions_complete_graph(self, n):
        cycles = walecki_decomposition(n)
        assert len(cycles) == (n - 1) // 2
        assert is_hamiltonian_decomposition(construct.complete_graph(n), cycles)

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_even_rejected(self, n):
        with pytest.raises(ValueError):
            walecki_decomposition(n)

    def test_cycles_are_hamiltonian(self):
        for cycle in walecki_decomposition(9):
            assert len(cycle) == 9
            assert len(set(cycle)) == 9


class TestBipartite:
    @pytest.mark.parametrize("n", [2, 4, 6, 8, 10])
    def test_partitions_complete_bipartite(self, n):
        cycles = bipartite_hamiltonian_decomposition(n)
        assert len(cycles) == n // 2
        assert is_hamiltonian_decomposition(construct.complete_bipartite(n, n), cycles)

    @pytest.mark.parametrize("n", [3, 5])
    def test_odd_rejected(self, n):
        with pytest.raises(ValueError):
            bipartite_hamiltonian_decomposition(n)

    def test_cycles_alternate_parts(self):
        for cycle in bipartite_hamiltonian_decomposition(4):
            for u, v in zip(cycle, cycle[1:] + cycle[:1]):
                assert (u < 4) != (v < 4)


class TestDispatcher:
    def test_complete(self):
        g = construct.complete_graph(7)
        assert is_hamiltonian_decomposition(g, hamiltonian_decomposition(g))

    def test_complete_bipartite(self):
        g = construct.complete_bipartite(4, 4)
        assert is_hamiltonian_decomposition(g, hamiltonian_decomposition(g))

    def test_unsupported(self):
        with pytest.raises(ValueError):
            hamiltonian_decomposition(construct.cycle_graph(6))


class TestValidation:
    def test_rejects_shared_link(self):
        g = construct.complete_graph(5)
        cycles = walecki_decomposition(5)
        bad = [cycles[0], cycles[0]]
        assert not is_hamiltonian_decomposition(g, bad)

    def test_rejects_partial_cover(self):
        g = construct.complete_graph(5)
        cycles = walecki_decomposition(5)[:1]
        assert not is_hamiltonian_decomposition(g, cycles)

    def test_rejects_non_hamiltonian(self):
        g = construct.complete_graph(5)
        assert not is_hamiltonian_decomposition(g, [[0, 1, 2, 3]])

    def test_cycle_edges_closes_loop(self):
        edges = cycle_edges([0, 1, 2])
        assert set(edges) == {(0, 1), (1, 2), (0, 2)}


class TestArbitraryLabels:
    """The dispatcher maps integer-role constructions onto real labels."""

    def test_string_complete_graph(self):
        g = nx.complete_graph(["a", "b", "c", "d", "e"])
        cycles = hamiltonian_decomposition(g)
        assert is_hamiltonian_decomposition(g, cycles)

    def test_string_complete_bipartite(self):
        g = nx.complete_bipartite_graph(4, 4)
        g = nx.relabel_nodes(g, {i: f"n{i}" for i in g.nodes})
        cycles = hamiltonian_decomposition(g)
        assert is_hamiltonian_decomposition(g, cycles)

    def test_scrambled_integer_bipartition(self):
        # integer labels, but the bipartition is not {0..n-1} vs {n..2n-1}
        g = nx.Graph()
        left, right = [0, 2, 4, 6], [1, 3, 5, 7]
        g.add_edges_from((u, v) for u in left for v in right)
        cycles = hamiltonian_decomposition(g)
        assert is_hamiltonian_decomposition(g, cycles)

    def test_canonical_k5_output_unchanged(self):
        # bit-for-bit stability for integer 0..n-1 graphs (downstream
        # experiment records depend on this exact decomposition)
        assert hamiltonian_decomposition(construct.complete_graph(5)) == [
            [4, 0, 1, 3, 2],
            [4, 1, 2, 0, 3],
        ]

    def test_string_unsupported_still_rejected(self):
        g = nx.cycle_graph(["a", "b", "c", "d", "e", "f"])
        with pytest.raises(ValueError):
            hamiltonian_decomposition(g)
