"""Lemmas 1, 3, 4 and Theorem 16: touring impossibility."""

import pytest

from repro.core.adversary import (
    attack_touring,
    attack_touring_pattern,
    cyclic_permutation_violation,
    touring_impossibility_graphs,
)
from repro.core.algorithms import RandomPortCycles, RightHandTouring
from repro.core.model import FunctionPattern
from repro.graphs import construct


class TestLemmas3And4:
    """No touring pattern survives on K4 / K2,3 — exhaustively."""

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("name,graph", touring_impossibility_graphs(), ids=["K4", "K2,3"])
    def test_random_cycles_broken(self, name, graph, seed):
        witness = attack_touring(graph, RandomPortCycles(seed=seed))
        assert witness is not None
        start, failures = witness
        assert start in graph.nodes

    def test_k4_witness_small(self):
        # Lemma 3 uses exactly two failures; the exhaustive adversary finds
        # a witness of at most that size
        witness = attack_touring(construct.complete_graph(4), RandomPortCycles(seed=0))
        assert len(witness[1]) <= 2

    def test_k23_witness_small(self):
        # Lemma 4 uses exactly one failure
        witness = attack_touring(construct.complete_bipartite(2, 3), RandomPortCycles(seed=1))
        assert len(witness[1]) <= 1


class TestTheorem16ClosesBothSides:
    def test_outerplanar_graphs_survive(self):
        # the same adversary finds nothing on outerplanar graphs toured by
        # the right-hand rule (Cor 6 positive side)
        witness = attack_touring(construct.cycle_graph(5), RightHandTouring())
        assert witness is None

    def test_fan_survives(self):
        witness = attack_touring(construct.fan_graph(5), RightHandTouring())
        assert witness is None


class TestLemma1:
    def test_right_hand_rule_is_cyclic(self):
        graph = construct.cycle_graph(5)
        pattern = RightHandTouring().build(graph)
        assert cyclic_permutation_violation(graph, pattern) is None

    def test_violation_detected_and_punished(self):
        graph = construct.cycle_graph(4)

        def stubborn(view):
            # always go to the lowest alive neighbour: not a permutation
            return view.alive[0] if view.alive else None

        pattern = FunctionPattern(stubborn)
        witness = cyclic_permutation_violation(graph, pattern)
        assert witness is not None
        node, failures = witness
        # the Lemma's failure set really breaks the tour
        broken = attack_touring_pattern(graph, pattern)
        assert broken is not None
