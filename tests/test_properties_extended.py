"""Extended hypothesis property tests over the paper's core invariants."""

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.core.algorithms import (
    Distance3BipartiteAlgorithm,
    K33SourceRouting,
    K5Minus2Routing,
    RightHandTouring,
)
from repro.core.algorithms.minor_transfer import (
    contract_link_with_pattern,
    delete_link_with_pattern,
)
from repro.core.applications import TouringBroadcast
from repro.core.resilience import check_pattern_resilience
from repro.core.simulator import route
from repro.graphs import construct
from repro.graphs.connectivity import are_connected, component_of
from repro.graphs.edges import edge, edges
from repro.graphs.minors import MinorOutcome, contains_subgraph, has_minor


@st.composite
def bipartite_subgraph_33(draw):
    """A random subgraph of K3,3 (with all six nodes present)."""
    possible = [(u, v) for u in range(3) for v in range(3, 6)]
    chosen = draw(st.lists(st.sampled_from(possible), unique=True, min_size=1))
    graph = nx.Graph()
    graph.add_nodes_from(range(6))
    graph.add_edges_from(chosen)
    return graph


@st.composite
def failures_of(draw, graph):
    links = sorted((edge(u, v) for u, v in graph.edges), key=repr)
    failed = draw(st.lists(st.sampled_from(links), unique=True)) if links else []
    return edges(failed)


# ---------------------------------------------------------------------------
# Theorem 9 as a property over random K3,3 subgraphs and failures.
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_k33_tables_deliver_on_random_subgraphs(data):
    graph = data.draw(bipartite_subgraph_33())
    failures = data.draw(failures_of(graph))
    source = data.draw(st.sampled_from(sorted(graph.nodes)))
    destination = data.draw(st.sampled_from(sorted(graph.nodes)))
    if source == destination or not are_connected(graph, source, destination, failures):
        return
    pattern = K33SourceRouting().build(graph, source, destination)
    assert route(graph, pattern, source, destination, failures).delivered


# ---------------------------------------------------------------------------
# Theorem 12 as a property over random destinations of K5^-2 variants.
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    first=st.integers(min_value=0, max_value=9),
    second=st.integers(min_value=0, max_value=9),
    destination=st.integers(min_value=0, max_value=4),
)
def test_k5_minus_2_random_removals(first, second, destination):
    links = sorted(construct.complete_graph(5).edges)
    if first == second:
        return
    graph = construct.minus_links(construct.complete_graph(5), [links[first], links[second]])
    router = K5Minus2Routing()
    if not router.supports(graph, destination):
        # only possible when this destination hits the Thm 10 frontier
        return
    pattern = router.build(graph, destination)
    verdict = check_pattern_resilience(graph, pattern, destination)
    assert verdict.resilient, str(verdict.counterexample)


# ---------------------------------------------------------------------------
# Broadcast coverage on random outerplanar graphs.
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=3, max_value=10),
    data=st.data(),
)
def test_broadcast_covers_component(seed, n, data):
    graph = construct.maximal_outerplanar(n, seed=seed)
    failures = data.draw(failures_of(graph))
    source = data.draw(st.sampled_from(sorted(graph.nodes)))
    broadcast = TouringBroadcast(RightHandTouring())
    result = broadcast.run(graph, source, failures)
    assert result.completed
    assert result.covers(component_of(graph, source, failures))


# ---------------------------------------------------------------------------
# Minor-transfer: random delete/contract chains preserve resilience.
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(operations=st.lists(st.tuples(st.booleans(), st.integers(min_value=0, max_value=50)), max_size=3))
def test_minor_transfer_chains(operations):
    from repro.core.algorithms import K5SourceRouting

    graph = construct.complete_graph(5)
    source, destination = 0, 4
    pattern = K5SourceRouting().build(graph, source, destination)
    for is_delete, pick in operations:
        candidates = [
            (u, v)
            for u, v in sorted(graph.edges)
            if source not in (u, v) and destination not in (u, v)
        ]
        if not candidates:
            break
        u, v = candidates[pick % len(candidates)]
        if is_delete:
            graph, pattern = delete_link_with_pattern(graph, pattern, u, v)
        else:
            graph, pattern = contract_link_with_pattern(graph, pattern, u, v)
    if not nx.has_path(graph, source, destination):
        return
    verdict = check_pattern_resilience(graph, pattern, destination, sources=[source])
    assert verdict.resilient, str(verdict.counterexample)


# ---------------------------------------------------------------------------
# Minor engine: subgraph containment implies minor containment.
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_subgraph_implies_minor(data):
    n = data.draw(st.integers(min_value=3, max_value=6))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    host_links = data.draw(st.lists(st.sampled_from(possible), unique=True, min_size=n - 1))
    host = nx.Graph(host_links)
    if host.number_of_nodes() < 3 or not nx.is_connected(host):
        return
    pattern_links = data.draw(
        st.lists(st.sampled_from(host_links), unique=True, min_size=1)
    )
    pattern = nx.Graph(pattern_links)
    if not nx.is_connected(pattern):
        return
    assert contains_subgraph(host, pattern)
    assert has_minor(host, pattern, budget=100_000) is MinorOutcome.YES


# ---------------------------------------------------------------------------
# Theorem 4's guarantee as a property on random bipartite graphs.
# ---------------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_distance3_property_random_bipartite(data):
    a = data.draw(st.integers(min_value=1, max_value=3))
    b = data.draw(st.integers(min_value=1, max_value=3))
    possible = [(u, v) for u in range(a) for v in range(a, a + b)]
    chosen = data.draw(st.lists(st.sampled_from(possible), unique=True, min_size=1))
    graph = nx.Graph()
    graph.add_nodes_from(range(a + b))
    graph.add_edges_from(chosen)
    failures = data.draw(failures_of(graph))
    nodes = sorted(graph.nodes)
    source = data.draw(st.sampled_from(nodes))
    destination = data.draw(st.sampled_from(nodes))
    if source == destination:
        return
    survived = nx.Graph(graph)
    survived.remove_edges_from(failures)
    if not nx.has_path(survived, source, destination):
        return
    if nx.shortest_path_length(survived, source, destination) > 3:
        return
    pattern = Distance3BipartiteAlgorithm().build(graph, source, destination)
    assert route(graph, pattern, source, destination, failures).delivered
