"""Theorems 12 and 13: destination-based routing on K5^-2 / K3,3^-2.

Exhaustive over all failure sets, all destinations, all sources — this is
the full statement of both theorems (including the Fig. 4 table with the
``@v4`` typo repaired).
"""

import pytest

from repro.core.algorithms import K33Minus2Routing, K5Minus2Routing, fig4_pattern
from repro.core.resilience import (
    check_pattern_resilience,
    check_perfect_resilience_destination,
)
from repro.graphs import construct


class TestTheorem12:
    def test_k5_minus_2_exhaustive(self):
        verdict = check_perfect_resilience_destination(
            construct.k_minus(5, 2), K5Minus2Routing()
        )
        assert verdict.resilient, str(verdict.counterexample)

    def test_k5_minus_2_adjacent_removals(self):
        # both removed links incident to one node (the Fig. 5 drawing)
        g = construct.minus_links(construct.complete_graph(5), [(4, 0), (4, 1)])
        verdict = check_perfect_resilience_destination(g, K5Minus2Routing())
        assert verdict.resilient, str(verdict.counterexample)

    @pytest.mark.parametrize(
        "builder",
        [
            lambda: construct.k_minus(5, 3),
            lambda: construct.complete_graph(4),
            lambda: construct.cycle_graph(5),
            lambda: construct.wheel_graph(4),
        ],
    )
    def test_minors(self, builder):
        verdict = check_perfect_resilience_destination(builder(), K5Minus2Routing())
        assert verdict.resilient, str(verdict.counterexample)

    def test_fig4_case_is_exercised(self):
        # destination with exactly two neighbours attached to a full K4
        g = construct.minus_links(construct.complete_graph(5), [(4, 2), (4, 3)])
        pattern = K5Minus2Routing().build(g, 4)
        verdict = check_pattern_resilience(g, pattern, 4)
        assert verdict.resilient, str(verdict.counterexample)

    def test_fig4_pattern_direct(self):
        g = construct.minus_links(construct.complete_graph(5), [(4, 2), (4, 3)])
        pattern = fig4_pattern(g, 4)
        verdict = check_pattern_resilience(g, pattern, 4)
        assert verdict.resilient, str(verdict.counterexample)

    def test_rejects_k5_minus_1(self):
        # Theorem 10 says K5^-1 is impossible; the router must refuse the
        # destination that keeps too many links
        g = construct.k_minus(5, 1)
        router = K5Minus2Routing()
        bad = [t for t in g.nodes if not router.supports(g, t)]
        assert bad, "K5^-1 must have unsupported destinations"

    def test_rejects_large(self):
        with pytest.raises(ValueError):
            K5Minus2Routing().build(construct.complete_graph(6), 0)


class TestTheorem13:
    def test_k33_minus_2_exhaustive(self):
        verdict = check_perfect_resilience_destination(
            construct.k_bipartite_minus(3, 3, 2), K33Minus2Routing()
        )
        assert verdict.resilient, str(verdict.counterexample)

    def test_k33_minus_2_both_at_destination(self):
        # both removals at one node: the TwoStageTour case of the proof
        g = construct.minus_links(construct.complete_bipartite(3, 3), [(2, 3), (2, 4)])
        verdict = check_perfect_resilience_destination(g, K33Minus2Routing())
        assert verdict.resilient, str(verdict.counterexample)

    @pytest.mark.parametrize(
        "builder",
        [
            lambda: construct.k_bipartite_minus(3, 3, 3),
            lambda: construct.complete_bipartite(2, 3),
            lambda: construct.cycle_graph(6),
        ],
    )
    def test_minors(self, builder):
        verdict = check_perfect_resilience_destination(builder(), K33Minus2Routing())
        assert verdict.resilient, str(verdict.counterexample)

    def test_rejects_k33_minus_1(self):
        g = construct.k_bipartite_minus(3, 3, 1)
        router = K33Minus2Routing()
        bad = [t for t in g.nodes if not router.supports(g, t)]
        assert bad, "K3,3^-1 must have unsupported destinations"

    def test_rejects_large(self):
        with pytest.raises(ValueError):
            K33Minus2Routing().build(construct.complete_bipartite(4, 4), 0)
