"""Materialized forwarding tables: patterns are finite installable state."""

import json

import pytest

from repro.core.algorithms import K5SourceRouting, RightHandTouring, TourToDestination
from repro.core.export import materialize, reload_pattern
from repro.core.resilience import (
    all_failure_sets,
    check_pattern_resilience,
    check_perfect_touring,
)
from repro.core.simulator import Network, route
from repro.graphs import construct
from repro.graphs.edges import failure_set


class TestMaterialize:
    def test_rule_count_is_exponential_in_degree(self):
        graph = construct.cycle_graph(4)  # degree 2 everywhere
        pattern = TourToDestination().build(graph, 0)
        table = materialize(graph, pattern)
        # per node: sum over failure subsets of (alive ports + 1)
        # degree 2: F={} -> 3, two singleton F -> 2 each, F=both -> 1: total 8
        assert len(table) == 4 * 8

    def test_rejects_high_degree(self):
        graph = construct.star_graph(15)
        pattern = TourToDestination().build(graph, 1)
        with pytest.raises(ValueError):
            materialize(graph, pattern)

    def test_subset_of_nodes(self):
        graph = construct.cycle_graph(5)
        pattern = TourToDestination().build(graph, 0)
        table = materialize(graph, pattern, nodes=[1, 2])
        assert {rule.node for rule in table.rules} == {1, 2}

    def test_json_round_trips_text(self):
        graph = construct.cycle_graph(4)
        pattern = RightHandTouring().build(graph)
        payload = json.loads(materialize(graph, pattern).to_json())
        assert len(payload) == 32
        assert all("out" in row for row in payload)


class TestReplayFidelity:
    def test_algorithm1_replay_is_identical(self):
        graph = construct.complete_graph(5)
        pattern = K5SourceRouting().build(graph, 0, 4)
        replay = reload_pattern(materialize(graph, pattern))
        network = Network(graph)
        for failures in all_failure_sets(graph, max_failures=3):
            original = route(network, pattern, 0, 4, failures)
            replayed = route(network, replay, 0, 4, failures)
            assert original.outcome == replayed.outcome
            assert original.path == replayed.path

    def test_replayed_pattern_is_still_perfectly_resilient(self):
        graph = construct.wheel_graph(5)
        pattern = TourToDestination().build(graph, 0)
        replay = reload_pattern(materialize(graph, pattern))
        verdict = check_pattern_resilience(graph, replay, 0)
        assert verdict.resilient, str(verdict.counterexample)

    def test_replayed_touring_still_tours(self):
        graph = construct.fan_graph(6)

        class _Replayed(RightHandTouring):
            def build(self, g):
                return reload_pattern(materialize(g, RightHandTouring().build(g)))

        verdict = check_perfect_touring(graph, _Replayed())
        assert verdict.resilient, str(verdict.counterexample)

    def test_lookup_matches_forward(self):
        graph = construct.complete_graph(4)
        pattern = TourToDestination().build(graph, 3)
        table = materialize(graph, pattern)
        network = Network(graph)
        failures = failure_set((0, 3))
        view = network.view(0, 1, failures)
        assert table.lookup(0, view.failed_links, 1) == pattern.forward(view)
