"""The ``repro.failures`` subsystem: models, spec grammar, estimators.

Pins the refactor's two hard promises — the historical random grid is
bit-identical under the new :class:`~repro.failures.RandomGridModel`
(committed fixture store + BENCH re-merge), and the shared spec grammar
is the one error surface for CLI, serve and ``run_grid`` — plus the
estimator math (Wilson vs the exact binomial), sampler determinism
(including ``PYTHONHASHSEED`` independence), CI bracketing of exact
ground truth, and any-time budget cuts.
"""

import itertools
import json
import math
import pathlib
import random

import pytest

from repro import obs
from repro.experiments import (
    ExperimentRecord,
    FailureModel as LegacyFailureModel,
    ResultStore,
    resolve_topology,
    run_grid,
    scheme,
)
from repro.failures import (
    ExhaustiveModel,
    IIDModel,
    MaskEvaluator,
    RandomGridModel,
    RegionalModel,
    SRLGModel,
    estimate_congestion,
    estimate_resilience,
    exact_binomial_interval,
    mean_interval,
    model_from_params,
    parse_failure_model,
    sample_failure_grid,
    spec_grammar,
    wilson_interval,
)
from repro.failures.models import canonical_links
from repro.graphs.edges import edge
from repro.runtime import Budget

REPO = pathlib.Path(__file__).resolve().parent.parent
FIXTURE = pathlib.Path(__file__).resolve().parent / "fixtures" / "run_grid_random_model.json"


# ---------------------------------------------------------------------------
# Estimator math: Wilson vs the exact (Clopper-Pearson) binomial interval.
# ---------------------------------------------------------------------------


class TestIntervals:
    def test_zero_trials_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)
        assert exact_binomial_interval(0, 0) == (0.0, 1.0)

    def test_bad_counts_raise(self):
        for successes, trials in ((-1, 5), (6, 5), (0, -1)):
            with pytest.raises(ValueError, match="bad counts"):
                wilson_interval(successes, trials)
            with pytest.raises(ValueError, match="bad counts"):
                exact_binomial_interval(successes, trials)

    def test_exact_all_successes_closed_form(self):
        # for s == n the Clopper-Pearson lower bound solves
        # P[X >= n] = p^n = alpha/2, i.e. p = (alpha/2)^(1/n)
        for trials in (1, 5, 20, 100):
            low, high = exact_binomial_interval(trials, trials)
            assert high == 1.0
            assert low == pytest.approx((0.025) ** (1.0 / trials), abs=1e-9)

    def test_exact_zero_successes_closed_form(self):
        # symmetric closed form: upper solves (1-p)^n = alpha/2
        for trials in (1, 5, 20, 100):
            low, high = exact_binomial_interval(0, trials)
            assert low == 0.0
            assert high == pytest.approx(1.0 - (0.025) ** (1.0 / trials), abs=1e-9)

    def test_wilson_symmetric_at_half(self):
        low, high = wilson_interval(5, 10)
        assert low + high == pytest.approx(1.0, abs=1e-12)

    def test_wilson_inside_exact_interval(self):
        # Wilson is the shorter interval: on small closed-form cases it
        # sits inside the conservative exact bound
        for successes, trials in ((0, 10), (1, 10), (3, 10), (5, 10), (9, 10), (10, 10), (7, 50)):
            w_low, w_high = wilson_interval(successes, trials)
            e_low, e_high = exact_binomial_interval(successes, trials)
            assert w_low >= e_low - 1e-9
            assert w_high <= e_high + 1e-9

    def test_wilson_covers_point_estimate(self):
        for successes, trials in ((0, 7), (2, 9), (9, 9)):
            low, high = wilson_interval(successes, trials)
            assert low - 1e-12 <= successes / trials <= high + 1e-12
            assert 0.0 <= low <= high <= 1.0

    def test_mean_interval_known_case(self):
        values = [1.0, 2.0, 3.0]
        mean, low, high = mean_interval(sum(values), sum(v * v for v in values), len(values))
        assert mean == pytest.approx(2.0)
        half = 1.959963984540054 * math.sqrt(1.0 / 3.0)  # sample variance is 1
        assert low == pytest.approx(2.0 - half)
        assert high == pytest.approx(2.0 + half)

    def test_mean_interval_degenerate_counts(self):
        assert mean_interval(0.0, 0.0, 0) == (0.0, 0.0, 0.0)
        assert mean_interval(4.0, 16.0, 1) == (4.0, 4.0, 4.0)


# ---------------------------------------------------------------------------
# The spec grammar: single source of truth, exact error messages.
# ---------------------------------------------------------------------------


class TestSpecGrammar:
    def test_bare_family_uses_defaults(self):
        assert parse_failure_model("random") == RandomGridModel()
        assert parse_failure_model("iid") == IIDModel()

    def test_full_spec(self):
        model = parse_failure_model("iid:p=0.01,samples=500,seed=3")
        assert model == IIDModel(p=0.01, samples=500, seed=3)

    def test_sizes_grammar(self):
        assert parse_failure_model("random:sizes=0/1/2").sizes == (0, 1, 2)
        assert parse_failure_model("random:sizes=auto").sizes is None

    def test_label_round_trips_every_family(self):
        models = [
            RandomGridModel(sizes=(0, 1, 2), samples=7, seed=5),
            RandomGridModel(),
            ExhaustiveModel(k=3),
            IIDModel(p=0.125, samples=50, seed=9),
            SRLGModel(groups=3, p=0.2, samples=40, seed=1),
            RegionalModel(radius=2, centers=2, samples=30, seed=4),
        ]
        for model in models:
            assert parse_failure_model(model.label) == model

    def test_whitespace_tolerated(self):
        assert parse_failure_model(" iid: p=0.5 , samples=10 ") == IIDModel(p=0.5, samples=10)

    def test_error_messages(self):
        cases = [
            ("", "failure-model spec must be a non-empty string"),
            ("martian:x=1", "unknown failure model 'martian'; known models: "
                            "exhaustive, iid, random, regional, srlg"),
            ("iid:p", "invalid failure-model argument 'p': expected key=value"),
            ("iid:q=1", "unknown argument 'q' for failure model 'iid'; known: "
                        "p, samples, seed"),
            ("iid:p=oops", "invalid p 'oops': expected a number"),
            ("iid:samples=many", "invalid samples 'many': expected an integer"),
            ("random:sizes=0/x", "invalid sizes '0/x': expected slash-separated "
                                 "integers, e.g. sizes=0/1/2"),
        ]
        for spec, message in cases:
            with pytest.raises(ValueError) as excinfo:
                parse_failure_model(spec)
            assert message in str(excinfo.value), spec

    def test_grammar_summary_names_every_family(self):
        summary = spec_grammar()
        for family in ("random", "exhaustive", "iid", "srlg", "regional"):
            assert family in summary

    def test_model_param_wins(self):
        model = model_from_params({"model": "iid:p=0.1", "sizes": [1], "samples": 3})
        assert model == IIDModel(p=0.1)

    def test_model_param_must_be_a_string(self):
        with pytest.raises(ValueError, match="model must be a spec string"):
            model_from_params({"model": 7})

    def test_legacy_params_build_the_random_grid(self):
        model = model_from_params({"sizes": [0, 1], "samples": 4, "seed": 2})
        assert model == RandomGridModel(sizes=(0, 1), samples=4, seed=2)
        assert model_from_params({}) == RandomGridModel()

    def test_legacy_error_messages_preserved(self):
        # the serve protocol's historical messages, verbatim
        with pytest.raises(ValueError, match="sizes must be a list of integers"):
            model_from_params({"sizes": "bogus"})
        with pytest.raises(ValueError, match="samples and seed must be integers"):
            model_from_params({"samples": "ten"})


# ---------------------------------------------------------------------------
# Models: determinism, structure, backwards compatibility.
# ---------------------------------------------------------------------------


class TestModels:
    def test_legacy_alias_is_the_random_grid_model(self):
        assert LegacyFailureModel is RandomGridModel

    def test_random_grid_label_is_bit_identical_to_history(self):
        assert RandomGridModel().label == "random(sizes=auto,samples=10,seed=0)"
        assert (
            RandomGridModel(sizes=(0, 1, 2), samples=3, seed=0).label
            == "random(sizes=0/1/2,samples=3,seed=0)"
        )

    def test_random_grid_equals_the_shared_sampler(self):
        graph = resolve_topology("ring(8)")
        model = RandomGridModel(sizes=(0, 1, 2), samples=5, seed=3)
        assert model.grid(graph) == sample_failure_grid(graph, [0, 1, 2], 5, 3)

    def test_exhaustive_counts(self):
        graph = resolve_topology("ring(6)")  # m = 6
        grid = ExhaustiveModel(k=2).grid(graph)
        assert {size: len(sets) for size, sets in grid.items()} == {0: 1, 1: 6, 2: 15}
        assert grid[0] == [frozenset()]

    def test_exhaustive_caps_at_link_count(self):
        graph = resolve_topology("ring(4)")
        grid = ExhaustiveModel(k=99).grid(graph)
        assert max(grid) == 4

    def test_sampled_streams_are_seed_deterministic(self):
        graph = resolve_topology("grid(3,3)")
        for model in (
            IIDModel(p=0.2, samples=5, seed=7),
            SRLGModel(groups=3, p=0.3, samples=5, seed=7),
            RegionalModel(radius=1, centers=2, samples=5, seed=7),
        ):
            first = list(itertools.islice(model.sample(graph), 10))
            second = list(itertools.islice(model.sample(graph), 10))
            assert first == second

    def test_iid_draws_are_subsets_of_the_links(self):
        graph = resolve_topology("ring(6)")
        links = set(canonical_links(graph))
        for failures in itertools.islice(IIDModel(p=0.5, seed=0).sample(graph), 20):
            assert failures <= links

    def test_srlg_partition_covers_links_disjointly(self):
        graph = resolve_topology("grid(3,3)")
        model = SRLGModel(groups=4, seed=2)
        buckets = model.partition(graph)
        assert len(buckets) == 4
        flat = [link for bucket in buckets for link in bucket]
        assert sorted(flat, key=repr) == sorted(canonical_links(graph), key=repr)
        assert len(flat) == len(set(flat))

    def test_srlg_samples_are_unions_of_groups(self):
        graph = resolve_topology("grid(3,3)")
        model = SRLGModel(groups=4, p=0.5, seed=2)
        buckets = [frozenset(bucket) for bucket in model.partition(graph)]
        for failures in itertools.islice(model.sample(graph), 20):
            rebuilt = frozenset().union(
                *[bucket for bucket in buckets if bucket <= failures]
            ) if failures else frozenset()
            assert rebuilt == failures

    def test_regional_radius_one_is_a_node_outage(self):
        graph = resolve_topology("ring(6)")
        incidents = {
            node: frozenset(edge(node, neighbour) for neighbour in graph[node])
            for node in graph
        }
        for failures in itertools.islice(
            RegionalModel(radius=1, centers=1, seed=0).sample(graph), 10
        ):
            assert failures in incidents.values()

    def test_sampled_grid_materializes_exactly_samples_sets(self):
        graph = resolve_topology("ring(8)")
        model = IIDModel(p=0.3, samples=25, seed=1)
        grid = model.grid(graph)
        assert sum(len(sets) for sets in grid.values()) == 25
        assert list(grid) == sorted(grid)

    def test_grid_models_do_not_stream(self):
        graph = resolve_topology("ring(4)")
        with pytest.raises(NotImplementedError, match="not a sampled model"):
            next(RandomGridModel().sample(graph))

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="p must be in"):
            IIDModel(p=1.5)
        with pytest.raises(ValueError, match="samples must be >= 1"):
            IIDModel(samples=0)
        with pytest.raises(ValueError, match="groups must be >= 1"):
            SRLGModel(groups=0)
        with pytest.raises(ValueError, match="radius must be >= 1"):
            RegionalModel(radius=0)
        with pytest.raises(ValueError, match="k must be >= 0"):
            ExhaustiveModel(k=-1)

    def test_explicit_rng_overrides_the_seed(self):
        graph = resolve_topology("ring(6)")
        model = IIDModel(p=0.5, seed=0)
        a = list(itertools.islice(model.sample(graph, rng=random.Random(42)), 5))
        b = list(itertools.islice(model.sample(graph, rng=random.Random(42)), 5))
        assert a == b


class TestHashSeedIndependence:
    """Sampler draws must not depend on ``PYTHONHASHSEED``.

    String-labelled graphs are the leak vector (set/dict iteration
    order); the models canonicalize links and nodes before any seeded
    draw, pinned here by subprocess runs under different hash seeds.
    """

    STRING_EDGES = [
        ("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "a"),
        ("a", "c"), ("b", "d"), ("c", "e"), ("d", "a"),
    ]

    _SCRIPT = """
import hashlib, itertools, json, sys
import networkx as nx
from repro.failures import IIDModel, RegionalModel, SRLGModel

edges = json.loads(sys.argv[1])
graph = nx.Graph(edges)
draws = []
for model in (
    IIDModel(p=0.3, samples=5, seed=0),
    SRLGModel(groups=3, p=0.4, samples=5, seed=0),
    RegionalModel(radius=1, centers=1, samples=5, seed=0),
):
    for failures in itertools.islice(model.sample(graph), 8):
        draws.append(sorted(sorted(map(str, link)) for link in failures))
print(hashlib.sha256(json.dumps(draws).encode()).hexdigest())
"""

    def _digest(self, hash_seed):
        import os
        import subprocess
        import sys

        env = dict(os.environ, PYTHONHASHSEED=str(hash_seed))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        result = subprocess.run(
            [sys.executable, "-c", self._SCRIPT, json.dumps(self.STRING_EDGES)],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return result.stdout.strip()

    def test_draws_are_hash_seed_independent(self):
        digests = {self._digest(seed) for seed in (0, 1)}
        assert len(digests) == 1, f"sampler depends on PYTHONHASHSEED: {digests}"


# ---------------------------------------------------------------------------
# Estimators: brackets, budgets, telemetry.
# ---------------------------------------------------------------------------


class TestEstimateResilience:
    def _exact_truth(self, graph, algorithm, p):
        """P[delivered] by enumerating every failure subset (small m)."""
        evaluator = MaskEvaluator(graph, algorithm)
        links = canonical_links(graph)
        truth = 0.0
        for size in range(len(links) + 1):
            for combo in itertools.combinations(links, size):
                ok, _ = evaluator.delivered(frozenset(combo))
                if ok:
                    truth += p**size * (1.0 - p) ** (len(links) - size)
        return truth

    def test_ci_brackets_exact_ground_truth(self):
        # distance2 on a 6-ring under iid failures sits mid-range
        # (~0.27), so the bracket is a real statistical statement
        graph = resolve_topology("ring(6)")
        algorithm = scheme("distance2").instantiate()
        truth = self._exact_truth(graph, algorithm, p=0.3)
        assert 0.05 < truth < 0.95
        estimate = estimate_resilience(
            graph, algorithm, IIDModel(p=0.3, samples=300, seed=2)
        )
        assert estimate.exhaustive
        assert estimate.samples == 300
        assert estimate.ci_low <= truth <= estimate.ci_high
        assert estimate.note  # a failing scenario leaves a counterexample

    def test_perfectly_resilient_scheme_estimates_one(self):
        graph = resolve_topology("ring(6)")
        estimate = estimate_resilience(
            graph, scheme("greedy").instantiate(), IIDModel(p=0.3, samples=100, seed=0)
        )
        assert estimate.estimate == 1.0
        assert estimate.ci_high == 1.0
        assert estimate.metrics()["resilient"] is True
        assert estimate.note == ""

    def test_budget_cut_flags_not_exhaustive(self):
        graph = resolve_topology("ring(6)")
        budget = Budget(units=7)
        estimate = estimate_resilience(
            graph,
            scheme("greedy").instantiate(),
            IIDModel(p=0.2, samples=100, seed=0),
            deadline=budget,
        )
        assert estimate.samples == 7
        assert not estimate.exhaustive
        assert estimate.metrics()["exhaustive"] is False
        assert estimate.metrics()["planned_samples"] == 100

    def test_series_checkpoints_accumulate(self):
        graph = resolve_topology("ring(6)")
        estimate = estimate_resilience(
            graph, scheme("greedy").instantiate(), IIDModel(p=0.2, samples=40, seed=0)
        )
        assert [point["samples"] for point in estimate.series] == [
            4, 8, 12, 16, 20, 24, 28, 32, 36, 40
        ]
        assert estimate.series[-1]["estimate"] == estimate.estimate

    def test_samples_counter_is_exported(self):
        graph = resolve_topology("ring(6)")
        with obs.installed(obs.Telemetry()) as telemetry:
            estimate_resilience(
                graph, scheme("greedy").instantiate(), IIDModel(p=0.2, samples=12, seed=0)
            )
            value = telemetry.registry.value("repro_failure_samples_total", model="iid")
        assert value == 12

    def test_naive_session_matches_engine_session(self):
        from repro.experiments import naive_session

        graph = resolve_topology("ring(6)")
        algorithm = scheme("distance2").instantiate()
        model = IIDModel(p=0.3, samples=60, seed=5)
        fast = estimate_resilience(graph, algorithm, model)
        slow = estimate_resilience(graph, algorithm, model, session=naive_session())
        assert fast.successes == slow.successes
        assert fast.samples == slow.samples


class TestEstimateCongestion:
    def test_estimates_and_brackets(self):
        from repro.traffic.matrices import build_named_matrix

        graph = resolve_topology("ring(8)")
        demands, _ = build_named_matrix(graph, "permutation", seed=0)
        estimate, error = estimate_congestion(
            graph,
            scheme("greedy").instantiate(),
            demands,
            IIDModel(p=0.1, samples=50, seed=0),
        )
        assert error is None
        assert estimate.samples == 50
        assert estimate.exhaustive
        assert estimate.max_load_ci_low <= estimate.mean_max_load <= estimate.max_load_ci_high
        assert 0.0 <= estimate.delivered_ci_low <= estimate.delivered_fraction
        assert estimate.delivered_fraction <= estimate.delivered_ci_high <= 1.0
        assert estimate.metrics()["sampled"] is True
        assert estimate.stretch_metrics()["mean_stretch"] >= 1.0

    def test_preflight_failure_reports_reason(self):
        from repro.traffic.matrices import build_named_matrix

        graph = resolve_topology("grid(3,3)")  # not outerplanar
        demands, _ = build_named_matrix(graph, "permutation", seed=0)
        estimate, error = estimate_congestion(
            graph,
            scheme("right-hand").instantiate(),
            demands,
            IIDModel(p=0.1, samples=5, seed=0),
        )
        assert estimate is None
        assert "not outerplanar" in error


# ---------------------------------------------------------------------------
# Differential pins: the refactor changed nothing it promised not to.
# ---------------------------------------------------------------------------


class TestDifferentialCompat:
    def test_run_grid_reproduces_the_committed_fixture(self, tmp_path):
        """The exact pre-refactor grid, byte for byte.

        ``tests/fixtures/run_grid_random_model.json`` was generated by
        the pre-``repro.failures`` ``run_grid`` (runtime_seconds
        normalized to 0.0 — the only nondeterministic field).
        """
        result = run_grid(
            topologies=["ring(8)", "grid(3,3)"],
            schemes=["arborescence", "greedy", "tour"],
            failure_models=[LegacyFailureModel(sizes=(0, 1, 2), samples=3, seed=0)],
            matrix="permutation",
            matrix_seed=0,
        )
        for record in result.records:
            record.runtime_seconds = 0.0
        path = tmp_path / "store.json"
        ResultStore(path).merge(result.records)
        assert path.read_bytes() == FIXTURE.read_bytes()

    def test_spec_string_resolves_to_the_identical_grid(self, tmp_path):
        """``failure_models=["random:..."]`` is the same cell, same bytes."""
        result = run_grid(
            topologies=["ring(8)"],
            schemes=["greedy"],
            failure_models=["random:sizes=0/1/2,samples=3,seed=0"],
            metrics=("resilience",),
            matrix="permutation",
            matrix_seed=0,
        )
        twin = run_grid(
            topologies=["ring(8)"],
            schemes=["greedy"],
            failure_models=[RandomGridModel(sizes=(0, 1, 2), samples=3, seed=0)],
            metrics=("resilience",),
            matrix="permutation",
            matrix_seed=0,
        )
        for record in result.records + twin.records:
            record.runtime_seconds = 0.0
        assert [r.to_dict() for r in result.records] == [r.to_dict() for r in twin.records]

    def test_bench_store_records_re_merge_unchanged(self, tmp_path):
        """Merging a committed BENCH record back in is a no-op.

        The store's identity index keys on the record's failure-model
        label; if the refactor had changed any label, the re-merge
        would append instead of collapse.
        """
        source = REPO / "BENCH_engine.json"
        document = json.loads(source.read_text())
        records = [ExperimentRecord.from_dict(entry) for entry in document["records"]]
        assert records
        path = tmp_path / "bench.json"
        path.write_text(source.read_text())
        store = ResultStore(path)
        before = path.read_bytes()
        store.merge(records)
        assert path.read_bytes() == before

    def test_unknown_failure_model_type_raises(self):
        with pytest.raises(TypeError, match="not a failure model or spec string"):
            run_grid(topologies=["ring(4)"], schemes=["greedy"], failure_models=[42])


# ---------------------------------------------------------------------------
# Sampled cells through run_grid.
# ---------------------------------------------------------------------------


class TestSampledGrid:
    def test_sampled_cell_emits_estimate_records(self):
        result = run_grid(
            topologies=["ring(8)"],
            schemes=["greedy"],
            failure_models=["iid:p=0.05,samples=40,seed=0"],
            metrics=("resilience", "congestion", "stretch"),
            matrix="permutation",
            matrix_seed=0,
        )
        by_experiment = {record.experiment: record for record in result.records}
        assert set(by_experiment) == {"resilience", "congestion", "stretch"}
        resilience = by_experiment["resilience"]
        assert resilience.metrics["sampled"] is True
        assert resilience.metrics["exhaustive"] is True
        assert resilience.metrics["ci_low"] <= resilience.metrics["estimate"]
        assert resilience.metrics["estimate"] <= resilience.metrics["ci_high"]
        assert resilience.failure_model == "iid(p=0.05,samples=40,seed=0)"
        assert resilience.series
        congestion = by_experiment["congestion"]
        assert congestion.metrics["samples"] == 40
        assert "max_load_ci_low" in congestion.metrics

    def test_budget_cut_grid_flags_partial_estimate(self):
        # 1 unit per cell + 1 per sample: 10 units < 1 + 40 planned
        result = run_grid(
            topologies=["ring(8)"],
            schemes=["greedy"],
            failure_models=["iid:p=0.05,samples=40,seed=0"],
            metrics=("resilience",),
            deadline=Budget(units=10),
        )
        [record] = result.records
        assert record.metrics["exhaustive"] is False
        assert record.metrics["samples"] < 40

    def test_sampled_records_round_trip_the_store(self, tmp_path):
        path = tmp_path / "store.json"
        result = run_grid(
            topologies=["ring(8)"],
            schemes=["greedy"],
            failure_models=["srlg:groups=3,p=0.2,samples=20,seed=0"],
            metrics=("resilience",),
            store=ResultStore(path),
        )
        reloaded = ResultStore(path).load_records()
        assert [r.to_dict() for r in reloaded] == [r.to_dict() for r in result.records]


# ---------------------------------------------------------------------------
# Serve and CLI surfaces share the one grammar.
# ---------------------------------------------------------------------------


class TestServeFailureModels:
    def _service(self, store=None):
        from repro.serve import QueryService

        return QueryService(store=store)

    def _request(self, op, params, id="r1", budget_seconds=None):
        from repro.serve.protocol import Request

        return Request(id=id, op=op, params=params, budget_seconds=budget_seconds)

    def test_sampled_verdict_returns_estimate_with_ci(self):
        response = self._service().execute(
            self._request(
                "verdict",
                {
                    "topology": "ring(8)",
                    "scheme": "greedy",
                    "model": "iid:p=0.02,samples=500,seed=0",
                },
            )
        )
        assert response["ok"]
        verdict = response["result"]["verdict"]
        assert verdict["sampled"] is True
        assert verdict["samples"] == 500
        assert verdict["planned_samples"] == 500
        assert verdict["ci_low"] <= verdict["estimate"] <= verdict["ci_high"]
        assert verdict["exhaustive"] is True
        assert not response.get("partial")

    def test_model_spec_and_legacy_params_agree_on_grids(self):
        service = self._service()
        via_spec = service.execute(
            self._request(
                "verdict",
                {
                    "topology": "ring(8)",
                    "scheme": "greedy",
                    "model": "random:sizes=0/1/2,samples=3,seed=0",
                },
            )
        )
        via_legacy = service.execute(
            self._request(
                "verdict",
                {
                    "topology": "ring(8)",
                    "scheme": "greedy",
                    "sizes": [0, 1, 2],
                    "samples": 3,
                    "seed": 0,
                },
                id="r2",
            )
        )
        spec_record = via_spec["result"]["record"]
        legacy_record = via_legacy["result"]["record"]
        legacy_record["runtime_seconds"] = spec_record["runtime_seconds"]
        assert spec_record == legacy_record

    def test_sampled_answer_is_cached_and_replayed(self, tmp_path):
        from repro.experiments import ResultStore

        store = ResultStore(tmp_path / "answers.json")
        service = self._service(store=store)
        params = {
            "topology": "ring(8)",
            "scheme": "greedy",
            "model": "iid:p=0.05,samples=50,seed=0",
        }
        first = service.execute(self._request("verdict", params))
        second = service.execute(self._request("verdict", params, id="r2"))
        assert not first.get("cached")
        assert second["cached"]
        assert second["result"]["verdict"] == first["result"]["verdict"]

    def test_budget_cut_sampled_verdict_is_partial_and_uncached(self, tmp_path):
        from repro.experiments import ResultStore

        store = ResultStore(tmp_path / "answers.json")
        service = self._service(store=store)
        params = {
            "topology": "ring(8)",
            "scheme": "greedy",
            "model": "iid:p=0.05,samples=100000,seed=0",
        }
        response = self._service(store=store).execute(
            self._request("verdict", params, budget_seconds=1e-9)
        )
        assert response["ok"]
        assert response["partial"]
        assert response["result"]["verdict"]["exhaustive"] is False
        assert store.lookup(
            ("resilience", "ring(8)", "greedy", "iid(p=0.05,samples=100000,seed=0)", "")
        ) is None

    def test_error_messages_surface_verbatim(self):
        service = self._service()
        cases = [
            ({"model": "martian:x=1"}, "unknown failure model 'martian'"),
            ({"model": "iid:p=oops"}, "invalid p 'oops': expected a number"),
            ({"model": 7}, "model must be a spec string"),
            ({"sizes": "bogus"}, "sizes must be a list of integers"),
            ({"samples": "ten"}, "samples and seed must be integers"),
        ]
        for extra, message in cases:
            response = service.execute(
                self._request(
                    "verdict", dict({"topology": "ring(8)", "scheme": "greedy"}, **extra)
                )
            )
            assert not response["ok"]
            assert response["error"]["type"] == "QueryError"
            assert message in response["error"]["message"]

    def test_load_accepts_a_sampled_model(self):
        response = self._service().execute(
            self._request(
                "load",
                {
                    "topology": "ring(8)",
                    "scheme": "greedy",
                    "model": "iid:p=0.1,samples=10,seed=0",
                },
            )
        )
        assert response["ok"]
        record = response["result"]["record"]
        assert record["failure_model"] == "iid(p=0.1,samples=10,seed=0)"
        assert record["metrics"]["failure_sets"] == 10

    def test_grid_op_accepts_a_model_spec(self):
        response = self._service().execute(
            self._request(
                "grid",
                {
                    "topologies": ["ring(8)"],
                    "schemes": ["greedy"],
                    "metrics": ["resilience"],
                    "model": "iid:p=0.05,samples=20,seed=0",
                },
            )
        )
        assert response["ok"]
        [record] = response["result"]["records"]
        assert record["metrics"]["sampled"] is True
        assert record["metrics"]["samples"] == 20


class TestFailureModelCLI:
    def _run(self, *args):
        from repro.cli import main

        return main(list(args))

    def test_experiments_quick_honors_failure_model(self, capsys):
        assert (
            self._run(
                "experiments", "--quick", "--failure-model", "iid:p=0.05,samples=100,seed=0"
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "iid(p=0.05,samples=100,seed=0)" in out
        assert "records (JSON round-trip ok)" in out
        assert "estimate=" in out

    def test_experiments_rejects_bad_spec_with_grammar(self, capsys):
        assert self._run("experiments", "--quick", "--failure-model", "martian:x=1") == 2
        err = capsys.readouterr().err
        assert "unknown failure model 'martian'" in err
        assert "spec grammar:" in err

    def test_traffic_failure_model_pins_the_grid(self, capsys):
        assert (
            self._run(
                "traffic", "ring", "--algorithm", "greedy",
                "--failure-model", "exhaustive:k=1",
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "congestion sweep" in out

    def test_traffic_rejects_bad_spec(self, capsys):
        assert self._run("traffic", "ring", "--failure-model", "iid:p=oops") == 2
        assert "invalid --failure-model" in capsys.readouterr().err
