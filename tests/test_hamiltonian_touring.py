"""Theorem 17: k-resilient touring of 2k-connected K_n / K_{n,n}."""

import pytest

from repro.core.algorithms import HamiltonianTouring
from repro.core.resilience import check_k_resilient_touring, sampled_failure_sets
from repro.graphs import construct


class TestTheorem17Complete:
    @pytest.mark.parametrize("n,k", [(5, 2), (7, 3)])
    def test_exhaustive_up_to_k_minus_1_failures(self, n, k):
        graph = construct.complete_graph(n)
        assert HamiltonianTouring.tolerated_failures(graph) == k - 1
        verdict = check_k_resilient_touring(graph, HamiltonianTouring(), max_failures=k - 1)
        assert verdict.resilient, str(verdict.counterexample)

    def test_k9_sampled(self):
        graph = construct.complete_graph(9)
        verdict = check_k_resilient_touring(
            graph,
            HamiltonianTouring(),
            max_failures=3,
            failure_sets=sampled_failure_sets(graph, samples=200, max_failures=3, seed=4),
        )
        assert verdict.resilient, str(verdict.counterexample)


class TestTheorem17Bipartite:
    @pytest.mark.parametrize("n,k", [(4, 2), (6, 3)])
    def test_exhaustive_up_to_k_minus_1_failures(self, n, k):
        graph = construct.complete_bipartite(n, n)
        verdict = check_k_resilient_touring(graph, HamiltonianTouring(), max_failures=k - 1)
        assert verdict.resilient, str(verdict.counterexample)


class TestBeyondPromise:
    def test_no_crash_on_many_failures(self):
        # beyond k-1 failures nothing is guaranteed, but the pattern must
        # still behave (no illegal forwards)
        from repro.core.simulator import tour
        from repro.graphs.edges import failure_set

        graph = construct.complete_graph(5)
        pattern = HamiltonianTouring().build(graph)
        failures = failure_set((0, 1), (1, 2), (2, 3), (3, 4))
        result = tour(graph, pattern, 0, failures)
        assert result.failed is None or result.failed.value in ("dropped",)

    def test_unsupported_graph(self):
        with pytest.raises(ValueError):
            HamiltonianTouring().build(construct.cycle_graph(6))
