"""The ``repro.serve`` subsystem: protocol, service, server, client.

The load-bearing guarantees pinned here:

* service answers are byte-identical to the offline surfaces
  (``run_grid`` / ``sweep_resilience`` / ``load_sweep``) — differential
  tests with runtimes zeroed;
* batching (coalesced ``run_batch``, union load sweeps, the mask-
  outcome memo) never changes an answer;
* the ``ResultStore`` identity index answers ``lookup`` in O(1) with
  ``merge`` semantics unchanged from the scanning implementation;
* deadline-cut answers survive the record JSON round-trip flagged
  ``exhaustive=False`` and come back ``partial: true`` in the envelope,
  and are never cached;
* the Lazy-Pirate client retries cleanly through stale replies and a
  crashed-and-restarted server.
"""

import asyncio
import contextlib
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro import obs
from repro.experiments import (
    ExperimentRecord,
    ExperimentSession,
    FailureModel,
    ResultStore,
    run_grid,
)
from repro.experiments.registry import resolve_topology, scheme
from repro.serve import (
    ProtocolError,
    QueryClient,
    QueryService,
    RemoteError,
    Request,
    ResilienceServer,
    ServeTimeout,
)
from repro.serve import protocol as proto
from repro.serve.service import serialize_report


def _no_runtime(record_dict: dict) -> dict:
    data = dict(record_dict)
    data["runtime_seconds"] = 0.0
    return data


# ---------------------------------------------------------------------------
# Protocol.
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_frame_round_trip(self):
        payload = {"v": 1, "id": "x", "op": "ping", "params": {}, "budget_seconds": None}
        frame = proto.encode_frame(payload)
        assert proto.decode_body(frame[4:]) == payload
        assert proto.frame_length(frame[:4]) == len(frame) - 4

    def test_oversize_frame_rejected_both_ways(self):
        with pytest.raises(ProtocolError):
            proto.encode_frame({"blob": "x" * (proto.MAX_FRAME + 1)})
        import struct

        with pytest.raises(ProtocolError):
            proto.frame_length(struct.pack(">I", proto.MAX_FRAME + 1))

    def test_garbage_body_rejected(self):
        with pytest.raises(ProtocolError):
            proto.decode_body(b"\xff\xfe not json")
        with pytest.raises(ProtocolError):
            proto.decode_body(b"[1, 2]")

    @pytest.mark.parametrize(
        "payload",
        [
            {"id": "x", "op": "ping"},  # missing version
            {"v": 2, "id": "x", "op": "ping"},  # wrong version
            {"v": 1, "id": "", "op": "ping"},  # empty id
            {"v": 1, "id": "x", "op": "frobnicate"},  # unknown op
            {"v": 1, "id": "x", "op": "ping", "params": []},  # params not a dict
            {"v": 1, "id": "x", "op": "ping", "budget_seconds": -1},
            {"v": 1, "id": "x", "op": "ping", "budget_seconds": True},
        ],
    )
    def test_bad_request_envelopes(self, payload):
        with pytest.raises(ProtocolError):
            proto.parse_request(payload)

    def test_request_round_trip(self):
        request = proto.parse_request(
            {"v": 1, "id": "r1", "op": "verdict", "params": {"topology": "k5"},
             "budget_seconds": 2}
        )
        assert request == Request(id="r1", op="verdict", params={"topology": "k5"},
                                  budget_seconds=2.0)
        assert proto.parse_request(request.to_payload()) == request

    def test_response_validation(self):
        ok = proto.ok_response("r1", {"x": 1}, partial=True)
        assert proto.parse_response(ok) is ok
        err = proto.error_response("r1", "QueryError", "nope")
        assert proto.parse_response(err) is err
        with pytest.raises(ProtocolError):
            proto.parse_response({"v": 1, "id": "r1", "ok": True})  # no result

    def test_node_codec_tuples(self):
        node = ("core", 0, ("x", 1))
        assert proto.node_from_json(proto.node_to_json(node)) == node
        assert proto.node_from_json(proto.node_to_json(7)) == 7

    def test_failure_set_codec_canonical_and_inverse(self):
        failures = frozenset({(1, 0), (2, 1)})
        encoded = proto.failure_set_to_json(failures)
        assert encoded == [[0, 1], [1, 2]]  # canonicalized + sorted
        assert proto.failure_set_from_json(encoded) == frozenset({(0, 1), (1, 2)})
        with pytest.raises(ProtocolError):
            proto.failure_set_from_json([[3, 3]])  # self-loop


# ---------------------------------------------------------------------------
# ResultStore identity index (satellite: O(1) lookup, merge pinned).
# ---------------------------------------------------------------------------


def _record(topology="k5", scheme_name="arborescence", value=1, experiment="resilience"):
    return ExperimentRecord(
        experiment=experiment,
        topology=topology,
        scheme=scheme_name,
        failure_model="model",
        metrics={"value": value},
    )


class TestResultStoreIndex:
    def test_lookup_hit_and_miss(self, tmp_path):
        store = ResultStore(tmp_path / "s.json")
        record = _record(value=3)
        store.merge([record])
        assert store.lookup(record.key()) == record
        assert store.lookup(("resilience", "other", "arborescence", "model", "")) is None

    def test_lookup_sees_external_writes(self, tmp_path):
        path = tmp_path / "s.json"
        writer, reader = ResultStore(path), ResultStore(path)
        first = _record(value=1)
        writer.merge([first])
        assert reader.lookup(first.key()) == first  # populates reader's cache
        updated = _record(value=2)
        time.sleep(0.01)  # distinct mtime_ns for the stamp check
        writer.merge([updated])
        assert reader.lookup(first.key()) == updated

    def test_merge_semantics_pinned(self, tmp_path):
        """Same-key replaced in place (newest value, original position),
        new keys appended, foreign sections preserved — exactly the
        pre-index behaviour."""
        path = tmp_path / "s.json"
        store = ResultStore(path)
        store.merge_raw({"thresholds": {"min": 2.0}})
        a, b = _record("k5", value=1), _record("ring", value=1)
        store.merge([a, b])
        replacement = _record("k5", value=99)
        c = _record("grid", value=1)
        merged = ResultStore(path).merge([replacement, c])  # fresh instance: cold cache
        assert [r.topology for r in merged] == ["k5", "ring", "grid"]
        assert merged[0].metrics["value"] == 99
        document = json.loads(path.read_text())
        assert document["thresholds"] == {"min": 2.0}
        assert [e["topology"] for e in document["records"]] == ["k5", "ring", "grid"]

    def test_duplicate_key_store_collapses_like_legacy(self, tmp_path):
        """A hand-written store with duplicate keys goes through the
        legacy collapse: first occurrence's position, newest value."""
        path = tmp_path / "s.json"
        old, new = _record("k5", value=1), _record("k5", value=2)
        other = _record("ring", value=7)
        path.write_text(json.dumps(
            {"records": [old.to_dict(), other.to_dict(), new.to_dict()]}))
        store = ResultStore(path)
        assert store.lookup(old.key()).metrics["value"] == 2  # last occurrence
        merged = store.merge([_record("grid", value=3)])
        assert [(r.topology, r.metrics["value"]) for r in merged] == [
            ("k5", 2), ("ring", 7), ("grid", 3)]

    def test_identities_in_record_order(self, tmp_path):
        store = ResultStore(tmp_path / "s.json")
        a, b = _record("k5"), _record("ring")
        store.merge([a, b])
        assert store.identities() == [a.key(), b.key()]

    def test_load_records_unchanged(self, tmp_path):
        store = ResultStore(tmp_path / "s.json")
        records = [_record("k5"), _record("ring", value=4)]
        store.merge(records)
        assert ResultStore(store.path).load_records() == records


# ---------------------------------------------------------------------------
# Service differential: byte-identical to the offline surfaces.
# ---------------------------------------------------------------------------


class TestServiceDifferential:
    def test_model_verdict_matches_run_grid_record(self, tmp_path):
        model = FailureModel(sizes=(1, 2), samples=3, seed=0)
        offline = run_grid(["k5"], ["arborescence"], failure_models=[model],
                           metrics=["resilience"])
        service = QueryService()
        record, partial = service.verdict(
            {"topology": "k5", "scheme": "arborescence", "sizes": [1, 2],
             "samples": 3, "seed": 0})
        assert not partial
        assert _no_runtime(record.to_dict()) == _no_runtime(offline.records[0].to_dict())

    def test_explicit_verdict_matches_sweep_both_paths(self):
        """The memoized fast path (destination given) and the generic
        sweep path (no destination) both equal sweep_resilience."""
        from repro.core.engine.sweep import ScenarioGrid, sweep_resilience

        graph = resolve_topology("k5")
        algorithm = scheme("arborescence").instantiate()
        masks_json = [[[0, 1]], [[0, 1], [1, 2]], [[2, 3], [3, 4]]]
        masks = proto.failure_sets_from_json(masks_json)
        service = QueryService()
        for destination in (4, None):
            params = {"topology": "k5", "scheme": "arborescence",
                      "failure_sets": masks_json}
            if destination is not None:
                params["destination"] = destination
            record, partial = service.verdict(params)
            grid = ScenarioGrid(
                destinations=[destination] if destination is not None else None,
                failure_sets=masks)
            verdict = sweep_resilience(graph, algorithm, grid).verdict
            assert not partial
            assert record.metrics == {
                "resilient": verdict.resilient,
                "scenarios_checked": verdict.scenarios_checked,
                "exhaustive": verdict.exhaustive,
            }
            assert record.note == (
                str(verdict.counterexample) if verdict.counterexample else "")

    def test_memoized_verdict_finds_same_counterexample(self):
        """A non-resilient scheme: the fast path reproduces the sweep's
        exact counterexample string and checked count."""
        from repro.core.engine.sweep import ScenarioGrid, sweep_resilience

        graph = resolve_topology("grid")
        spec = scheme("greedy")  # per-destination, no resilience guarantee
        destination = 0
        masks = [frozenset({(0, 1), (1, 2)}), frozenset({(3, 4)})]
        verdict = sweep_resilience(
            graph, spec.instantiate(),
            ScenarioGrid(destinations=[destination], failure_sets=masks)).verdict
        assert not verdict.resilient  # the interesting case: a real counterexample
        service = QueryService()
        record, _ = service.verdict(
            {"topology": "grid", "scheme": "greedy", "destination": destination,
             "failure_sets": proto.failure_sets_to_json(masks)})
        assert record.metrics["resilient"] == verdict.resilient
        assert record.metrics["scenarios_checked"] == verdict.scenarios_checked
        assert record.note == (str(verdict.counterexample) if verdict.counterexample else "")
        # second evaluation comes fully from the mask memo, same answer
        before = dict(service.stats_counters)
        again, _ = service.verdict(
            {"topology": "grid", "scheme": "greedy", "destination": destination,
             "failure_sets": proto.failure_sets_to_json(masks)})
        assert _no_runtime(again.to_dict()) == _no_runtime(record.to_dict())
        assert service.stats_counters["mask_memo_hits"] > before["mask_memo_hits"]

    def test_load_matches_offline_load_sweep(self):
        from repro.traffic.load import TrafficEngine
        from repro.traffic.matrices import build_named_matrix

        graph = resolve_topology("k5")
        algorithm = scheme("arborescence").instantiate()
        demands, _ = build_named_matrix(graph, "permutation", seed=0)
        sets = [frozenset({(0, 1)}), frozenset({(0, 1), (1, 2)})]
        offline = TrafficEngine(graph, algorithm).load_sweep(demands, sets)
        service = QueryService()
        record, partial = service.load(
            {"topology": "k5", "scheme": "arborescence", "matrix": "permutation",
             "matrix_seed": 0, "failure_sets": proto.failure_sets_to_json(sets)})
        assert not partial
        assert record.series == [
            serialize_report(report, failures)
            for report, failures in zip(offline, sets)]

    def test_union_batched_load_identical_to_solo(self):
        """Two coalesced load requests answered from ONE union sweep
        must produce byte-identical envelopes to solo execution."""
        sets_a = [[[0, 1]], [[1, 2], [2, 3]]]
        sets_b = [[[1, 2], [2, 3]], [[3, 4]]]  # overlaps with a

        def make(rid, sets):
            return Request(id=rid, op="load", params={
                "topology": "k5", "scheme": "arborescence",
                "matrix": "permutation", "matrix_seed": 0, "failure_sets": sets})

        solo = [QueryService().execute(make("a", sets_a)),
                QueryService().execute(make("b", sets_b))]
        batched = QueryService().run_batch([make("a", sets_a), make("b", sets_b)])
        for one, two in zip(solo, batched):
            assert _no_runtime(one["result"]["record"]) == _no_runtime(
                two["result"]["record"])
            assert one["result"]["reports"] == two["result"]["reports"]

    def test_batch_deduplicates_identical_requests(self):
        service = QueryService()
        params = {"topology": "k5", "scheme": "arborescence",
                  "failure_sets": [[[0, 1]]], "destination": 4}
        out = service.run_batch([
            Request(id="x", op="verdict", params=params),
            Request(id="y", op="verdict", params=params)])
        assert out[0]["id"] == "x" and out[1]["id"] == "y"
        assert {k: v for k, v in out[0].items() if k != "id"} == {
            k: v for k, v in out[1].items() if k != "id"}
        assert service.stats_counters["batches"] == 1

    def test_batch_isolates_a_bad_request(self):
        service = QueryService()
        out = service.run_batch([
            Request(id="bad", op="verdict",
                    params={"topology": "no-such-topology", "scheme": "arborescence"}),
            Request(id="good", op="verdict", params={
                "topology": "k5", "scheme": "arborescence",
                "failure_sets": [[[0, 1]]], "destination": 4})])
        assert out[0]["ok"] is False and out[0]["error"]["type"] == "QueryError"
        assert out[1]["ok"] is True

    def test_answer_cache_round_trip(self, tmp_path):
        """Computed answer -> store -> cache hit: same result object,
        and an offline-populated store serves without compute."""
        store = ResultStore(tmp_path / "answers.json")
        service = QueryService(store=store)
        request = Request(id="q1", op="verdict", params={
            "topology": "k5", "scheme": "arborescence",
            "sizes": [1], "samples": 2, "seed": 0})
        first = service.execute(request)
        assert first["cached"] is False
        second = service.execute(Request(id="q2", op="verdict", params=request.params))
        assert second["cached"] is True
        assert second["result"] == first["result"]
        # a different service process over the same store also hits
        other = QueryService(store=ResultStore(store.path))
        third = other.execute(Request(id="q3", op="verdict", params=request.params))
        assert third["cached"] is True
        assert third["result"] == first["result"]
        assert other.stats_counters["store_hits"] == 1

    def test_offline_run_grid_populates_the_cache(self, tmp_path):
        store = ResultStore(tmp_path / "answers.json")
        model = FailureModel(sizes=(1,), samples=2, seed=0)
        run_grid(["k5"], ["arborescence"], failure_models=[model],
                 metrics=["resilience"], store=store)
        service = QueryService(store=ResultStore(store.path))
        reply = service.execute(Request(id="q", op="verdict", params={
            "topology": "k5", "scheme": "arborescence",
            "sizes": [1], "samples": 2, "seed": 0}))
        assert reply["cached"] is True
        assert reply["result"]["verdict"]["resilient"] is True

    def test_inapplicable_scheme_is_an_error_envelope(self):
        reply = QueryService().execute(Request(id="q", op="verdict", params={
            "topology": "k5", "scheme": "hamiltonian", "sizes": [1]}))
        # k5 is not Hamiltonian-decomposable per the registry predicate;
        # whichever way the registry rules, a clean envelope comes back
        assert reply["id"] == "q"
        assert isinstance(reply["ok"], bool)

    def test_grid_op_matches_run_grid(self):
        model = FailureModel(sizes=(1,), samples=2, seed=0)
        offline = run_grid(["k5"], ["arborescence"], failure_models=[model],
                           metrics=["resilience"])
        reply = QueryService().execute(Request(id="g", op="grid", params={
            "topologies": ["k5"], "schemes": ["arborescence"],
            "metrics": ["resilience"], "sizes": [1], "samples": 2, "seed": 0}))
        assert reply["ok"] is True and reply["partial"] is False
        got = [_no_runtime(entry) for entry in reply["result"]["records"]]
        want = [_no_runtime(record.to_dict()) for record in offline.records]
        assert got == want


# ---------------------------------------------------------------------------
# Deadline-partial end-to-end (satellite).
# ---------------------------------------------------------------------------


class TestDeadlinePartial:
    def test_partial_verdict_record_and_envelope(self):
        """budget 0 -> the sweep is cut immediately: exhaustive=False
        survives the record JSON round-trip and the envelope says
        partial: true."""
        service = QueryService()
        reply = service.execute(Request(
            id="p1", op="verdict", budget_seconds=0.0,
            params={"topology": "fattree", "scheme": "arborescence",
                    "sizes": [1, 2], "samples": 5, "seed": 0}))
        assert reply["ok"] is True
        assert reply["partial"] is True
        record_dict = reply["result"]["record"]
        assert record_dict["metrics"]["exhaustive"] is False
        restored = ExperimentRecord.from_json(json.dumps(record_dict))
        assert restored.metrics["exhaustive"] is False
        assert restored.to_dict() == record_dict

    def test_partial_answers_are_never_cached(self, tmp_path):
        store = ResultStore(tmp_path / "answers.json")
        service = QueryService(store=store)
        params = {"topology": "k5", "scheme": "arborescence",
                  "sizes": [1], "samples": 2, "seed": 0}
        cut = service.execute(Request(id="c", op="verdict", params=params,
                                      budget_seconds=0.0))
        assert cut["partial"] is True
        assert store.lookup(service.cache_identity(
            Request(id="c", op="verdict", params=params))) is None
        full = service.execute(Request(id="f", op="verdict", params=params))
        assert full["partial"] is False and full["cached"] is False

    def test_partial_load_returns_completed_prefix(self):
        service = QueryService()
        reply = service.execute(Request(
            id="l", op="load", budget_seconds=0.0,
            params={"topology": "k5", "scheme": "arborescence",
                    "failure_sets": [[[0, 1]], [[1, 2]]]}))
        assert reply["ok"] is True and reply["partial"] is True
        metrics = reply["result"]["record"]["metrics"]
        assert metrics["completed_sets"] < metrics["failure_sets"]


# ---------------------------------------------------------------------------
# Server + client over real sockets.
# ---------------------------------------------------------------------------


@contextlib.contextmanager
def running_server(service=None, port=0, metrics_port=None):
    """A ResilienceServer on a background thread with its own loop."""
    box = {}
    ready = threading.Event()

    def run():
        async def main():
            server = ResilienceServer(service=service, port=port,
                                      metrics_port=metrics_port)
            await server.start()
            box["server"] = server
            box["loop"] = asyncio.get_event_loop()
            ready.set()
            await server.serve_forever()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(20), "server did not start"
    try:
        yield box["server"]
    finally:
        box["loop"].call_soon_threadsafe(box["server"].request_stop)
        thread.join(20)


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestServerEndToEnd:
    def test_ping_stats_verdict_over_tcp(self):
        with running_server() as server:
            with QueryClient(port=server.bound_port, timeout=30) as client:
                assert client.ping()["result"]["pong"] is True
                reply = client.verdict("k5", "arborescence",
                                       failure_sets=[[[0, 1]]], destination=4)
                assert reply["ok"] is True
                assert reply["result"]["verdict"]["resilient"] is True
                stats = client.server_stats()
                assert stats["requests_handled"] >= 2
                assert stats["graphs_cached"] == 1

    def test_tcp_answer_identical_to_in_process(self):
        params = {"topology": "k5", "scheme": "arborescence",
                  "sizes": [1], "samples": 3, "seed": 0}
        local = QueryService().execute(Request(id="x", op="verdict", params=params))
        with running_server() as server:
            with QueryClient(port=server.bound_port, timeout=30) as client:
                remote = client.request("verdict", params)
        assert _no_runtime(remote["result"]["record"]) == _no_runtime(
            local["result"]["record"])

    def test_malformed_envelope_keeps_stream_alive(self):
        with running_server() as server:
            sock = socket.create_connection(("127.0.0.1", server.bound_port), timeout=10)
            sock.settimeout(10)
            proto.send_frame(sock, {"v": 1, "id": "bad", "op": "frobnicate"})
            reply = proto.recv_frame(sock)
            assert reply["ok"] is False and reply["error"]["type"] == "ProtocolError"
            proto.send_frame(sock, Request(id="ok", op="ping").to_payload())
            assert proto.recv_frame(sock)["ok"] is True
            sock.close()

    def test_shutdown_op_stops_the_server(self):
        with running_server() as server:
            with QueryClient(port=server.bound_port, timeout=30) as client:
                assert client.shutdown()["result"]["stopping"] is True
            deadline = time.time() + 10
            while time.time() < deadline and not server._stopping.is_set():
                time.sleep(0.05)
            assert server._stopping.is_set()

    def test_metrics_endpoint_serves_prometheus_text(self):
        telemetry = obs.Telemetry()
        with obs.installed(telemetry):
            with running_server(metrics_port=0) as server:
                with QueryClient(port=server.bound_port, timeout=30) as client:
                    client.verdict("k5", "arborescence",
                                   failure_sets=[[[0, 1]]], destination=4)
                body = urllib.request.urlopen(
                    f"http://127.0.0.1:{server.bound_metrics_port}/metrics",
                    timeout=10).read().decode()
        assert "# TYPE repro_serve_requests_total counter" in body
        assert 'repro_serve_requests_total{op="verdict",status="ok"}' in body


class TestLazyPirateClient:
    def test_stale_replies_are_discarded(self):
        """A reply mirroring the wrong id is skipped, the right one
        returned — the Lazy-Pirate resend-after-timeout guarantee."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def fake_server():
            conn, _ = listener.accept()
            request = proto.recv_frame(conn)
            proto.send_frame(conn, proto.ok_response("stale-id", {"stale": True}))
            proto.send_frame(conn, proto.ok_response(request["id"], {"fresh": True}))
            conn.close()

        thread = threading.Thread(target=fake_server, daemon=True)
        thread.start()
        with QueryClient(port=port, timeout=10, retries=0) as client:
            reply = client.ping()
        thread.join(10)
        listener.close()
        assert reply["result"] == {"fresh": True}
        assert client.stats["stale_replies_discarded"] == 1

    def test_retry_through_crashed_and_restarted_server(self):
        """Server dies mid-request; the client reconnects and resends
        against the restarted server and gets a clean answer."""
        port = _free_port()
        crashed = threading.Event()

        def crashing_server():
            listener = socket.socket()
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind(("127.0.0.1", port))
            listener.listen(1)
            conn, _ = listener.accept()
            conn.recv(4)  # start reading the request, then die mid-frame
            conn.close()
            listener.close()
            crashed.set()

        threading.Thread(target=crashing_server, daemon=True).start()

        restarted = {}

        def restart_after_crash():
            assert crashed.wait(20)
            with running_server(port=port) as server:
                restarted["server"] = server
                restarted.setdefault("stop", threading.Event()).wait(60)

        restart_thread = threading.Thread(target=restart_after_crash, daemon=True)
        restart_thread.start()
        try:
            with QueryClient(port=port, timeout=5, retries=8,
                             retry_backoff=0.2) as client:
                reply = client.verdict("k5", "arborescence",
                                       failure_sets=[[[0, 1]]], destination=4)
            assert reply["ok"] is True
            assert reply["result"]["verdict"]["resilient"] is True
            assert client.stats["retries"] >= 1
        finally:
            restarted.setdefault("stop", threading.Event()).set()
            restart_thread.join(30)

    def test_timeout_exhaustion_raises(self):
        with QueryClient(port=_free_port(), timeout=0.2, retries=1,
                         retry_backoff=0.01) as client:
            with pytest.raises(ServeTimeout):
                client.ping()

    def test_remote_error_surfaces(self):
        with running_server() as server:
            with QueryClient(port=server.bound_port, timeout=30) as client:
                with pytest.raises(RemoteError) as excinfo:
                    client.verdict("no-such-topology", "arborescence", sizes=[1])
        assert excinfo.value.kind == "QueryError"


# ---------------------------------------------------------------------------
# CLI integration.
# ---------------------------------------------------------------------------


class TestServeCLI:
    def test_query_cli_against_live_server(self, capsys):
        from repro.cli import main

        with running_server() as server:
            port = str(server.bound_port)
            assert main(["query", "ping", "--port", port]) == 0
            assert "pong" in capsys.readouterr().out
            assert main(["query", "verdict", "--port", port,
                         "--topology", "k5", "--scheme", "arborescence",
                         "--failures", "0-1", "--destination", "4"]) == 0
            out = capsys.readouterr().out
            assert "resilient" in out
            assert main(["query", "stats", "--port", port, "--json"]) == 0
            envelope = json.loads(capsys.readouterr().out)
            assert envelope["ok"] is True

    def test_query_cli_unreachable_server_exit_code(self, capsys):
        from repro.cli import main

        code = main(["query", "ping", "--port", str(_free_port()),
                     "--timeout", "0.2", "--retries", "0"])
        assert code == 3
        assert "cannot reach" in capsys.readouterr().err

    def test_serve_subprocess_sigterm_graceful(self, tmp_path):
        """SIGTERM: exit 0 and the answer store is intact (CI smoke's
        in-repo twin)."""
        store = tmp_path / "answers.json"
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--store", str(store)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env, cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        try:
            line = proc.stdout.readline()
            port = int(line.rsplit(":", 1)[1])
            with QueryClient(port=port, timeout=30, retries=2) as client:
                assert client.verdict("k5", "arborescence",
                                      failure_sets=[[[0, 1]]],
                                      destination=4)["ok"] is True
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        merged = ResultStore(store).load_records()
        assert len(merged) == 1 and merged[0].experiment == "resilience"
