"""§VIII classification on known topologies."""

import pytest

from repro.core.classification import Possibility, classify, good_destinations
from repro.graphs import construct


class TestOuterplanarPossible:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: construct.cycle_graph(8),
            lambda: construct.path_graph(5),
            lambda: construct.fan_graph(9),
            lambda: construct.star_graph(6),
        ],
    )
    def test_all_models_possible(self, builder):
        c = classify(builder())
        assert c.touring is Possibility.POSSIBLE
        assert c.destination is Possibility.POSSIBLE
        assert c.source_destination is Possibility.POSSIBLE
        assert c.good_destination_fraction == 1.0


class TestNetrail:
    def test_fig6_classification(self):
        # Fig. 6: touring impossible, both routing models "sometimes"
        c = classify(construct.fig6_netrail(), minor_budget=100_000)
        assert c.touring is Possibility.IMPOSSIBLE
        assert c.destination is Possibility.SOMETIMES
        assert c.source_destination is Possibility.SOMETIMES
        assert 0 < c.good_destination_fraction < 1


class TestForbiddenMinors:
    def test_grid_destination_impossible(self):
        c = classify(construct.grid_graph(4, 4))
        assert c.touring is Possibility.IMPOSSIBLE
        assert c.destination is Possibility.IMPOSSIBLE
        # planar: the dense source-destination minors cannot occur
        assert c.source_destination in (Possibility.UNKNOWN, Possibility.SOMETIMES)

    def test_k7_everything_impossible(self):
        c = classify(construct.complete_graph(7))
        assert c.touring is Possibility.IMPOSSIBLE
        assert c.destination is Possibility.IMPOSSIBLE
        assert c.source_destination is Possibility.IMPOSSIBLE

    def test_k44_source_destination_impossible(self):
        c = classify(construct.complete_bipartite(4, 4))
        assert c.source_destination is Possibility.IMPOSSIBLE


class TestSmallPositives:
    def test_k5_source_destination_possible(self):
        # Theorem 8: K5 is non-planar yet source-destination possible
        c = classify(construct.complete_graph(5))
        assert c.source_destination is Possibility.POSSIBLE
        assert c.destination is Possibility.IMPOSSIBLE  # Thm 10 territory is K5^-1; K5 itself: [2]

    def test_k33_source_destination_possible(self):
        c = classify(construct.complete_bipartite(3, 3))
        assert c.source_destination is Possibility.POSSIBLE

    def test_k5_minus_2_destination_possible(self):
        c = classify(construct.k_minus(5, 2))
        assert c.destination is Possibility.POSSIBLE

    def test_k33_minus_2_destination_possible(self):
        c = classify(construct.k_bipartite_minus(3, 3, 2))
        assert c.destination is Possibility.POSSIBLE

    def test_positives_can_be_disabled(self):
        c = classify(construct.complete_graph(5), use_small_positives=False)
        assert c.source_destination is not Possibility.POSSIBLE


class TestGoodDestinations:
    def test_wheel_all_good(self):
        good, examined = good_destinations(construct.wheel_graph(6))
        assert examined == 7
        assert good == 7  # hub -> ring; rim node -> fan

    def test_grid_none_good(self):
        good, _ = good_destinations(construct.grid_graph(4, 4))
        assert good == 0

    def test_cap(self):
        good, examined = good_destinations(construct.wheel_graph(10), cap=5)
        assert examined == 5


class TestMetadata:
    def test_fields(self):
        c = classify(construct.wheel_graph(5), name="wheel")
        assert c.name == "wheel"
        assert c.n == 6
        assert c.m == 10
        assert c.planarity == "planar"
