"""Unit tests for the graph family constructors."""

import networkx as nx
import pytest

from repro.graphs import construct
from repro.graphs.planarity import is_outerplanar, is_planar


class TestComplete:
    def test_k5_size(self):
        g = construct.complete_graph(5)
        assert g.number_of_nodes() == 5
        assert g.number_of_edges() == 10

    def test_k1(self):
        assert construct.complete_graph(1).number_of_nodes() == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            construct.complete_graph(0)


class TestCompleteBipartite:
    def test_k33_size(self):
        g = construct.complete_bipartite(3, 3)
        assert g.number_of_nodes() == 6
        assert g.number_of_edges() == 9

    def test_parts_annotated(self):
        g = construct.complete_bipartite(2, 3)
        left, right = construct.bipartition(g)
        assert {len(left), len(right)} == {2, 3}

    def test_bipartite(self):
        assert nx.is_bipartite(construct.complete_bipartite(4, 4))


class TestMinusLinks:
    def test_k5_minus_one(self):
        g = construct.k_minus(5, 1)
        assert g.number_of_edges() == 9

    def test_k5_minus_two_matching(self):
        g = construct.k_minus(5, 2)
        # Deterministic removal is a matching: no node loses two links.
        degrees = sorted(d for _, d in g.degree)
        assert g.number_of_edges() == 8
        assert degrees == [3, 3, 3, 3, 4]

    def test_k44_minus_one(self):
        g = construct.k_bipartite_minus(4, 4, 1)
        assert g.number_of_edges() == 15

    def test_k33_minus_two(self):
        g = construct.k_bipartite_minus(3, 3, 2)
        assert g.number_of_edges() == 7

    def test_missing_link_rejected(self):
        g = construct.complete_graph(4)
        with pytest.raises(ValueError):
            construct.minus_links(g, [(0, 1), (0, 1)])

    def test_original_untouched(self):
        g = construct.complete_graph(4)
        construct.minus_links(g, [(0, 1)])
        assert g.number_of_edges() == 6


class TestOuterplanarFamilies:
    @pytest.mark.parametrize("n", [3, 5, 9])
    def test_cycles_outerplanar(self, n):
        assert is_outerplanar(construct.cycle_graph(n))

    @pytest.mark.parametrize("n", [4, 7, 12])
    def test_fans_outerplanar(self, n):
        assert is_outerplanar(construct.fan_graph(n))

    def test_fan_is_maximal(self):
        g = construct.fan_graph(8)
        assert g.number_of_edges() == 2 * 8 - 3

    @pytest.mark.parametrize("seed", range(5))
    def test_maximal_outerplanar(self, seed):
        g = construct.maximal_outerplanar(10, seed=seed)
        assert is_outerplanar(g)
        assert g.number_of_edges() == 2 * 10 - 3

    def test_star_outerplanar(self):
        assert is_outerplanar(construct.star_graph(7))


class TestGadgets:
    def test_wheel_planar_not_outerplanar(self):
        g = construct.wheel_graph(6)
        assert is_planar(g)
        assert not is_outerplanar(g)

    def test_theta_not_outerplanar(self):
        # theta with >= 3 spokes contains K2,3.
        assert not is_outerplanar(construct.theta_graph(3))
        assert is_outerplanar(construct.theta_graph(2))

    def test_fig2_two_rail_structure(self):
        g = construct.fig2_two_rail(3)
        assert g.number_of_nodes() == 8
        assert nx.has_path(g, "s", "t")

    def test_fig6_netrail(self):
        g = construct.fig6_netrail()
        assert g.number_of_nodes() == 7
        assert g.number_of_edges() == 10
        assert is_planar(g)
        assert not is_outerplanar(g)

    def test_grid_planar(self):
        g = construct.grid_graph(4, 5)
        assert is_planar(g)
        assert not is_outerplanar(g)

    def test_petersen_nonplanar(self):
        assert not is_planar(construct.petersen_graph())


class TestBipartition:
    def test_path(self):
        left, right = construct.bipartition(nx.path_graph(4))
        assert left | right == {0, 1, 2, 3}
        for u, v in nx.path_graph(4).edges:
            assert (u in left) != (v in left)

    def test_disconnected(self):
        g = nx.Graph([(0, 1), (2, 3)])
        left, right = construct.bipartition(g)
        assert left | right == {0, 1, 2, 3}


class TestDatacenterTopologies:
    @pytest.mark.parametrize("k", [2, 4, 6])
    def test_fat_tree_counts(self, k):
        g = construct.fat_tree(k)
        assert g.number_of_nodes() == 5 * k * k // 4
        assert g.number_of_edges() == k**3 // 2
        assert nx.is_connected(g)

    def test_fat_tree_tier_degrees(self):
        g = construct.fat_tree(4)
        expected = {"core": 4, "agg": 4, "edge": 2}  # core: one agg per pod;
        # agg: k/2 edge + k/2 core; edge: k/2 agg (no hosts modelled)
        for node in g.nodes:
            assert g.degree(node) == expected[node[0]], node

    def test_fat_tree_core_reaches_every_pod(self):
        g = construct.fat_tree(4)
        for core in (n for n in g.nodes if n[0] == "core"):
            pods = {neighbor[1] for neighbor in g.neighbors(core)}
            assert pods == set(range(4))

    def test_fat_tree_rejects_odd_k(self):
        with pytest.raises(ValueError):
            construct.fat_tree(3)

    @pytest.mark.parametrize("d", [1, 2, 3, 5])
    def test_hypercube_counts_and_regularity(self, d):
        g = construct.hypercube(d)
        assert g.number_of_nodes() == 2**d
        assert g.number_of_edges() == d * 2 ** (d - 1)
        assert all(degree == d for _, degree in g.degree)
        assert nx.is_connected(g)

    def test_hypercube_adjacency_is_bit_flips(self):
        g = construct.hypercube(3)
        for u, v in g.edges:
            assert bin(u ^ v).count("1") == 1

    @pytest.mark.parametrize("rows,cols", [(3, 3), (3, 5), (4, 4)])
    def test_torus_counts_and_regularity(self, rows, cols):
        g = construct.torus(rows, cols)
        assert g.number_of_nodes() == rows * cols
        assert g.number_of_edges() == 2 * rows * cols
        assert all(degree == 4 for _, degree in g.degree)
        assert nx.is_connected(g)

    def test_torus_rejects_degenerate_wrap(self):
        with pytest.raises(ValueError):
            construct.torus(2, 5)
