"""The generic adversarial search machinery (exhaustive, random, minimize)."""

import pytest

from repro.core.adversary.search import (
    AttackResult,
    exhaustive_attack,
    make_view,
    random_attack,
    verify_attack,
)
from repro.core.algorithms import GreedyLowestNeighbor, K5SourceRouting
from repro.graphs import construct
from repro.graphs.connectivity import are_connected, st_edge_connectivity
from repro.graphs.edges import failure_set


class TestMakeView:
    def test_alive_and_failed_partition(self):
        g = construct.complete_graph(4)
        view = make_view(g, 0, inport=1, alive=[1, 3])
        assert view.alive == (1, 3)
        assert view.failed_links == failure_set((0, 2))

    def test_empty_alive(self):
        g = construct.complete_graph(3)
        view = make_view(g, 0, inport=None, alive=[])
        assert view.alive == ()
        assert len(view.failed_links) == 2


class TestVerifyAttack:
    def test_rejects_disconnecting_failures(self):
        g = construct.path_graph(3)
        pattern = GreedyLowestNeighbor().build(g, 2)
        assert not verify_attack(g, pattern, 0, 2, failure_set((1, 2)))

    def test_rejects_delivered(self):
        g = construct.complete_graph(4)
        pattern = GreedyLowestNeighbor().build(g, 3)
        assert not verify_attack(g, pattern, 0, 3, frozenset())

    def test_accepts_genuine_witness(self):
        g = construct.complete_graph(5)
        pattern = GreedyLowestNeighbor().build(g, 4)
        witness = exhaustive_attack(g, pattern, 0, 4)
        assert witness is not None
        assert verify_attack(g, pattern, 0, 4, witness.failures)

    def test_min_connectivity_promise(self):
        g = construct.complete_graph(5)
        pattern = GreedyLowestNeighbor().build(g, 4)
        heavy = failure_set((0, 4), (1, 4), (2, 4))
        # with the 3-connectivity promise this failure set is out of scope
        assert st_edge_connectivity(g, 0, 4, heavy) < 3
        assert not verify_attack(g, pattern, 0, 4, heavy, min_connectivity=3)


class TestExhaustiveAttack:
    def test_finds_smallest_witness_first(self):
        g = construct.complete_graph(5)
        pattern = GreedyLowestNeighbor().build(g, 4)
        witness = exhaustive_attack(g, pattern, 0, 4)
        assert witness is not None
        # enumeration is by increasing size: no smaller witness exists
        for smaller in range(len(witness.failures)):
            assert (
                exhaustive_attack(g, pattern, 0, 4, max_failures=smaller) is None
                or smaller == len(witness.failures)
            )

    def test_none_against_perfect_pattern(self):
        g = construct.complete_graph(5)
        pattern = K5SourceRouting().build(g, 0, 4)
        assert exhaustive_attack(g, pattern, 0, 4) is None


class TestRandomAttack:
    def test_finds_and_minimizes(self):
        g = construct.complete_graph(5)
        pattern = GreedyLowestNeighbor().build(g, 4)
        witness = random_attack(g, pattern, 0, 4, attempts=2_000, seed=3)
        assert witness is not None
        # minimality: removing any single failure un-breaks the witness
        for link in witness.failures:
            reduced = frozenset(witness.failures - {link})
            assert not verify_attack(g, pattern, 0, 4, reduced)

    def test_respects_budget(self):
        g = construct.complete_graph(5)
        pattern = GreedyLowestNeighbor().build(g, 4)
        witness = random_attack(g, pattern, 0, 4, max_failures=4, attempts=3_000, seed=1)
        if witness is not None:
            assert len(witness.failures) <= 4

    def test_gives_up_on_perfect_pattern(self):
        g = construct.complete_graph(4)
        pattern = K5SourceRouting().build(g, 0, 3)
        assert random_attack(g, pattern, 0, 3, attempts=300, seed=0) is None

    def test_attack_result_size(self):
        result = AttackResult(failure_set((0, 1), (2, 3)), method="test")
        assert result.size == 2
