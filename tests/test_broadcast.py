"""§VII touring application: broadcast with local completion detection."""

import pytest

from repro.core.applications import TouringBroadcast
from repro.core.algorithms import HamiltonianTouring, RightHandTouring
from repro.core.resilience import all_failure_sets
from repro.experiments import default_session as engine_session, naive_session
from repro.graphs import construct
from repro.graphs.connectivity import component_of
from repro.graphs.edges import failure_set


class TestOuterplanarBroadcast:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: construct.cycle_graph(6),
            lambda: construct.fan_graph(6),
            lambda: construct.path_graph(5),
            lambda: construct.maximal_outerplanar(7, seed=3),
        ],
    )
    def test_all_failure_sets_all_sources(self, builder):
        graph = builder()
        broadcast = TouringBroadcast(RightHandTouring())
        for failures in all_failure_sets(graph, max_failures=3):
            for source in graph.nodes:
                result = broadcast.run(graph, source, failures)
                assert result.completed
                assert result.covers(component_of(graph, source, failures))

    def test_verify_helper(self):
        graph = construct.fan_graph(7)
        broadcast = TouringBroadcast(RightHandTouring())
        assert broadcast.verify(graph, 0)
        assert broadcast.verify(graph, 3, failure_set((0, 3), (0, 4)))

    def test_isolated_source(self):
        graph = construct.path_graph(3)
        broadcast = TouringBroadcast(RightHandTouring())
        result = broadcast.run(graph, 0, failure_set((0, 1)))
        assert result.completed
        assert result.informed == frozenset({0})


class TestHamiltonianBroadcast:
    def test_k5_under_one_failure(self):
        graph = construct.complete_graph(5)
        broadcast = TouringBroadcast(HamiltonianTouring())
        for failures in all_failure_sets(graph, max_failures=1):
            for source in graph.nodes:
                result = broadcast.run(graph, source, failures)
                assert result.covers(component_of(graph, source, failures))


class TestCompletionDetection:
    def test_detects_in_bounded_hops(self):
        graph = construct.cycle_graph(8)
        broadcast = TouringBroadcast(RightHandTouring())
        result = broadcast.run(graph, 0)
        # a ring tour wraps after exactly n hops
        assert result.completed
        assert result.hops <= 2 * graph.number_of_edges() + 2

    def test_walk_recorded(self):
        graph = construct.cycle_graph(5)
        broadcast = TouringBroadcast(RightHandTouring())
        result = broadcast.run(graph, 0)
        assert result.walk[0] == 0
        for u, v in zip(result.walk, result.walk[1:]):
            assert graph.has_edge(u, v)


class TestEngineNaiveParity:
    """The engine-backed broadcast walk must equal the naive reference."""

    @pytest.mark.parametrize(
        "builder",
        [
            lambda: construct.cycle_graph(6),
            lambda: construct.fan_graph(6),
            lambda: construct.maximal_outerplanar(8, seed=11),
        ],
    )
    def test_all_failure_sets_match(self, builder):
        graph = builder()
        broadcast = TouringBroadcast(RightHandTouring())
        for failures in all_failure_sets(graph, max_failures=2):
            for source in graph.nodes:
                fast = broadcast.run(graph, source, failures, session=engine_session())
                slow = broadcast.run(graph, source, failures, session=naive_session())
                assert fast == slow, (source, sorted(failures))

    def test_hamiltonian_parity_on_k5(self):
        graph = construct.complete_graph(5)
        broadcast = TouringBroadcast(HamiltonianTouring())
        for failures in all_failure_sets(graph, max_failures=2):
            fast = broadcast.run(graph, 0, failures, session=engine_session())
            slow = broadcast.run(graph, 0, failures, session=naive_session())
            assert fast == slow, sorted(failures)

    def test_exotic_failure_entries_fall_back(self):
        graph = construct.cycle_graph(5)
        broadcast = TouringBroadcast(RightHandTouring())
        failures = frozenset({("v1", "nowhere")})
        fast = broadcast.run(graph, 0, failures, session=engine_session())
        slow = broadcast.run(graph, 0, failures, session=naive_session())
        assert fast == slow

    def test_verify_matches_across_paths(self):
        graph = construct.fan_graph(7)
        broadcast = TouringBroadcast(RightHandTouring())
        for failures in all_failure_sets(graph, max_failures=1):
            assert broadcast.verify(graph, 1, failures, session=engine_session()) == broadcast.verify(
                graph, 1, failures, session=naive_session()
            )
