"""Definitions 2/3 and Corollary 8: relevant neighbours and orbits."""

from repro.core.algorithms import GreedyLowestNeighbor, K5SourceRouting
from repro.core.orbits import (
    corollary8_violation,
    orbit_of,
    relevant_neighbors,
    same_orbit,
)
from repro.core.tables import CyclicPermutationPattern
from repro.graphs import construct
from repro.graphs.edges import failure_set


class TestRelevantNeighbors:
    def test_only_destination_relevant_when_adjacent(self):
        # Definition 2 removes the *other* surviving neighbours entirely,
        # so while the t-link is alive only t itself is relevant
        g = construct.complete_graph(5)
        assert relevant_neighbors(g, 1, destination=4) == [4]

    def test_all_relevant_once_t_link_fails(self):
        g = construct.complete_graph(5)
        relevant = relevant_neighbors(g, 1, destination=4, failures=failure_set((1, 4)))
        assert relevant == [0, 2, 3]

    def test_cut_neighbour_is_relevant(self):
        g = construct.path_graph(4)  # 0-1-2-3, t=3
        assert relevant_neighbors(g, 1, destination=3) == [2]

    def test_failures_shrink_relevance(self):
        g = construct.complete_graph(4)
        failures = failure_set((1, 3))
        relevant = relevant_neighbors(g, 1, destination=3, failures=failures)
        assert 3 not in relevant
        assert relevant  # 0 and 2 can still relay

    def test_dead_end_not_relevant(self):
        g = construct.path_graph(3)
        g.add_edge(1, 9)  # pendant off the middle node
        # 9 can never relay packets from 1 to 2
        assert relevant_neighbors(g, 1, destination=2) == [2]


class TestOrbits:
    def test_cyclic_pattern_single_orbit(self):
        g = construct.complete_graph(4)
        pattern = CyclicPermutationPattern(cycles={0: (1, 2, 3)})
        orbit = orbit_of(g, pattern, 0, start=1)
        assert set(orbit) == {1, 2, 3}

    def test_bouncing_pattern_small_orbit(self):
        g = construct.complete_graph(4)
        pattern = CyclicPermutationPattern(cycles={0: (1, 2)})  # ignores 3
        assert 3 not in orbit_of(g, pattern, 0, start=1)

    def test_same_orbit_symmetry_on_cycles(self):
        g = construct.complete_graph(4)
        pattern = CyclicPermutationPattern(cycles={0: (1, 2, 3)})
        assert same_orbit(g, pattern, 0, 1, 3)
        assert same_orbit(g, pattern, 0, 3, 1)


class TestCorollary8:
    def test_algorithm1_is_clean_at_inner_nodes(self):
        # Algorithm 1 is perfectly resilient, so no certificate can exist
        g = construct.complete_graph(5)
        pattern = K5SourceRouting().build(g, 0, 4)
        assert corollary8_violation(g, pattern, destination=4, source=0) is None

    def test_greedy_pattern_violates(self):
        # greedy lowest-neighbour is not perfectly resilient on K5; the
        # certificate finds a node that never relays to a relevant neighbour
        g = construct.complete_graph(5)
        pattern = GreedyLowestNeighbor().build(g, 4)
        witness = corollary8_violation(g, pattern, destination=4)
        assert witness is not None
        node, failures, a, b = witness
        assert a != b
        assert node not in (4,)

    def test_violation_names_relevant_pair(self):
        g = construct.complete_graph(5)
        pattern = GreedyLowestNeighbor().build(g, 4)
        node, failures, a, b = corollary8_violation(g, pattern, destination=4)
        relevant = relevant_neighbors(g, node, 4, failures)
        assert a in relevant and b in relevant
