"""Unit tests for the minor-containment engine (the minorminer substitute)."""

import networkx as nx
import pytest

from repro.graphs import construct
from repro.graphs.minors import (
    MinorOutcome,
    contains_subgraph,
    forbidden_minor_destination,
    forbidden_minor_source_destination,
    forbidden_minor_touring,
    has_any_minor,
    has_minor,
    is_minor_of,
    pattern_k4,
    pattern_k7_minus1,
    pattern_k23,
    pattern_k33_minus1,
    pattern_k44_minus1,
    pattern_k5_minus1,
)
from repro.graphs.reductions import reduce_host


def subdivide(graph, times=1):
    """Subdivide every link ``times`` times."""
    out = nx.Graph()
    counter = max(graph.nodes) + 1
    for u, v in graph.edges:
        previous = u
        for _ in range(times):
            out.add_edge(previous, counter)
            previous = counter
            counter += 1
        out.add_edge(previous, v)
    return out


class TestPatterns:
    def test_shapes(self):
        assert pattern_k4().number_of_edges() == 6
        assert pattern_k23().number_of_edges() == 6
        assert pattern_k5_minus1().number_of_edges() == 9
        assert pattern_k33_minus1().number_of_edges() == 8
        assert pattern_k7_minus1().number_of_edges() == 20
        assert pattern_k44_minus1().number_of_edges() == 15


class TestContainsSubgraph:
    def test_k4_in_k5(self):
        assert contains_subgraph(construct.complete_graph(5), pattern_k4())

    def test_k5_not_in_k4(self):
        assert not contains_subgraph(construct.complete_graph(4), construct.complete_graph(5))

    def test_non_induced(self):
        # C4 is a (non-induced) subgraph of K4
        assert contains_subgraph(construct.complete_graph(4), construct.cycle_graph(4))


class TestHasMinor:
    def test_petersen_contains_k5(self):
        assert has_minor(construct.petersen_graph(), construct.complete_graph(5)) is MinorOutcome.YES

    def test_petersen_contains_k33(self):
        assert (
            has_minor(construct.petersen_graph(), construct.complete_bipartite(3, 3))
            is MinorOutcome.YES
        )

    def test_k4_not_in_cycle(self):
        assert has_minor(construct.cycle_graph(10), pattern_k4()) is MinorOutcome.NO

    def test_subgraph_is_minor(self):
        assert has_minor(construct.complete_graph(6), pattern_k5_minus1()) is MinorOutcome.YES

    def test_subdivision_is_minor(self):
        sub = subdivide(pattern_k4(), times=2)
        assert has_minor(sub, pattern_k4()) is MinorOutcome.YES

    def test_subdivided_k33_minus1_regression(self):
        # Regression: degree-2 pattern vertices may sit on subdivision
        # nodes — host suppression must not erase them.
        sub = subdivide(pattern_k33_minus1(), times=1)
        assert has_minor(sub, pattern_k33_minus1()) is MinorOutcome.YES

    def test_wheel_has_no_k5_minus1(self):
        assert has_minor(construct.wheel_graph(6), pattern_k5_minus1(), budget=100_000) is MinorOutcome.NO

    def test_planarity_shortcut(self):
        # K7^-1 is non-planar; any planar host is immediately clean.
        assert has_minor(construct.grid_graph(6, 6), pattern_k7_minus1()) is MinorOutcome.NO

    def test_disconnected_pattern_rejected(self):
        pattern = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            has_minor(construct.complete_graph(5), pattern)

    def test_pendants_do_not_matter(self):
        host = nx.Graph(construct.petersen_graph())
        for i in range(5):
            host.add_edge(i, 100 + i)
        assert has_minor(host, construct.complete_graph(5)) is MinorOutcome.YES


class TestHasAnyMinor:
    def test_yes_dominates(self):
        outcome = has_any_minor(
            construct.petersen_graph(), [pattern_k7_minus1(), construct.complete_graph(5)]
        )
        assert outcome is MinorOutcome.YES

    def test_all_no(self):
        outcome = has_any_minor(construct.cycle_graph(8), [pattern_k4(), pattern_k23()])
        assert outcome is MinorOutcome.NO


class TestIsMinorOf:
    def test_triangle_of_k33(self):
        # the triangle is a minor of K3,3 (contract one link)
        assert is_minor_of(construct.complete_graph(3), construct.complete_bipartite(3, 3)) is MinorOutcome.YES

    def test_k4_not_of_k33_minus(self):
        assert is_minor_of(construct.complete_graph(4), construct.k_bipartite_minus(3, 3, 2)) is MinorOutcome.NO


class TestExactSearchCompleteness:
    """Models the old delete/contract host-link branching lost outright.

    In each case the pattern edge realized by one host link can neither
    be deleted (sole contact between its branch sets) nor contracted
    (the merged set cannot be re-split), so both branches miss the
    model; the branch-set embedding search must find it.
    """

    @pytest.mark.parametrize(
        "host_edges, pattern_edges",
        [
            # 4-cycle + pendant vs triangle + pendant (smallest witness)
            ([(0, 1), (0, 2), (1, 4), (2, 3), (2, 4)], [(0, 1), (0, 2), (1, 2), (2, 3)]),
            ([(0, 2), (0, 3), (0, 4), (1, 5), (2, 3), (2, 5), (4, 5)],
             [(0, 2), (0, 3), (0, 5), (1, 5), (2, 3), (2, 5)]),
            ([(0, 1), (0, 4), (1, 5), (2, 3), (3, 4), (4, 5)],
             [(0, 1), (0, 3), (0, 5), (1, 5), (2, 3)]),
        ],
    )
    def test_lost_models_are_found(self, host_edges, pattern_edges):
        host = nx.Graph(host_edges)
        pattern = nx.Graph(pattern_edges)
        assert has_minor(host, pattern, budget=50_000) is MinorOutcome.YES

    def test_contraction_minors_of_small_hosts_always_found(self):
        # deterministic mini-sweep of the flaky property's distribution
        import random

        from repro.graphs.reductions import contract_edge

        rng = random.Random(2024)
        for _ in range(120):
            n = rng.randint(3, 6)
            graph = nx.gnp_random_graph(n, rng.uniform(0.3, 0.9), seed=rng.randint(0, 10**9))
            if graph.number_of_edges() == 0 or not nx.is_connected(graph):
                continue
            links = sorted(graph.edges)
            u, v = links[rng.randrange(len(links))]
            minor = contract_edge(graph, u, v)
            if minor.number_of_edges() == 0 or not nx.is_connected(minor):
                continue
            assert has_minor(graph, minor, budget=50_000) is MinorOutcome.YES, (
                sorted(graph.edges), (u, v),
            )


class TestForbiddenMinorClassifiers:
    def test_touring_is_outerplanarity(self):
        assert forbidden_minor_touring(construct.cycle_graph(6)) is MinorOutcome.NO
        assert forbidden_minor_touring(construct.wheel_graph(5)) is MinorOutcome.YES

    def test_destination_nonplanar_shortcut(self):
        assert forbidden_minor_destination(construct.petersen_graph()) is MinorOutcome.YES

    def test_destination_netrail_contains_k33_minus1(self):
        # Netrail DOES contain K3,3^-1 (hand-verifiable model: branch
        # sets {v1},{v2,v6},{v4},{v5},{v3},{v7}); the incomplete
        # delete/contract search used to miss it and report NO.  Fig. 6
        # still classifies "sometimes" because the good destinations
        # dominate — see test_classification.TestNetrail.
        assert forbidden_minor_destination(construct.fig6_netrail(), budget=100_000) is MinorOutcome.YES
        # ... but not K5^-1: the K3,3^-1 witness is what flips the verdict
        assert has_minor(construct.fig6_netrail(), pattern_k5_minus1(), budget=100_000) is MinorOutcome.NO

    def test_destination_grid_dirty(self):
        assert forbidden_minor_destination(construct.grid_graph(4, 4)) is MinorOutcome.YES

    def test_destination_double_wheel_dirty(self):
        g = construct.cycle_graph(6)
        for hub in (6, 7):
            for v in range(6):
                g.add_edge(hub, v)
        assert forbidden_minor_destination(g) is MinorOutcome.YES

    def test_source_destination_planar_clean(self):
        assert forbidden_minor_source_destination(construct.grid_graph(6, 6)) is MinorOutcome.NO

    def test_source_destination_k7_dirty(self):
        assert forbidden_minor_source_destination(construct.complete_graph(7)) is MinorOutcome.YES

    def test_source_destination_k44_dirty(self):
        assert forbidden_minor_source_destination(construct.complete_bipartite(4, 4)) is MinorOutcome.YES

    def test_source_destination_k6_clean(self):
        # K6 is non-planar but holds neither K7^-1 nor K4,4^-1
        assert (
            forbidden_minor_source_destination(construct.complete_graph(6), budget=200_000)
            is MinorOutcome.NO
        )


class TestReductions:
    def test_pendants_removed(self):
        host = nx.Graph(construct.complete_graph(5))
        host.add_edge(0, 10)
        reduced = reduce_host(host, pattern_k4())
        assert 10 not in reduced

    def test_series_suppressed_for_min_degree_3(self):
        sub = subdivide(construct.complete_graph(5), times=1)
        reduced = reduce_host(sub, pattern_k4())
        assert reduced.number_of_nodes() == 5
        assert reduced.number_of_edges() == 10

    def test_no_suppression_for_degree2_patterns(self):
        sub = subdivide(pattern_k33_minus1(), times=1)
        reduced = reduce_host(sub, pattern_k33_minus1())
        # degree-2 pattern: only pendant removal is safe; nothing shrinks
        assert reduced.number_of_nodes() == sub.number_of_nodes()

    def test_fast_path_returns_same_object(self):
        host = construct.complete_graph(6)
        assert reduce_host(host, pattern_k4()) is host
