"""Ideal resilience (§I.B.1) and the Theorem 2 minor gap."""

import pytest

from repro.core.adversary import (
    GuardedSourceAlgorithm,
    attack_r_tolerance,
    theorem2_graph,
)
from repro.core.algorithms import ArborescenceRouting, Distance2Algorithm, TourToDestination
from repro.core.resilience import check_ideal_resilience, check_r_tolerance
from repro.graphs import construct
from repro.graphs.connectivity import st_edge_connectivity
from repro.graphs.edges import edge


class TestIdealResilience:
    def test_ring_is_1_ideally_resilient(self):
        verdict = check_ideal_resilience(construct.cycle_graph(5), ArborescenceRouting())
        assert verdict.resilient, str(verdict.counterexample)

    def test_k4_is_2_ideally_resilient(self):
        verdict = check_ideal_resilience(construct.complete_graph(4), ArborescenceRouting())
        assert verdict.resilient, str(verdict.counterexample)

    def test_perfect_implies_ideal(self):
        # Cor 5's pattern is perfectly resilient on the wheel for the hub,
        # hence also ideally resilient (§I.B.1)
        graph = construct.wheel_graph(5)
        verdict = check_ideal_resilience(graph, TourToDestination(), destinations=[0])
        assert verdict.resilient, str(verdict.counterexample)

    def test_disconnected_rejected(self):
        import networkx as nx

        with pytest.raises(ValueError):
            check_ideal_resilience(nx.Graph([(0, 1), (2, 3)]), ArborescenceRouting())


class TestTheorem2:
    def test_construction_shape(self):
        graph, source, destination = theorem2_graph(2)
        assert graph.degree(source) == 2  # r-1 relays + direct link
        assert graph.has_edge(source, destination)

    def test_new_graph_is_r_tolerant(self):
        graph, source, destination = theorem2_graph(2)
        # the promise forces all of s''s links alive; sample the failure
        # sets that keep the promise and check delivery
        from repro.core.resilience import sampled_failure_sets

        verdict = check_r_tolerance(
            graph,
            GuardedSourceAlgorithm(),
            source,
            destination,
            r=2,
            failure_sets=sampled_failure_sets(graph, samples=300, seed=3),
        )
        assert verdict.resilient, str(verdict.counterexample)

    def test_promise_forces_direct_link(self):
        graph, source, destination = theorem2_graph(2)
        direct = edge(source, destination)
        # failing the direct link caps λ(s', t) at deg(s') - 1 = 1 < 2
        assert st_edge_connectivity(graph, source, destination, frozenset([direct])) < 2

    def test_minor_is_not_r_tolerant(self):
        # the K13 minor admits no 2-tolerant pattern (Theorem 1)
        base = construct.complete_graph(13)
        result = attack_r_tolerance(base, Distance2Algorithm(), 0, 12, r=2)
        assert result is not None

    def test_r1_rejected(self):
        with pytest.raises(ValueError):
            theorem2_graph(1)
