"""The fault-tolerance runtime: every recovery path actually recovers.

Covers deadlines/budgets, the cell journal and atomic writes, the
deterministic fault-injection plans, the crash-recovering
``parallel_map``, and the end-to-end guarantees: a worker crash never
changes a sweep verdict, a killed ``run_grid`` resumes to a
byte-identical result store, and a torn write never corrupts the store.
"""

import json
import time

import networkx as nx
import pytest

from repro.core.algorithms import ArborescenceRouting
from repro.core.engine.sweep import ScenarioGrid, parallel_map, sweep_resilience
from repro.experiments import (
    ExperimentSession,
    FailureModel,
    ResultStore,
    run_grid,
)
from repro.runtime import (
    Budget,
    CellJournal,
    Deadline,
    FaultPlan,
    FaultSpec,
    GridKill,
    InjectedFault,
    TornWrite,
    active_plan,
    atomic_write_text,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestDeadline:
    def test_never_expires_without_limit(self):
        clock = FakeClock()
        deadline = Deadline(clock=clock)
        clock.now = 1e9
        assert not deadline.expired()
        assert deadline.remaining() is None

    def test_expires_and_latches(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert not deadline.expired()
        assert deadline.remaining() == 2.0
        clock.now = 2.0
        assert deadline.expired()
        clock.now = 0.0  # a latched deadline never un-expires
        assert deadline.expired()

    def test_manual_expire(self):
        deadline = Deadline()
        deadline.expire()
        assert deadline.expired()

    def test_charge_is_expiry_check(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        assert deadline.charge()
        clock.now = 1.0
        assert not deadline.charge()

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)


class TestBudget:
    def test_unit_budget(self):
        budget = Budget(2)
        assert budget.charge()
        assert not budget.charge()  # second charge spends the last unit
        assert budget.expired()
        assert budget.remaining_units() == 0

    def test_combined_time_and_units(self):
        clock = FakeClock()
        budget = Budget(100, seconds=5.0, clock=clock)
        assert budget.charge()
        clock.now = 5.0
        assert budget.expired()

    def test_negative_units_rejected(self):
        with pytest.raises(ValueError):
            Budget(-1)


class TestCellJournal:
    def test_append_and_replay(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = CellJournal(path)
        journal.append("a", {"x": 1})
        journal.append("b", [1, 2])
        replay = CellJournal(path)
        assert len(replay) == 2
        assert "a" in replay and "b" in replay
        assert replay.payload("a") == {"x": 1}
        assert replay.payload("b") == [1, 2]

    def test_torn_tail_is_truncated(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = CellJournal(path)
        journal.append("a", 1)
        journal.append("b", 2)
        with open(path, "a") as handle:
            handle.write('{"key": "c", "payl')  # the writer died mid-line
        replay = CellJournal(path)
        assert len(replay) == 2
        assert "c" not in replay
        # the torn bytes are gone: the next append produces a clean file
        replay.append("c", 3)
        assert CellJournal(path).payload("c") == 3

    def test_ts_rides_outside_the_payload(self, tmp_path):
        """The wall-clock stamp never leaks into replayed payloads."""
        import json

        path = tmp_path / "journal.jsonl"
        journal = CellJournal(path)
        journal.append("a", {"x": 1})
        line = json.loads(path.read_text().splitlines()[0])
        assert set(line) == {"key", "payload", "ts"}
        assert CellJournal(path).payload("a") == {"x": 1}

    def test_staleness_reflects_newest_entry(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = CellJournal(path)
        assert journal.last_ts is None
        assert journal.staleness_seconds() is None
        journal.append("a", 1)
        journal.append("b", 2)
        replay = CellJournal(path)
        assert replay.last_ts == journal.last_ts
        assert replay.staleness_seconds(now=replay.last_ts + 30) == 30
        # clock skew never yields a negative age
        assert replay.staleness_seconds(now=replay.last_ts - 5) == 0.0

    def test_pre_ts_journals_still_load(self, tmp_path):
        import json

        path = tmp_path / "journal.jsonl"
        path.write_text(json.dumps({"key": "old", "payload": 7}) + "\n")
        journal = CellJournal(path)
        assert journal.payload("old") == 7
        assert journal.last_ts is None

    def test_corrupt_line_stops_replay(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = CellJournal(path)
        journal.append("a", 1)
        with open(path, "a") as handle:
            handle.write("not json at all\n")
        replay = CellJournal(path)
        assert len(replay) == 1

    def test_missing_file_is_empty(self, tmp_path):
        journal = CellJournal(tmp_path / "missing.jsonl")
        assert len(journal) == 0


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_text(path, "one")
        atomic_write_text(path, "two")
        assert path.read_text() == "two"
        assert list(tmp_path.iterdir()) == [path]  # no temp litter

    def test_torn_write_fault_never_touches_target(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_text(path, "intact")
        plan = FaultPlan([FaultSpec("torn-write")])
        with plan.installed():
            with pytest.raises(TornWrite):
                atomic_write_text(path, "replacement that dies halfway")
        assert path.read_text() == "intact"

    def test_result_store_survives_torn_write(self, tmp_path):
        store = ResultStore(tmp_path / "BENCH_engine.json")
        store.merge_raw({"gadget": {"speedup": 4.0}})
        plan = FaultPlan([FaultSpec("torn-write")])
        with plan.installed():
            with pytest.raises(TornWrite):
                store.merge_raw({"zoo": {"speedup": 5.0}})
        # the store is never corrupt: old document intact and parseable
        assert store.load_document() == {"gadget": {"speedup": 4.0}}


class TestFaultPlan:
    def test_parse_round_trip(self):
        plan = FaultPlan.parse(
            "worker-crash:at=0+2,attempts=all;cell-error:rate=0.5;"
            "slow-chunk:seconds=0.01;grid-kill:at=3",
            seed=7,
        )
        kinds = [spec.kind for spec in plan.specs]
        assert kinds == ["worker-crash", "cell-error", "slow-chunk", "grid-kill"]
        assert plan.specs[0].at == (0, 2)
        assert plan.specs[0].attempts is None
        assert plan.specs[1].rate == 0.5
        assert plan.specs[2].seconds == 0.01
        assert plan.seed == 7

    @pytest.mark.parametrize(
        "text",
        ["", "unknown-kind:at=0", "cell-error:bogus=1", "cell-error:rate=2.0"],
    )
    def test_parse_rejects(self, text):
        with pytest.raises(ValueError):
            FaultPlan.parse(text)

    def test_at_and_attempt_selection(self):
        spec = FaultSpec("worker-crash", at=(1, 3))
        assert not spec.triggers(0, 0, 0)
        assert spec.triggers(0, 1, 0)
        assert not spec.triggers(0, 1, 1)  # default: first attempt only
        assert FaultSpec("worker-crash", at=(1,), attempts=None).triggers(0, 1, 5)

    def test_rate_is_seed_deterministic(self):
        spec = FaultSpec("cell-error", rate=0.5, attempts=None)
        pattern = [spec.triggers(0, index, 0) for index in range(64)]
        assert pattern == [spec.triggers(0, index, 0) for index in range(64)]
        assert any(pattern) and not all(pattern)

    def test_visit_counter_for_indexless_sites(self):
        plan = FaultPlan([FaultSpec("torn-write", at=(1,))])
        assert plan.fire("store-write") is None  # visit 0
        assert plan.fire("store-write") is not None  # visit 1
        assert plan.fire("store-write") is None  # visit 2

    def test_installed_restores_previous(self):
        assert active_plan() is None
        plan = FaultPlan([FaultSpec("cell-error")])
        with plan.installed():
            assert active_plan() is plan
        assert active_plan() is None


class TestParallelMap:
    def test_matches_serial(self):
        items = list(range(23))
        assert parallel_map(lambda x: x * x, items, 4) == [x * x for x in items]

    def test_worker_crash_salvages_completed_chunks(self):
        items = list(range(10))
        plan = FaultPlan.parse("worker-crash:at=0")
        with plan.installed():
            out = parallel_map(lambda x: x + 1, items, 4)
        assert out == [x + 1 for x in items]

    def test_poisoned_item_falls_back_to_serial(self):
        # crashes the worker on every attempt: retries exhaust, the
        # serial pass completes the map (injected faults only fire in
        # forked workers, so the serial pass is clean)
        items = list(range(6))
        plan = FaultPlan.parse("worker-crash:at=2,attempts=all")
        with plan.installed():
            out = parallel_map(lambda x: x * 3, items, 3)
        assert out == [x * 3 for x in items]

    def test_slow_chunk_timeout_recovers(self):
        items = list(range(6))
        plan = FaultPlan.parse("slow-chunk:at=0,seconds=30")
        start = time.monotonic()
        with plan.installed():
            out = parallel_map(lambda x: x, items, 3, timeout=0.2)
        assert out == items
        assert time.monotonic() - start < 10  # never waited out the sleep

    def test_function_exception_propagates(self):
        def boom(x):
            if x == 2:
                raise ValueError("boom")
            return x

        with pytest.raises(ValueError, match="boom"):
            parallel_map(boom, list(range(5)), 3)

    def test_initializer_warms_every_worker(self):
        from repro.core.engine.sweep import worker_warm

        marker = {"tag": "warm"}

        def use_warm(x):
            warm = worker_warm()
            return (x, None if warm is None else warm["tag"])

        out = parallel_map(use_warm, list(range(6)), 2, initializer=lambda: marker)
        assert out == [(x, "warm") for x in range(6)]

    def test_worker_warm_stays_none_in_the_parent(self):
        from repro.core.engine.sweep import worker_warm

        assert worker_warm() is None
        parallel_map(lambda x: x, [1, 2, 3], 2, initializer=lambda: "warm")
        assert worker_warm() is None  # the initializer only ran post-fork

    def test_serial_path_skips_the_initializer(self):
        from repro.core.engine.sweep import worker_warm

        ran = []

        def warm():
            ran.append(1)
            return "warm"

        out = parallel_map(lambda x: worker_warm(), [7], 4, initializer=warm)
        assert out == [None] and not ran  # single item: inline, no fork


class TestSweepRecovery:
    """A worker crash mid-sweep never changes the verdict."""

    @pytest.fixture(scope="class")
    def case(self):
        graph = nx.circulant_graph(8, [1, 2])
        grid = ScenarioGrid(max_failures=1)
        clean = sweep_resilience(graph, ArborescenceRouting(), grid)
        return graph, grid, clean

    def test_clean_parallel_matches_serial(self, case):
        graph, grid, clean = case
        parallel = sweep_resilience(graph, ArborescenceRouting(), grid, processes=2)
        assert self._verdict_tuple(parallel.verdict) == self._verdict_tuple(clean.verdict)

    def test_crashed_worker_verdict_is_bit_identical(self, case):
        graph, grid, clean = case
        plan = FaultPlan.parse("worker-crash:at=0")
        with plan.installed():
            crashed = sweep_resilience(graph, ArborescenceRouting(), grid, processes=2)
        assert self._verdict_tuple(crashed.verdict) == self._verdict_tuple(clean.verdict)
        assert len(crashed.units) == len(clean.units)

    @staticmethod
    def _verdict_tuple(verdict):
        return (
            verdict.resilient,
            verdict.scenarios_checked,
            verdict.exhaustive,
            str(verdict.counterexample),
        )

    def test_deadline_cuts_cleanly(self, case):
        graph, grid, clean = case
        cut = sweep_resilience(graph, ArborescenceRouting(), grid, deadline=Budget(2))
        assert cut.verdict.resilient
        assert not cut.verdict.exhaustive
        assert len(cut.units) == 2
        # completed units are whole: they match the uncut run's prefix
        for (unit, verdict), (clean_unit, clean_verdict) in zip(cut.units, clean.units):
            assert unit == clean_unit
            assert verdict.scenarios_checked == clean_verdict.scenarios_checked

    def test_expired_deadline_runs_nothing(self, case):
        graph, grid, _ = case
        result = sweep_resilience(graph, ArborescenceRouting(), grid, deadline=Deadline(0.0))
        assert result.verdict.scenarios_checked == 0
        assert not result.verdict.exhaustive
        assert result.units == []


GRID_KWARGS = dict(
    topologies=["ring"],
    schemes=["arborescence", "greedy"],
    failure_models=[FailureModel(sizes=(0, 1), samples=2, seed=0)],
    metrics=("resilience", "congestion", "stretch", "table_space"),
    matrix="permutation",
    matrix_seed=0,
)


@pytest.fixture()
def frozen_clock(monkeypatch):
    """Pin record runtimes so resumed and clean runs are byte-comparable."""
    monkeypatch.setattr(time, "perf_counter", lambda: 0.0)


class TestGridRecovery:
    def test_kill_and_resume_is_byte_identical(self, tmp_path, frozen_clock):
        clean_store = ResultStore(tmp_path / "clean.json")
        run_grid(session=ExperimentSession(), store=clean_store, **GRID_KWARGS)

        chaos_store = ResultStore(tmp_path / "chaos.json")
        journal_path = tmp_path / "journal.jsonl"
        plan = FaultPlan.parse("grid-kill:at=1")
        with plan.installed():
            with pytest.raises(GridKill):
                run_grid(
                    session=ExperimentSession(),
                    store=chaos_store,
                    resume=journal_path,
                    **GRID_KWARGS,
                )
        # the kill happened mid-grid: cell 0 journaled, store unwritten
        assert len(CellJournal(journal_path)) == 1
        assert not chaos_store.path.exists()

        resumed = run_grid(
            session=ExperimentSession(),
            store=chaos_store,
            resume=journal_path,
            **GRID_KWARGS,
        )
        assert resumed.resumed_cells == 1
        assert chaos_store.path.read_bytes() == clean_store.path.read_bytes()

    def test_resume_skips_all_completed_cells(self, tmp_path, frozen_clock):
        journal_path = tmp_path / "journal.jsonl"
        first = run_grid(session=ExperimentSession(), resume=journal_path, **GRID_KWARGS)
        assert first.resumed_cells == 0
        second = run_grid(session=ExperimentSession(), resume=journal_path, **GRID_KWARGS)
        assert second.resumed_cells == 2
        assert [r.to_dict() for r in second.records] == [r.to_dict() for r in first.records]

    def test_cell_error_becomes_typed_record(self):
        plan = FaultPlan.parse("cell-error:at=0")
        with plan.installed():
            result = run_grid(session=ExperimentSession(), **GRID_KWARGS)
        errors = result.errors
        assert len(errors) == 1
        assert errors[0].status == "error"
        assert errors[0].experiment == "error"
        assert InjectedFault.__name__ in errors[0].note
        assert "InjectedFault" in errors[0].params["traceback"]
        # the grid kept going: the second scheme's cell is complete
        assert any(r.status == "ok" and r.scheme == "greedy" for r in result.records)

    def test_errored_cells_are_journaled_and_replayed(self, tmp_path, frozen_clock):
        journal_path = tmp_path / "journal.jsonl"
        plan = FaultPlan.parse("cell-error:at=0")
        with plan.installed():
            first = run_grid(session=ExperimentSession(), resume=journal_path, **GRID_KWARGS)
        assert len(first.errors) == 1
        replay = run_grid(session=ExperimentSession(), resume=journal_path, **GRID_KWARGS)
        assert replay.resumed_cells == 2
        assert [r.to_dict() for r in replay.records] == [r.to_dict() for r in first.records]

    def test_deadline_stops_between_cells(self):
        result = run_grid(session=ExperimentSession(), deadline=Budget(1), **GRID_KWARGS)
        assert not result.exhaustive
        # exactly the first cell's records are present
        assert {record.scheme for record in result.records} == {"arborescence"}

    def test_session_deadline_is_the_default(self):
        session = ExperimentSession(deadline=Budget(1))
        result = run_grid(session=session, **GRID_KWARGS)
        assert not result.exhaustive

    def test_expired_deadline_yields_empty_grid(self):
        result = run_grid(session=ExperimentSession(), deadline=Deadline(0.0), **GRID_KWARGS)
        assert result.records == []
        assert not result.exhaustive


class TestParallelGrid:
    """``run_grid(processes>1)``: warm-worker fan-out whose stitched
    output is byte-identical to a serial run."""

    def test_parallel_records_equal_serial(self, frozen_clock):
        serial = run_grid(session=ExperimentSession(), **GRID_KWARGS)
        par = run_grid(session=ExperimentSession(processes=2), **GRID_KWARGS)
        assert [r.to_dict() for r in par.records] == [r.to_dict() for r in serial.records]
        assert par.exhaustive and par.skipped == serial.skipped

    def test_parallel_store_is_byte_identical(self, tmp_path, frozen_clock):
        serial_store = ResultStore(tmp_path / "serial.json")
        parallel_store = ResultStore(tmp_path / "parallel.json")
        run_grid(session=ExperimentSession(), store=serial_store, **GRID_KWARGS)
        run_grid(session=ExperimentSession(processes=2), store=parallel_store, **GRID_KWARGS)
        assert serial_store.path.read_bytes() == parallel_store.path.read_bytes()

    def test_fault_plan_forces_serial_execution(self):
        # per-cell fault decisions are driver-side state; an installed
        # plan must run the grid serially (and still fire)
        plan = FaultPlan.parse("cell-error:at=0")
        with plan.installed():
            result = run_grid(session=ExperimentSession(processes=2), **GRID_KWARGS)
        assert len(result.errors) == 1

    def test_parallel_replays_a_serial_journal(self, tmp_path, frozen_clock):
        journal_path = tmp_path / "journal.jsonl"
        first = run_grid(session=ExperimentSession(), resume=journal_path, **GRID_KWARGS)
        replay = run_grid(
            session=ExperimentSession(processes=2), resume=journal_path, **GRID_KWARGS
        )
        assert replay.resumed_cells == 2
        assert [r.to_dict() for r in replay.records] == [r.to_dict() for r in first.records]

    def test_serial_replays_a_parallel_journal(self, tmp_path, frozen_clock):
        journal_path = tmp_path / "journal.jsonl"
        first = run_grid(
            session=ExperimentSession(processes=2), resume=journal_path, **GRID_KWARGS
        )
        replay = run_grid(session=ExperimentSession(), resume=journal_path, **GRID_KWARGS)
        assert replay.resumed_cells == 2
        assert [r.to_dict() for r in replay.records] == [r.to_dict() for r in first.records]

    def test_budget_truncates_the_stitched_grid(self):
        result = run_grid(
            session=ExperimentSession(processes=2), deadline=Budget(1), **GRID_KWARGS
        )
        assert not result.exhaustive
        assert {record.scheme for record in result.records} == {"arborescence"}

    def test_progress_heartbeat_fires_per_cell(self):
        beats = []
        run_grid(
            session=ExperimentSession(processes=2), progress=beats.append, **GRID_KWARGS
        )
        assert len(beats) == 2
        assert beats[-1]["done"] == 2 and beats[-1]["total"] == 2


class TestLoadSweepDeadline:
    def test_partial_prefix_matches_full_run(self):
        from repro.experiments import resolve_topology, scheme
        from repro.traffic import TrafficEngine, permutation, sample_failure_grid

        graph = resolve_topology("grid(3, 3)")
        algorithm = scheme("arborescence").instantiate()
        demands = permutation(graph, seed=1)
        grid = sample_failure_grid(graph, [0, 1, 2], 2, seed=0)
        failure_sets = [failures for size in sorted(grid) for failures in grid[size]]
        engine = TrafficEngine(graph, algorithm)
        full = engine.load_sweep(demands, failure_sets)
        partial = engine.load_sweep(demands, failure_sets, deadline=Budget(3))
        assert len(partial) == 3
        for cut, complete in zip(partial, full):
            assert cut.loads == complete.loads
        assert engine.load_sweep(demands, failure_sets, deadline=Deadline(0.0)) == []
