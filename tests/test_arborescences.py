"""Unit tests for the arborescence packing (Chiesa baseline substrate)."""

import pytest

from repro.graphs import construct
from repro.graphs.arborescences import arc_disjoint_in_arborescences, verify_arborescences


class TestPacking:
    @pytest.mark.parametrize(
        "builder,root,k",
        [
            (lambda: construct.complete_graph(5), 0, 4),
            (lambda: construct.complete_graph(7), 3, 6),
            (lambda: construct.complete_bipartite(3, 3), 0, 3),
            (lambda: construct.complete_bipartite(4, 4), 5, 4),
            (lambda: construct.cycle_graph(6), 2, 2),
            (lambda: construct.grid_graph(3, 3), 4, 2),
            (lambda: construct.petersen_graph(), 0, 3),
        ],
    )
    def test_full_connectivity_packing(self, builder, root, k):
        graph = builder()
        trees = arc_disjoint_in_arborescences(graph, root)
        assert len(trees) == k
        assert verify_arborescences(graph, root, trees)

    def test_partial_k(self):
        graph = construct.complete_graph(6)
        trees = arc_disjoint_in_arborescences(graph, 0, k=3)
        assert len(trees) == 3
        assert verify_arborescences(graph, 0, trees)

    def test_disconnected_rejected(self):
        import networkx as nx

        with pytest.raises(ValueError):
            arc_disjoint_in_arborescences(nx.Graph([(0, 1), (2, 3)]), 0)


class TestVerification:
    def test_detects_shared_arc(self):
        graph = construct.complete_graph(4)
        tree = {1: 0, 2: 0, 3: 0}
        assert not verify_arborescences(graph, 0, [tree, tree])

    def test_opposite_directions_allowed(self):
        graph = construct.cycle_graph(3)
        clockwise = {1: 0, 2: 1}
        counter = {2: 0, 1: 2}
        assert verify_arborescences(graph, 0, [clockwise, counter])

    def test_detects_cycle(self):
        graph = construct.complete_graph(4)
        bad = {1: 2, 2: 1, 3: 0}
        assert not verify_arborescences(graph, 0, [bad])

    def test_detects_missing_node(self):
        graph = construct.complete_graph(4)
        bad = {1: 0, 2: 0}
        assert not verify_arborescences(graph, 0, [bad])

    def test_detects_fake_link(self):
        graph = construct.cycle_graph(4)
        bad = {1: 0, 2: 0, 3: 0}  # (2, 0) is not a link of C4
        assert not verify_arborescences(graph, 0, [bad])


class TestDeterminism:
    """Packings must not depend on the interpreter's string hash seed.

    String-labelled graphs used to leak ``PYTHONHASHSEED`` through set
    iteration order in the greedy growth step; the packing is now
    canonicalized by sorting candidates before the seeded shuffle.
    """

    #: 5-node, 9-link string-labelled graph (2-connected, non-complete)
    STRING_EDGES = [
        ("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "a"),
        ("a", "c"), ("b", "d"), ("c", "e"), ("d", "a"),
    ]

    _SCRIPT = """
import hashlib, json, sys
import networkx as nx
from repro.graphs.arborescences import arc_disjoint_in_arborescences

edges = json.loads(sys.argv[1])
graph = nx.Graph(edges)
trees = arc_disjoint_in_arborescences(graph, "a")
blob = json.dumps([sorted(tree.items()) for tree in trees]).encode()
print(hashlib.sha256(blob).hexdigest())
"""

    def _packing_digest(self, hash_seed):
        import json
        import os
        import subprocess
        import sys

        env = dict(os.environ, PYTHONHASHSEED=str(hash_seed))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        result = subprocess.run(
            [sys.executable, "-c", self._SCRIPT, json.dumps(self.STRING_EDGES)],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return result.stdout.strip()

    def test_string_labels_packing_is_hash_seed_independent(self):
        digests = {self._packing_digest(seed) for seed in (0, 1, 2)}
        assert len(digests) == 1, f"packing depends on PYTHONHASHSEED: {digests}"

    def test_string_labelled_packing_verifies(self):
        import networkx as nx

        graph = nx.Graph(self.STRING_EDGES)
        trees = arc_disjoint_in_arborescences(graph, "a")
        assert len(trees) == 3
        assert verify_arborescences(graph, "a", trees)

    def test_string_labelled_complete_graph(self):
        import networkx as nx

        nodes = ["alpha", "beta", "gamma", "delta", "epsilon"]
        graph = nx.complete_graph(nodes)
        trees = arc_disjoint_in_arborescences(graph, "gamma")
        assert len(trees) == 4
        assert verify_arborescences(graph, "gamma", trees)
