"""run_grid, ExperimentRecord serialization, and the result store."""

import json

import pytest

from repro.experiments import (
    ExperimentRecord,
    ExperimentSession,
    FailureModel,
    ResultStore,
    list_schemes,
    records_round_trip,
    resolve_topology,
    run_grid,
    scheme,
)
from repro.traffic import compare_congestion, permutation


class TestGridVsCompareCongestion:
    """Acceptance: run_grid reproduces compare_congestion exactly."""

    SIZES = (0, 1, 2)
    SAMPLES = 3
    SEED = 0

    @pytest.fixture(scope="class")
    def comparison(self):
        graph = resolve_topology("grid(3, 3)")
        demands = permutation(graph, seed=1)
        return compare_congestion(
            graph,
            demands,
            sizes=list(self.SIZES),
            samples=self.SAMPLES,
            seed=self.SEED,
        )

    @pytest.fixture(scope="class")
    def grid_records(self):
        names = [spec.name for spec in list_schemes(tag="congestion-default")]
        result = run_grid(
            ["grid(3, 3)"],
            names,
            failure_models=[
                FailureModel(sizes=self.SIZES, samples=self.SAMPLES, seed=self.SEED)
            ],
            metrics=("congestion",),
            matrix="permutation",
            matrix_seed=1,
            session=ExperimentSession(),
        )
        return result

    def test_identical_numbers_per_scheme_and_size(self, comparison, grid_records):
        by_algorithm = {curve.algorithm: curve for curve in comparison.curves}
        checked = 0
        for record in grid_records.select("congestion"):
            if record.status != "ok":
                continue
            algorithm_name = scheme(record.scheme).factory.name
            curve = by_algorithm[algorithm_name]
            assert len(record.series) == len(curve.points)
            for row, point in zip(record.series, curve.points):
                assert row["failures"] == point.failures
                assert row["scenarios"] == point.scenarios
                assert row["mean_max_load"] == point.mean_max_load
                assert row["worst_max_load"] == point.worst_max_load
                assert row["mean_p99_load"] == point.mean_p99_load
                assert row["delivered_fraction"] == point.delivered_fraction
                assert row["mean_stretch"] == point.mean_stretch
                checked += 1
        assert checked >= 3 * len(comparison.curves)  # every size of every curve

    def test_same_schemes_skipped(self, comparison, grid_records):
        harness_skipped = {name for name, _ in comparison.skipped}
        grid_skipped = {
            scheme(record.scheme).factory.name
            for record in grid_records.select("congestion")
            if record.status != "ok"
        }
        # schemes the runner refused by predicate never reach the harness
        applicability_skipped = {
            scheme(name).factory.name for _, name, _ in grid_records.skipped
        }
        assert harness_skipped == grid_skipped | applicability_skipped


class TestRunGrid:
    def test_inapplicable_scheme_yields_skip_record(self):
        result = run_grid(
            ["petersen"],
            ["tour"],
            failure_models=[FailureModel(sizes=(0,), samples=1)],
            metrics=("congestion",),
        )
        assert not result.select("congestion")
        (record,) = result.records
        assert record.experiment == "applicability"
        assert record.status == "skipped"
        assert "outerplanar" in record.note
        assert result.skipped and result.skipped[0][1] == "tour"

    def test_resilience_metric_matches_checker(self):
        from repro.core.resilience import check_perfect_resilience_destination

        graph = resolve_topology("ring")
        model = FailureModel(sizes=(0, 1, 2), samples=3, seed=5)
        grid = model.grid(graph)
        flat = [failures for size in sorted(grid) for failures in grid[size]]
        expected = check_perfect_resilience_destination(
            graph, scheme("tour").instantiate(), failure_sets=flat
        )
        result = run_grid(
            [("ring", graph)],
            ["tour"],
            failure_models=[model],
            metrics=("resilience",),
        )
        (record,) = result.select("resilience")
        assert record.metrics["resilient"] == expected.resilient
        assert record.metrics["scenarios_checked"] == expected.scenarios_checked

    def test_naive_backend_congestion_matches_engine(self):
        from repro.experiments import naive_session

        model = FailureModel(sizes=(0, 1, 2), samples=2, seed=4)
        kwargs = dict(
            failure_models=[model], metrics=("congestion",), matrix="all-to-one"
        )
        fast = run_grid(["ring"], ["greedy", "arborescence"], **kwargs)
        slow = run_grid(
            ["ring"], ["greedy", "arborescence"], session=naive_session(), **kwargs
        )
        for a, b in zip(fast.select("congestion"), slow.select("congestion")):
            assert (a.scheme, a.series) == (b.scheme, b.series)
            assert a.metrics == b.metrics

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown metrics"):
            run_grid(["ring"], ["greedy"], metrics=("latency",))

    def test_runtime_recorded(self):
        result = run_grid(
            ["ring"], ["greedy"], failure_models=[FailureModel(sizes=(0,), samples=1)]
        )
        assert all(record.runtime_seconds >= 0.0 for record in result.records)
        assert result.table()  # renders without crashing


class TestRecords:
    def test_json_round_trip(self):
        record = ExperimentRecord(
            experiment="congestion",
            topology="ring",
            scheme="greedy",
            failure_model="random(sizes=0/1,samples=2,seed=0)",
            metrics={"worst_max_load": 4, "delivered_fraction": 0.5},
            series=[{"failures": 0, "mean_max_load": 2.0}],
            params={"matrix": "permutation"},
            runtime_seconds=0.25,
        )
        assert ExperimentRecord.from_json(record.to_json()) == record
        assert records_round_trip([record])

    def test_non_scalar_metric_rejected(self):
        with pytest.raises(TypeError, match="JSON scalar"):
            ExperimentRecord(
                experiment="x", topology="t", scheme="s", metrics={"bad": [1, 2]}
            )

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown record fields"):
            ExperimentRecord.from_dict({"experiment": "x", "topology": "t", "scheme": "s", "wat": 1})


class TestResultStore:
    def _record(self, scheme_name, value, matrix="permutation"):
        return ExperimentRecord(
            experiment="congestion",
            topology="ring",
            scheme=scheme_name,
            failure_model="fm",
            metrics={"worst_max_load": value},
            params={"matrix": matrix},
        )

    def test_merge_replaces_same_key_keeps_others(self, tmp_path):
        store = ResultStore(tmp_path / "results.json")
        store.merge([self._record("greedy", 4), self._record("tour", 3)])
        store.merge([self._record("greedy", 9)])  # newer run, same identity
        records = {record.scheme: record for record in store.load_records()}
        assert records["greedy"].metrics["worst_max_load"] == 9
        assert records["tour"].metrics["worst_max_load"] == 3

    def test_matrix_is_part_of_identity(self, tmp_path):
        store = ResultStore(tmp_path / "results.json")
        store.merge([self._record("greedy", 4, "permutation")])
        store.merge([self._record("greedy", 7, "all-to-all")])
        assert len(store.load_records()) == 2

    def test_raw_sections_survive_record_merges(self, tmp_path):
        path = tmp_path / "bench.json"
        store = ResultStore(path)
        store.merge_raw({"gadget": {"speedup": 10.0}})
        store.merge([self._record("greedy", 4)])
        store.merge_raw({"congestion": {"workloads": {}}})
        document = json.loads(path.read_text())
        assert document["gadget"] == {"speedup": 10.0}
        assert document["congestion"] == {"workloads": {}}
        assert len(document["records"]) == 1

    def test_csv_export(self, tmp_path):
        store = ResultStore(tmp_path / "results.json")
        store.merge([self._record("greedy", 4), self._record("tour", 3)])
        csv_path = tmp_path / "results.csv"
        assert store.write_csv(csv_path) == 2
        lines = csv_path.read_text().splitlines()
        assert len(lines) == 3
        assert "metric:worst_max_load" in lines[0]
        assert "param:matrix" in lines[0]


class TestExperimentsCli:
    def test_quick_smoke_round_trips(self, capsys):
        from repro.cli import main

        assert main(["experiments", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "JSON round-trip ok" in out
        assert "resilience" in out and "congestion" in out

    def test_list_registries(self, capsys):
        from repro.cli import main

        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        assert "registered schemes" in out
        assert "arborescence" in out and "fattree" in out

    def test_store_and_csv(self, tmp_path, capsys):
        from repro.cli import main

        out_json = tmp_path / "records.json"
        out_csv = tmp_path / "records.csv"
        code = main(
            [
                "experiments",
                "--topologies", "ring",
                "--schemes", "greedy",
                "--sizes", "0,1",
                "--samples", "2",
                "--metrics", "congestion",
                "--out", str(out_json),
                "--csv", str(out_csv),
            ]
        )
        assert code == 0
        assert ResultStore(out_json).load_records()
        assert out_csv.read_text().count("\n") >= 2
