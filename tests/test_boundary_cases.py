"""Boundary cases across the library: tiny graphs, missing roles, reuse."""

import networkx as nx
import pytest

from repro.core.algorithms import (
    Distance2Algorithm,
    K33SourceRouting,
    K5SourceRouting,
    RightHandTouring,
)
from repro.core.resilience import (
    check_perfect_resilience_source_destination,
    check_perfect_touring,
)
from repro.core.simulator import Network, route
from repro.graphs import construct
from repro.graphs.edges import failure_set


class TestTinyGraphs:
    def test_single_link(self):
        g = construct.path_graph(2)
        verdict = check_perfect_resilience_source_destination(g, K5SourceRouting())
        assert verdict.resilient

    def test_two_isolated_nodes(self):
        g = nx.Graph()
        g.add_nodes_from([0, 1])
        verdict = check_perfect_resilience_source_destination(g, K5SourceRouting())
        assert verdict.resilient  # never connected: vacuous

    def test_triangle_all_models(self):
        g = construct.complete_graph(3)
        assert check_perfect_resilience_source_destination(g, K5SourceRouting()).resilient
        assert check_perfect_touring(g, RightHandTouring()).resilient


class TestK33RolesMissing:
    def test_same_part_without_relay(self):
        # path 0-3-1: s and t share the 2-node part, no "b" relay exists
        g = nx.Graph([(0, 3), (3, 1)])
        verdict = check_perfect_resilience_source_destination(
            g, K33SourceRouting(), pairs=[(0, 1), (1, 0)]
        )
        assert verdict.resilient, str(verdict.counterexample)

    def test_four_node_path_all_pairs(self):
        g = construct.path_graph(4)
        verdict = check_perfect_resilience_source_destination(g, K33SourceRouting())
        assert verdict.resilient, str(verdict.counterexample)

    def test_single_link_bipartite(self):
        g = construct.path_graph(2)
        verdict = check_perfect_resilience_source_destination(g, K33SourceRouting())
        assert verdict.resilient, str(verdict.counterexample)


class TestNetworkReuse:
    def test_network_shared_across_failure_sets(self):
        g = construct.complete_graph(5)
        network = Network(g)
        pattern = Distance2Algorithm().build(g, 0, 4)
        first = route(network, pattern, 0, 4, failure_set((0, 4)))
        second = route(network, pattern, 0, 4, frozenset())
        third = route(network, pattern, 0, 4, failure_set((0, 4)))
        assert first.path == third.path
        assert second.path == [0, 4]

    def test_view_is_fresh_per_call(self):
        g = construct.complete_graph(4)
        network = Network(g)
        view_a = network.view(0, None, failure_set((0, 1)))
        view_b = network.view(0, None, frozenset())
        assert view_a.alive != view_b.alive


class TestStringNodeLabels:
    def test_routing_with_string_nodes(self):
        g = nx.Graph([("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
        pattern = K5SourceRouting().build(g, "a", "d")
        result = route(g, pattern, "a", "d", failure_set(("c", "d")))
        # (c,d) is d's only link: unreachable => loop is acceptable;
        # without that failure it must deliver
        result = route(g, pattern, "a", "d")
        assert result.delivered

    def test_touring_with_string_nodes(self):
        g = nx.Graph([("x", "y"), ("y", "z")])
        assert check_perfect_touring(g, RightHandTouring()).resilient

    def test_classify_with_string_nodes(self):
        from repro.core.classification import classify

        g = nx.Graph([("a", "b"), ("b", "c"), ("c", "a")])
        result = classify(g)
        assert result.planarity == "outerplanar"
