"""Engine ⇔ naive equivalence: the fast path must change nothing.

Property-style differential tests: for random graphs, all three routing
models, and the paper gadgets (K7, K4,4, Netrail), the indexed +
memoized engine must return *identical* results to the naive
simulator/checkers — same ``Outcome``, same hop-by-hop path, same
``Verdict`` (resilient flag, scenario count, exhaustiveness) and the
same counterexample trace.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.core.algorithms.naive import (
    GreedyLowestNeighbor,
    RandomCyclicDestinationOnly,
    RandomCyclicPermutations,
    RandomPortCycles,
)
from repro.core.engine import EngineState, route_indexed, tour_indexed
from repro.core.resilience import (
    all_failure_sets,
    check_pattern_resilience,
    check_perfect_resilience_destination,
    check_perfect_resilience_source_destination,
    check_perfect_touring,
    check_r_tolerance,
)
from repro.core.engine.vectorized import numpy_available
from repro.core.simulator import Network, route, tour
from repro.experiments import (
    ExperimentSession,
    default_session as engine_session,
    naive_session,
)
from repro.graphs.construct import complete_bipartite, complete_graph, fig6_netrail
from repro.graphs.edges import edge, edge_sort_key

RANDOM_GRAPHS_PER_MODEL = 50

#: the differential matrix: every fast backend must equal the naive
#: reference bit for bit (numpy joins the matrix when it is installed)
FAST_BACKENDS = ["engine"] + (["numpy"] if numpy_available() else [])


@pytest.fixture(params=FAST_BACKENDS)
def fast_session(request):
    return ExperimentSession(backend=request.param)


def random_graph(index: int) -> nx.Graph:
    """A small connected random graph, deterministic per index."""
    rng = random.Random(index)
    n = rng.randint(5, 8)
    while True:
        graph = nx.gnp_random_graph(n, 0.45, seed=rng.randint(0, 10**9))
        if graph.number_of_edges() >= n - 1 and nx.is_connected(graph):
            return graph


def verdict_tuple(verdict):
    t = (verdict.resilient, verdict.scenarios_checked, verdict.exhaustive)
    c = verdict.counterexample
    if c is not None:
        result = None
        if c.result is not None:
            result = (c.result.outcome, tuple(c.result.path), c.result.steps)
        t += (c.source, c.destination, c.failures, result, c.note)
    return t


def small_failure_family(graph: nx.Graph) -> list:
    """All |F| ≤ 2 plus a few random larger sets — cheap but varied."""
    sets = list(all_failure_sets(graph, max_failures=2))
    links = sorted((edge(u, v) for u, v in graph.edges), key=edge_sort_key)
    rng = random.Random(graph.number_of_edges() * 1000 + graph.number_of_nodes())
    for _ in range(5):
        size = rng.randint(3, max(3, len(links)))
        sets.append(frozenset(rng.sample(links, min(size, len(links)))))
    return sets


def assert_routes_match(graph, pattern, scenarios):
    """Every (source, destination, failures) routes identically."""
    naive = Network(graph)
    state = EngineState(graph)
    memo = state.memoized(pattern)
    network = state.network
    for source, destination, failures in scenarios:
        expected = route(naive, pattern, source, destination, failures)
        fmask = network.mask_of(failures)
        assert fmask is not None
        got = route_indexed(
            network, memo, network.index[source], network.index[destination], fmask
        )
        assert got.outcome is expected.outcome, (source, destination, failures)
        assert got.path == expected.path, (source, destination, failures)
        assert got.steps == expected.steps, (source, destination, failures)


class TestRouteEquivalenceRandomGraphs:
    @pytest.mark.parametrize("index", range(RANDOM_GRAPHS_PER_MODEL))
    def test_destination_model(self, index):
        graph = random_graph(index)
        destination = min(graph.nodes)
        pattern = RandomCyclicDestinationOnly(seed=index).build(graph, destination)
        scenarios = [
            (s, destination, failures)
            for failures in small_failure_family(graph)
            for s in graph.nodes
            if s != destination
        ]
        assert_routes_match(graph, pattern, scenarios)

    @pytest.mark.parametrize("index", range(RANDOM_GRAPHS_PER_MODEL))
    def test_source_destination_model(self, index):
        graph = random_graph(1_000 + index)
        nodes = sorted(graph.nodes)
        source, destination = nodes[0], nodes[-1]
        pattern = RandomCyclicPermutations(seed=index).build(graph, source, destination)
        scenarios = [
            (source, destination, failures) for failures in small_failure_family(graph)
        ]
        assert_routes_match(graph, pattern, scenarios)

    @pytest.mark.parametrize("index", range(RANDOM_GRAPHS_PER_MODEL))
    def test_port_model_tours(self, index):
        graph = random_graph(2_000 + index)
        pattern = RandomPortCycles(seed=index).build(graph)
        naive = Network(graph)
        state = EngineState(graph)
        memo = state.memoized(pattern)
        network = state.network
        for failures in small_failure_family(graph):
            fmask = network.mask_of(failures)
            assert fmask is not None
            for start in graph.nodes:
                expected = tour(naive, pattern, start, failures)
                got = tour_indexed(network, memo, network.index[start], fmask)
                assert got.visited == expected.visited, (start, failures)
                assert got.recurrent == expected.recurrent, (start, failures)
                assert got.failed == expected.failed, (start, failures)
                assert got.path == expected.path, (start, failures)


class TestCheckerEquivalenceRandomGraphs:
    """Full checker verdicts, every fast backend vs naive, on a subsample."""

    @pytest.mark.parametrize("index", range(0, RANDOM_GRAPHS_PER_MODEL, 4))
    def test_destination_checker(self, index, fast_session):
        graph = random_graph(3_000 + index)
        algorithm = GreedyLowestNeighbor()
        fast = check_perfect_resilience_destination(graph, algorithm, session=fast_session)
        slow = check_perfect_resilience_destination(graph, algorithm, session=naive_session())
        assert verdict_tuple(fast) == verdict_tuple(slow)

    @pytest.mark.parametrize("index", range(0, RANDOM_GRAPHS_PER_MODEL, 4))
    def test_source_destination_checker(self, index, fast_session):
        graph = random_graph(4_000 + index)
        algorithm = RandomCyclicPermutations(seed=index)
        fast = check_perfect_resilience_source_destination(
            graph, algorithm, session=fast_session
        )
        slow = check_perfect_resilience_source_destination(graph, algorithm, session=naive_session())
        assert verdict_tuple(fast) == verdict_tuple(slow)

    @pytest.mark.parametrize("index", range(0, RANDOM_GRAPHS_PER_MODEL, 4))
    def test_touring_checker(self, index, fast_session):
        graph = random_graph(5_000 + index)
        algorithm = RandomPortCycles(seed=index)
        fast = check_perfect_touring(graph, algorithm, session=fast_session)
        slow = check_perfect_touring(graph, algorithm, session=naive_session())
        assert verdict_tuple(fast) == verdict_tuple(slow)

    @pytest.mark.parametrize("index", range(0, RANDOM_GRAPHS_PER_MODEL, 10))
    def test_r_tolerance_checker(self, index, fast_session):
        graph = random_graph(6_000 + index)
        nodes = sorted(graph.nodes)
        algorithm = RandomCyclicPermutations(seed=index)
        fast = check_r_tolerance(graph, algorithm, nodes[0], nodes[-1], 2, session=fast_session)
        slow = check_r_tolerance(graph, algorithm, nodes[0], nodes[-1], 2, session=naive_session())
        assert verdict_tuple(fast) == verdict_tuple(slow)


class TestPaperGadgets:
    """K7, K4,4 and Netrail: the graphs the paper's theorems live on."""

    @pytest.mark.parametrize(
        "maker", [lambda: complete_graph(7), lambda: complete_bipartite(4, 4), fig6_netrail]
    )
    def test_destination_checker_on_gadget(self, maker, fast_session):
        graph = maker()
        failure_sets = list(all_failure_sets(graph, max_failures=2))
        algorithm = GreedyLowestNeighbor()
        fast = check_perfect_resilience_destination(
            graph, algorithm, failure_sets=failure_sets, session=fast_session
        )
        slow = check_perfect_resilience_destination(
            graph, algorithm, failure_sets=failure_sets, session=naive_session()
        )
        assert verdict_tuple(fast) == verdict_tuple(slow)

    @pytest.mark.parametrize(
        "maker", [lambda: complete_graph(7), lambda: complete_bipartite(4, 4), fig6_netrail]
    )
    def test_route_level_on_gadget(self, maker):
        graph = maker()
        nodes = sorted(graph.nodes)
        for seed, (source, destination) in enumerate([(nodes[0], nodes[-1]), (nodes[1], nodes[0])]):
            pattern = RandomCyclicPermutations(seed=seed).build(graph, source, destination)
            scenarios = [
                (source, destination, failures) for failures in small_failure_family(graph)
            ]
            assert_routes_match(graph, pattern, scenarios)

    def test_netrail_full_default_enumeration(self, fast_session):
        graph = fig6_netrail()
        algorithm = RandomCyclicDestinationOnly(seed=7)
        fast = check_perfect_resilience_destination(graph, algorithm, session=fast_session)
        slow = check_perfect_resilience_destination(graph, algorithm, session=naive_session())
        assert verdict_tuple(fast) == verdict_tuple(slow)

    def test_parallel_fanout_matches_serial(self):
        graph = fig6_netrail()
        algorithm = GreedyLowestNeighbor()
        serial = check_perfect_resilience_destination(graph, algorithm)
        fanned = check_perfect_resilience_destination(graph, algorithm, processes=2)
        assert verdict_tuple(serial) == verdict_tuple(fanned)


class TestSampledLargeGraphs:
    """Graphs above EXHAUSTIVE_LINK_LIMIT take the uncached component
    path (sampled failure sets never repeat masks across destinations)."""

    @pytest.mark.parametrize("index", range(3))
    def test_destination_checker_sampled(self, index, fast_session):
        graph = nx.gnp_random_graph(12, 0.5, seed=index)
        assert graph.number_of_edges() > 17 and nx.is_connected(graph)
        destinations = sorted(graph.nodes)[:2]
        algorithm = GreedyLowestNeighbor()
        fast = check_perfect_resilience_destination(
            graph, algorithm, destinations=destinations, session=fast_session
        )
        slow = check_perfect_resilience_destination(
            graph, algorithm, destinations=destinations, session=naive_session()
        )
        assert verdict_tuple(fast) == verdict_tuple(slow)

    def test_touring_checker_sampled(self, fast_session):
        graph = nx.gnp_random_graph(12, 0.5, seed=5)
        assert graph.number_of_edges() > 17
        algorithm = RandomPortCycles(seed=5)
        starts = sorted(graph.nodes)[:3]
        fast = check_perfect_touring(graph, algorithm, starts=starts, session=fast_session)
        slow = check_perfect_touring(graph, algorithm, starts=starts, session=naive_session())
        assert verdict_tuple(fast) == verdict_tuple(slow)


class TestPatternLevel:
    def test_single_pattern_checker_equivalence(self, fast_session):
        graph = fig6_netrail()
        destination = sorted(graph.nodes)[0]
        pattern = GreedyLowestNeighbor().build(graph, destination)
        fast = check_pattern_resilience(graph, pattern, destination, session=fast_session)
        slow = check_pattern_resilience(graph, pattern, destination, session=naive_session())
        assert verdict_tuple(fast) == verdict_tuple(slow)

    def test_mixed_label_graph_matches_naive_ordering(self, fast_session):
        # one non-comparable neighbourhood flips the naive Network to
        # repr-order for *every* node; the engine must follow suit —
        # note 10 vs 2 sort differently under native and repr order
        graph = nx.Graph()
        graph.add_edges_from([(1, 2), (2, 10), (10, 1), (1, "x"), ("x", 2)])
        algorithm = GreedyLowestNeighbor()
        fast = check_perfect_resilience_destination(graph, algorithm, session=fast_session)
        slow = check_perfect_resilience_destination(graph, algorithm, session=naive_session())
        assert verdict_tuple(fast) == verdict_tuple(slow)
        destination = 1
        pattern = RandomCyclicDestinationOnly(seed=3).build(graph, destination)
        scenarios = [
            (s, destination, failures)
            for failures in small_failure_family(graph)
            for s in graph.nodes
            if s != destination
        ]
        assert_routes_match(graph, pattern, scenarios)

    def test_non_graph_links_fall_back_to_naive_semantics(self, fast_session):
        graph = complete_graph(4)
        destination = 0
        pattern = GreedyLowestNeighbor().build(graph, destination)
        weird = [frozenset({(0, 99)}), frozenset({(1, 2), ("x", "y")})]
        fast = check_pattern_resilience(
            graph, pattern, destination, failure_sets=weird, session=fast_session
        )
        slow = check_pattern_resilience(
            graph, pattern, destination, failure_sets=weird, session=naive_session()
        )
        assert verdict_tuple(fast) == verdict_tuple(slow)

    def test_non_canonical_failure_tuples_keep_naive_semantics(self, fast_session):
        # the naive path matches failures against canonical edges only,
        # so a reversed tuple like (1, 0) is effectively alive; the
        # engine must not canonicalize it into a failed link
        graph = complete_graph(4)
        destination = 0
        pattern = GreedyLowestNeighbor().build(graph, destination)
        reversed_links = [frozenset({(1, 0)}), frozenset({(2, 1), (3, 0)})]
        fast = check_pattern_resilience(
            graph, pattern, destination, failure_sets=reversed_links, session=fast_session
        )
        slow = check_pattern_resilience(
            graph, pattern, destination, failure_sets=reversed_links, session=naive_session()
        )
        assert verdict_tuple(fast) == verdict_tuple(slow)
        # and at the route level (the reviewer's reproduction)
        from repro.core.engine import EngineState
        from repro.graphs.construct import cycle_graph

        ring = cycle_graph(4)
        ring_pattern = GreedyLowestNeighbor().build(ring, 0)
        state = EngineState(ring)
        memo = state.memoized(ring_pattern)
        got = state.route(memo, 2, 0, frozenset({(1, 0)}))
        expected = route(Network(ring), ring_pattern, 2, 0, frozenset({(1, 0)}))
        assert (got.outcome, got.path, got.steps) == (
            expected.outcome,
            expected.path,
            expected.steps,
        )
