"""Property-based tests (hypothesis) for core invariants."""

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.core.algorithms import K5SourceRouting, RightHandTouring
from repro.core.model import FunctionPattern
from repro.core.simulator import Network, Outcome, route, tours_component
from repro.graphs import construct
from repro.graphs.connectivity import are_connected, st_edge_connectivity
from repro.graphs.edges import edge, edges
from repro.graphs.hamiltonian import is_hamiltonian_decomposition, walecki_decomposition
from repro.graphs.minors import MinorOutcome, has_minor
from repro.graphs.planarity import is_outerplanar
from repro.graphs.reductions import contract_edge


# --------------------------------------------------------------------------
# Strategies.
# --------------------------------------------------------------------------

nodes = st.integers(min_value=0, max_value=6)


@st.composite
def small_graphs(draw, max_nodes=7, connected=False):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    chosen = draw(st.lists(st.sampled_from(possible), unique=True, max_size=len(possible)))
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(chosen)
    if connected:
        for component in list(nx.connected_components(graph)):
            if 0 not in component:
                graph.add_edge(0, min(component))
    return graph


@st.composite
def graph_with_failures(draw, max_nodes=6):
    graph = draw(small_graphs(max_nodes=max_nodes))
    links = sorted(edge(u, v) for u, v in graph.edges)
    failed = draw(st.lists(st.sampled_from(links), unique=True)) if links else []
    return graph, edges(failed)


# --------------------------------------------------------------------------
# Edge canonicalization.
# --------------------------------------------------------------------------


@given(u=nodes, v=nodes)
def test_edge_symmetric(u, v):
    if u == v:
        return
    assert edge(u, v) == edge(v, u)
    assert set(edge(u, v)) == {u, v}


# --------------------------------------------------------------------------
# Connectivity agrees with networkx.
# --------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(data=graph_with_failures())
def test_connectivity_matches_networkx(data):
    graph, failures = data
    survived = nx.Graph(graph)
    survived.remove_edges_from(failures)
    nodes_list = sorted(graph.nodes)
    s, t = nodes_list[0], nodes_list[-1]
    if s == t:
        return
    assert are_connected(graph, s, t, failures) == nx.has_path(survived, s, t)
    ours = st_edge_connectivity(graph, s, t, failures)
    theirs = nx.edge_connectivity(survived, s, t) if nx.has_path(survived, s, t) else 0
    assert ours == theirs


# --------------------------------------------------------------------------
# Simulator invariants.
# --------------------------------------------------------------------------


def lowest_neighbor_rule(view):
    for candidate in view.alive:
        if candidate != view.inport:
            return candidate
    return view.inport if view.inport in view.alive_set else None


@settings(max_examples=60, deadline=None)
@given(data=graph_with_failures())
def test_simulator_deterministic_and_legal(data):
    graph, failures = data
    nodes_list = sorted(graph.nodes)
    s, t = nodes_list[0], nodes_list[-1]
    if s == t:
        return
    pattern = FunctionPattern(lowest_neighbor_rule)
    first = route(graph, pattern, s, t, failures)
    second = route(graph, pattern, s, t, failures)
    assert first.outcome == second.outcome
    assert first.path == second.path
    assert first.outcome is not Outcome.ILLEGAL
    if first.delivered:
        assert first.path[0] == s and first.path[-1] == t
        for u, v in zip(first.path, first.path[1:]):
            assert graph.has_edge(u, v)
            assert edge(u, v) not in failures


@settings(max_examples=60, deadline=None)
@given(data=graph_with_failures())
def test_delivery_implies_connectivity(data):
    graph, failures = data
    nodes_list = sorted(graph.nodes)
    s, t = nodes_list[0], nodes_list[-1]
    if s == t:
        return
    result = route(graph, FunctionPattern(lowest_neighbor_rule), s, t, failures)
    if result.delivered:
        assert are_connected(graph, s, t, failures)


# --------------------------------------------------------------------------
# Algorithm 1 (Thm 8) as a property: any <= 5 node graph, any failures.
# --------------------------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(data=graph_with_failures(max_nodes=5))
def test_algorithm1_delivers_when_connected(data):
    graph, failures = data
    nodes_list = sorted(graph.nodes)
    s, t = nodes_list[0], nodes_list[-1]
    if s == t or not are_connected(graph, s, t, failures):
        return
    pattern = K5SourceRouting().build(graph, s, t)
    assert route(graph, pattern, s, t, failures).delivered


# --------------------------------------------------------------------------
# Touring (Cor 6) as a property on random outerplanar graphs.
# --------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=3, max_value=9),
    failure_seed=st.integers(min_value=0, max_value=10_000),
)
def test_right_hand_touring_covers_component(seed, n, failure_seed):
    import random

    graph = construct.maximal_outerplanar(n, seed=seed)
    rng = random.Random(failure_seed)
    links = sorted(edge(u, v) for u, v in graph.edges)
    failures = edges(rng.sample(links, rng.randint(0, len(links))))
    pattern = RightHandTouring().build(graph)
    for start in graph.nodes:
        assert tours_component(graph, pattern, start, failures)


# --------------------------------------------------------------------------
# Minor containment invariants.
# --------------------------------------------------------------------------


# hosts this small hit the exhaustive small-host fallback in has_minor
# whenever the budgeted heuristic pipeline is inconclusive, so the
# verdict is exact for every randomly drawn example
@settings(max_examples=30, deadline=None)
@given(data=small_graphs(max_nodes=6, connected=True), pick=st.integers(min_value=0, max_value=100))
def test_contraction_preserves_minor(data, pick):
    graph = data
    if graph.number_of_edges() == 0:
        return
    links = sorted(graph.edges)
    u, v = links[pick % len(links)]
    minor = contract_edge(graph, u, v)
    if minor.number_of_edges() == 0 or not nx.is_connected(minor):
        return
    assert has_minor(graph, minor, budget=50_000) is MinorOutcome.YES


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=2, max_value=6))
def test_walecki_property(n):
    odd = 2 * n + 1
    cycles = walecki_decomposition(odd)
    assert is_hamiltonian_decomposition(construct.complete_graph(odd), cycles)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), n=st.integers(min_value=3, max_value=10))
def test_maximal_outerplanar_property(seed, n):
    graph = construct.maximal_outerplanar(n, seed=seed)
    assert is_outerplanar(graph)
    assert graph.number_of_edges() == 2 * n - 3
