"""The ExperimentSession: state ownership, backends, the use_engine shim."""

import warnings

import networkx as nx
import pytest

from repro.core.algorithms import GreedyLowestNeighbor, RightHandTouring, TourToDestination
from repro.core.applications.broadcast import TouringBroadcast
from repro.core.resilience import (
    check_pattern_resilience,
    check_perfect_resilience_destination,
    check_perfect_touring,
)
from repro.experiments import ExperimentSession, naive_session, resolve_session
from repro.graphs import cycle_graph, fan_graph


class TestStateOwnership:
    def test_state_is_cached_per_graph(self):
        session = ExperimentSession()
        graph = cycle_graph(6)
        assert session.state(graph) is session.state(graph)
        other = cycle_graph(6)
        assert session.state(other) is not session.state(graph)

    def test_mutated_graph_is_reindexed(self):
        session = ExperimentSession()
        graph = cycle_graph(6)
        before = session.state(graph)
        graph.add_edge(0, 3)
        after = session.state(graph)
        assert after is not before
        assert after.network.m == 7

    def test_cache_is_bounded(self):
        from repro.experiments.session import STATE_CACHE_LIMIT

        session = ExperimentSession()
        graphs = [cycle_graph(5) for _ in range(STATE_CACHE_LIMIT + 4)]
        for graph in graphs:
            session.state(graph)
        assert len(session._states) <= STATE_CACHE_LIMIT

    def test_eviction_is_strict_fifo_at_the_limit(self):
        from repro.experiments.session import STATE_CACHE_LIMIT

        session = ExperimentSession()
        graphs = [cycle_graph(5) for _ in range(STATE_CACHE_LIMIT)]
        states = [session.state(graph) for graph in graphs]
        extra = cycle_graph(5)
        session.state(extra)
        assert len(session._states) == STATE_CACHE_LIMIT
        # the oldest entry went; the second-oldest survived
        assert session.state(graphs[1]) is states[1]
        assert id(graphs[0]) not in session._states

    def test_mutation_reindex_at_capacity_does_not_shrink_the_cache(self):
        from repro.experiments.session import STATE_CACHE_LIMIT

        session = ExperimentSession()
        graphs = [cycle_graph(5) for _ in range(STATE_CACHE_LIMIT)]
        keep = [session.state(graph) for graph in graphs]
        victim = graphs[-1]
        victim.add_edge(0, 2)  # in-place mutation: same id, new fingerprint
        rebuilt = session.state(victim)
        assert rebuilt is not keep[-1]
        assert rebuilt.network.m == 6
        # the re-index replaced its own slot — no unrelated entry was
        # evicted and the cache did not shrink below the limit
        assert len(session._states) == STATE_CACHE_LIMIT
        for graph, state in zip(graphs[:-1], keep[:-1]):
            assert session.state(graph) is state

    def test_refreshed_keys_move_to_the_fifo_tail(self):
        from repro.experiments.session import STATE_CACHE_LIMIT

        session = ExperimentSession()
        graphs = [cycle_graph(5) for _ in range(STATE_CACHE_LIMIT)]
        states = [session.state(graph) for graph in graphs]
        hot = session.state(graphs[0])  # refresh the oldest entry
        assert hot is states[0]
        session.state(cycle_graph(5))  # force one eviction
        # the refreshed (hot) graph survived; the stale runner-up went
        assert session.state(graphs[0]) is states[0]
        assert id(graphs[1]) not in session._states

    def test_traffic_engine_cached_per_pair(self):
        session = ExperimentSession()
        graph = cycle_graph(6)
        algorithm = GreedyLowestNeighbor()
        engine = session.traffic_engine(graph, algorithm)
        assert session.traffic_engine(graph, algorithm) is engine
        assert engine.state is session.state(graph)
        assert session.traffic_engine(graph, GreedyLowestNeighbor()) is not engine

    def test_traffic_key_id_recycling_is_guarded(self):
        # the FIFO key is (id(graph), id(algorithm)); if a colliding key
        # ever appears (ids recycled after an eviction dropped the strong
        # references), the identity guards must rebuild, never serve the
        # poisoned entry
        session = ExperimentSession()
        graph = cycle_graph(6)
        algorithm = GreedyLowestNeighbor()
        key = (id(graph), id(algorithm))
        poison = session.traffic_engine(cycle_graph(6), GreedyLowestNeighbor())
        session._traffic.clear()
        session._traffic[key] = poison  # simulate a recycled-id collision
        engine = session.traffic_engine(graph, algorithm)
        assert engine is not poison
        assert engine.state.graph is graph
        assert engine.algorithm is algorithm
        # and the replacement landed in the same slot (no cache growth)
        assert session._traffic[key] is engine
        assert len(session._traffic) == 1

    def test_mutated_graph_rebuilds_traffic_engine_in_place(self):
        session = ExperimentSession()
        graph = cycle_graph(6)
        algorithm = GreedyLowestNeighbor()
        before = session.traffic_engine(graph, algorithm)
        graph.add_edge(0, 3)
        after = session.traffic_engine(graph, algorithm)
        assert after is not before
        assert after.state.network.m == 7
        assert len(session._traffic) == 1

    def test_naive_backend_caches_nothing(self):
        session = ExperimentSession(backend="naive")
        graph = cycle_graph(6)
        assert session.state(graph) is not session.state(graph)
        engine = session.traffic_engine(graph, GreedyLowestNeighbor())
        assert session.traffic_engine(graph, GreedyLowestNeighbor()) is not engine
        assert not session._states and not session._traffic

    def test_stats_and_repr_track_cache_traffic(self):
        session = ExperimentSession()
        graph = cycle_graph(6)
        session.state(graph)  # miss
        session.state(graph)  # hit
        graph.add_edge(0, 3)
        session.state(graph)  # miss (re-index after mutation)
        assert session.stats["state_misses"] == 2
        assert session.stats["state_hits"] == 1
        text = repr(session)
        assert "backend='engine'" in text
        assert "states=1" in text
        assert "state hits=1/misses=2/evictions=0" in text
        assert "traffic hits=0/misses=0/evictions=0" in text

    def test_stats_count_evictions(self):
        from repro.experiments.session import STATE_CACHE_LIMIT

        session = ExperimentSession()
        graphs = [cycle_graph(4) for _ in range(STATE_CACHE_LIMIT + 2)]
        for graph in graphs:
            session.state(graph)
        assert session.stats["state_evictions"] == 2
        assert session.stats["state_misses"] == len(graphs)

    def test_naive_backend_counts_nothing(self):
        session = naive_session()
        before = dict(session.stats)
        graph = cycle_graph(5)
        session.state(graph)
        session.state(graph)
        assert session.stats == before

    def test_invalid_backend(self):
        with pytest.raises(ValueError):
            ExperimentSession(backend="turbo")

    def test_numpy_backend_gating(self):
        from repro.core.engine.vectorized import NUMPY_GATING_ERROR, numpy_available

        if numpy_available():
            assert ExperimentSession(backend="numpy").use_engine
        else:  # pragma: no cover - exercised by the no-numpy CI job
            with pytest.raises(RuntimeError, match="requires the optional numpy"):
                ExperimentSession(backend="numpy")
            assert "numpy" in NUMPY_GATING_ERROR


class TestBackends:
    def test_engine_and_naive_agree(self):
        graph = fan_graph(7)
        algorithm = TourToDestination()
        fast = check_perfect_resilience_destination(
            graph, algorithm, session=ExperimentSession(backend="engine")
        )
        slow = check_perfect_resilience_destination(
            graph, algorithm, session=ExperimentSession(backend="naive")
        )
        assert fast.resilient == slow.resilient
        assert fast.scenarios_checked == slow.scenarios_checked
        assert fast.exhaustive == slow.exhaustive

    def test_shared_session_reuses_state_across_checkers(self):
        session = ExperimentSession()
        graph = fan_graph(6)
        state = session.state(graph)
        verdict = check_perfect_touring(graph, RightHandTouring(), session=session)
        assert verdict.resilient
        assert session.state(graph) is state  # same state served the sweep

    def test_broadcast_accepts_session(self):
        session = ExperimentSession()
        graph = fan_graph(6)
        broadcast = TouringBroadcast(RightHandTouring(), session=session)
        result = broadcast.run(graph, source=1)
        naive = TouringBroadcast(RightHandTouring()).run(
            graph, source=1, session=naive_session()
        )
        assert result.informed == naive.informed
        assert result.completed == naive.completed
        assert result.walk == naive.walk


class TestUseEngineShim:
    """Satellite: the legacy ``use_engine=`` keyword keeps working."""

    def test_use_engine_false_warns_and_matches_naive(self):
        graph = fan_graph(6)
        pattern = TourToDestination().build(graph, 0)
        with pytest.warns(DeprecationWarning, match="use_engine= keyword is deprecated"):
            legacy = check_pattern_resilience(graph, pattern, 0, use_engine=False)
        modern = check_pattern_resilience(graph, pattern, 0, session=naive_session())
        assert legacy.resilient == modern.resilient
        assert legacy.scenarios_checked == modern.scenarios_checked

    def test_use_engine_true_warns_and_matches_engine(self):
        graph = fan_graph(6)
        pattern = TourToDestination().build(graph, 0)
        with pytest.warns(DeprecationWarning):
            legacy = check_pattern_resilience(graph, pattern, 0, use_engine=True)
        modern = check_pattern_resilience(graph, pattern, 0)
        assert legacy.resilient == modern.resilient
        assert legacy.scenarios_checked == modern.scenarios_checked

    def test_default_emits_no_warning(self):
        graph = fan_graph(6)
        pattern = TourToDestination().build(graph, 0)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            verdict = check_pattern_resilience(graph, pattern, 0)
        assert verdict.resilient

    def test_broadcast_use_engine_shim(self):
        graph = fan_graph(6)
        broadcast = TouringBroadcast(RightHandTouring())
        with pytest.warns(DeprecationWarning):
            legacy = broadcast.run(graph, source=1, use_engine=False)
        modern = broadcast.run(graph, source=1, session=naive_session())
        assert legacy.walk == modern.walk

    def test_session_and_use_engine_together_is_an_error(self):
        # validation must run before the deprecation warning: the error
        # path is a caller bug, not a deprecated-but-working call
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with pytest.raises(ValueError):
                resolve_session(ExperimentSession(), use_engine=True)


class TestResolveSession:
    def test_default_is_shared_engine_session(self):
        first = resolve_session()
        second = resolve_session()
        assert first is second
        assert first.use_engine

    def test_explicit_session_passes_through(self):
        session = ExperimentSession(backend="naive")
        assert resolve_session(session) is session
