"""Unit tests for the deterministic forwarding simulator."""

import networkx as nx
import pytest

from repro.core.model import FunctionPattern
from repro.core.simulator import Network, Outcome, route, tour, tours_component
from repro.core.tables import ORIGIN, PriorityTable
from repro.graphs import construct
from repro.graphs.edges import failure_set


def follow_lowest(view):
    """Toy rule: go to the lowest alive neighbour that is not the in-port."""
    for candidate in view.alive:
        if candidate != view.inport:
            return candidate
    return view.inport if view.inport in view.alive_set else None


class TestNetworkView:
    def test_alive_excludes_failures(self):
        network = Network(construct.complete_graph(4))
        view = network.view(0, None, failure_set((0, 1)))
        assert view.alive == (2, 3)
        assert view.failed_links == failure_set((0, 1))

    def test_local_failures_only(self):
        network = Network(construct.complete_graph(4))
        view = network.view(0, None, failure_set((1, 2)))
        assert view.alive == (1, 2, 3)
        assert view.failed_links == frozenset()

    def test_alive_without(self):
        network = Network(construct.complete_graph(5))
        view = network.view(0, 1, frozenset())
        assert view.alive_without(1, None) == (2, 3, 4)


class TestRoute:
    def test_trivial_same_node(self):
        result = route(construct.path_graph(2), FunctionPattern(follow_lowest), 0, 0)
        assert result.delivered
        assert result.steps == 0

    def test_direct_delivery(self):
        result = route(construct.path_graph(2), FunctionPattern(follow_lowest), 0, 1)
        assert result.delivered
        assert result.path == [0, 1]

    def test_chain_delivery(self):
        result = route(construct.path_graph(5), FunctionPattern(follow_lowest), 0, 4)
        assert result.delivered
        assert result.steps == 4

    def test_permanent_loop(self):
        g = nx.Graph([(0, 1), (1, 2), (2, 0), (2, 3)])

        def stay_in_triangle(view):
            cycle = {0: 1, 1: 2, 2: 0}
            return cycle.get(view.node)

        result = route(g, FunctionPattern(stay_in_triangle), 0, 3)
        assert result.outcome is Outcome.LOOP

    def test_drop(self):
        result = route(construct.path_graph(3), FunctionPattern(lambda v: None), 0, 2)
        assert result.outcome is Outcome.DROPPED

    def test_illegal_forward_detected(self):
        g = construct.path_graph(3)

        def cheat(view):
            return 2  # not a neighbour of node 0

        result = route(g, FunctionPattern(cheat), 0, 2)
        assert result.outcome is Outcome.ILLEGAL

    def test_forward_over_failed_link_is_illegal(self):
        g = construct.path_graph(2)
        result = route(g, FunctionPattern(lambda v: 1), 0, 1, failure_set((0, 1)))
        assert result.outcome is Outcome.ILLEGAL

    def test_deterministic(self):
        g = construct.complete_graph(5)
        pattern = FunctionPattern(follow_lowest)
        first = route(g, pattern, 0, 4, failure_set((0, 4)))
        second = route(g, pattern, 0, 4, failure_set((0, 4)))
        assert first.path == second.path
        assert first.outcome == second.outcome

    def test_delivered_path_is_alive(self):
        g = construct.complete_graph(5)
        failures = failure_set((0, 4), (1, 4))
        result = route(g, FunctionPattern(follow_lowest), 0, 4, failures)
        if result.delivered:
            for u, v in zip(result.path, result.path[1:]):
                assert g.has_edge(u, v)
                assert (min(u, v), max(u, v)) not in failures


class TestTour:
    def test_ring_tour(self):
        g = construct.cycle_graph(5)

        def around(view):
            if view.inport is None:
                return view.alive[0] if view.alive else None
            candidates = view.alive_without(view.inport)
            return candidates[0] if candidates else view.inport

        result = tour(g, FunctionPattern(around), 0)
        assert result.failed is None
        assert result.recurrent == frozenset(range(5))

    def test_tours_component_checks_recurrence(self):
        g = construct.cycle_graph(5)

        def around(view):
            if view.inport is None:
                return view.alive[0] if view.alive else None
            candidates = view.alive_without(view.inport)
            return candidates[0] if candidates else view.inport

        assert tours_component(g, FunctionPattern(around), 0)
        # cut the ring open: the bounce walk still covers the path
        assert tours_component(g, FunctionPattern(around), 0, failure_set((0, 1)))

    def test_stuck_walk_fails(self):
        g = construct.path_graph(4)

        def pingpong(view):
            # oscillate over the first link forever
            if view.node == 0:
                return 1 if 1 in view.alive_set else None
            if view.node == 1:
                return 0 if view.inport == 1 or view.inport == 0 else 0
            return None

        assert not tours_component(g, FunctionPattern(pingpong), 0)

    def test_drop_fails(self):
        g = construct.cycle_graph(4)
        result = tour(g, FunctionPattern(lambda v: None), 0)
        assert result.failed is Outcome.DROPPED

    def test_singleton_component_tours(self):
        g = construct.path_graph(2)
        assert tours_component(g, FunctionPattern(lambda v: None), 0, failure_set((0, 1)))


class TestPriorityTable:
    def test_first_alive_wins(self):
        g = construct.complete_graph(4)
        table = PriorityTable(rules={0: {ORIGIN: (1, 2, 3)}})
        result = route(g, table, 0, 1)
        assert result.delivered

    def test_skips_failed(self):
        g = construct.complete_graph(4)
        table = PriorityTable(rules={0: {ORIGIN: (1, 2, 3)}})
        result = route(g, table, 0, 2, failure_set((0, 1)))
        assert result.path[1] == 2

    def test_bounce_fallback(self):
        # node 1 has no rule for in-port 0: it must bounce the packet back
        g = construct.path_graph(3)
        table = PriorityTable(rules={0: {ORIGIN: (1,)}, 1: {}})
        result = route(g, table, 0, 2, failure_set((1, 2)))
        assert result.outcome is Outcome.LOOP
        assert result.path[:3] == [0, 1, 0]

    def test_deliver_first(self):
        g = construct.complete_graph(4)
        table = PriorityTable(rules={0: {ORIGIN: (1,)}}, deliver_first=3)
        result = route(g, table, 0, 3)
        assert result.path == [0, 3]

    def test_exhausted_origin_drops(self):
        g = construct.path_graph(2)
        table = PriorityTable(rules={0: {ORIGIN: (1,)}})
        result = route(g, table, 0, 1, failure_set((0, 1)))
        assert result.outcome is Outcome.DROPPED
