"""Unit tests for rotation systems and outer-face walks."""

import pytest

from repro.graphs import construct
from repro.graphs.embeddings import (
    NotOuterplanarError,
    outer_face_walk,
    outerplanar_rotation,
)


class TestRotation:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: construct.cycle_graph(6),
            lambda: construct.fan_graph(7),
            lambda: construct.path_graph(4),
            lambda: construct.maximal_outerplanar(12, seed=0),
            lambda: construct.star_graph(5),
        ],
    )
    def test_covers_all_neighbours(self, builder):
        graph = builder()
        rotation = outerplanar_rotation(graph)
        for node in graph.nodes:
            assert set(rotation.rotation[node]) == set(graph.neighbors(node))

    def test_rejects_non_outerplanar(self):
        with pytest.raises(NotOuterplanarError):
            outerplanar_rotation(construct.complete_graph(4))

    def test_isolated_node(self):
        import networkx as nx

        g = nx.Graph()
        g.add_node(0)
        assert outerplanar_rotation(g).rotation[0] == ()

    def test_successor_skips_dead(self):
        graph = construct.cycle_graph(4)
        rotation = outerplanar_rotation(graph)
        order = rotation.rotation[0]
        only = {order[0]}
        assert rotation.successor(0, order[1], only) == order[0]

    def test_successor_bounce(self):
        graph = construct.cycle_graph(4)
        rotation = outerplanar_rotation(graph)
        inport = rotation.rotation[0][0]
        assert rotation.successor(0, inport, {inport}) == inport

    def test_successor_unknown_inport(self):
        graph = construct.cycle_graph(4)
        rotation = outerplanar_rotation(graph)
        with pytest.raises(ValueError):
            rotation.successor(0, 2, {1, 3})


class TestOuterFaceWalk:
    @pytest.mark.parametrize("seed", range(4))
    def test_walk_covers_all_nodes(self, seed):
        graph = construct.maximal_outerplanar(9, seed=seed)
        rotation = outerplanar_rotation(graph)
        for start in graph.nodes:
            walk = outer_face_walk(graph, rotation, start)
            assert set(walk) == set(graph.nodes)

    def test_walk_on_tree(self):
        graph = construct.star_graph(4)
        rotation = outerplanar_rotation(graph)
        walk = outer_face_walk(graph, rotation, 0)
        assert set(walk) == set(graph.nodes)

    def test_walk_moves_along_links(self):
        graph = construct.fan_graph(6)
        rotation = outerplanar_rotation(graph)
        walk = outer_face_walk(graph, rotation, 1)
        for u, v in zip(walk, walk[1:]):
            assert graph.has_edge(u, v)
