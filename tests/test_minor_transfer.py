"""[2, §4] closure machinery: patterns survive subgraphs and contractions.

These tests *execute* the minor-closure arguments the paper cites: start
from a verified perfectly resilient pattern and check (exhaustively) that
the wrapped pattern is perfectly resilient on the minor.
"""

import networkx as nx
import pytest

from repro.core.algorithms import K5SourceRouting, K33SourceRouting, RightHandTouring
from repro.core.algorithms.minor_transfer import (
    ContractionPattern,
    SubgraphPattern,
    contract_link_with_pattern,
    delete_link_with_pattern,
)
from repro.core.resilience import check_pattern_resilience, check_perfect_touring
from repro.core.simulator import Network, tours_component
from repro.core.resilience import all_failure_sets
from repro.graphs import construct


class TestSubgraphTransfer:
    @pytest.mark.parametrize("removed", [(0, 1), (1, 2), (0, 4)])
    def test_k5_pattern_on_subgraph(self, removed):
        host = construct.complete_graph(5)
        source, destination = 0, 4
        if destination in removed and source in removed:
            pytest.skip("removing the s-t link directly is covered elsewhere")
        base = K5SourceRouting().build(host, source, destination)
        minor, pattern = delete_link_with_pattern(host, base, *removed)
        verdict = check_pattern_resilience(minor, pattern, destination, sources=[source])
        assert verdict.resilient, str(verdict.counterexample)

    def test_iterated_deletion(self):
        host = construct.complete_graph(5)
        base = K5SourceRouting().build(host, 0, 4)
        graph, pattern = host, base
        for link in [(1, 2), (2, 3), (1, 3)]:
            graph, pattern = delete_link_with_pattern(graph, pattern, *link)
        verdict = check_pattern_resilience(graph, pattern, 4, sources=[0])
        assert verdict.resilient, str(verdict.counterexample)


class TestContractionTransfer:
    def test_k5_contraction_gives_k4_pattern(self):
        host = construct.complete_graph(5)
        source, destination = 0, 4
        base = K5SourceRouting().build(host, source, destination)
        minor, pattern = contract_link_with_pattern(host, base, keep=1, absorb=2)
        assert minor.number_of_nodes() == 4
        verdict = check_pattern_resilience(minor, pattern, destination, sources=[source])
        assert verdict.resilient, str(verdict.counterexample)

    @pytest.mark.parametrize("keep,absorb", [(1, 2), (2, 3), (3, 1)])
    def test_k33_contraction(self, keep, absorb):
        host = construct.complete_bipartite(3, 3)
        source, destination = 0, 5
        # contract within the non-terminal nodes (parts are {0,1,2}, {3,4,5})
        keep_node, absorb_node = keep, absorb + 3 - 3  # stay explicit
        host_edgeable = [(1, 3), (1, 4), (2, 3)]
        keep_node, absorb_node = host_edgeable[(keep + absorb) % 3]
        base = K33SourceRouting().build(host, source, destination)
        minor, pattern = contract_link_with_pattern(host, base, keep_node, absorb_node)
        verdict = check_pattern_resilience(minor, pattern, destination, sources=[source])
        assert verdict.resilient, str(verdict.counterexample)

    def test_contraction_requires_link(self):
        host = construct.complete_bipartite(3, 3)
        base = K33SourceRouting().build(host, 0, 5)
        with pytest.raises(ValueError):
            ContractionPattern(host, base, keep=0, absorb=1)  # same part: no link

    def test_mixed_operations(self):
        host = construct.complete_graph(5)
        base = K5SourceRouting().build(host, 0, 4)
        graph, pattern = delete_link_with_pattern(host, base, 1, 3)
        graph, pattern = contract_link_with_pattern(graph, pattern, keep=1, absorb=2)
        verdict = check_pattern_resilience(graph, pattern, 4, sources=[0])
        assert verdict.resilient, str(verdict.counterexample)


class TestTouringTransfer:
    """Corollary 7: touring patterns transfer to minors."""

    def test_touring_subgraph(self):
        host = construct.maximal_outerplanar(7, seed=4)
        base = RightHandTouring().build(host)
        link = next(iter(host.edges))
        minor, pattern = delete_link_with_pattern(host, base, *link)
        network = Network(minor)
        for failures in all_failure_sets(minor, max_failures=2):
            for start in minor.nodes:
                assert tours_component(network, pattern, start, failures)

    def test_touring_contraction(self):
        host = construct.cycle_graph(6)
        base = RightHandTouring().build(host)
        minor, pattern = contract_link_with_pattern(host, base, keep=0, absorb=1)
        network = Network(minor)
        for failures in all_failure_sets(minor):
            for start in minor.nodes:
                assert tours_component(network, pattern, start, failures)
