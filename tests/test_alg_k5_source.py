"""Theorem 8: Algorithm 1 is perfectly resilient on K5 and all its minors.

The exhaustive check over all failure sets and all (s, t) pairs *is* the
theorem for K5; subgraph cases follow by simulating missing links as
failed, which the same enumeration covers, and are additionally spot
checked on concrete subgraphs below.
"""

import networkx as nx
import pytest

from repro.core.algorithms import K5SourceRouting
from repro.core.resilience import check_perfect_resilience_source_destination
from repro.graphs import construct


ALGORITHM = K5SourceRouting()


class TestExhaustiveK5:
    def test_all_pairs_all_failures(self):
        verdict = check_perfect_resilience_source_destination(
            construct.complete_graph(5), ALGORITHM
        )
        assert verdict.resilient, str(verdict.counterexample)
        assert verdict.exhaustive
        assert verdict.scenarios_checked > 10_000


class TestSubgraphs:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: construct.complete_graph(4),
            lambda: construct.complete_graph(3),
            lambda: construct.cycle_graph(5),
            lambda: construct.path_graph(5),
            lambda: construct.k_minus(5, 1),
            lambda: construct.k_minus(5, 2),
            lambda: construct.wheel_graph(4),  # W4 = K5 minus two links
            lambda: construct.star_graph(4),
        ],
    )
    def test_perfect_resilience(self, builder):
        verdict = check_perfect_resilience_source_destination(builder(), ALGORITHM)
        assert verdict.resilient, str(verdict.counterexample)

    def test_disconnected_subgraph(self):
        g = nx.Graph([(0, 1), (1, 2)])
        g.add_node(3)
        verdict = check_perfect_resilience_source_destination(g, ALGORITHM)
        assert verdict.resilient, str(verdict.counterexample)


class TestInterface:
    def test_rejects_large_graphs(self):
        with pytest.raises(ValueError):
            ALGORITHM.build(construct.complete_graph(6), 0, 5)

    def test_supports(self):
        assert ALGORITHM.supports(construct.complete_graph(5), 0, 4)
        assert not ALGORITHM.supports(construct.complete_graph(6), 0, 5)

    def test_line_2_direct_delivery(self):
        from repro.core.simulator import route

        g = construct.complete_graph(5)
        pattern = ALGORITHM.build(g, 0, 4)
        result = route(g, pattern, 0, 4)
        assert result.path == [0, 4]
