"""Unit tests for link connectivity, cross-checked against networkx."""

import networkx as nx
import pytest

from repro.graphs import construct
from repro.graphs.connectivity import (
    are_connected,
    component_of,
    global_edge_connectivity,
    link_disjoint_paths,
    preserves_r_connectivity,
    st_edge_connectivity,
    surviving_graph,
)
from repro.graphs.edges import edge, failure_set


class TestSurvivingGraph:
    def test_removes_failed_links(self):
        g = construct.complete_graph(4)
        survived = surviving_graph(g, failure_set((0, 1)))
        assert not survived.has_edge(0, 1)
        assert survived.number_of_edges() == 5

    def test_input_untouched(self):
        g = construct.complete_graph(4)
        surviving_graph(g, failure_set((0, 1)))
        assert g.has_edge(0, 1)


class TestAreConnected:
    def test_direct(self):
        g = construct.path_graph(3)
        assert are_connected(g, 0, 2)

    def test_cut(self):
        g = construct.path_graph(3)
        assert not are_connected(g, 0, 2, failure_set((1, 2)))

    def test_same_node(self):
        assert are_connected(construct.path_graph(2), 0, 0)

    def test_component(self):
        g = construct.cycle_graph(5)
        assert component_of(g, 0) == frozenset(range(5))
        cut = failure_set((0, 1), (0, 4))
        assert component_of(g, 0, cut) == frozenset({0})


class TestStEdgeConnectivity:
    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_complete_graph(self, n):
        g = construct.complete_graph(n)
        assert st_edge_connectivity(g, 0, n - 1) == n - 1

    @pytest.mark.parametrize(
        "builder,expected",
        [
            (lambda: construct.cycle_graph(6), 2),
            (lambda: construct.complete_bipartite(3, 3), 3),
            (lambda: construct.grid_graph(3, 3), 2),
            (lambda: construct.petersen_graph(), 3),
        ],
    )
    def test_matches_networkx(self, builder, expected):
        g = builder()
        nodes = list(g.nodes)
        s, t = nodes[0], nodes[-1]
        ours = st_edge_connectivity(g, s, t)
        assert ours == nx.edge_connectivity(g, s, t)
        assert ours == expected

    def test_respects_failures(self):
        g = construct.complete_graph(5)
        failures = failure_set((0, 4), (1, 4))
        assert st_edge_connectivity(g, 0, 4, failures) == nx.edge_connectivity(
            surviving_graph(g, failures), 0, 4
        )

    def test_stop_at_early_exit(self):
        g = construct.complete_graph(8)
        assert st_edge_connectivity(g, 0, 7, stop_at=3) == 3

    def test_same_node_rejected(self):
        with pytest.raises(ValueError):
            st_edge_connectivity(construct.complete_graph(3), 0, 0)


class TestLinkDisjointPaths:
    def test_count_matches_connectivity(self):
        g = construct.complete_graph(6)
        paths = link_disjoint_paths(g, 0, 5)
        assert len(paths) == 5

    def test_paths_are_link_disjoint(self):
        g = construct.complete_bipartite(3, 4)
        paths = link_disjoint_paths(g, 0, 3)
        used = set()
        for path in paths:
            for u, v in zip(path, path[1:]):
                assert edge(u, v) not in used
                used.add(edge(u, v))

    def test_paths_are_valid(self):
        g = construct.grid_graph(3, 3)
        for path in link_disjoint_paths(g, 0, 8):
            assert path[0] == 0 and path[-1] == 8
            for u, v in zip(path, path[1:]):
                assert g.has_edge(u, v)


class TestGlobalConnectivity:
    @pytest.mark.parametrize(
        "builder,expected",
        [
            (lambda: construct.complete_graph(5), 4),
            (lambda: construct.cycle_graph(7), 2),
            (lambda: construct.path_graph(4), 1),
            (lambda: construct.petersen_graph(), 3),
        ],
    )
    def test_known_values(self, builder, expected):
        assert global_edge_connectivity(builder()) == expected

    def test_disconnected(self):
        g = nx.Graph([(0, 1), (2, 3)])
        assert global_edge_connectivity(g) == 0


class TestRConnectivityPromise:
    def test_promise_holds(self):
        g = construct.complete_graph(5)
        assert preserves_r_connectivity(g, 0, 4, failure_set((0, 4)), r=2)

    def test_promise_broken(self):
        g = construct.cycle_graph(5)
        assert not preserves_r_connectivity(g, 0, 2, failure_set((0, 1)), r=2)
