"""Unit tests for the resilience checkers themselves."""

import pytest

from repro.core.algorithms import (
    Distance2Algorithm,
    GreedyLowestNeighbor,
    K5SourceRouting,
    RightHandTouring,
    TourToDestination,
)
from repro.core.resilience import (
    all_failure_sets,
    check_pattern_resilience,
    check_perfect_resilience_destination,
    check_perfect_resilience_source_destination,
    check_perfect_touring,
    check_r_tolerance,
    sampled_failure_sets,
)
from repro.graphs import construct
from repro.graphs.edges import failure_set


class TestFailureEnumeration:
    def test_all_failure_sets_count(self):
        g = construct.cycle_graph(4)
        assert sum(1 for _ in all_failure_sets(g)) == 16

    def test_size_cap(self):
        g = construct.cycle_graph(4)
        sets = list(all_failure_sets(g, max_failures=1))
        assert len(sets) == 5

    def test_sampled_includes_empty_and_singletons(self):
        g = construct.cycle_graph(5)
        sets = list(sampled_failure_sets(g, samples=3))
        assert frozenset() in sets
        singletons = [s for s in sets if len(s) == 1]
        assert len(singletons) >= 5


class TestPatternResilience:
    def test_positive_on_path(self):
        g = construct.path_graph(4)
        pattern = GreedyLowestNeighbor().build(g, 3)
        verdict = check_pattern_resilience(g, pattern, 3)
        assert verdict.resilient
        assert verdict.exhaustive

    def test_counterexample_reported(self):
        g = construct.complete_graph(5)
        pattern = GreedyLowestNeighbor().build(g, 4)
        verdict = check_pattern_resilience(g, pattern, 4)
        assert not verdict.resilient
        counter = verdict.counterexample
        assert counter is not None
        assert counter.destination == 4
        # re-simulate the counterexample: it must really fail
        from repro.core.simulator import route

        result = route(g, pattern, counter.source, counter.destination, counter.failures)
        assert not result.delivered

    def test_explicit_failure_sets(self):
        g = construct.complete_graph(4)
        pattern = GreedyLowestNeighbor().build(g, 3)
        verdict = check_pattern_resilience(
            g, pattern, 3, failure_sets=[frozenset(), failure_set((0, 3))]
        )
        assert verdict.scenarios_checked > 0


class TestSourceDestinationChecker:
    def test_k5_positive(self):
        verdict = check_perfect_resilience_source_destination(
            construct.complete_graph(4), K5SourceRouting()
        )
        assert verdict.resilient

    def test_restricted_pairs(self):
        verdict = check_perfect_resilience_source_destination(
            construct.complete_graph(4), K5SourceRouting(), pairs=[(0, 3)]
        )
        assert verdict.resilient


class TestDestinationChecker:
    def test_ring_positive(self):
        verdict = check_perfect_resilience_destination(
            construct.cycle_graph(5), TourToDestination()
        )
        assert verdict.resilient

    def test_greedy_fails_on_k5(self):
        verdict = check_perfect_resilience_destination(
            construct.complete_graph(5), GreedyLowestNeighbor()
        )
        assert not verdict.resilient


class TestRTolerance:
    def test_distance2_on_k5_r2(self):
        verdict = check_r_tolerance(construct.complete_graph(5), Distance2Algorithm(), 0, 4, r=2)
        assert verdict.resilient

    def test_distance2_fails_r1_on_k5(self):
        # distance-2 alone is NOT perfectly resilient (r=1 promise) on K5
        verdict = check_r_tolerance(construct.complete_graph(5), Distance2Algorithm(), 0, 4, r=1)
        assert not verdict.resilient

    def test_monotone_in_r(self):
        # r-tolerance implies r'-tolerance for r' > r (§II): the checker's
        # scenario set shrinks as r grows
        g = construct.complete_graph(5)
        small = check_r_tolerance(g, Distance2Algorithm(), 0, 4, r=2)
        large = check_r_tolerance(g, Distance2Algorithm(), 0, 4, r=3)
        assert small.scenarios_checked >= large.scenarios_checked
        assert large.resilient


class TestTouringChecker:
    def test_ring(self):
        verdict = check_perfect_touring(construct.cycle_graph(5), RightHandTouring())
        assert verdict.resilient

    def test_start_restriction(self):
        verdict = check_perfect_touring(
            construct.cycle_graph(4), RightHandTouring(), starts=[0]
        )
        assert verdict.resilient
