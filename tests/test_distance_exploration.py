"""Theorems 3, 4, 5: distance-bounded exploration and r-tolerance."""

import pytest

from repro.core.algorithms import Distance2Algorithm, Distance3BipartiteAlgorithm
from repro.core.resilience import all_failure_sets, check_r_tolerance
from repro.core.simulator import Network, route
from repro.graphs import construct
from repro.graphs.connectivity import surviving_graph

import networkx as nx


class TestDistance2Guarantee:
    """[2, Thm 6.1]: delivery whenever dist(s, t) <= 2 after failures."""

    @pytest.mark.parametrize("builder", [
        lambda: construct.complete_graph(5),
        lambda: construct.wheel_graph(5),
        lambda: construct.complete_bipartite(2, 4),
    ])
    def test_all_distance2_scenarios(self, builder):
        graph = builder()
        nodes = sorted(graph.nodes)
        s, t = nodes[0], nodes[-1]
        pattern = Distance2Algorithm().build(graph, s, t)
        network = Network(graph)
        for failures in all_failure_sets(graph):
            survived = surviving_graph(graph, failures)
            if not nx.has_path(survived, s, t):
                continue
            if nx.shortest_path_length(survived, s, t) > 2:
                continue
            assert route(network, pattern, s, t, failures).delivered, failures


class TestTheorem3:
    """K_{2r+1} admits r-tolerance via distance-2 exploration."""

    @pytest.mark.parametrize("r", [1, 2])
    def test_k2r_plus_1(self, r):
        graph = construct.complete_graph(2 * r + 1)
        verdict = check_r_tolerance(graph, Distance2Algorithm(), 0, 2 * r, r=r)
        assert verdict.resilient, str(verdict.counterexample)

    def test_subgraph_closure(self):
        # Corollary 2: r-tolerance transfers to subgraphs
        graph = construct.minus_links(construct.complete_graph(5), [(1, 2)])
        verdict = check_r_tolerance(graph, Distance2Algorithm(), 0, 4, r=2)
        assert verdict.resilient, str(verdict.counterexample)


class TestTheorem4:
    """Bipartite distance-3 delivery guarantee."""

    @pytest.mark.parametrize("builder,s,t", [
        (lambda: construct.complete_bipartite(3, 3), 0, 3),
        (lambda: construct.complete_bipartite(3, 3), 0, 1),
        (lambda: construct.complete_bipartite(2, 4), 0, 2),
    ])
    def test_all_distance3_scenarios(self, builder, s, t):
        graph = builder()
        pattern = Distance3BipartiteAlgorithm().build(graph, s, t)
        network = Network(graph)
        for failures in all_failure_sets(graph):
            survived = surviving_graph(graph, failures)
            if not nx.has_path(survived, s, t):
                continue
            if nx.shortest_path_length(survived, s, t) > 3:
                continue
            assert route(network, pattern, s, t, failures).delivered, failures

    def test_rejects_non_bipartite(self):
        with pytest.raises(ValueError):
            Distance3BipartiteAlgorithm().build(construct.complete_graph(4), 0, 3)


class TestTheorem5:
    """K_{2r-1,2r-1} admits r-tolerance via distance-3 exploration."""

    @pytest.mark.parametrize("s,t", [(0, 3), (0, 1)])
    def test_k33_2_tolerant(self, s, t):
        graph = construct.complete_bipartite(3, 3)
        verdict = check_r_tolerance(graph, Distance3BipartiteAlgorithm(), s, t, r=2)
        assert verdict.resilient, str(verdict.counterexample)

    def test_k11_1_tolerant(self):
        graph = construct.complete_bipartite(1, 1)
        verdict = check_r_tolerance(graph, Distance3BipartiteAlgorithm(), 0, 1, r=1)
        assert verdict.resilient
