"""Case-study drivers and reporting for the §VIII experiments."""

from .case_study import MODELS, CaseStudyResult, run_case_study
from .random_failures import DeliveryCurve, compare_curves, delivery_curve
from .reporting import fig7_table, fig8_table, simple_table
from .stretch import StretchSummary, measure_stretch
from .table_space import TableSpace, measured_table_space, table_space, table_space_report

__all__ = [
    "MODELS",
    "CaseStudyResult",
    "DeliveryCurve",
    "StretchSummary",
    "TableSpace",
    "compare_curves",
    "delivery_curve",
    "fig7_table",
    "fig8_table",
    "measure_stretch",
    "measured_table_space",
    "run_case_study",
    "simple_table",
    "table_space",
    "table_space_report",
]
