"""Routing-table space accounting (§VII's practical motivation).

The paper argues touring "can also help in a practical context, by saving
expensive routing table space: we deploy the same routing rules, no
matter which source or destination a packet has."  This module quantifies
that: the number of forwarding rules a switch must hold under each
routing model, where one rule maps (header match, in-port, local failure
condition) to an out-port.

We count rules conservatively as *(match keys) × (in-ports + ⊥)* per
node; failure conditions multiply all models equally (rules are
conditional on incident failures in every model) and are therefore
normalized out.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx


@dataclass
class TableSpace:
    """Per-model rule counts for one topology."""

    name: str
    n: int
    source_destination_rules: int
    destination_rules: int
    touring_rules: int

    @property
    def touring_saving(self) -> float:
        """Rule-count ratio destination-based : touring."""
        if self.touring_rules == 0:
            return 0.0
        return self.destination_rules / self.touring_rules


def table_space(graph: nx.Graph, name: str = "") -> TableSpace:
    """Rule counts for the three §II routing models on ``graph``.

    * π^{s,t}: each node matches every (source, destination) pair —
      ``n(n-1)`` keys — times its in-ports (+ ⊥ when it is the source);
    * π^t: each node matches ``n - 1`` destinations;
    * π^∀: a single key per node — pure port routing.
    """
    n = graph.number_of_nodes()
    source_destination = 0
    destination = 0
    touring = 0
    for node in graph.nodes:
        ports = graph.degree(node) + 1  # in-ports plus ⊥
        source_destination += n * (n - 1) * ports
        destination += (n - 1) * ports
        touring += ports
    return TableSpace(
        name=name,
        n=n,
        source_destination_rules=source_destination,
        destination_rules=destination,
        touring_rules=touring,
    )


def table_space_report(graphs: dict[str, nx.Graph]) -> list[TableSpace]:
    """Table-space accounting for a dictionary of named topologies."""
    return [table_space(graph, name) for name, graph in graphs.items()]
