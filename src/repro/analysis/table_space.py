"""Routing-table space accounting (§VII's practical motivation).

The paper argues touring "can also help in a practical context, by saving
expensive routing table space: we deploy the same routing rules, no
matter which source or destination a packet has."  This module quantifies
that: the number of forwarding rules a switch must hold under each
routing model, where one rule maps (header match, in-port, local failure
condition) to an out-port.

:func:`table_space` counts rules analytically — *(match keys) ×
(in-ports + ⊥)* per node; failure conditions multiply all models equally
(rules are conditional on incident failures in every model) and are
therefore normalized out.  :func:`measured_table_space` instead *runs*
concrete algorithms on the engine and counts the distinct ``(node,
in-port, local failure set)`` decisions their patterns are actually
asked for across a scenario sweep — the engine's memoized decision
tables (:class:`~repro.core.engine.memo.MemoizedPattern`) are exactly
that rule set, so the measurement falls out of one shared
:class:`~repro.core.engine.sweep.EngineState` instead of naive
per-scenario network rebuilds.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import networkx as nx

from ..graphs.edges import FailureSet


@dataclass
class TableSpace:
    """Per-model rule counts for one topology."""

    name: str
    n: int
    source_destination_rules: int
    destination_rules: int
    touring_rules: int

    @property
    def touring_saving(self) -> float:
        """Rule-count ratio destination-based : touring."""
        if self.touring_rules == 0:
            return 0.0
        return self.destination_rules / self.touring_rules


def table_space(graph: nx.Graph, name: str = "") -> TableSpace:
    """Rule counts for the three §II routing models on ``graph``.

    * π^{s,t}: each node matches every (source, destination) pair —
      ``n(n-1)`` keys — times its in-ports (+ ⊥ when it is the source);
    * π^t: each node matches ``n - 1`` destinations;
    * π^∀: a single key per node — pure port routing.
    """
    n = graph.number_of_nodes()
    source_destination = 0
    destination = 0
    touring = 0
    for node in graph.nodes:
        ports = graph.degree(node) + 1  # in-ports plus ⊥
        source_destination += n * (n - 1) * ports
        destination += (n - 1) * ports
        touring += ports
    return TableSpace(
        name=name,
        n=n,
        source_destination_rules=source_destination,
        destination_rules=destination,
        touring_rules=touring,
    )


def table_space_report(graphs: dict[str, nx.Graph]) -> list[TableSpace]:
    """Table-space accounting for a dictionary of named topologies."""
    return [table_space(graph, name) for name, graph in graphs.items()]


def measured_table_space(
    graph: nx.Graph,
    destination_algorithm=None,
    source_destination_algorithm=None,
    touring_algorithm=None,
    failure_sets: Iterable[FailureSet] | None = None,
    name: str = "",
    session=None,
) -> TableSpace:
    """Rules the given algorithms *actually* install, measured by sweeping.

    Routes every source through every supplied model's patterns under
    every failure set (default: the checkers' exhaustive-or-sampled
    enumeration) on one shared engine, then counts each pattern's
    distinct exercised ``(node, in-port, F ∩ E(v))`` decisions — the
    entries of its memoized decision table.  Models without an algorithm
    report 0.  Comparable directly against the analytic upper bounds of
    :func:`table_space` (measured ≤ analytic bound × failure conditions).
    """
    from ..core.engine.memo import MemoizedPattern, route_indexed, tour_indexed
    from ..core.resilience import default_failure_sets
    from ..experiments.session import resolve_session

    session = resolve_session(session)
    if not session.use_engine:
        # the measurement IS the engine's decision tables — there is no
        # naive twin to fall back to
        raise ValueError("measured_table_space runs on the engine backend only")
    state = session.state(graph)
    network = state.network
    if failure_sets is None:
        failure_sets, _ = default_failure_sets(graph)
    masks = []
    for failures in failure_sets:
        mask = network.mask_of(failures)
        if mask is None:
            raise ValueError(f"failure set {sorted(failures)!r} names links outside the graph")
        masks.append(mask)
    indices = range(network.n)

    destination_rules = 0
    if destination_algorithm is not None:
        for dest in indices:
            memo = MemoizedPattern(
                network, destination_algorithm.build(graph, network.labels[dest])
            )
            for fmask in masks:
                for source in indices:
                    if source != dest:
                        route_indexed(network, memo, source, dest, fmask)
            destination_rules += len(memo.table)

    source_destination_rules = 0
    if source_destination_algorithm is not None:
        for dest in indices:
            for source in indices:
                if source == dest:
                    continue
                memo = MemoizedPattern(
                    network,
                    source_destination_algorithm.build(
                        graph, network.labels[source], network.labels[dest]
                    ),
                )
                for fmask in masks:
                    route_indexed(network, memo, source, dest, fmask)
                source_destination_rules += len(memo.table)

    touring_rules = 0
    if touring_algorithm is not None:
        memo = MemoizedPattern(network, touring_algorithm.build(graph))
        for fmask in masks:
            for start in indices:
                tour_indexed(network, memo, start, fmask)
        touring_rules = len(memo.table)

    return TableSpace(
        name=name,
        n=graph.number_of_nodes(),
        source_destination_rules=source_destination_rules,
        destination_rules=destination_rules,
        touring_rules=touring_rules,
    )
