"""§VIII case study driver: classify a topology suite and aggregate.

Produces the data behind Fig. 7 (per-model classification percentages),
Fig. 8 (size/density scatter with classes), and the headline statistics
the paper quotes in prose (share of planar-but-not-outerplanar
topologies, share classifiable as planar *and* impossible, average
fraction of good destinations among "sometimes" topologies).
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field

from ..core.classification import Classification, Possibility, classify
from ..core.engine.sweep import parallel_map
from ..graphs.zoo import ZooTopology, generate_zoo

MODELS = ("touring", "destination", "source_destination")


@dataclass
class CaseStudyResult:
    """All per-topology classifications plus aggregate views."""

    classifications: list[Classification]
    elapsed_seconds: float = 0.0
    per_model_counts: dict[str, Counter] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.per_model_counts:
            self.per_model_counts = {
                model: Counter(getattr(c, model) for c in self.classifications)
                for model in MODELS
            }

    @property
    def total(self) -> int:
        return len(self.classifications)

    def percentage(self, model: str, possibility: Possibility) -> float:
        if not self.classifications:
            return 0.0
        return 100.0 * self.per_model_counts[model][possibility] / self.total

    def planarity_share(self, kind: str) -> float:
        """Share of topologies in one planarity class (Fig. 7 row labels)."""
        count = sum(1 for c in self.classifications if c.planarity == kind)
        return 100.0 * count / self.total if self.total else 0.0

    def planar_and_impossible_destination(self) -> float:
        """The paper's 31.3% statistic: planar yet destination-impossible."""
        count = sum(
            1
            for c in self.classifications
            if c.planarity == "planar" and c.destination is Possibility.IMPOSSIBLE
        )
        return 100.0 * count / self.total if self.total else 0.0

    def mean_good_destination_fraction(self) -> float:
        """The paper's 21.3% statistic, over "sometimes" topologies."""
        fractions = [
            c.good_destination_fraction
            for c in self.classifications
            if c.destination is Possibility.SOMETIMES
        ]
        return 100.0 * sum(fractions) / len(fractions) if fractions else 0.0

    def scatter_rows(self) -> list[tuple[str, int, float, str, str]]:
        """Fig. 8 rows: (name, n, density, destination class, s-d class)."""
        return [
            (c.name, c.n, c.density, c.destination.value, c.source_destination.value)
            for c in self.classifications
        ]


def run_case_study(
    suite: list[ZooTopology] | None = None,
    minor_budget: int = 20_000,
    destination_cap: int = 400,
    seed: int = 2022,
    processes: int = 1,
) -> CaseStudyResult:
    """Classify the (synthetic) Topology Zoo suite.

    ``processes > 1`` fans topologies out across forked workers via the
    engine's sweep core; classifications are deterministic per topology,
    so the result is identical to the serial run.
    """
    if suite is None:
        suite = generate_zoo(seed=seed)
    start = time.perf_counter()
    classifications = parallel_map(
        lambda topology: classify(
            topology.graph,
            name=topology.name,
            minor_budget=minor_budget,
            destination_cap=destination_cap,
        ),
        suite,
        processes,
    )
    elapsed = time.perf_counter() - start
    return CaseStudyResult(classifications=classifications, elapsed_seconds=elapsed)
