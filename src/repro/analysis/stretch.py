"""Hop-stretch of failover walks (§I.B: "a robust route is not
necessarily the shortest route").

The paper's related-work discussion highlights the resilience/stretch
trade-off [5]-[7].  This module measures it for the library's schemes:
the ratio between the failover walk's hop count and the shortest
surviving path, aggregated over failure scenarios.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import networkx as nx

from ..core.model import DestinationAlgorithm, SourceDestinationAlgorithm
from ..graphs.connectivity import surviving_graph
from ..graphs.edges import edge, edge_sort_key


@dataclass
class StretchSummary:
    """Stretch statistics of one algorithm on one scenario distribution."""

    algorithm: str
    scenarios: int
    delivered: int
    mean_stretch: float
    max_stretch: float

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.scenarios if self.scenarios else 0.0


def measure_stretch(
    graph: nx.Graph,
    algorithm: SourceDestinationAlgorithm | DestinationAlgorithm,
    source,
    destination,
    max_failures: int,
    samples: int = 300,
    seed: int = 0,
    session=None,
) -> StretchSummary:
    """Mean/max stretch over random promise-respecting failure scenarios.

    Engine state comes from ``session`` (default: the shared
    :func:`~repro.experiments.session.default_session`), so repeated
    measurements on one graph reuse its index maps and caches.  This
    surface is engine-only — a ``backend="naive"`` session is rejected
    rather than silently measured on the engine (the per-packet stretch
    reference lives in the load router's differential tests).
    """
    from ..experiments.session import resolve_session

    session = resolve_session(session)
    if not session.use_engine:
        raise ValueError("measure_stretch runs on the engine backend only")
    links = sorted((edge(u, v) for u, v in graph.edges), key=edge_sort_key)
    if isinstance(algorithm, SourceDestinationAlgorithm):
        pattern = algorithm.build(graph, source, destination)
    else:
        pattern = algorithm.build(graph, destination)
    state = session.state(graph)
    memo = state.memoized(pattern)
    rng = random.Random(seed)
    stretches: list[float] = []
    delivered = 0
    scenarios = 0
    guard = 0
    while scenarios < samples and guard < 50 * samples:
        guard += 1
        size = rng.randint(0, max_failures)
        failures = frozenset(rng.sample(links, min(size, len(links))))
        if not state.connected(source, destination, failures):
            continue
        scenarios += 1
        survived = surviving_graph(graph, failures)
        shortest = nx.shortest_path_length(survived, source, destination)
        result = state.route(memo, source, destination, failures)
        if result.delivered:
            delivered += 1
            stretches.append(result.steps / max(shortest, 1))
    return StretchSummary(
        algorithm=algorithm.name,
        scenarios=scenarios,
        delivered=delivered,
        mean_stretch=sum(stretches) / len(stretches) if stretches else float("nan"),
        max_stretch=max(stretches) if stretches else float("nan"),
    )
