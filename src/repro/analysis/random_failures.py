"""Resilience under *random* link failures (§IX future work).

The paper closes with: "it would be interesting to chart a similar
landscape for the practically relevant scenarios in which link failures
are random."  This module takes the first empirical step: for a given
algorithm and topology it estimates, per failure-set size, the
probability that a packet still reaches its destination *conditioned on
the promise* (source and destination connected, as in §II).

The resulting curves separate the schemes sharply: perfectly resilient
patterns sit at 1.0 by definition; the Chiesa-style baseline decays once
failures exceed its arborescence budget; naive patterns decay immediately.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import networkx as nx

from ..core.model import DestinationAlgorithm, SourceDestinationAlgorithm
from ..graphs.edges import edge, edge_sort_key


@dataclass
class DeliveryCurve:
    """Empirical delivery probability per failure count."""

    algorithm: str
    graph: str
    sizes: list[int]
    probabilities: list[float]
    samples_per_size: int

    def at(self, size: int) -> float:
        return self.probabilities[self.sizes.index(size)]


def delivery_curve(
    graph: nx.Graph,
    algorithm: SourceDestinationAlgorithm | DestinationAlgorithm,
    source,
    destination,
    sizes: list[int] | None = None,
    samples: int = 200,
    seed: int = 0,
    graph_name: str = "",
    session=None,
) -> DeliveryCurve:
    """Estimate P[delivered | s, t connected] per random failure count.

    Engine-only: a ``backend="naive"`` session is rejected rather than
    silently measured on the engine.
    """
    from ..experiments.session import resolve_session

    session = resolve_session(session)
    if not session.use_engine:
        raise ValueError("delivery_curve runs on the engine backend only")
    if sizes is None:
        sizes = list(range(graph.number_of_edges()))
    links = sorted((edge(u, v) for u, v in graph.edges), key=edge_sort_key)
    if isinstance(algorithm, SourceDestinationAlgorithm):
        pattern = algorithm.build(graph, source, destination)
    else:
        pattern = algorithm.build(graph, destination)
    # session-owned engine state, shared across every size and sample:
    # mask-cached connectivity plus one memoized table for the pattern
    state = session.state(graph)
    memo = state.memoized(pattern)
    rng = random.Random(seed)
    probabilities = []
    for size in sizes:
        delivered = 0
        valid = 0
        guard = 0
        while valid < samples and guard < 50 * samples:
            guard += 1
            failures = frozenset(rng.sample(links, min(size, len(links))))
            if not state.connected(source, destination, failures):
                continue
            valid += 1
            if state.route(memo, source, destination, failures).delivered:
                delivered += 1
        probabilities.append(delivered / valid if valid else float("nan"))
    return DeliveryCurve(
        algorithm=algorithm.name,
        graph=graph_name or f"n={graph.number_of_nodes()}",
        sizes=list(sizes),
        probabilities=probabilities,
        samples_per_size=samples,
    )


def compare_curves(
    graph: nx.Graph,
    algorithms: list,
    source,
    destination,
    sizes: list[int],
    samples: int = 200,
    seed: int = 0,
    graph_name: str = "",
) -> list[DeliveryCurve]:
    """Delivery curves for several algorithms on the same scenario set."""
    return [
        delivery_curve(
            graph,
            algorithm,
            source,
            destination,
            sizes=sizes,
            samples=samples,
            seed=seed,
            graph_name=graph_name,
        )
        for algorithm in algorithms
    ]
