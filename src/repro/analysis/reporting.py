"""Text renderings of the paper's figures and tables.

Every benchmark prints through these helpers so the harness output reads
like the paper's artifacts: Fig. 7 as a percentage table, Fig. 8 as a
density/size breakdown, Table I as the feasibility landscape.
"""

from __future__ import annotations

from ..core.classification import Possibility
from .case_study import MODELS, CaseStudyResult

_MODEL_LABELS = {
    "touring": "Touring",
    "destination": "Destination Only",
    "source_destination": "Source-Dest.",
}

_ORDER = (
    Possibility.IMPOSSIBLE,
    Possibility.UNKNOWN,
    Possibility.SOMETIMES,
    Possibility.POSSIBLE,
)


def fig7_table(result: CaseStudyResult, paper: dict | None = None) -> str:
    """Fig. 7 as text: per-model classification percentages.

    ``paper`` optionally maps ``(model, possibility)`` to the paper's
    percentage for side-by-side comparison.
    """
    lines = [
        f"Fig. 7 — perfect-resilience classification of {result.total} topologies",
        f"{'model':<18}" + "".join(f"{p.value:>12}" for p in _ORDER),
    ]
    for model in MODELS:
        row = f"{_MODEL_LABELS[model]:<18}"
        for possibility in _ORDER:
            row += f"{result.percentage(model, possibility):>11.1f}%"
        lines.append(row)
        if paper:
            row = f"{'  (paper)':<18}"
            for possibility in _ORDER:
                value = paper.get((model, possibility.value))
                row += f"{value:>11.1f}%" if value is not None else f"{'-':>12}"
            lines.append(row)
    lines.append(
        "planarity mix: "
        + ", ".join(
            f"{kind} {result.planarity_share(kind):.1f}%"
            for kind in ("outerplanar", "planar", "non-planar")
        )
    )
    lines.append(
        f"planar & destination-impossible: {result.planar_and_impossible_destination():.1f}% "
        "(paper: 31.3%)"
    )
    lines.append(
        f"mean good-destination share among 'sometimes': "
        f"{result.mean_good_destination_fraction():.1f}% (paper: 21.3%)"
    )
    return "\n".join(lines)


def fig8_table(result: CaseStudyResult, size_bins=(10, 25, 50, 100, 10_000)) -> str:
    """Fig. 8 as text: destination-model class by size and density bins."""
    density_bins = (0.9, 1.1, 1.5, 2.0, 100.0)
    lines = [
        "Fig. 8 — classification frontier by size (columns) and density |E|/n (rows)",
        "cells: destination-model classes (I=impossible U=unknown S=sometimes P=possible)",
    ]
    label = "density / n"
    header = f"{label:<14}"
    previous = 0
    for bound in size_bins:
        header += f"{f'<{bound}':>16}"
    lines.append(header)
    prev_density = 0.0
    for d_bound in density_bins:
        row = f"{f'{prev_density:.1f}-{d_bound:.1f}':<14}"
        prev_n = 0
        for n_bound in size_bins:
            cell = _cell(result, prev_n, n_bound, prev_density, d_bound)
            row += f"{cell:>16}"
            prev_n = n_bound
        lines.append(row)
        prev_density = d_bound
    return "\n".join(lines)


def _cell(result: CaseStudyResult, n_lo: int, n_hi: int, d_lo: float, d_hi: float) -> str:
    from collections import Counter

    counts: Counter = Counter()
    for c in result.classifications:
        if n_lo <= c.n < n_hi and d_lo <= c.density < d_hi:
            counts[c.destination.value[0].upper()] += 1
    if not counts:
        return "-"
    return "/".join(f"{k}:{v}" for k, v in sorted(counts.items()))


def simple_table(headers: list[str], rows: list[list[str]]) -> str:
    """Minimal fixed-width table used by several benchmarks."""
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
              for i, h in enumerate(headers)]
    lines = ["  ".join(str(h).ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
