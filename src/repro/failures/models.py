"""First-class failure models: deterministic grids and streaming samplers.

A :class:`FailureModel` names a distribution over link-failure sets and
owns its identity: the :attr:`~FailureModel.label` is the stable string
every surface keys on (record merge identities, journal cell keys, the
serve answer cache), so two processes that built the same model agree on
what they measured.  Models come in two flavours:

* **grid models** (``sampled=False``) materialize a deterministic
  ``{size: [failure sets]}`` grid via :meth:`~FailureModel.grid` — the
  sweeps enumerate every set and the verdicts are exact over the grid;
* **sampled models** (``sampled=True``) additionally expose
  :meth:`~FailureModel.sample`, an endless seeded stream of failure
  sets that the estimator layer (:mod:`repro.failures.estimate`) folds
  into point estimates with Wilson confidence bounds.

Every model is deterministic in its parameters and independent of
``PYTHONHASHSEED``: links and nodes are canonicalized with
:func:`~repro.graphs.edges.edge_sort_key` / :func:`~repro.graphs.edges.
sorted_nodes` before any seeded draw (the same discipline that fixed
the arborescence-packing hash-seed leak).
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from dataclasses import dataclass

import networkx as nx

from ..graphs.edges import FailureSet, edge, edge_sort_key, sorted_nodes


def canonical_links(graph: nx.Graph) -> list:
    """The graph's links in canonical order (hash-seed independent)."""
    return sorted((edge(u, v) for u, v in graph.edges), key=edge_sort_key)


def sample_failure_grid(
    graph: nx.Graph,
    sizes: list[int],
    samples: int,
    seed: int = 0,
) -> dict[int, list[FailureSet]]:
    """A deterministic failure-set grid: ``samples`` sets per size.

    Shared across algorithms by :func:`repro.traffic.congestion.
    compare_congestion` so that every competitor faces identical
    scenarios.  Size 0 contributes the single empty set; other sizes
    draw uniform link subsets without replacement within a sample.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    links = canonical_links(graph)
    rng = random.Random(seed)
    grid: dict[int, list[FailureSet]] = {}
    for size in sizes:
        if size < 0 or size > len(links):
            raise ValueError(f"failure size {size} out of range [0, {len(links)}]")
        if size == 0:
            grid[size] = [frozenset()]
            continue
        seen: set[FailureSet] = set()
        sets: list[FailureSet] = []
        for _ in range(samples):
            candidate = frozenset(rng.sample(links, size))
            if candidate in seen:
                continue  # duplicates add no information on tiny graphs
            seen.add(candidate)
            sets.append(candidate)
        grid[size] = sets
    return grid


def default_sizes(graph: nx.Graph) -> list[int]:
    """A sensible size ladder: 0, 1, 2, 4, ... up to half the links."""
    limit = max(1, graph.number_of_edges() // 2)
    sizes = [0]
    step = 1
    while step <= limit:
        sizes.append(step)
        step *= 2
    return sizes


class FailureModel:
    """The failure-model protocol (see module doc).

    Subclasses are frozen dataclasses: hashable (``run_grid`` keys its
    per-topology grids on the model) and deterministic in their fields.
    ``family`` is the spec-grammar name (``parse_failure_model`` round-
    trips every :attr:`label` back to an equal model).
    """

    #: spec-grammar name, e.g. ``"random"`` — also the metrics label
    family = ""
    #: sampled models stream through the estimator instead of a grid sweep
    sampled = False

    @property
    def label(self) -> str:
        """Stable identity string: ``family(key=value,...)``."""
        raise NotImplementedError

    def grid(self, graph: nx.Graph) -> dict[int, list[FailureSet]]:
        """A deterministic ``{size: [failure sets]}`` grid."""
        raise NotImplementedError

    def sample(self, graph: nx.Graph, rng: random.Random | None = None) -> Iterator[FailureSet]:
        """An endless seeded stream of failure sets (sampled models only)."""
        raise NotImplementedError(f"{type(self).__name__} is not a sampled model")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label


def _fmt(value: float) -> str:
    """Float formatting for labels: shortest round-trippable form."""
    return f"{value:g}"


@dataclass(frozen=True)
class RandomGridModel(FailureModel):
    """A seeded random failure grid: ``samples`` link sets per size.

    ``sizes=None`` uses each topology's default ladder (0, 1, 2, 4, ...
    up to half the links).  The grid is deterministic in ``seed`` and
    shared across every scheme of the same ``run_grid`` call.  This is
    the pre-``repro.failures`` behaviour bit for bit — labels and grids
    are pinned byte-identical by a differential fixture test.
    """

    sizes: tuple[int, ...] | None = None
    samples: int = 10
    seed: int = 0

    family = "random"

    @property
    def label(self) -> str:
        sizes = "auto" if self.sizes is None else "/".join(map(str, self.sizes))
        return f"random(sizes={sizes},samples={self.samples},seed={self.seed})"

    def grid(self, graph: nx.Graph) -> dict[int, list[FailureSet]]:
        sizes = list(self.sizes) if self.sizes is not None else default_sizes(graph)
        return sample_failure_grid(graph, sizes, self.samples, self.seed)


@dataclass(frozen=True)
class ExhaustiveModel(FailureModel):
    """Every failure set up to ``k`` links — the exact ground truth.

    Mirrors :func:`repro.core.resilience.all_failure_sets`; feasible
    only while ``C(m, k)`` stays small, which is exactly what the
    sampled models exist to escape.
    """

    k: int = 2

    family = "exhaustive"

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ValueError(f"k must be >= 0, got {self.k}")

    @property
    def label(self) -> str:
        return f"exhaustive(k={self.k})"

    def grid(self, graph: nx.Graph) -> dict[int, list[FailureSet]]:
        from itertools import combinations

        links = canonical_links(graph)
        limit = min(self.k, len(links))
        return {
            size: [frozenset(combo) for combo in combinations(links, size)]
            for size in range(limit + 1)
        }


class _SampledModel(FailureModel):
    """Shared plumbing for Monte-Carlo models: grid-by-materialization."""

    sampled = True

    def grid(self, graph: nx.Graph) -> dict[int, list[FailureSet]]:
        """The first ``samples`` draws, grouped by set size.

        Lets every grid-shaped surface (the traffic CLI, congestion
        curves) consume a sampled model; the estimator layer prefers
        the stream.
        """
        grid: dict[int, list[FailureSet]] = {}
        stream = self.sample(graph)
        for _ in range(self.samples):
            failures = next(stream)
            grid.setdefault(len(failures), []).append(failures)
        return {size: grid[size] for size in sorted(grid)}


@dataclass(frozen=True)
class IIDModel(_SampledModel):
    """Independent per-link Bernoulli failures with probability ``p``.

    The classic model of the static-failover literature (Chiesa et al.,
    arXiv:1409.0034): every link fails independently, so failure-set
    sizes are binomially distributed around ``p * m``.
    """

    p: float = 0.01
    samples: int = 100
    seed: int = 0

    family = "iid"

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {self.p}")
        if self.samples < 1:
            raise ValueError(f"samples must be >= 1, got {self.samples}")

    @property
    def label(self) -> str:
        return f"iid(p={_fmt(self.p)},samples={self.samples},seed={self.seed})"

    def sample(self, graph: nx.Graph, rng: random.Random | None = None) -> Iterator[FailureSet]:
        links = canonical_links(graph)
        rng = rng if rng is not None else random.Random(self.seed)
        while True:
            yield frozenset(link for link in links if rng.random() < self.p)


@dataclass(frozen=True)
class SRLGModel(_SampledModel):
    """Shared-risk link groups: correlated failures, whole groups at once.

    Links are partitioned deterministically (seeded shuffle of the
    canonical link order, round-robin into ``groups`` buckets — a stand-
    in for conduits/fiber spans sharing physical risk); each group then
    fails independently with probability ``p`` per sample, taking all
    its links down together.
    """

    groups: int = 4
    p: float = 0.05
    samples: int = 100
    seed: int = 0

    family = "srlg"

    def __post_init__(self) -> None:
        if self.groups < 1:
            raise ValueError(f"groups must be >= 1, got {self.groups}")
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {self.p}")
        if self.samples < 1:
            raise ValueError(f"samples must be >= 1, got {self.samples}")

    @property
    def label(self) -> str:
        return (
            f"srlg(groups={self.groups},p={_fmt(self.p)},"
            f"samples={self.samples},seed={self.seed})"
        )

    def partition(self, graph: nx.Graph) -> list[list]:
        """The deterministic risk groups (exposed for tests and docs)."""
        links = canonical_links(graph)
        shuffler = random.Random(self.seed)
        shuffler.shuffle(links)
        count = min(self.groups, len(links)) or 1
        buckets: list[list] = [[] for _ in range(count)]
        for position, link in enumerate(links):
            buckets[position % count].append(link)
        return buckets

    def sample(self, graph: nx.Graph, rng: random.Random | None = None) -> Iterator[FailureSet]:
        buckets = self.partition(graph)
        # draw seed offset by 1: group membership and failure draws stay
        # independent streams even though both derive from `seed`
        rng = rng if rng is not None else random.Random(self.seed + 1)
        while True:
            failed: set = set()
            for bucket in buckets:
                if rng.random() < self.p:
                    failed.update(bucket)
            yield frozenset(failed)


@dataclass(frozen=True)
class RegionalModel(_SampledModel):
    """Regional outages: a BFS ball of links around seeded centers.

    Per sample, ``centers`` nodes are drawn uniformly (canonical node
    order, so draws are hash-seed independent) and every link with an
    endpoint within ``radius - 1`` hops of a center fails — ``radius=1``
    is a node outage (all its links), ``radius=2`` takes out the
    center's whole neighbourhood, modelling localized physical damage.
    """

    radius: int = 1
    centers: int = 1
    samples: int = 100
    seed: int = 0

    family = "regional"

    def __post_init__(self) -> None:
        if self.radius < 1:
            raise ValueError(f"radius must be >= 1, got {self.radius}")
        if self.centers < 1:
            raise ValueError(f"centers must be >= 1, got {self.centers}")
        if self.samples < 1:
            raise ValueError(f"samples must be >= 1, got {self.samples}")

    @property
    def label(self) -> str:
        return (
            f"regional(radius={self.radius},centers={self.centers},"
            f"samples={self.samples},seed={self.seed})"
        )

    def sample(self, graph: nx.Graph, rng: random.Random | None = None) -> Iterator[FailureSet]:
        nodes = sorted_nodes(graph.nodes)
        rng = rng if rng is not None else random.Random(self.seed)
        while True:
            chosen = [rng.choice(nodes) for _ in range(min(self.centers, len(nodes)))]
            ball: set = set()
            for center in chosen:
                ball.update(
                    nx.single_source_shortest_path_length(
                        graph, center, cutoff=self.radius - 1
                    )
                )
            yield frozenset(
                edge(u, v) for u, v in graph.edges if u in ball or v in ball
            )
