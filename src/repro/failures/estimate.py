"""Streaming Monte-Carlo estimation over sampled failure models.

Sampled :class:`~repro.failures.models.FailureModel`\\ s stream failure
sets; this layer folds them into point estimates with 95% Wilson score
confidence bounds:

* :func:`estimate_resilience` — the probability that a scheme delivers
  every packet in a random failure scenario (every destination, every
  source in the destination's surviving component);
* :func:`estimate_congestion` — load statistics (mean max link load,
  delivered volume fraction, all-delivered rate) under random failures.

Both are **any-time**: a :class:`~repro.runtime.deadline.Deadline` /
:class:`~repro.runtime.deadline.Budget` is checked before every sample
and charged one unit per sample, so a budget of ``Budget(200)`` yields
exactly the first 200 samples' estimate flagged ``exhaustive=False``
(the latching :meth:`~repro.runtime.deadline.Deadline.expire` seam
stops refinement from outside).  Running estimates are checkpointed
into a ``series`` suitable for ``ExperimentRecord.series``, and every
drawn scenario counts toward ``repro_failure_samples_total{model=...}``.

The per-mask evaluation reuses the engine's warm seams: destination
schemes get one forwarding pattern + decision table per destination
(the same walk the serve layer's mask-outcome memo replicates), other
routing models fall back to the reference checkers one mask at a time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import networkx as nx

from repro import obs as _obs

from ..graphs.edges import FailureSet, sorted_nodes
from ..runtime.deadline import Deadline
from .models import FailureModel

#: 95% two-sided normal quantile (the Wilson default)
Z95 = 1.959963984540054


def wilson_interval(successes: int, trials: int, z: float = Z95) -> tuple[float, float]:
    """The Wilson score interval for a binomial proportion.

    Centre-shrunk toward 1/2 and never outside [0, 1] — well-behaved at
    the extremes (0 or ``trials`` successes) where the naive normal
    interval collapses.  ``trials == 0`` returns the vacuous (0, 1).
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError(f"bad counts: {successes}/{trials}")
    if trials == 0:
        return (0.0, 1.0)
    p = successes / trials
    denom = 1.0 + z * z / trials
    centre = p + z * z / (2.0 * trials)
    half = z * math.sqrt(p * (1.0 - p) / trials + z * z / (4.0 * trials * trials))
    return (max(0.0, (centre - half) / denom), min(1.0, (centre + half) / denom))


def exact_binomial_interval(
    successes: int, trials: int, alpha: float = 0.05
) -> tuple[float, float]:
    """The Clopper-Pearson (exact binomial) interval, via bisection.

    Pure ``math.comb`` — no scipy.  The reference the estimator tests
    cross-check :func:`wilson_interval` against: Wilson must always be
    contained in (or near-coincident with) the conservative exact
    interval on small closed-form cases.
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError(f"bad counts: {successes}/{trials}")
    if trials == 0:
        return (0.0, 1.0)

    def tail_at_least(p: float) -> float:
        """P[X >= successes] for X ~ Binomial(trials, p)."""
        return sum(
            math.comb(trials, k) * p**k * (1.0 - p) ** (trials - k)
            for k in range(successes, trials + 1)
        )

    def tail_at_most(p: float) -> float:
        """P[X <= successes] for X ~ Binomial(trials, p)."""
        return sum(
            math.comb(trials, k) * p**k * (1.0 - p) ** (trials - k)
            for k in range(0, successes + 1)
        )

    def bisect(func, target: float, increasing: bool) -> float:
        low, high = 0.0, 1.0
        for _ in range(80):  # ~2^-80 precision: far below any test tolerance
            mid = (low + high) / 2.0
            if (func(mid) < target) == increasing:
                low = mid
            else:
                high = mid
        return (low + high) / 2.0

    # lower bound: the p where P[X >= s] = alpha/2 (tail increases in p)
    lower = 0.0 if successes == 0 else bisect(tail_at_least, alpha / 2.0, True)
    # upper bound: the p where P[X <= s] = alpha/2 (tail decreases in p)
    upper = 1.0 if successes == trials else bisect(tail_at_most, alpha / 2.0, False)
    return (lower, upper)


def mean_interval(total: float, total_sq: float, count: int, z: float = Z95):
    """Normal-approximation CI for a sample mean from running sums."""
    if count == 0:
        return (0.0, 0.0, 0.0)
    mean = total / count
    if count == 1:
        return (mean, mean, mean)
    variance = max(0.0, (total_sq - count * mean * mean) / (count - 1))
    half = z * math.sqrt(variance / count)
    return (mean, mean - half, mean + half)


def _count_sample(model: FailureModel) -> None:
    telemetry = _obs.active()
    if telemetry is not None:
        telemetry.count(
            "repro_failure_samples_total",
            help="Monte-Carlo failure scenarios drawn, by model family",
            model=model.family,
        )


class MaskEvaluator:
    """Per-failure-set delivery evaluation for one algorithm on one graph.

    Destination algorithms on an engine-backed session get the warm
    path: one forwarding pattern and decision table per destination,
    built once, then each mask is a component walk with the shared
    delivered-state early exit — exactly the per-mask block of the
    engine sweep (and the serve mask-outcome memo).  Everything else
    (source-destination and touring schemes, naive sessions, masks
    naming links outside the graph) goes through the reference checkers
    one mask at a time.
    """

    def __init__(self, graph: nx.Graph, algorithm, session=None):
        from ..core.model import DestinationAlgorithm
        from ..experiments.session import resolve_session

        self.graph = graph
        self.algorithm = algorithm
        self.session = resolve_session(session)
        self._state = None
        self._entries: list | None = None
        if self.session.use_engine and isinstance(algorithm, DestinationAlgorithm):
            from ..core.engine.memo import MemoizedPattern

            state = self.session.state(graph)
            network = state.network
            entries = []
            for destination in sorted_nodes(graph.nodes):
                pattern = algorithm.build(graph, destination)
                entries.append(
                    (destination, network.index[destination], MemoizedPattern(network, pattern))
                )
            self._state = state
            self._entries = entries

    def delivered(self, failures: FailureSet) -> tuple[bool, str]:
        """Does the scheme deliver every packet under ``failures``?

        Returns ``(delivered, note)`` — the note describes the first
        failing (source, destination) when delivery fails.
        """
        if self._entries is not None:
            outcome = self._delivered_fast(failures)
            if outcome is not None:
                return outcome
        return self._delivered_reference(failures)

    def _delivered_fast(self, failures: FailureSet):
        from ..core.engine.memo import _route_covers, route_indexed
        from ..core.resilience import EXHAUSTIVE_LINK_LIMIT, Counterexample

        state = self._state
        network = state.network
        fmask = network.mask_of(failures)
        if fmask is None:
            return None  # links outside the index: reference path decides
        index = network.index
        for destination, dest_idx, memo in self._entries:
            if network.m <= EXHAUSTIVE_LINK_LIMIT:
                component = state.tracker.component_sorted(fmask, dest_idx)
            else:
                component = sorted_nodes(
                    network.labels[i]
                    for i in network.component_of_indices(fmask, dest_idx)
                )
            delivered_states: set[int] = set()
            for source in component:
                if source == destination:
                    continue
                if not _route_covers(
                    network, memo, index[source], dest_idx, fmask, delivered_states
                ):
                    result = route_indexed(network, memo, index[source], dest_idx, fmask)
                    return False, str(Counterexample(source, destination, failures, result))
        return True, ""

    def _delivered_reference(self, failures: FailureSet) -> tuple[bool, str]:
        from ..core.model import (
            DestinationAlgorithm,
            SourceDestinationAlgorithm,
            TouringAlgorithm,
        )
        from ..core.resilience import (
            check_perfect_resilience_destination,
            check_perfect_resilience_source_destination,
            check_perfect_touring,
        )

        algorithm = self.algorithm
        if isinstance(algorithm, TouringAlgorithm):
            checker = check_perfect_touring
        elif isinstance(algorithm, SourceDestinationAlgorithm):
            checker = check_perfect_resilience_source_destination
        elif isinstance(algorithm, DestinationAlgorithm):
            checker = check_perfect_resilience_destination
        else:
            raise TypeError(f"not a routing algorithm: {algorithm!r}")
        verdict = checker(
            self.graph, algorithm, failure_sets=[failures], session=self.session
        )
        note = str(verdict.counterexample) if verdict.counterexample else ""
        return bool(verdict.resilient), note


@dataclass
class ResilienceEstimate:
    """A streamed resilience estimate with Wilson bounds.

    ``exhaustive`` is ``True`` only when every planned sample was drawn
    (a deadline/budget cut leaves it ``False`` — the any-time contract
    shared with the sweeps).  ``series`` holds running checkpoints.
    """

    successes: int
    samples: int
    planned: int
    estimate: float
    ci_low: float
    ci_high: float
    exhaustive: bool
    note: str = ""
    series: list = field(default_factory=list)

    def metrics(self) -> dict:
        """Record-ready scalar metrics (``ExperimentRecord.metrics``)."""
        return {
            "resilient": bool(self.samples > 0 and self.successes == self.samples),
            "estimate": self.estimate,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "successes": self.successes,
            "samples": self.samples,
            "planned_samples": self.planned,
            "sampled": True,
            "exhaustive": self.exhaustive,
        }


def estimate_resilience(
    graph: nx.Graph,
    algorithm,
    model: FailureModel,
    session=None,
    deadline: Deadline | None = None,
    checkpoints: int = 10,
) -> ResilienceEstimate:
    """Monte-Carlo estimate of P[scheme delivers | random failure scenario].

    Draws up to ``model.samples`` scenarios from the model's stream,
    charging one deadline/budget unit per sample; a cut stops cleanly
    before the next draw with the completed prefix (``exhaustive=False``).
    """
    evaluator = MaskEvaluator(graph, algorithm, session=session)
    planned = int(model.samples)
    step = max(1, planned // checkpoints) if checkpoints else planned
    stream = model.sample(graph)
    successes = drawn = 0
    note = ""
    series: list[dict] = []

    def checkpoint() -> dict:
        low, high = wilson_interval(successes, drawn)
        return {
            "samples": drawn,
            "successes": successes,
            "estimate": successes / drawn if drawn else 0.0,
            "ci_low": low,
            "ci_high": high,
        }

    for _ in range(planned):
        if deadline is not None and deadline.expired():
            break
        failures = next(stream)
        ok, failure_note = evaluator.delivered(failures)
        drawn += 1
        if ok:
            successes += 1
        elif not note:
            note = failure_note
        _count_sample(model)
        if deadline is not None:
            deadline.charge()
        if drawn % step == 0:
            series.append(checkpoint())
    if drawn and (not series or series[-1]["samples"] != drawn):
        series.append(checkpoint())
    low, high = wilson_interval(successes, drawn)
    return ResilienceEstimate(
        successes=successes,
        samples=drawn,
        planned=planned,
        estimate=successes / drawn if drawn else 0.0,
        ci_low=low,
        ci_high=high,
        exhaustive=drawn == planned,
        note=note,
        series=series,
    )


@dataclass
class CongestionEstimate:
    """Streamed congestion statistics under random failures."""

    samples: int
    planned: int
    exhaustive: bool
    mean_max_load: float
    max_load_ci_low: float
    max_load_ci_high: float
    delivered_fraction: float
    delivered_ci_low: float
    delivered_ci_high: float
    all_delivered_rate: float
    all_delivered_ci_low: float
    all_delivered_ci_high: float
    mean_stretch: float
    series: list = field(default_factory=list)

    def metrics(self) -> dict:
        return {
            "mean_max_load": self.mean_max_load,
            "max_load_ci_low": self.max_load_ci_low,
            "max_load_ci_high": self.max_load_ci_high,
            "delivered_fraction": self.delivered_fraction,
            "delivered_ci_low": self.delivered_ci_low,
            "delivered_ci_high": self.delivered_ci_high,
            "all_delivered_rate": self.all_delivered_rate,
            "all_delivered_ci_low": self.all_delivered_ci_low,
            "all_delivered_ci_high": self.all_delivered_ci_high,
            "samples": self.samples,
            "sampled": True,
            "exhaustive": self.exhaustive,
        }

    def stretch_metrics(self) -> dict:
        return {
            "mean_stretch": self.mean_stretch,
            "samples": self.samples,
            "sampled": True,
            "exhaustive": self.exhaustive,
        }


def estimate_congestion(
    graph: nx.Graph,
    algorithm,
    demands,
    model: FailureModel,
    session=None,
    deadline: Deadline | None = None,
    checkpoints: int = 10,
) -> tuple[CongestionEstimate | None, str | None]:
    """Monte-Carlo load statistics for one scheme under a sampled model.

    Same pre-flight contract as :func:`repro.traffic.congestion.
    preflight_congestion_curve` — ``(estimate, None)`` or ``(None, skip
    reason)`` when the scheme cannot build on the topology.  Loads come
    from the session's batched router (or per-packet simulation on a
    naive session), one scenario per deadline/budget unit.
    """
    from ..experiments.session import resolve_session

    session = resolve_session(session)
    if session.use_engine:
        engine = session.traffic_engine(graph, algorithm)

        def load(failures):
            return engine.load_sweep(demands, [failures])[0]

        def preflight():
            engine.load(demands)

    else:
        from ..traffic.load import per_packet_loads

        def load(failures):
            return per_packet_loads(graph, algorithm, demands, failures)

        def preflight():
            per_packet_loads(graph, algorithm, demands)

    try:
        preflight()
    except Exception as error:  # noqa: BLE001 - precondition failures vary by algorithm
        return None, str(error) or type(error).__name__

    planned = int(model.samples)
    step = max(1, planned // checkpoints) if checkpoints else planned
    stream = model.sample(graph)
    drawn = 0
    max_load_sum = max_load_sq = 0.0
    delivered_volume = total_volume = 0
    all_delivered = 0
    stretch_volume = 0.0
    series: list[dict] = []

    def checkpoint() -> dict:
        mean, low, high = mean_interval(max_load_sum, max_load_sq, drawn)
        rate_low, rate_high = wilson_interval(all_delivered, drawn)
        return {
            "samples": drawn,
            "mean_max_load": mean,
            "max_load_ci_low": low,
            "max_load_ci_high": high,
            "delivered_fraction": delivered_volume / total_volume if total_volume else 0.0,
            "all_delivered_rate": all_delivered / drawn if drawn else 0.0,
            "all_delivered_ci_low": rate_low,
            "all_delivered_ci_high": rate_high,
            "mean_stretch": stretch_volume / delivered_volume if delivered_volume else 0.0,
        }

    for _ in range(planned):
        if deadline is not None and deadline.expired():
            break
        failures = next(stream)
        report = load(failures)
        drawn += 1
        max_load_sum += report.max_load
        max_load_sq += report.max_load * report.max_load
        delivered_volume += report.delivered_volume
        total_volume += report.total_volume
        stretch_volume += report.stretch_volume
        if report.delivered_volume == report.total_volume:
            all_delivered += 1
        _count_sample(model)
        if deadline is not None:
            deadline.charge()
        if drawn % step == 0:
            series.append(checkpoint())
    if drawn and (not series or series[-1]["samples"] != drawn):
        series.append(checkpoint())

    mean, low, high = mean_interval(max_load_sum, max_load_sq, drawn)
    # delivered volumes are integer unit counts, so the Wilson interval
    # on (delivered, total) volume is a genuine binomial bound
    volume_low, volume_high = wilson_interval(int(delivered_volume), int(total_volume))
    rate_low, rate_high = wilson_interval(all_delivered, drawn)
    return (
        CongestionEstimate(
            samples=drawn,
            planned=planned,
            exhaustive=drawn == planned,
            mean_max_load=mean,
            max_load_ci_low=low,
            max_load_ci_high=high,
            delivered_fraction=delivered_volume / total_volume if total_volume else 0.0,
            delivered_ci_low=volume_low,
            delivered_ci_high=volume_high,
            all_delivered_rate=all_delivered / drawn if drawn else 0.0,
            all_delivered_ci_low=rate_low,
            all_delivered_ci_high=rate_high,
            mean_stretch=stretch_volume / delivered_volume if delivered_volume else 0.0,
            series=series,
        ),
        None,
    )
