"""First-class failure models: grids, Monte-Carlo samplers, estimators.

The one home for "which failure scenarios do we evaluate":

* :mod:`~repro.failures.models` — the :class:`FailureModel` protocol and
  the concrete models (:class:`RandomGridModel` — the historical seeded
  grid, bit-identical labels —, :class:`ExhaustiveModel`,
  :class:`IIDModel`, :class:`SRLGModel`, :class:`RegionalModel`);
* :mod:`~repro.failures.spec` — the ``"iid:p=0.01,samples=500,seed=0"``
  spec grammar shared by the CLI, the serve protocol and ``run_grid``;
* :mod:`~repro.failures.estimate` — streaming estimators emitting
  resilience/congestion point estimates with Wilson confidence bounds,
  any-time refinable against a :class:`~repro.runtime.deadline.Budget`.

Quickstart::

    from repro.failures import parse_failure_model, estimate_resilience
    from repro.experiments import resolve_topology, scheme

    graph = resolve_topology("grid(3,3)")
    model = parse_failure_model("iid:p=0.05,samples=500,seed=0")
    est = estimate_resilience(graph, scheme("greedy").instantiate(), model)
    print(f"{est.estimate:.3f} [{est.ci_low:.3f}, {est.ci_high:.3f}]")
"""

from .estimate import (
    CongestionEstimate,
    MaskEvaluator,
    ResilienceEstimate,
    estimate_congestion,
    estimate_resilience,
    exact_binomial_interval,
    mean_interval,
    wilson_interval,
)
from .models import (
    ExhaustiveModel,
    FailureModel,
    IIDModel,
    RandomGridModel,
    RegionalModel,
    SRLGModel,
    canonical_links,
    default_sizes,
    sample_failure_grid,
)
from .spec import MODEL_FAMILIES, model_from_params, parse_failure_model, spec_grammar

__all__ = [
    "MODEL_FAMILIES",
    "CongestionEstimate",
    "ExhaustiveModel",
    "FailureModel",
    "IIDModel",
    "MaskEvaluator",
    "RandomGridModel",
    "RegionalModel",
    "ResilienceEstimate",
    "SRLGModel",
    "canonical_links",
    "default_sizes",
    "estimate_congestion",
    "estimate_resilience",
    "exact_binomial_interval",
    "mean_interval",
    "model_from_params",
    "parse_failure_model",
    "sample_failure_grid",
    "spec_grammar",
    "wilson_interval",
]
