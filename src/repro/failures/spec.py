"""The failure-model spec grammar: one parser for CLI, serve and ``run_grid``.

A spec string is ``name`` or ``name:key=value,key=value,...`` —
``"iid:p=0.01,samples=500,seed=0"`` — with one ``name`` per registered
model family.  Model labels (``"iid(p=0.01,samples=500,seed=0)"``) parse
too, so ``parse_failure_model(model.label) == model`` round-trips and a
label read back from a record or journal resolves to the model that
wrote it.

This module is the *single source of truth* for failure-model
parameters: ``repro.cli`` ``--failure-model`` flags, the serve
protocol's ``model`` param, and ``run_grid``'s string-typed
``failure_models`` entries all resolve here, so error messages and
defaults cannot drift apart.
"""

from __future__ import annotations

from .models import (
    ExhaustiveModel,
    FailureModel,
    IIDModel,
    RandomGridModel,
    RegionalModel,
    SRLGModel,
)


def _parse_sizes(raw: str):
    if raw == "auto":
        return None
    try:
        return tuple(int(token) for token in raw.split("/") if token)
    except ValueError:
        raise ValueError(
            f"invalid sizes {raw!r}: expected slash-separated integers, e.g. sizes=0/1/2"
        ) from None


def _parse_int(name: str):
    def parse(raw: str) -> int:
        try:
            return int(raw)
        except ValueError:
            raise ValueError(f"invalid {name} {raw!r}: expected an integer") from None

    return parse


def _parse_float(name: str):
    def parse(raw: str) -> float:
        try:
            return float(raw)
        except ValueError:
            raise ValueError(f"invalid {name} {raw!r}: expected a number") from None

    return parse


#: family -> (model class, {key: value parser})
MODEL_FAMILIES: dict[str, tuple[type, dict]] = {
    "random": (
        RandomGridModel,
        {
            "sizes": _parse_sizes,
            "samples": _parse_int("samples"),
            "seed": _parse_int("seed"),
        },
    ),
    "exhaustive": (ExhaustiveModel, {"k": _parse_int("k")}),
    "iid": (
        IIDModel,
        {
            "p": _parse_float("p"),
            "samples": _parse_int("samples"),
            "seed": _parse_int("seed"),
        },
    ),
    "srlg": (
        SRLGModel,
        {
            "groups": _parse_int("groups"),
            "p": _parse_float("p"),
            "samples": _parse_int("samples"),
            "seed": _parse_int("seed"),
        },
    ),
    "regional": (
        RegionalModel,
        {
            "radius": _parse_int("radius"),
            "centers": _parse_int("centers"),
            "samples": _parse_int("samples"),
            "seed": _parse_int("seed"),
        },
    ),
}


def spec_grammar() -> str:
    """A one-line usage summary per family (CLI help, error messages)."""
    lines = []
    for family, (_, keys) in MODEL_FAMILIES.items():
        args = ",".join(f"{key}=..." for key in keys)
        lines.append(f"{family}:{args}" if args else family)
    return "  ".join(lines)


def parse_failure_model(spec: str) -> FailureModel:
    """``"iid:p=0.01,samples=500,seed=0"`` -> the model it names.

    Accepts ``name``, ``name:key=value,...`` and the label form
    ``name(key=value,...)``; every key is optional (model defaults
    apply).  Raises :class:`ValueError` naming the offending part.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError(f"failure-model spec must be a non-empty string, got {spec!r}")
    text = spec.strip()
    if text.endswith(")") and "(" in text:
        # label form: name(key=value,...)
        name, _, body = text[:-1].partition("(")
    else:
        name, _, body = text.partition(":")
    name = name.strip()
    entry = MODEL_FAMILIES.get(name)
    if entry is None:
        known = ", ".join(sorted(MODEL_FAMILIES))
        raise ValueError(f"unknown failure model {name!r}; known models: {known}")
    model_cls, keys = entry
    kwargs = {}
    for part in body.split(","):
        part = part.strip()
        if not part:
            continue
        key, separator, raw = part.partition("=")
        key = key.strip()
        if not separator:
            raise ValueError(
                f"invalid failure-model argument {part!r}: expected key=value"
            )
        parser = keys.get(key)
        if parser is None:
            known = ", ".join(keys) or "(none)"
            raise ValueError(
                f"unknown argument {key!r} for failure model {name!r}; known: {known}"
            )
        kwargs[key] = parser(raw.strip())
    return model_cls(**kwargs)


def model_from_params(params: dict) -> FailureModel:
    """Resolve a serve-protocol params dict to a failure model.

    ``params["model"]`` (a spec string) wins; otherwise the legacy
    ``sizes`` / ``samples`` / ``seed`` keys build a
    :class:`RandomGridModel` exactly as the pre-``repro.failures``
    service did (same validation, same error messages).
    """
    spec = params.get("model")
    if spec is not None:
        if not isinstance(spec, str):
            raise ValueError(f"model must be a spec string, got {spec!r}")
        return parse_failure_model(spec)
    sizes = params.get("sizes")
    if sizes is not None:
        if not isinstance(sizes, list) or not all(isinstance(s, int) for s in sizes):
            raise ValueError(f"sizes must be a list of integers, got {sizes!r}")
        sizes = tuple(sizes)
    samples = params.get("samples", 10)
    seed = params.get("seed", 0)
    if not isinstance(samples, int) or not isinstance(seed, int):
        raise ValueError("samples and seed must be integers")
    return RandomGridModel(sizes=sizes, samples=samples, seed=seed)
