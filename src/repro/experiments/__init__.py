"""Unified experiment API: registries, sessions, grids, records.

The one surface for the paper's comparison.  Schemes and topologies are
resolved **by name** through registries (:mod:`~repro.experiments.
registry`), engine state is owned by an :class:`~repro.experiments.
session.ExperimentSession` (replacing scattered ``use_engine=`` flags
and hand-threaded ``EngineState``), grids run through
:func:`~repro.experiments.runner.run_grid`, and results are typed
:class:`~repro.experiments.results.ExperimentRecord` rows that merge
into a :class:`~repro.experiments.results.ResultStore`.

Failure models live in :mod:`repro.failures`; ``failure_models``
accepts model instances or spec strings, and the historical
``FailureModel`` name is an alias of
:class:`repro.failures.RandomGridModel` (identical labels and grids).

Quickstart::

    from repro.experiments import run_grid, ResultStore

    result = run_grid(
        topologies=["ring", "fattree"],
        schemes=["arborescence", "distance2", "greedy"],
        failure_models=["random:sizes=0/1/2,samples=5,seed=0"],
        store=ResultStore("results.json"),
    )
    print(result.table())
"""

from .registry import (
    ARITY,
    SchemeNotApplicable,
    SchemeSpec,
    TopologySpec,
    UnknownSchemeError,
    UnknownTopologyError,
    known_family,
    list_schemes,
    list_topologies,
    register_scheme,
    register_topology,
    resolve_topology,
    scheme,
    scheme_names,
    topology,
    topology_names,
)
from .results import (
    ExperimentRecord,
    ResultStore,
    records_round_trip,
    records_table,
    write_records_csv,
)
from .runner import METRICS, FailureModel, GridResult, run_grid
from .session import (
    ExperimentSession,
    default_session,
    naive_session,
    resolve_session,
)

__all__ = [
    "ARITY",
    "METRICS",
    "ExperimentRecord",
    "ExperimentSession",
    "FailureModel",
    "GridResult",
    "ResultStore",
    "SchemeNotApplicable",
    "SchemeSpec",
    "TopologySpec",
    "UnknownSchemeError",
    "UnknownTopologyError",
    "default_session",
    "known_family",
    "list_schemes",
    "list_topologies",
    "naive_session",
    "records_round_trip",
    "records_table",
    "register_scheme",
    "register_topology",
    "resolve_session",
    "resolve_topology",
    "run_grid",
    "scheme",
    "scheme_names",
    "topology",
    "topology_names",
    "write_records_csv",
]
