"""Typed experiment records and a merge-don't-overwrite result store.

Every experiment surface — the grid runner, the congestion benches, the
engine-speedup bench — emits the same record type so that artifacts like
``BENCH_engine.json`` fall out of one machinery instead of bespoke
merge code per script.

* :class:`ExperimentRecord` — one (experiment, topology, scheme,
  failure model) measurement: scalar ``metrics``, an optional per-point
  ``series`` (e.g. a congestion curve), free-form ``params`` and the
  wall-clock ``runtime_seconds``.  JSON round-trips losslessly.
* :class:`ResultStore` — a JSON file holding a ``records`` list plus
  arbitrary top-level sections.  :meth:`ResultStore.merge` replaces
  records with the same identity key and keeps everything else;
  :meth:`ResultStore.merge_raw` does the same for top-level sections
  (the engine/congestion benches' legacy keys).  :meth:`ResultStore.
  write_csv` flattens records for spreadsheet use.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
from dataclasses import asdict, dataclass, field

from ..runtime.journal import atomic_write_text

#: schema version stamped into every serialized record
RECORD_VERSION = 1

_SCALARS = (str, int, float, bool, type(None))


@dataclass
class ExperimentRecord:
    """One measurement of one scheme on one topology under one failure model.

    ``experiment`` names the metric family (``"resilience"``,
    ``"congestion"``, ``"stretch"``, ``"table_space"``, ``"bench"``,
    ...); ``status`` is ``"ok"``, ``"skipped"`` (with the reason in
    ``note`` — e.g. an inapplicable scheme), or ``"error"`` (a cell
    that raised: the exception summary goes in ``note`` and the full
    traceback in ``params["traceback"]``, so a failing cell is a typed
    record instead of an aborted grid).  ``metrics`` holds scalar
    results, ``series`` ordered per-point dicts (a curve), ``params``
    whatever identifies the workload (matrix, sizes, seed, ...).

    ``telemetry`` is an optional free-form mapping for observability
    sidecars (counter snapshots, span summaries).  The grid runner
    never populates it — records are byte-identical with telemetry on
    or off — and serialization omits it when empty, so stores written
    before the field existed round-trip unchanged.
    """

    experiment: str
    topology: str
    scheme: str
    failure_model: str = ""
    status: str = "ok"
    metrics: dict = field(default_factory=dict)
    series: list = field(default_factory=list)
    params: dict = field(default_factory=dict)
    runtime_seconds: float = 0.0
    note: str = ""
    telemetry: dict = field(default_factory=dict)
    version: int = RECORD_VERSION

    def __post_init__(self) -> None:
        for name, value in self.metrics.items():
            if not isinstance(value, _SCALARS):
                raise TypeError(
                    f"metric {name!r} must be a JSON scalar, got {type(value).__name__}"
                )

    def key(self) -> tuple[str, str, str, str, str]:
        """The merge identity: same key means 'same measurement, newer run'.

        The workload matrix (``params["matrix"]``, when present) is part
        of the identity — the same scheme on the same grid under incast
        and under permutation traffic are different measurements.
        """
        return (
            self.experiment,
            self.topology,
            self.scheme,
            self.failure_model,
            str(self.params.get("matrix", "")),
        )

    def to_dict(self) -> dict:
        data = asdict(self)
        if not data["telemetry"]:
            del data["telemetry"]
        return data

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentRecord":
        known = {name for name in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown record fields: {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentRecord":
        return cls.from_dict(json.loads(text))


def records_round_trip(records: list[ExperimentRecord]) -> bool:
    """Do the records survive JSON serialization losslessly?"""
    return all(ExperimentRecord.from_json(record.to_json()) == record for record in records)


class ResultStore:
    """A JSON-file-backed store that merges instead of overwriting.

    The document is a JSON object.  Records live under the ``"records"``
    key (a list of :class:`ExperimentRecord` dicts); any other top-level
    key is a free-form section owned by whoever wrote it (the benches'
    ``"gadget"`` / ``"zoo"`` / ``"congestion"`` entries).  Both merge
    operations preserve everything they do not explicitly replace, so
    independent writers can share one artifact.
    """

    def __init__(self, path: str | pathlib.Path):
        self.path = pathlib.Path(path)
        # identity index cached against the file's (mtime_ns, size)
        # stamp, so hot callers (the serve answer cache, repeated
        # merges) pay one parse per on-disk generation instead of one
        # scan per call.  An external writer bumps the stamp and the
        # cache rebuilds transparently.
        self._cache_stamp: tuple[int, int] | None = None
        self._cache_document: dict | None = None
        self._cache_index: dict[tuple, int] = {}
        self._cache_parsed: dict[int, ExperimentRecord] = {}
        self._cache_duplicates = False

    # -- raw document ------------------------------------------------------

    def load_document(self) -> dict:
        if not self.path.exists():
            return {}
        try:
            document = json.loads(self.path.read_text())
        except json.JSONDecodeError:
            return {}
        return document if isinstance(document, dict) else {}

    def _stamp(self) -> tuple[int, int] | None:
        try:
            info = self.path.stat()
        except OSError:
            return None
        return (info.st_mtime_ns, info.st_size)

    @staticmethod
    def _entry_key(entry: dict) -> tuple[str, str, str, str, str]:
        """A raw record dict's merge identity, without a full parse."""
        params = entry.get("params") or {}
        return (
            entry.get("experiment", ""),
            entry.get("topology", ""),
            entry.get("scheme", ""),
            entry.get("failure_model", ""),
            str(params.get("matrix", "")),
        )

    def _load_state(self) -> dict:
        """The cached (document, identity index), rebuilt if the file changed."""
        stamp = self._stamp()
        if self._cache_document is None or stamp != self._cache_stamp:
            self._adopt(self.load_document(), stamp)
        return self._cache_document

    def _adopt(self, document: dict, stamp: tuple[int, int] | None) -> None:
        raw = document.get("records", [])
        index: dict[tuple, int] = {}
        duplicates = False
        for position, entry in enumerate(raw):
            key = self._entry_key(entry)
            if key in index:
                duplicates = True
            index[key] = position
        self._cache_stamp = stamp
        self._cache_document = document
        self._cache_index = index
        self._cache_parsed = {}
        self._cache_duplicates = duplicates

    def _record_at(self, position: int) -> ExperimentRecord:
        record = self._cache_parsed.get(position)
        if record is None:
            record = ExperimentRecord.from_dict(self._cache_document["records"][position])
            self._cache_parsed[position] = record
        return record

    def _write_document(self, document: dict) -> None:
        # atomic replace: a crash mid-write can never tear the store
        atomic_write_text(self.path, json.dumps(document, indent=2, sort_keys=False) + "\n")
        self._adopt(document, self._stamp())

    def merge_raw(self, sections: dict) -> dict:
        """Merge top-level sections, keeping every other key intact."""
        document = self._load_state()
        document.update(sections)
        self._write_document(document)
        return document

    # -- records -----------------------------------------------------------

    def load_records(self) -> list[ExperimentRecord]:
        document = self._load_state()
        return [self._record_at(position) for position in range(len(document.get("records", [])))]

    def identities(self) -> list[tuple[str, str, str, str, str]]:
        """Every stored record identity, in record order (O(1) per call)."""
        self._load_state()
        return list(self._cache_index)

    def lookup(self, identity: tuple) -> ExperimentRecord | None:
        """The stored record with this :meth:`ExperimentRecord.key`, or None.

        O(1) in the number of stored records — this is the serve answer
        cache's hot path.  On the (legacy) off-chance the on-disk list
        holds duplicate keys, the index points at the last occurrence,
        matching :meth:`merge`'s newest-wins collapse.
        """
        self._load_state()
        position = self._cache_index.get(tuple(identity))
        return self._record_at(position) if position is not None else None

    def merge(self, records: list[ExperimentRecord]) -> list[ExperimentRecord]:
        """Merge records by identity key: same-key records are replaced
        (newest wins), all others are kept.  Returns the merged list."""
        document = self._load_state()
        if self._cache_duplicates:
            # a store written before the index existed may hold
            # duplicate keys: collapse exactly the way the pre-index
            # merge did (first position, newest value)
            merged: dict[tuple, ExperimentRecord] = {
                record.key(): record
                for record in (
                    ExperimentRecord.from_dict(entry) for entry in document.get("records", [])
                )
            }
            for record in records:
                merged[record.key()] = record
            ordered = list(merged.values())
            document["records"] = [record.to_dict() for record in ordered]
            self._write_document(document)
            return ordered
        raw = document.setdefault("records", [])
        index = self._cache_index
        parsed = self._cache_parsed
        for record in records:
            key = record.key()
            position = index.get(key)
            if position is None:
                index[key] = len(raw)
                parsed[len(raw)] = record
                raw.append(record.to_dict())
            else:
                raw[position] = record.to_dict()
                parsed[position] = record
        ordered = [self._record_at(position) for position in range(len(raw))]
        # skip _adopt's rebuild: the index/parsed caches were maintained
        # incrementally above and match what we are writing
        atomic_write_text(self.path, json.dumps(document, indent=2, sort_keys=False) + "\n")
        self._cache_stamp = self._stamp()
        return ordered

    # -- CSV export --------------------------------------------------------

    def write_csv(self, path: str | pathlib.Path) -> int:
        """Flatten the stored records to CSV (one row per record).

        Scalar metrics become ``metric:<name>`` columns; params become
        ``param:<name>`` columns; series are summarized by their length
        (the JSON store remains the lossless artifact).  Returns the
        number of rows written.
        """
        return write_records_csv(self.load_records(), path)


def write_records_csv(records: list[ExperimentRecord], path: str | pathlib.Path) -> int:
    metric_names = sorted({name for record in records for name in record.metrics})
    param_names = sorted({name for record in records for name in record.params})
    header = [
        "experiment",
        "topology",
        "scheme",
        "failure_model",
        "status",
        "runtime_seconds",
        "series_points",
        "note",
        *[f"metric:{name}" for name in metric_names],
        *[f"param:{name}" for name in param_names],
    ]
    buffer = io.StringIO(newline="")
    writer = csv.writer(buffer)
    writer.writerow(header)
    for record in records:
        writer.writerow(
            [
                record.experiment,
                record.topology,
                record.scheme,
                record.failure_model,
                record.status,
                f"{record.runtime_seconds:.6f}",
                len(record.series),
                record.note,
                *[record.metrics.get(name, "") for name in metric_names],
                *[record.params.get(name, "") for name in param_names],
            ]
        )
    atomic_write_text(path, buffer.getvalue())
    return len(records)


def records_table(records: list[ExperimentRecord]) -> str:
    """Fixed-width text table of records (CLI / examples)."""
    from ..analysis.reporting import simple_table

    rows = []
    for record in records:
        if record.status != "ok":
            summary = f"{record.status}: {record.note}" if record.note else record.status
        elif "estimate" in record.metrics:
            # a sampled-model record: point estimate, CI, sample count
            metrics = record.metrics
            summary = (
                f"estimate={metrics['estimate']:.3f} "
                f"[{metrics['ci_low']:.3f}, {metrics['ci_high']:.3f}] "
                f"n={metrics['samples']}/{metrics['planned_samples']}"
            )
            if not metrics.get("exhaustive", True):
                summary += " (cut)"
        else:
            shown = list(record.metrics.items())[:3]
            summary = "  ".join(
                f"{name}={value:.3g}" if isinstance(value, float) else f"{name}={value}"
                for name, value in shown
            )
        rows.append(
            [
                record.experiment,
                record.topology,
                record.scheme,
                record.failure_model or "-",
                summary,
                f"{record.runtime_seconds:.2f}s",
            ]
        )
    return simple_table(
        ["experiment", "topology", "scheme", "failures", "result", "runtime"], rows
    )
