"""Scheme and topology registries: the experiment API's name space.

The paper's core contribution is a *comparison* — how much resilience,
stretch, table space and congestion each static local rerouting scheme
sacrifices for locality — and a comparison needs a stable way to say
*which* schemes on *which* topologies.  This module provides exactly
that:

* :class:`SchemeSpec` wraps every routing algorithm of
  :mod:`repro.core.algorithms` with a stable registry name, its builder
  arity (per-source-destination / per-destination / per-graph, derived
  from the §II routing model), an applicability predicate (planarity,
  outerplanarity, bipartiteness, size caps, Hamiltonian
  decomposability), and paper metadata (theorem, resilience class);
* :class:`TopologySpec` unifies the graph families of
  :mod:`repro.graphs.construct` (classics, paper gadgets, the fat-tree /
  hypercube / torus datacenter fabrics) and the synthetic Topology Zoo
  of :mod:`repro.graphs.zoo` behind one parameterized-by-size builder
  interface.

Every consumer — the CLI, the congestion comparison harness, the grid
runner — resolves schemes and topologies **by name** through
:func:`scheme` / :func:`topology`, so adding an entry here (for example
the randomized schemes of Bankhamer–Elsässer–Schmid, arXiv:2108.02136)
plugs it into every experiment surface at once.
"""

from __future__ import annotations

import re
from collections.abc import Callable
from dataclasses import dataclass, field

import networkx as nx

from ..core.model import (
    DestinationAlgorithm,
    RoutingModel,
    SourceDestinationAlgorithm,
    TouringAlgorithm,
)


class SchemeNotApplicable(ValueError):
    """Raised when a scheme's applicability predicate rejects a graph."""


class UnknownSchemeError(KeyError):
    """Raised when a scheme name is not registered."""


class UnknownTopologyError(KeyError):
    """Raised when a topology name is not registered."""


RoutingAlgorithm = DestinationAlgorithm | SourceDestinationAlgorithm | TouringAlgorithm

#: routing model -> builder arity (how many header fields ``build`` takes)
ARITY = {
    RoutingModel.SOURCE_DESTINATION: "per-source-destination",
    RoutingModel.DESTINATION: "per-destination",
    RoutingModel.PORT: "per-graph",
}


@dataclass(frozen=True)
class SchemeSpec:
    """One registered rerouting scheme: name, builder, predicate, metadata.

    ``predicate`` answers "can this scheme be *built for every unit* of
    the standard experiment grid on this graph" (all destinations for
    per-destination schemes, all ordered pairs for per-source-destination
    ones, the graph itself for touring).  ``requires`` is the
    human-readable form of the same condition; ``theorem`` cites the
    paper result the scheme implements and ``resilience`` its proven
    resilience class on graphs satisfying the predicate.
    """

    name: str
    factory: Callable[..., RoutingAlgorithm]
    model: RoutingModel
    requires: str
    theorem: str
    resilience: str
    predicate: Callable[[nx.Graph], bool] = field(default=lambda graph: True)
    tags: frozenset[str] = frozenset()

    @property
    def arity(self) -> str:
        return ARITY[self.model]

    def instantiate(self, **kwargs) -> RoutingAlgorithm:
        """A fresh algorithm instance (seeded schemes accept ``seed=``)."""
        return self.factory(**kwargs)

    def applicable(self, graph: nx.Graph) -> bool:
        """Does the applicability predicate hold on ``graph``?"""
        return self.predicate(graph)

    def check(self, graph: nx.Graph) -> None:
        """Raise :class:`SchemeNotApplicable` when the predicate fails."""
        if not self.applicable(graph):
            raise SchemeNotApplicable(
                f"scheme {self.name!r} ({self.theorem}) requires {self.requires}; "
                f"the given graph (n={graph.number_of_nodes()}, "
                f"m={graph.number_of_edges()}) does not qualify"
            )

    def build_for(self, graph: nx.Graph, **kwargs) -> RoutingAlgorithm:
        """Predicate-checked instantiation: check first, then build."""
        self.check(graph)
        return self.instantiate(**kwargs)


_SCHEMES: dict[str, SchemeSpec] = {}


def register_scheme(spec: SchemeSpec) -> SchemeSpec:
    if spec.name in _SCHEMES:
        raise ValueError(f"scheme {spec.name!r} already registered")
    _SCHEMES[spec.name] = spec
    return spec


def scheme(name: str) -> SchemeSpec:
    """Look a scheme up by registry name."""
    try:
        return _SCHEMES[name]
    except KeyError:
        raise UnknownSchemeError(
            f"unknown scheme {name!r}; registered: {', '.join(sorted(_SCHEMES))}"
        ) from None


def list_schemes(tag: str | None = None) -> list[SchemeSpec]:
    """All registered schemes, in registration order; optionally by tag."""
    specs = list(_SCHEMES.values())
    if tag is not None:
        specs = [spec for spec in specs if tag in spec.tags]
    return specs


def scheme_names(tag: str | None = None) -> list[str]:
    return [spec.name for spec in list_schemes(tag)]


# ---------------------------------------------------------------------------
# Applicability predicates.
# ---------------------------------------------------------------------------


def _connected(graph: nx.Graph) -> bool:
    return graph.number_of_nodes() >= 2 and nx.is_connected(graph)


def _bipartite(graph: nx.Graph) -> bool:
    return _connected(graph) and nx.is_bipartite(graph)


def _outerplanar(graph: nx.Graph) -> bool:
    from ..graphs.planarity import is_outerplanar

    return _connected(graph) and is_outerplanar(graph)


def _hamiltonian_decomposable(graph: nx.Graph) -> bool:
    from ..graphs.hamiltonian import hamiltonian_decomposition

    if not _connected(graph):
        return False
    try:
        hamiltonian_decomposition(graph)
    except ValueError:
        return False
    return True


def _every_destination(supports: Callable[[nx.Graph, object], bool], cap: int):
    def predicate(graph: nx.Graph) -> bool:
        if not _connected(graph) or graph.number_of_nodes() > cap:
            return False
        return all(supports(graph, destination) for destination in graph.nodes)

    return predicate


def _every_pair(supports: Callable[[nx.Graph, object, object], bool], cap: int):
    def predicate(graph: nx.Graph) -> bool:
        if not _connected(graph) or graph.number_of_nodes() > cap:
            return False
        return all(
            supports(graph, source, destination)
            for destination in graph.nodes
            for source in graph.nodes
            if source != destination
        )

    return predicate


def _tour_to_destination_everywhere(graph: nx.Graph) -> bool:
    from ..core.algorithms import TourToDestination

    router = TourToDestination()
    return _connected(graph) and all(
        router.supports(graph, destination) for destination in graph.nodes
    )


# ---------------------------------------------------------------------------
# The scheme registry.  Registration order matters twice: it is the
# enumeration order of ``list_schemes`` and, filtered by the
# ``congestion-default`` tag, the line-up (and attack preference order)
# of the congestion comparison harness.
# ---------------------------------------------------------------------------


def _register_all_schemes() -> None:
    from ..core import algorithms as A

    register_scheme(
        SchemeSpec(
            name="arborescence",
            factory=A.ArborescenceRouting,
            model=RoutingModel.DESTINATION,
            requires="a connected graph (arc-disjoint in-arborescence packing)",
            theorem="Chiesa et al. baseline (§I.B.1)",
            resilience="ideal (k-1 failures on k-connected graphs)",
            predicate=_connected,
            tags=frozenset({"congestion-default", "baseline"}),
        )
    )
    register_scheme(
        SchemeSpec(
            name="distance2",
            factory=A.Distance2Algorithm,
            model=RoutingModel.SOURCE_DESTINATION,
            requires="any connected graph (delivers whenever dist(s,t) <= 2 survives)",
            theorem="Theorem 3",
            resilience="perfect for dist <= 2",
            predicate=_connected,
            tags=frozenset({"congestion-default"}),
        )
    )
    register_scheme(
        SchemeSpec(
            name="distance3",
            factory=A.Distance3BipartiteAlgorithm,
            model=RoutingModel.SOURCE_DESTINATION,
            requires="a connected bipartite graph",
            theorem="Theorem 4",
            resilience="perfect for dist <= 3 (bipartite)",
            predicate=_bipartite,
            tags=frozenset({"congestion-default"}),
        )
    )
    register_scheme(
        SchemeSpec(
            name="tour",
            factory=A.TourToDestination,
            model=RoutingModel.DESTINATION,
            requires="G - t outerplanar for every destination t",
            theorem="Corollary 5",
            resilience="perfect",
            predicate=_tour_to_destination_everywhere,
            tags=frozenset({"congestion-default"}),
        )
    )
    register_scheme(
        SchemeSpec(
            name="greedy",
            factory=A.GreedyLowestNeighbor,
            model=RoutingModel.DESTINATION,
            requires="any connected graph (no resilience guarantee)",
            theorem="naive strawman (§III)",
            resilience="none",
            predicate=_connected,
            tags=frozenset({"congestion-default", "baseline"}),
        )
    )
    register_scheme(
        SchemeSpec(
            name="right-hand",
            factory=A.RightHandTouring,
            model=RoutingModel.PORT,
            requires="an outerplanar graph",
            theorem="Corollary 6",
            resilience="perfect (touring)",
            predicate=_outerplanar,
        )
    )
    register_scheme(
        SchemeSpec(
            name="hamiltonian",
            factory=A.HamiltonianTouring,
            model=RoutingModel.PORT,
            requires="K_n (odd n) or K_{n,n} (even n): a Hamiltonian-decomposable graph",
            theorem="Theorem 17",
            resilience="k-resilient touring (k-1 failures)",
            predicate=_hamiltonian_decomposable,
        )
    )
    register_scheme(
        SchemeSpec(
            name="two-stage-tour",
            factory=A.TwoStageTour,
            model=RoutingModel.DESTINATION,
            requires="every destination of degree 1 with G - t - w outerplanar",
            theorem="Theorem 13 (relay case)",
            resilience="perfect",
            predicate=_every_destination(A.TwoStageTour().supports, cap=512),
        )
    )
    register_scheme(
        SchemeSpec(
            name="k5-source",
            factory=A.K5SourceRouting,
            model=RoutingModel.SOURCE_DESTINATION,
            requires="at most five nodes",
            theorem="Theorem 8 (Algorithm 1)",
            resilience="perfect",
            predicate=_every_pair(A.K5SourceRouting().supports, cap=5),
        )
    )
    register_scheme(
        SchemeSpec(
            name="k33-source",
            factory=A.K33SourceRouting,
            model=RoutingModel.SOURCE_DESTINATION,
            requires="a bipartite subgraph of K3,3 (embeddable for every pair)",
            theorem="Theorem 9",
            resilience="perfect",
            predicate=_every_pair(A.K33SourceRouting().supports, cap=6),
        )
    )
    register_scheme(
        SchemeSpec(
            name="k5-minus2",
            factory=A.K5Minus2Routing,
            model=RoutingModel.DESTINATION,
            requires="a minor of K5^-2 (for every destination)",
            theorem="Theorem 12",
            resilience="perfect",
            predicate=_every_destination(A.K5Minus2Routing().supports, cap=5),
        )
    )
    register_scheme(
        SchemeSpec(
            name="k33-minus2",
            factory=A.K33Minus2Routing,
            model=RoutingModel.DESTINATION,
            requires="a minor of K3,3^-2 (for every destination)",
            theorem="Theorem 13",
            resilience="perfect",
            predicate=_every_destination(A.K33Minus2Routing().supports, cap=6),
        )
    )
    register_scheme(
        SchemeSpec(
            name="random-sd",
            factory=A.RandomCyclicPermutations,
            model=RoutingModel.SOURCE_DESTINATION,
            requires="any connected graph (seeded; the adversaries' target)",
            theorem="generic scheme defeated by Thm 1 / Thm 6",
            resilience="none",
            predicate=_connected,
        )
    )
    register_scheme(
        SchemeSpec(
            name="random-dest",
            factory=A.RandomCyclicDestinationOnly,
            model=RoutingModel.DESTINATION,
            requires="any connected graph (seeded)",
            theorem="generic scheme defeated by Thm 6 / Thm 7",
            resilience="none",
            predicate=_connected,
        )
    )
    register_scheme(
        SchemeSpec(
            name="random-port",
            factory=A.RandomPortCycles,
            model=RoutingModel.PORT,
            requires="any connected graph (seeded; Lemma 1 shape)",
            theorem="Lemmas 1, 3, 4 (touring strawman)",
            resilience="none",
            predicate=_connected,
        )
    )


# ---------------------------------------------------------------------------
# Topologies.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TopologySpec:
    """One registered graph family, parameterized by size.

    ``params`` is the ordered tuple of parameter names ``builder``
    accepts; ``defaults`` supplies every parameter, so ``build()`` with
    no arguments always works (the CLI's bare family names resolve that
    way).  ``source`` records which substrate the family comes from
    (``construct`` / ``gadget`` / ``datacenter`` / ``zoo``).
    """

    name: str
    builder: Callable[..., nx.Graph]
    description: str
    source: str = "construct"
    params: tuple[str, ...] = ()
    defaults: dict[str, object] = field(default_factory=dict)

    def build(self, *args, **kwargs) -> nx.Graph:
        """Build the graph; positional args follow ``params`` order."""
        if len(args) > len(self.params):
            raise ValueError(
                f"topology {self.name!r} takes at most {len(self.params)} "
                f"parameters {self.params}, got {len(args)}"
            )
        resolved: dict[str, object] = dict(self.defaults)
        resolved.update(zip(self.params, args))
        for key in kwargs:
            if key not in self.params:
                raise ValueError(f"topology {self.name!r} has no parameter {key!r}")
        resolved.update(kwargs)
        return self.builder(**resolved)

    @property
    def signature(self) -> str:
        if not self.params:
            return self.name
        rendered = ", ".join(f"{p}={self.defaults[p]!r}" for p in self.params)
        return f"{self.name}({rendered})"


_TOPOLOGIES: dict[str, TopologySpec] = {}


def register_topology(spec: TopologySpec) -> TopologySpec:
    if spec.name in _TOPOLOGIES:
        raise ValueError(f"topology {spec.name!r} already registered")
    _TOPOLOGIES[spec.name] = spec
    return spec


def topology(name: str) -> TopologySpec:
    """Look a topology family up by registry name."""
    try:
        return _TOPOLOGIES[name]
    except KeyError:
        raise UnknownTopologyError(
            f"unknown topology {name!r}; registered: {', '.join(sorted(_TOPOLOGIES))}"
        ) from None


def list_topologies(source: str | None = None) -> list[TopologySpec]:
    specs = list(_TOPOLOGIES.values())
    if source is not None:
        specs = [spec for spec in specs if spec.source == source]
    return specs


def topology_names(source: str | None = None) -> list[str]:
    return [spec.name for spec in list_topologies(source)]


_SPEC_PATTERN = re.compile(r"^(?P<name>[\w-]+)\((?P<args>[^()]*)\)$")


def resolve_topology(spec: str) -> nx.Graph:
    """Build a graph from ``"name"`` or ``"name(arg, ...)"`` notation.

    Bare names build the family's registered default instance
    (``"ring"`` -> the 8-cycle); parenthesized integer arguments follow
    the family's parameter order (``"ring(12)"``, ``"torus(3, 5)"``).
    """
    match = _SPEC_PATTERN.match(spec.strip())
    if match is None:
        return topology(spec.strip()).build()
    name = match.group("name")
    raw = match.group("args").strip()
    args = [_coerce(token) for token in raw.split(",")] if raw else []
    return topology(name).build(*args)


def _coerce(token: str):
    token = token.strip().strip("'\"")
    try:
        return int(token)
    except ValueError:
        return token


def known_family(spec: str) -> bool:
    """Is the family part of a ``"name"`` / ``"name(args)"`` spec registered?

    Lets callers (the CLI's graph loader) distinguish "not a registered
    family, try something else" from errors raised *inside* a registered
    builder — the latter should propagate with their context intact.
    """
    match = _SPEC_PATTERN.match(spec.strip())
    name = match.group("name") if match else spec.strip()
    return name in _TOPOLOGIES


def _zoo_topology(family: str = "wheel", instance: int = 0, seed: int = 2022) -> nx.Graph:
    """One synthetic-Zoo member, built directly from its family generator.

    Identical to ``generate_zoo(seed)``'s member for the same (family,
    instance) — each member is seeded independently — without paying for
    the other 259 topologies.
    """
    import random

    from ..graphs import zoo

    try:
        builder = zoo._BUILDERS[family]
    except KeyError:
        raise UnknownTopologyError(
            f"unknown zoo family {family!r}; known: {', '.join(sorted(zoo._BUILDERS))}"
        ) from None
    rng = random.Random(f"{seed}/{family}/{instance}")
    graph = builder(rng, instance)
    return nx.convert_node_labels_to_integers(graph, ordering="sorted")


def _two_rings(n: int = 4) -> nx.Graph:
    """Two disjoint ``n``-cycles: the registry's disconnected negative
    control (every scheme's applicability predicate requires a connected
    graph, so every scheme must refuse this one)."""
    return nx.disjoint_union(nx.cycle_graph(n), nx.cycle_graph(n))


def _register_all_topologies() -> None:
    from ..graphs import construct as C

    classics: list[TopologySpec] = [
        TopologySpec("k5", C.complete_graph, "complete graph K5", params=("n",), defaults={"n": 5}),
        TopologySpec("k7", C.complete_graph, "complete graph K7", params=("n",), defaults={"n": 7}),
        TopologySpec(
            "k33",
            C.complete_bipartite,
            "complete bipartite K3,3",
            params=("a", "b"),
            defaults={"a": 3, "b": 3},
        ),
        TopologySpec(
            "k44",
            C.complete_bipartite,
            "complete bipartite K4,4",
            params=("a", "b"),
            defaults={"a": 4, "b": 4},
        ),
        TopologySpec(
            "complete", C.complete_graph, "complete graph K_n", params=("n",), defaults={"n": 5}
        ),
        TopologySpec(
            "complete-bipartite",
            C.complete_bipartite,
            "complete bipartite K_{a,b}",
            params=("a", "b"),
            defaults={"a": 3, "b": 3},
        ),
        TopologySpec(
            "ring", C.cycle_graph, "cycle (outerplanar)", params=("n",), defaults={"n": 8}
        ),
        TopologySpec(
            "path", C.path_graph, "path (outerplanar tree)", params=("n",), defaults={"n": 8}
        ),
        TopologySpec(
            "star",
            C.star_graph,
            "hub-and-spokes star",
            params=("leaves",),
            defaults={"leaves": 6},
        ),
        TopologySpec(
            "fan",
            C.fan_graph,
            "maximal outerplanar fan (Cor 6 frontier)",
            params=("n",),
            defaults={"n": 8},
        ),
        TopologySpec(
            "wheel",
            C.wheel_graph,
            "hub + rim cycle (planar, not outerplanar)",
            params=("rim",),
            defaults={"rim": 6},
        ),
        TopologySpec(
            "grid",
            C.grid_graph,
            "planar grid",
            params=("rows", "cols"),
            defaults={"rows": 4, "cols": 4},
        ),
        TopologySpec(
            "maximal-outerplanar",
            C.maximal_outerplanar,
            "random triangulated polygon",
            params=("n", "seed"),
            defaults={"n": 10, "seed": 1},
        ),
        TopologySpec("petersen", C.petersen_graph, "the Petersen graph (non-planar)"),
    ]
    gadgets = [
        TopologySpec(
            "netrail",
            C.fig6_netrail,
            "the Fig. 6 Netrail 'sometimes' topology",
            source="gadget",
        ),
        TopologySpec(
            "two-rail",
            C.fig2_two_rail,
            "the Fig. 2 two-rail impossibility gadget",
            source="gadget",
            params=("rungs",),
            defaults={"rungs": 3},
        ),
        TopologySpec(
            "theta",
            C.theta_graph,
            "two terminals joined by disjoint paths (smallest K2,3 minor)",
            source="gadget",
            params=("spokes", "length"),
            defaults={"spokes": 3, "length": 2},
        ),
        TopologySpec(
            "k-minus",
            C.k_minus,
            "K_n minus a deterministic matching of c links",
            source="gadget",
            params=("n", "c"),
            defaults={"n": 5, "c": 2},
        ),
        TopologySpec(
            "k-bipartite-minus",
            C.k_bipartite_minus,
            "K_{a,b} minus a deterministic matching of c links",
            source="gadget",
            params=("a", "b", "c"),
            defaults={"a": 3, "b": 3, "c": 2},
        ),
        TopologySpec(
            "two-rings",
            _two_rings,
            "two disjoint rings (disconnected negative control)",
            source="gadget",
            params=("n",),
            defaults={"n": 4},
        ),
    ]
    datacenter = [
        TopologySpec(
            "fattree",
            C.fat_tree,
            "k-ary fat-tree switch fabric (Al-Fares et al.)",
            source="datacenter",
            params=("k",),
            defaults={"k": 4},
        ),
        TopologySpec(
            "hypercube",
            C.hypercube,
            "d-dimensional hypercube",
            source="datacenter",
            params=("d",),
            defaults={"d": 4},
        ),
        TopologySpec(
            "torus",
            C.torus,
            "2-D torus with wraparound links",
            source="datacenter",
            params=("rows", "cols"),
            defaults={"rows": 4, "cols": 4},
        ),
    ]
    zoo = [
        TopologySpec(
            "zoo",
            _zoo_topology,
            "one synthetic Topology-Zoo member (family, instance, seed)",
            source="zoo",
            params=("family", "instance", "seed"),
            defaults={"family": "wheel", "instance": 0, "seed": 2022},
        ),
    ]
    for spec in [*classics, *gadgets, *datacenter, *zoo]:
        register_topology(spec)


_register_all_schemes()
_register_all_topologies()
