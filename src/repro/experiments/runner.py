"""``run_grid``: topologies × schemes × failure models × metrics.

The grid runner is the repo's one surface for the paper's comparison:
resolve topologies and schemes *by registry name*, share one seeded
failure grid across every scheme (so competitors face identical
scenarios, exactly like :func:`repro.traffic.congestion.
compare_congestion` — the congestion numbers are differentially equal),
and emit typed :class:`~repro.experiments.results.ExperimentRecord`
rows that serialize to JSON/CSV and merge into a
:class:`~repro.experiments.results.ResultStore`.

Metrics:

* ``resilience`` — does the scheme deliver on every grid scenario that
  keeps source and destination connected (§II, per routing model);
* ``congestion`` — the load curve over failure-set sizes
  (max/mean/p99 link load, delivered fraction) for a traffic matrix;
* ``stretch`` — volume-weighted hop stretch of the delivered traffic,
  from the same load runs;
* ``table_space`` — the §VII analytic rule count of the scheme's
  routing model on the topology.

Schemes whose applicability predicate rejects a topology produce
``status="skipped"`` records instead of crashing the grid.
"""

from __future__ import annotations

import pathlib
import time
import traceback
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

import networkx as nx

from repro import obs as _obs

from ..failures import RandomGridModel, parse_failure_model
from ..failures.models import FailureModel as BaseFailureModel
from ..runtime.deadline import Deadline
from ..runtime.faults import GridKill, InjectedFault, active_plan, fire
from ..runtime.journal import CellJournal
from .registry import (
    SchemeSpec,
    TopologySpec,
    list_schemes,
    resolve_topology,
    scheme as scheme_by_name,
)
from .results import ExperimentRecord, ResultStore, records_table
from .session import ExperimentSession, resolve_session

METRICS = ("resilience", "congestion", "stretch", "table_space")

#: backwards-compat alias: the historical ``repro.experiments.FailureModel``
#: (a seeded random failure grid) is :class:`repro.failures.RandomGridModel`
#: now — identical fields, labels and grids, pinned by differential tests
FailureModel = RandomGridModel


@dataclass
class GridResult:
    """Everything one ``run_grid`` call produced.

    ``exhaustive`` is ``False`` when a deadline cut the grid before
    every cell ran; ``resumed_cells`` counts cells replayed from a
    journal instead of recomputed; :attr:`errors` views the cells that
    raised (typed ``status="error"`` records — the grid itself never
    aborts on a cell exception).
    """

    records: list[ExperimentRecord] = field(default_factory=list)
    skipped: list[tuple[str, str, str]] = field(default_factory=list)
    exhaustive: bool = True
    resumed_cells: int = 0

    def table(self) -> str:
        return records_table(self.records)

    def select(self, experiment: str) -> list[ExperimentRecord]:
        return [record for record in self.records if record.experiment == experiment]

    @property
    def errors(self) -> list[ExperimentRecord]:
        return [record for record in self.records if record.status == "error"]


def _resolve_topologies(
    topologies: Iterable,
) -> list[tuple[str, nx.Graph]]:
    resolved: list[tuple[str, nx.Graph]] = []
    for item in topologies:
        if isinstance(item, str):
            resolved.append((item, resolve_topology(item)))
        elif isinstance(item, TopologySpec):
            resolved.append((item.name, item.build()))
        elif isinstance(item, tuple) and len(item) == 2:
            resolved.append(item)
        elif isinstance(item, nx.Graph):
            resolved.append((f"graph(n={item.number_of_nodes()})", item))
        else:
            raise TypeError(f"not a topology name, spec, (name, graph) pair or graph: {item!r}")
    return resolved


def _resolve_schemes(schemes: Iterable | None) -> list[SchemeSpec]:
    if schemes is None:
        return list_schemes()
    resolved: list[SchemeSpec] = []
    for item in schemes:
        if isinstance(item, str):
            resolved.append(scheme_by_name(item))
        elif isinstance(item, SchemeSpec):
            resolved.append(item)
        else:
            raise TypeError(f"not a scheme name or SchemeSpec: {item!r}")
    return resolved


def _resolve_failure_models(models: Sequence | None) -> list[BaseFailureModel]:
    """Models, spec strings, or ``None`` (the default random grid)."""
    if models is None:
        return [RandomGridModel()]
    resolved: list[BaseFailureModel] = []
    for item in models:
        if isinstance(item, str):
            resolved.append(parse_failure_model(item))
        elif isinstance(item, BaseFailureModel):
            resolved.append(item)
        else:
            raise TypeError(f"not a failure model or spec string: {item!r}")
    return resolved


def _cell_key(
    topology_name: str,
    scheme_name: str,
    model: BaseFailureModel,
    matrix: str,
    matrix_seed: int,
    metrics: Sequence[str],
) -> str:
    """The journal identity of one grid cell.

    Everything that determines the cell's records is in the key, so a
    resumed run with different metrics, matrix or failure model never
    replays a stale cell.
    """
    return "|".join(
        [
            topology_name,
            scheme_name,
            model.label,
            f"matrix={matrix}:{matrix_seed}",
            "metrics=" + ",".join(metrics),
        ]
    )


def run_grid(
    topologies: Iterable,
    schemes: Iterable | None = None,
    failure_models: Sequence | None = None,
    metrics: Sequence[str] = METRICS,
    matrix: str = "permutation",
    matrix_seed: int = 0,
    session: ExperimentSession | None = None,
    store: ResultStore | None = None,
    deadline: Deadline | None = None,
    resume: str | pathlib.Path | CellJournal | None = None,
    progress=None,
    processes: int | None = None,
) -> GridResult:
    """Evaluate every (topology × scheme × failure model) cell.

    ``topologies`` and ``schemes`` are registry names (topologies also
    accept ``"name(args)"`` size notation, prebuilt graphs, or specs);
    ``schemes=None`` runs every registered scheme, skipping those whose
    applicability predicate rejects a topology.  ``failure_models``
    accepts :class:`repro.failures.FailureModel` instances or spec
    strings (``"iid:p=0.01,samples=500,seed=0"`` — see
    :func:`repro.failures.parse_failure_model`); grid models sweep their
    deterministic grids exactly as before, while sampled models stream
    through :mod:`repro.failures.estimate` and emit estimate/CI records
    (one deadline/budget unit charged per sample, on top of the one
    charged per cell).  Pass ``store`` to merge
    the records into a persistent :class:`ResultStore` on the way out.

    Robustness seams:

    * A cell that raises does not abort the grid — it becomes one
      ``status="error"`` record (exception summary in ``note``, full
      traceback in ``params["traceback"]``), visible via
      :attr:`GridResult.errors`.
    * ``resume`` names a :class:`CellJournal` (path or instance): every
      finished cell — including errored ones — is durably journaled as
      it completes, and cells already in the journal are replayed
      instead of recomputed, so a killed grid restarts where it left
      off and produces the identical record list.
    * ``deadline`` (defaulting to the session's) is checked between
      cells; on expiry the grid stops cleanly with
      ``exhaustive=False``.  Completed cells are always whole.
    * ``progress`` is an opt-in heartbeat: a callable invoked after
      every cell (computed or replayed) with a dict of ``done``,
      ``total``, ``errors``, ``replayed``, ``elapsed`` seconds and an
      ``eta`` estimate (``None`` until the first cell lands).  It never
      touches records — purely an observer.
    * ``processes`` (default: the session's) fans independent compute
      cells out across forked workers that adopt the parent's warm
      session state (engine indexes are pre-built per topology, so
      workers inherit them as copy-on-write pages instead of
      re-indexing).  Records, journal appends and counters are stitched
      in grid order in the parent, so the output is identical to a
      serial run apart from ``runtime_seconds`` wall-clock noise.  An
      active fault-injection plan forces the serial path: per-cell
      fault decisions belong to the driver process.
    """
    unknown = set(metrics) - set(METRICS)
    if unknown:
        raise ValueError(f"unknown metrics {sorted(unknown)}; known: {METRICS}")
    session = resolve_session(session)
    if deadline is None:
        deadline = session.deadline
    journal: CellJournal | None
    if resume is None or isinstance(resume, CellJournal):
        journal = resume
    else:
        journal = CellJournal(resume)
    failure_models = _resolve_failure_models(failure_models)
    resolved_schemes = _resolve_schemes(schemes)
    resolved_topologies = _resolve_topologies(topologies)
    if processes is None:
        processes = session.processes
    if processes > 1 and active_plan() is None:
        result = _parallel_grid(
            session,
            resolved_topologies,
            resolved_schemes,
            failure_models,
            metrics,
            matrix,
            matrix_seed,
            journal,
            deadline,
            processes,
            progress,
        )
        if store is not None:
            store.merge(result.records)
        return result
    result = GridResult()
    needs_matrix = "congestion" in metrics or "stretch" in metrics
    cell_index = 0
    telemetry = _obs.active()
    grid_start = time.perf_counter()
    error_cells = 0
    total_cells: int | None = None
    if progress is not None:
        # the heartbeat's denominator: every applicable (topology,
        # scheme, model) cell — applicability predicates are cheap and
        # pure, so probing them twice is safe
        total_cells = sum(
            len(failure_models)
            for _, graph in resolved_topologies
            for spec in resolved_schemes
            if spec.applicable(graph)
        )

    def _heartbeat() -> None:
        elapsed = time.perf_counter() - grid_start
        eta = None
        if cell_index and total_cells is not None:
            eta = elapsed / cell_index * max(total_cells - cell_index, 0)
        progress(
            {
                "done": cell_index,
                "total": total_cells,
                "errors": error_cells,
                "replayed": result.resumed_cells,
                "elapsed": elapsed,
                "eta": eta,
            }
        )

    for topology_name, graph in resolved_topologies:
        if not result.exhaustive:
            break
        # one seeded grid per (topology, failure model) and one demand
        # matrix per topology, shared by every scheme — identical
        # scenarios across competitors, no per-cell rebuilds.  Sampled
        # models have no grid: their cells stream via the estimator.
        grids = {
            model: None if model.sampled else model.grid(graph) for model in failure_models
        }
        demands = None
        matrix_name = ""
        if needs_matrix:
            from ..traffic.matrices import build_named_matrix

            demands, matrix_name = build_named_matrix(graph, matrix, seed=matrix_seed)
        for spec in resolved_schemes:
            if not result.exhaustive:
                break
            if not spec.applicable(graph):
                # deterministic, instant: not journaled, no cell index
                reason = f"requires {spec.requires}"
                result.skipped.append((topology_name, spec.name, reason))
                if telemetry is not None:
                    telemetry.count(
                        "repro_grid_cells_total",
                        len(failure_models),
                        help="grid cells by status",
                        status="skipped",
                    )
                for model in failure_models:
                    result.records.append(
                        ExperimentRecord(
                            experiment="applicability",
                            topology=topology_name,
                            scheme=spec.name,
                            failure_model=model.label,
                            status="skipped",
                            note=reason,
                        )
                    )
                continue
            for index, model in enumerate(failure_models):
                if deadline is not None and deadline.expired():
                    result.exhaustive = False
                    break
                key = _cell_key(topology_name, spec.name, model, matrix, matrix_seed, metrics)
                if journal is not None and key in journal:
                    # replayed cells keep their grid position (and cell
                    # index) so resumed output is identical to an
                    # uninterrupted run
                    result.records.extend(
                        ExperimentRecord.from_dict(entry) for entry in journal.payload(key)
                    )
                    result.resumed_cells += 1
                    cell_index += 1
                    if telemetry is not None:
                        telemetry.count(
                            "repro_grid_cells_total",
                            help="grid cells by status",
                            status="replayed",
                        )
                    if progress is not None:
                        _heartbeat()
                    continue
                fault = fire("cell", cell_index)
                if fault is not None and fault.kind == "grid-kill":
                    # BaseException: the per-cell recovery below must not
                    # be able to catch a simulated hard crash
                    raise GridKill(f"injected grid kill at cell {cell_index}: {key}")
                start = time.perf_counter()
                with _obs.span(
                    "grid_cell",
                    topology=topology_name,
                    scheme=spec.name,
                    failure_model=model.label,
                ):
                    try:
                        if fault is not None and fault.kind == "cell-error":
                            raise InjectedFault(f"injected cell error at cell {cell_index}")
                        cell_records = _run_cell(
                            session,
                            topology_name,
                            graph,
                            spec,
                            spec.instantiate(),
                            model,
                            grids[model],
                            metrics,
                            demands,
                            matrix_name,
                            include_static=index == 0,
                            deadline=deadline,
                        )
                    except Exception as error:  # noqa: BLE001 - any cell bug becomes a record
                        cell_records = [
                            ExperimentRecord(
                                experiment="error",
                                topology=topology_name,
                                scheme=spec.name,
                                failure_model=model.label,
                                status="error",
                                note=f"{type(error).__name__}: {error}",
                                params={
                                    "matrix": matrix_name,
                                    "traceback": traceback.format_exc(),
                                },
                                runtime_seconds=time.perf_counter() - start,
                            )
                        ]
                cell_failed = any(record.status == "error" for record in cell_records)
                if cell_failed:
                    error_cells += 1
                if telemetry is not None:
                    telemetry.count(
                        "repro_grid_cells_total",
                        help="grid cells by status",
                        status="error" if cell_failed else "ok",
                    )
                    telemetry.observe(
                        "repro_grid_cell_seconds",
                        time.perf_counter() - start,
                        help="wall-clock seconds per computed grid cell",
                    )
                if journal is not None:
                    # journal before publishing: the invariant is that
                    # every cell whose records are visible is journaled,
                    # so a kill between the two costs one recomputation,
                    # never a lost cell
                    journal.append(key, [record.to_dict() for record in cell_records])
                result.records.extend(cell_records)
                cell_index += 1
                if progress is not None:
                    _heartbeat()
                if deadline is not None:
                    deadline.charge()
    if store is not None:
        store.merge(result.records)
    return result


def _parallel_grid(
    session: ExperimentSession,
    resolved_topologies: Sequence[tuple[str, nx.Graph]],
    resolved_schemes: Sequence[SchemeSpec],
    failure_models: Sequence[BaseFailureModel],
    metrics: Sequence[str],
    matrix: str,
    matrix_seed: int,
    journal: CellJournal | None,
    deadline: Deadline | None,
    processes: int,
    progress,
) -> GridResult:
    """Warm-worker execution of the grid: plan serially, fan compute
    cells out across forked workers, stitch records in grid order.

    The planning walk mirrors the serial loop exactly — applicability
    skips and journal replays are resolved in the parent (they are
    instant), and only compute cells are dispatched.  Workers adopt the
    parent's warm session (engine states pre-built per topology) across
    the fork as copy-on-write pages via ``parallel_map``'s initializer
    seam, so no worker re-indexes a graph.  Records, journal appends,
    telemetry counts and heartbeats all happen in the parent, in grid
    order, so the record list is identical to a serial run's apart from
    ``runtime_seconds`` wall-clock noise.  A deadline is checked at
    worker cell entry (an unstarted cell returns ``None``) and charged
    per stitched cell in the parent (``Budget`` units are driver-side);
    the result is truncated at the first unfinished cell with
    ``exhaustive=False`` — completed cells are always whole.
    """
    from ..core.engine.sweep import parallel_map, worker_warm

    result = GridResult()
    telemetry = _obs.active()
    needs_matrix = "congestion" in metrics or "stretch" in metrics
    # the ordered cell plan: ("records", [skip records]) for
    # applicability skips, ("replay", [records]) for journaled cells,
    # ("compute", task index) for real work
    actions: list[tuple[str, Any]] = []
    tasks: list[dict] = []
    for topology_name, graph in resolved_topologies:
        grids = {
            model: None if model.sampled else model.grid(graph) for model in failure_models
        }
        demands = None
        matrix_name = ""
        if needs_matrix:
            from ..traffic.matrices import build_named_matrix

            demands, matrix_name = build_named_matrix(graph, matrix, seed=matrix_seed)
        if session.use_engine:
            # pre-warm: build the index maps before the fork so every
            # worker inherits them instead of rebuilding per cell
            session.state(graph)
        for spec in resolved_schemes:
            if not spec.applicable(graph):
                reason = f"requires {spec.requires}"
                result.skipped.append((topology_name, spec.name, reason))
                if telemetry is not None:
                    telemetry.count(
                        "repro_grid_cells_total",
                        len(failure_models),
                        help="grid cells by status",
                        status="skipped",
                    )
                actions.append(
                    (
                        "records",
                        [
                            ExperimentRecord(
                                experiment="applicability",
                                topology=topology_name,
                                scheme=spec.name,
                                failure_model=model.label,
                                status="skipped",
                                note=reason,
                            )
                            for model in failure_models
                        ],
                    )
                )
                continue
            for index, model in enumerate(failure_models):
                key = _cell_key(topology_name, spec.name, model, matrix, matrix_seed, metrics)
                if journal is not None and key in journal:
                    actions.append(
                        (
                            "replay",
                            [ExperimentRecord.from_dict(entry) for entry in journal.payload(key)],
                        )
                    )
                    continue
                tasks.append(
                    dict(
                        key=key,
                        topology_name=topology_name,
                        graph=graph,
                        spec=spec,
                        algorithm=spec.instantiate(),
                        model=model,
                        grid=grids[model],
                        demands=demands,
                        matrix_name=matrix_name,
                        include_static=index == 0,
                    )
                )
                actions.append(("compute", len(tasks) - 1))

    def compute_cell(task_index: int):
        # items are plain indices: the task list (graphs, schemes,
        # demand matrices) rides into the workers through this closure
        # via fork inheritance, never through pickling
        task = tasks[task_index]
        if deadline is not None and deadline.expired():
            return None  # unstarted cell: the parent truncates here
        cell_session = worker_warm() or session
        start = time.perf_counter()
        with _obs.span(
            "grid_cell",
            topology=task["topology_name"],
            scheme=task["spec"].name,
            failure_model=task["model"].label,
        ):
            try:
                cell_records = _run_cell(
                    cell_session,
                    task["topology_name"],
                    task["graph"],
                    task["spec"],
                    task["algorithm"],
                    task["model"],
                    task["grid"],
                    metrics,
                    task["demands"],
                    task["matrix_name"],
                    include_static=task["include_static"],
                    # wall-clock deadlines are fork-consistent; Budget
                    # units charged by a worker's sampler stay in the
                    # worker (unit budgets bound driver-side loops)
                    deadline=deadline,
                )
            except Exception as error:  # noqa: BLE001 - any cell bug becomes a record
                cell_records = [
                    ExperimentRecord(
                        experiment="error",
                        topology=task["topology_name"],
                        scheme=task["spec"].name,
                        failure_model=task["model"].label,
                        status="error",
                        note=f"{type(error).__name__}: {error}",
                        params={
                            "matrix": task["matrix_name"],
                            "traceback": traceback.format_exc(),
                        },
                        runtime_seconds=time.perf_counter() - start,
                    )
                ]
        return cell_records, time.perf_counter() - start

    def _warm_session():
        # runs in the worker, post-fork: inner sweeps must stay serial
        # there (a daemonic pool worker cannot fork again), and one
        # process per grid cell is the whole parallelism budget anyway.
        # The attribute write lands on the worker's fork-local copy —
        # the parent's session keeps its processes setting.
        session.processes = 1
        return session

    outputs = (
        parallel_map(compute_cell, list(range(len(tasks))), processes, initializer=_warm_session)
        if tasks
        else []
    )

    # stitch in grid order: records, journal appends, counters and
    # heartbeats land exactly where the serial loop would put them
    cell_index = 0
    error_cells = 0
    grid_start = time.perf_counter()
    total_cells: int | None = None
    if progress is not None:
        total_cells = sum(
            len(failure_models)
            for _, graph in resolved_topologies
            for spec in resolved_schemes
            if spec.applicable(graph)
        )

    def _heartbeat() -> None:
        elapsed = time.perf_counter() - grid_start
        eta = None
        if cell_index and total_cells is not None:
            eta = elapsed / cell_index * max(total_cells - cell_index, 0)
        progress(
            {
                "done": cell_index,
                "total": total_cells,
                "errors": error_cells,
                "replayed": result.resumed_cells,
                "elapsed": elapsed,
                "eta": eta,
            }
        )

    for position, (kind, payload) in enumerate(actions):
        if kind == "records":
            result.records.extend(payload)
            continue
        if kind == "replay":
            result.records.extend(payload)
            result.resumed_cells += 1
            cell_index += 1
            if telemetry is not None:
                telemetry.count(
                    "repro_grid_cells_total",
                    help="grid cells by status",
                    status="replayed",
                )
            if progress is not None:
                _heartbeat()
            continue
        output = outputs[payload]
        if output is None:
            # the worker saw the deadline before starting this cell
            result.exhaustive = False
            break
        cell_records, elapsed = output
        cell_failed = any(record.status == "error" for record in cell_records)
        if cell_failed:
            error_cells += 1
        if telemetry is not None:
            telemetry.count(
                "repro_grid_cells_total",
                help="grid cells by status",
                status="error" if cell_failed else "ok",
            )
            telemetry.observe(
                "repro_grid_cell_seconds",
                elapsed,
                help="wall-clock seconds per computed grid cell",
            )
        if journal is not None:
            journal.append(tasks[payload]["key"], [record.to_dict() for record in cell_records])
        result.records.extend(cell_records)
        cell_index += 1
        if progress is not None:
            _heartbeat()
        if deadline is not None and not deadline.charge() and position + 1 < len(actions):
            # budget/deadline spent with cells still unpublished — the
            # serial loop would have stopped before them too
            result.exhaustive = False
            break
    return result


def _run_cell(
    session: ExperimentSession,
    topology_name: str,
    graph: nx.Graph,
    spec: SchemeSpec,
    algorithm,
    model: BaseFailureModel,
    grid: dict | None,
    metrics: Sequence[str],
    demands,
    matrix_name: str,
    include_static: bool = True,
    deadline: Deadline | None = None,
) -> list[ExperimentRecord]:
    records: list[ExperimentRecord] = []
    base = dict(topology=topology_name, scheme=spec.name, failure_model=model.label)

    if model.sampled:
        _sampled_cell(
            records, session, graph, spec, algorithm, model, metrics,
            demands, matrix_name, base, deadline,
        )
    if "resilience" in metrics and not model.sampled:
        start = time.perf_counter()
        verdict = _check_resilience(session, graph, algorithm, grid)
        records.append(
            ExperimentRecord(
                experiment="resilience",
                metrics={
                    "resilient": bool(verdict.resilient),
                    "scenarios_checked": verdict.scenarios_checked,
                    "exhaustive": bool(verdict.exhaustive),
                },
                params={"model": spec.arity},
                runtime_seconds=time.perf_counter() - start,
                note=str(verdict.counterexample) if verdict.counterexample else "",
                **base,
            )
        )

    needs_curve = ("congestion" in metrics or "stretch" in metrics) and not model.sampled
    if needs_curve:
        start = time.perf_counter()
        curve, error = _congestion_curve(
            session, graph, algorithm, grid, model, topology_name, demands, matrix_name
        )
        elapsed = time.perf_counter() - start
        if curve is None:
            for experiment in ("congestion", "stretch"):
                if experiment in metrics:
                    records.append(
                        ExperimentRecord(
                            experiment=experiment,
                            status="skipped",
                            note=error or "pattern construction failed",
                            # same merge identity as the ok record would
                            # have: a later ok run replaces this skip
                            params={"matrix": matrix_name},
                            runtime_seconds=elapsed,
                            **base,
                        )
                    )
        else:
            series = [
                {
                    "failures": point.failures,
                    "scenarios": point.scenarios,
                    "mean_max_load": point.mean_max_load,
                    "worst_max_load": point.worst_max_load,
                    "mean_p99_load": point.mean_p99_load,
                    "delivered_fraction": point.delivered_fraction,
                    "mean_stretch": point.mean_stretch,
                }
                for point in curve.points
            ]
            last = curve.points[-1]
            if "congestion" in metrics:
                records.append(
                    ExperimentRecord(
                        experiment="congestion",
                        metrics={
                            "worst_max_load": max(p.worst_max_load for p in curve.points),
                            "mean_max_load_at_max_failures": last.mean_max_load,
                            "delivered_fraction_at_max_failures": last.delivered_fraction,
                        },
                        series=series,
                        params={"matrix": curve.matrix, "samples": getattr(model, "samples", 0)},
                        runtime_seconds=elapsed,
                        **base,
                    )
                )
            if "stretch" in metrics:
                records.append(
                    ExperimentRecord(
                        experiment="stretch",
                        metrics={
                            "mean_stretch_at_max_failures": last.mean_stretch,
                            "max_mean_stretch": max(p.mean_stretch for p in curve.points),
                        },
                        series=[
                            {"failures": p["failures"], "mean_stretch": p["mean_stretch"]}
                            for p in series
                        ],
                        params={"matrix": curve.matrix},
                        # the curve is computed once; attribute its cost to
                        # the congestion record when both metrics ride it,
                        # so summed runtimes do not double-count
                        runtime_seconds=0.0 if "congestion" in metrics else elapsed,
                        **base,
                    )
                )

    if "table_space" in metrics and include_static:
        # failure-model independent: emitted once per (topology, scheme)
        from ..analysis.table_space import table_space
        from ..core.model import RoutingModel

        start = time.perf_counter()
        space = table_space(graph, name=topology_name)
        rules = {
            RoutingModel.SOURCE_DESTINATION: space.source_destination_rules,
            RoutingModel.DESTINATION: space.destination_rules,
            RoutingModel.PORT: space.touring_rules,
        }[spec.model]
        records.append(
            ExperimentRecord(
                experiment="table_space",
                metrics={
                    "rules": rules,
                    "touring_rules": space.touring_rules,
                    # blow-up factor: how many times MORE rules than touring
                    "rules_vs_touring": rules / space.touring_rules if space.touring_rules else 0.0,
                },
                params={"model": spec.arity, "analytic": True},
                runtime_seconds=time.perf_counter() - start,
                **dict(base, failure_model=""),  # not a failure-model metric
            )
        )
    return records


def _sampled_cell(
    records: list[ExperimentRecord],
    session: ExperimentSession,
    graph: nx.Graph,
    spec: SchemeSpec,
    algorithm,
    model: BaseFailureModel,
    metrics: Sequence[str],
    demands,
    matrix_name: str,
    base: dict,
    deadline: Deadline | None,
) -> None:
    """The estimator path for sampled failure models.

    Same record identities as the grid path (``resilience`` /
    ``congestion`` / ``stretch`` under the model's label), but the
    metrics carry point estimates with Wilson CI bounds and the series
    holds running refinement checkpoints.  A deadline/budget cut leaves
    ``exhaustive=False`` on whatever samples completed.
    """
    from ..failures.estimate import estimate_congestion, estimate_resilience

    if "resilience" in metrics:
        start = time.perf_counter()
        estimate = estimate_resilience(
            graph, algorithm, model, session=session, deadline=deadline
        )
        records.append(
            ExperimentRecord(
                experiment="resilience",
                metrics=estimate.metrics(),
                series=list(estimate.series),
                params={"model": spec.arity},
                runtime_seconds=time.perf_counter() - start,
                note=estimate.note,
                **base,
            )
        )
    if "congestion" in metrics or "stretch" in metrics:
        start = time.perf_counter()
        estimate, error = estimate_congestion(
            graph, algorithm, demands, model, session=session, deadline=deadline
        )
        elapsed = time.perf_counter() - start
        if estimate is None:
            for experiment in ("congestion", "stretch"):
                if experiment in metrics:
                    records.append(
                        ExperimentRecord(
                            experiment=experiment,
                            status="skipped",
                            note=error or "pattern construction failed",
                            params={"matrix": matrix_name},
                            runtime_seconds=elapsed,
                            **base,
                        )
                    )
            return
        if "congestion" in metrics:
            records.append(
                ExperimentRecord(
                    experiment="congestion",
                    metrics=estimate.metrics(),
                    series=list(estimate.series),
                    params={"matrix": matrix_name, "samples": model.samples},
                    runtime_seconds=elapsed,
                    **base,
                )
            )
        if "stretch" in metrics:
            records.append(
                ExperimentRecord(
                    experiment="stretch",
                    metrics=estimate.stretch_metrics(),
                    series=[
                        {"samples": point["samples"], "mean_stretch": point["mean_stretch"]}
                        for point in estimate.series
                    ],
                    params={"matrix": matrix_name},
                    runtime_seconds=0.0 if "congestion" in metrics else elapsed,
                    **base,
                )
            )


def _check_resilience(session: ExperimentSession, graph: nx.Graph, algorithm, grid):
    """Grid-scenario resilience for one scheme, per routing model."""
    from ..core.model import (
        DestinationAlgorithm,
        SourceDestinationAlgorithm,
        TouringAlgorithm,
    )
    from ..core.resilience import (
        check_perfect_resilience_destination,
        check_perfect_resilience_source_destination,
        check_perfect_touring,
    )

    failure_sets = [failures for size in sorted(grid) for failures in grid[size]]
    if isinstance(algorithm, TouringAlgorithm):
        return check_perfect_touring(graph, algorithm, failure_sets=failure_sets, session=session)
    if isinstance(algorithm, SourceDestinationAlgorithm):
        return check_perfect_resilience_source_destination(
            graph, algorithm, failure_sets=failure_sets, session=session
        )
    if isinstance(algorithm, DestinationAlgorithm):
        return check_perfect_resilience_destination(
            graph, algorithm, failure_sets=failure_sets, session=session
        )
    raise TypeError(f"not a routing algorithm: {algorithm!r}")


def _congestion_curve(
    session: ExperimentSession,
    graph: nx.Graph,
    algorithm,
    grid,
    model: BaseFailureModel,
    topology_name: str,
    demands,
    matrix_name: str,
):
    """The scheme's congestion curve on the shared grid, or a skip reason.

    On the engine backends this mirrors :func:`repro.traffic.congestion.
    compare_congestion` exactly — same pre-flight, same per-scenario
    loads — so grid records are differentially equal to the comparison
    harness; a ``backend="numpy"`` session routes each grid bucket
    through the vectorized :meth:`TrafficEngine.load_sweep` (identical
    loads) via the session-built traffic engine.  On a
    ``backend="naive"`` session the loads come from
    :func:`repro.traffic.load.per_packet_loads` (one simulated walk per
    demand): the reference surface differential tests compare against.
    """
    from ..traffic.congestion import CongestionCurve, _aggregate, preflight_congestion_curve
    from ..traffic.load import per_packet_loads

    if not session.use_engine:
        try:
            per_packet_loads(graph, algorithm, demands)  # pre-flight
        except Exception as error:  # noqa: BLE001 - precondition failures vary by algorithm
            return None, str(error) or type(error).__name__
        curve = CongestionCurve(
            algorithm=algorithm.name,
            graph=topology_name,
            matrix=matrix_name,
            samples_per_size=getattr(model, "samples", 0),
        )
        for size in sorted(grid):
            reports = [per_packet_loads(graph, algorithm, demands, f) for f in grid[size]]
            if reports:
                curve.points.append(_aggregate(size, reports))
        return curve, None

    return preflight_congestion_curve(
        session.traffic_engine(graph, algorithm),
        algorithm,
        demands,
        grid,
        samples=getattr(model, "samples", 0),
        graph_name=topology_name,
        matrix_name=matrix_name,
    )
