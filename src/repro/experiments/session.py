"""The :class:`ExperimentSession`: one owner for all engine state.

Before this module, every entry point threaded engine state by hand:
checkers took ``use_engine=`` flags and built a throwaway
:class:`~repro.core.engine.sweep.EngineState` per call, the congestion
harness built its own, ``measure_stretch`` another, broadcast cached one
privately.  A session centralizes that: it owns a bounded cache of
per-graph engine states (index maps, component caches, memoized decision
tables) plus per-(graph, scheme) traffic engines, and it decides the
*backend* — ``"engine"`` (the fast indexed path), ``"numpy"`` (the
vectorized mask-walk backend, batching many failure masks per
destination through array ops; needs the optional numpy dependency and
falls back to scalar-engine semantics where an instance cannot
vectorize), or ``"naive"`` (the hop-by-hop reference simulator, kept
for differential testing).

Consumers accept ``session=``; the legacy ``use_engine=`` keyword is
still accepted everywhere it existed, but it now merely resolves to a
session (with a :class:`DeprecationWarning`) via
:func:`resolve_session`.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict

import networkx as nx

from repro import obs as _obs

from ..core.engine.sweep import EngineState
from ..core.engine.vectorized import numpy_available, require_numpy

#: cached engine states / traffic engines per session (FIFO eviction)
STATE_CACHE_LIMIT = 16

_BACKENDS = ("engine", "naive", "numpy")


def _fingerprint(graph: nx.Graph) -> tuple:
    """Node/edge identity of a graph — catches in-place mutation.

    The O(n + m) hash is negligible next to any sweep it guards, and it
    means a session never serves stale index maps for a graph that was
    rewired between calls (same discipline as ``TouringBroadcast``).
    """
    return (
        frozenset(graph.nodes),
        frozenset(frozenset(link) for link in graph.edges),
    )


class ExperimentSession:
    """Owns engine state for a series of experiments.

    ``backend="engine"`` routes every consumer through the fast indexed
    engine with caches shared across calls; ``backend="numpy"`` layers
    the vectorized mask-walk sweeps on top of the same engine state
    (requires the optional numpy dependency; instances the vectorizer
    cannot handle silently take the scalar engine path with identical
    verdicts); ``backend="naive"`` selects the reference hop-by-hop
    paths (identical verdicts, no caching) — the surface the
    differential tests compare against.  ``processes`` is the default
    fan-out for grid sweeps that support it.  ``deadline`` is an
    optional default :class:`~repro.runtime.deadline.Deadline` /
    :class:`~repro.runtime.deadline.Budget` for consumers that accept
    one (``run_grid`` uses it when no per-call deadline is given), so a
    whole session of sweeps can share a single time box.
    """

    def __init__(self, backend: str = "engine", processes: int = 1, deadline=None):
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        if backend == "numpy":
            require_numpy()
        self.backend = backend
        self.processes = processes
        self.deadline = deadline
        self._states: OrderedDict[int, tuple[tuple, EngineState]] = OrderedDict()
        self._traffic: OrderedDict[tuple, object] = OrderedDict()
        #: live cache statistics — plain ints so ``repr(session)`` works
        #: without telemetry; mirrored into the active registry on update
        self.stats: dict[str, int] = {
            "state_hits": 0,
            "state_misses": 0,
            "state_evictions": 0,
            "traffic_hits": 0,
            "traffic_misses": 0,
            "traffic_evictions": 0,
        }

    def _bump(self, cache: str, event: str) -> None:
        self.stats[f"{cache}_{event}"] += 1
        telemetry = _obs.active()
        if telemetry is not None:
            telemetry.count(
                f"repro_session_{cache}_cache_{event}_total",
                help=f"session {cache} cache {event}",
            )

    @property
    def use_engine(self) -> bool:
        """Does this session run on an engine-state backend (fast indexed
        or vectorized), as opposed to the naive reference paths?"""
        return self.backend != "naive"

    # -- state ownership ---------------------------------------------------

    def state(self, graph: nx.Graph) -> EngineState:
        """The session's engine state for ``graph`` (built once, cached).

        Keyed by graph object identity *and* its node/edge fingerprint;
        a mutated graph is re-indexed, and a bounded FIFO keeps sessions
        that sweep many graphs from pinning every index ever built.
        Refreshed keys (hits and re-indexes alike) move to the FIFO
        tail, so a hot graph is never the next eviction victim; an
        incoming key that already exists replaces its own slot instead
        of evicting an unrelated entry.

        The ``"naive"`` backend is the cache-free reference: it builds a
        throwaway state per call and retains nothing.
        """
        if self.backend == "naive":
            return EngineState(graph)
        key = id(graph)
        fingerprint = _fingerprint(graph)
        cached = self._states.get(key)
        if cached is not None and cached[0] == fingerprint and cached[1].graph is graph:
            self._states.move_to_end(key)
            self._bump("state", "hits")
            return cached[1]
        state = EngineState(graph)
        self._bump("state", "misses")
        if key in self._states:
            # same slot (a mutated graph being re-indexed): replace in
            # place — evicting an unrelated entry would shrink the cache
            self._states[key] = (fingerprint, state)
            self._states.move_to_end(key)
            return state
        while len(self._states) >= STATE_CACHE_LIMIT:
            self._states.popitem(last=False)
            self._bump("state", "evictions")
        self._states[key] = (fingerprint, state)
        return state

    def traffic_engine(self, graph: nx.Graph, algorithm) -> object:
        """A :class:`~repro.traffic.load.TrafficEngine` on session state.

        Cached per (graph, algorithm instance): repeated sweeps over the
        same pair reuse built patterns and decision tables.
        """
        from ..traffic.load import TrafficEngine

        if self.backend == "naive":
            # cache-free reference backend, like state() above
            return TrafficEngine(EngineState(graph), algorithm)
        # self.state() re-indexes a mutated graph; comparing the cached
        # engine's state to the current one inherits that staleness check
        state = self.state(graph)
        key = (id(graph), id(algorithm))
        cached = self._traffic.get(key)
        if cached is not None and cached.state is state and cached.algorithm is algorithm:
            self._traffic.move_to_end(key)
            self._bump("traffic", "hits")
            return cached
        engine = TrafficEngine(state, algorithm, backend=self.backend)
        self._bump("traffic", "misses")
        if key in self._traffic:
            # stale entry under the same key (mutated graph, or a
            # recycled id pair): replace in place, never evict a neighbor
            self._traffic[key] = engine
            self._traffic.move_to_end(key)
            return engine
        while len(self._traffic) >= STATE_CACHE_LIMIT:
            self._traffic.popitem(last=False)
            self._bump("traffic", "evictions")
        self._traffic[key] = engine
        return engine

    def clear(self) -> None:
        """Drop every cached state and traffic engine."""
        self._states.clear()
        self._traffic.clear()

    def __repr__(self) -> str:
        stats = self.stats
        return (
            f"ExperimentSession(backend={self.backend!r}, processes={self.processes}, "
            f"states={len(self._states)}, traffic={len(self._traffic)}, "
            f"state hits={stats['state_hits']}/misses={stats['state_misses']}"
            f"/evictions={stats['state_evictions']}, "
            f"traffic hits={stats['traffic_hits']}/misses={stats['traffic_misses']}"
            f"/evictions={stats['traffic_evictions']})"
        )


_DEFAULT_SESSION: ExperimentSession | None = None
_NAIVE_SESSION: ExperimentSession | None = None


def default_session() -> ExperimentSession:
    """The process-wide engine-backend session.

    Entry points called without an explicit session share this one, so
    back-to-back checks on the same graph reuse its index maps and
    component caches instead of rebuilding them per call.  The cost of
    that reuse is retention: up to :data:`STATE_CACHE_LIMIT` graphs'
    engine states (and their mask-partition caches) stay alive for the
    process lifetime.  Long-lived processes sweeping many large graphs
    should use a scoped ``ExperimentSession()`` instead — or call
    ``default_session().clear()`` to release everything at once.
    """
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = ExperimentSession(backend="engine")
    return _DEFAULT_SESSION


def naive_session() -> ExperimentSession:
    """The shared naive-backend session: reference paths, no caching.

    "No caching" is literal: a naive-backend session's
    :meth:`ExperimentSession.state` and
    :meth:`ExperimentSession.traffic_engine` build throwaway objects per
    call and retain nothing, so the reference surface can never serve a
    stale index.
    """
    global _NAIVE_SESSION
    if _NAIVE_SESSION is None:
        _NAIVE_SESSION = ExperimentSession(backend="naive")
    return _NAIVE_SESSION


def resolve_session(
    session: ExperimentSession | None = None,
    use_engine: bool | None = None,
    caller: str = "this function",
) -> ExperimentSession:
    """Back-compat shim: turn the legacy ``use_engine=`` flag into a session.

    * both ``None`` — the shared engine-backend :func:`default_session`;
    * ``session`` given — used as-is (``use_engine`` must then be absent);
    * ``use_engine`` given — emits a :class:`DeprecationWarning` and
      resolves to the shared session of the matching backend, so old
      call sites keep their exact semantics.
    """
    if use_engine is None:
        return session if session is not None else default_session()
    # validate before warning: the ValueError path is a caller bug, not a
    # deprecated-but-working call, and must not also emit the warning
    if session is not None:
        raise ValueError("pass either session= or the deprecated use_engine=, not both")
    warnings.warn(
        f"{caller}: the use_engine= keyword is deprecated; pass "
        f'session=ExperimentSession(backend="engine"/"naive") instead',
        DeprecationWarning,
        stacklevel=3,
    )
    return default_session() if use_engine else naive_session()
