"""The :class:`ExperimentSession`: one owner for all engine state.

Before this module, every entry point threaded engine state by hand:
checkers took ``use_engine=`` flags and built a throwaway
:class:`~repro.core.engine.sweep.EngineState` per call, the congestion
harness built its own, ``measure_stretch`` another, broadcast cached one
privately.  A session centralizes that: it owns a bounded cache of
per-graph engine states (index maps, component caches, memoized decision
tables) plus per-(graph, scheme) traffic engines, and it decides the
*backend* — ``"engine"`` (the fast indexed path) or ``"naive"`` (the
hop-by-hop reference simulator, kept for differential testing).

Consumers accept ``session=``; the legacy ``use_engine=`` keyword is
still accepted everywhere it existed, but it now merely resolves to a
session (with a :class:`DeprecationWarning`) via
:func:`resolve_session`.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict

import networkx as nx

from ..core.engine.sweep import EngineState

#: cached engine states / traffic engines per session (FIFO eviction)
STATE_CACHE_LIMIT = 16

_BACKENDS = ("engine", "naive")


def _fingerprint(graph: nx.Graph) -> tuple:
    """Node/edge identity of a graph — catches in-place mutation.

    The O(n + m) hash is negligible next to any sweep it guards, and it
    means a session never serves stale index maps for a graph that was
    rewired between calls (same discipline as ``TouringBroadcast``).
    """
    return (
        frozenset(graph.nodes),
        frozenset(frozenset(link) for link in graph.edges),
    )


class ExperimentSession:
    """Owns engine state for a series of experiments.

    ``backend="engine"`` routes every consumer through the fast indexed
    engine with caches shared across calls; ``backend="naive"`` selects
    the reference hop-by-hop paths (identical verdicts, no caching) —
    the surface the differential tests compare against.  ``processes``
    is the default fan-out for grid sweeps that support it.
    """

    def __init__(self, backend: str = "engine", processes: int = 1):
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        self.backend = backend
        self.processes = processes
        self._states: OrderedDict[int, tuple[tuple, EngineState]] = OrderedDict()
        self._traffic: OrderedDict[tuple, object] = OrderedDict()

    @property
    def use_engine(self) -> bool:
        """Does this session run on the fast engine backend?"""
        return self.backend == "engine"

    # -- state ownership ---------------------------------------------------

    def state(self, graph: nx.Graph) -> EngineState:
        """The session's engine state for ``graph`` (built once, cached).

        Keyed by graph object identity *and* its node/edge fingerprint;
        a mutated graph is re-indexed, and a bounded FIFO keeps sessions
        that sweep many graphs from pinning every index ever built.
        """
        key = id(graph)
        fingerprint = _fingerprint(graph)
        cached = self._states.get(key)
        if cached is not None and cached[0] == fingerprint and cached[1].graph is graph:
            return cached[1]
        state = EngineState(graph)
        while len(self._states) >= STATE_CACHE_LIMIT:
            self._states.popitem(last=False)
        self._states[key] = (fingerprint, state)
        return state

    def traffic_engine(self, graph: nx.Graph, algorithm) -> object:
        """A :class:`~repro.traffic.load.TrafficEngine` on session state.

        Cached per (graph, algorithm instance): repeated sweeps over the
        same pair reuse built patterns and decision tables.
        """
        from ..traffic.load import TrafficEngine

        # self.state() re-indexes a mutated graph; comparing the cached
        # engine's state to the current one inherits that staleness check
        state = self.state(graph)
        key = (id(graph), id(algorithm))
        cached = self._traffic.get(key)
        if cached is not None and cached.state is state and cached.algorithm is algorithm:
            return cached
        engine = TrafficEngine(state, algorithm)
        while len(self._traffic) >= STATE_CACHE_LIMIT:
            self._traffic.popitem(last=False)
        self._traffic[key] = engine
        return engine

    def clear(self) -> None:
        """Drop every cached state and traffic engine."""
        self._states.clear()
        self._traffic.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExperimentSession(backend={self.backend!r}, processes={self.processes}, "
            f"states={len(self._states)})"
        )


_DEFAULT_SESSION: ExperimentSession | None = None
_NAIVE_SESSION: ExperimentSession | None = None


def default_session() -> ExperimentSession:
    """The process-wide engine-backend session.

    Entry points called without an explicit session share this one, so
    back-to-back checks on the same graph reuse its index maps and
    component caches instead of rebuilding them per call.  The cost of
    that reuse is retention: up to :data:`STATE_CACHE_LIMIT` graphs'
    engine states (and their mask-partition caches) stay alive for the
    process lifetime.  Long-lived processes sweeping many large graphs
    should use a scoped ``ExperimentSession()`` instead — or call
    ``default_session().clear()`` to release everything at once.
    """
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = ExperimentSession(backend="engine")
    return _DEFAULT_SESSION


def naive_session() -> ExperimentSession:
    """The shared naive-backend session (reference paths, no caching)."""
    global _NAIVE_SESSION
    if _NAIVE_SESSION is None:
        _NAIVE_SESSION = ExperimentSession(backend="naive")
    return _NAIVE_SESSION


def resolve_session(
    session: ExperimentSession | None = None,
    use_engine: bool | None = None,
    caller: str = "this function",
) -> ExperimentSession:
    """Back-compat shim: turn the legacy ``use_engine=`` flag into a session.

    * both ``None`` — the shared engine-backend :func:`default_session`;
    * ``session`` given — used as-is (``use_engine`` must then be absent);
    * ``use_engine`` given — emits a :class:`DeprecationWarning` and
      resolves to the shared session of the matching backend, so old
      call sites keep their exact semantics.
    """
    if use_engine is None:
        return session if session is not None else default_session()
    warnings.warn(
        f"{caller}: the use_engine= keyword is deprecated; pass "
        f'session=ExperimentSession(backend="engine"/"naive") instead',
        DeprecationWarning,
        stacklevel=3,
    )
    if session is not None:
        raise ValueError("pass either session= or the deprecated use_engine=, not both")
    return default_session() if use_engine else naive_session()
