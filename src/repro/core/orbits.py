"""Relevant neighbours and orbits (Definitions 2, 3; Corollary 8).

The paper's impossibility proofs lean on structural necessities of
perfectly resilient patterns, developed in Appendix X:

* **Definition 2 (relevant neighbour)**: a neighbour ``j`` of ``i`` is
  relevant for routing to ``t`` under failure set ``F`` iff ``t`` stays
  reachable from ``i`` when, in addition to ``F``, all links incident to
  ``i``'s *other* surviving neighbours fail — i.e. ``j`` alone may have
  to relay the packet.

* **Definition 3 (orbit)**: neighbours are in the same orbit of
  ``π_i(·, F)`` when iterating in-port → out-port reaches one from the
  other.

* **Corollary 8 (= [2, Lemma 3.1])**: in a perfectly resilient pattern,
  all relevant neighbours of a node lie in one orbit whenever at most
  ``k - 2`` of their links to the node have failed.

These tools power the adaptive adversaries and are exposed for analysis:
:func:`corollary8_violation` hunts for a (node, failure set) pair where a
pattern separates relevant neighbours into different orbits — a
certificate that the pattern cannot be perfectly resilient.
"""

from __future__ import annotations

from itertools import combinations

import networkx as nx

from ..graphs.connectivity import are_connected
from ..graphs.edges import FailureSet, Node, edge
from .model import ForwardingPattern, LocalView


def relevant_neighbors(
    graph: nx.Graph, node: Node, destination: Node, failures: FailureSet = frozenset()
) -> list[Node]:
    """Definition 2: the neighbours that may be ``node``'s only relay to t."""
    local = frozenset(e for e in failures if node in e)
    alive = [
        neighbor
        for neighbor in graph.neighbors(node)
        if edge(node, neighbor) not in local
    ]
    relevant = []
    for candidate in alive:
        blocked = set(failures)
        for other in alive:
            if other == candidate:
                continue
            blocked.update(edge(other, x) for x in graph.neighbors(other))
        if are_connected(graph, node, destination, frozenset(blocked)):
            relevant.append(candidate)
    return sorted(relevant, key=repr)


def orbit_of(
    graph: nx.Graph,
    pattern: ForwardingPattern,
    node: Node,
    start: Node,
    failures: FailureSet = frozenset(),
) -> list[Node]:
    """Definition 3: out-ports reached by iterating from in-port ``start``."""
    local = frozenset(e for e in failures if node in e)
    alive = tuple(
        sorted(
            (
                neighbor
                for neighbor in graph.neighbors(node)
                if edge(node, neighbor) not in local
            ),
            key=repr,
        )
    )
    outputs: list[Node] = []
    current = start
    for _ in range(len(alive) + 1):
        view = LocalView(node=node, inport=current, alive=alive, failed_links=local)
        out = pattern.forward(view)
        if out is None or out not in alive or out in outputs:
            break
        outputs.append(out)
        current = out
    return outputs


def same_orbit(
    graph: nx.Graph,
    pattern: ForwardingPattern,
    node: Node,
    first: Node,
    second: Node,
    failures: FailureSet = frozenset(),
) -> bool:
    """Are two neighbours in the same orbit of ``π_node(·, F)``?

    Definition 3 quantifies over *all* pairs of the set, so orbit
    membership is mutual: each must be reachable from the other by
    iterating the forwarding function.
    """
    if first == second:
        return True
    return second in orbit_of(graph, pattern, node, first, failures) and first in orbit_of(
        graph, pattern, node, second, failures
    )


def corollary8_violation(
    graph: nx.Graph,
    pattern: ForwardingPattern,
    destination: Node,
    source: Node | None = None,
    max_extra_failures: int = 2,
) -> tuple[Node, FailureSet, Node, Node] | None:
    """Hunt for a Corollary 8 certificate against a pattern.

    Searches nodes ``i ∉ {s, t}`` and failure sets built from ``i``'s
    incident links (up to ``max_extra_failures`` of them beyond the
    mandatory ones): if two relevant neighbours of ``i`` fall into
    different orbits, the pattern cannot be perfectly resilient; returns
    ``(node, failures, a, b)``.

    The corollary's hypothesis requires ``i`` to be disconnected from the
    source and the destination (the K7 proof: "... as long as v2 has at
    least two relevant neighbours, with v2 not being connected to s, t"),
    so the search only considers failure sets that kill ``i``'s links to
    both endpoints.
    """
    for node in sorted(graph.nodes, key=repr):
        if node == destination or node == source:
            continue
        mandatory = set()
        if graph.has_edge(node, destination):
            mandatory.add(edge(node, destination))
        if source is not None and graph.has_edge(node, source):
            mandatory.add(edge(node, source))
        incident = [
            edge(node, neighbor)
            for neighbor in graph.neighbors(node)
            if edge(node, neighbor) not in mandatory
        ]
        for size in range(min(max_extra_failures, len(incident)) + 1):
            for combo in combinations(sorted(incident), size):
                failures = frozenset(set(combo) | mandatory)
                relevant = relevant_neighbors(graph, node, destination, failures)
                if source is not None and source in relevant:
                    continue
                if len(relevant) < 2:
                    continue
                for a, b in combinations(relevant, 2):
                    if not same_orbit(graph, pattern, node, a, b, failures):
                        return node, failures, a, b
    return None
