"""Resilience checkers: perfect resilience, r-tolerance, touring.

A forwarding pattern is *r-resilient* if it delivers under every failure
set of size at most r that keeps source and destination connected, and
*perfectly resilient* if it is ∞-resilient (§II).  *r-tolerance*
(Definition 1) instead promises that s and t remain r-(link-)connected.

For small graphs the checkers enumerate **all** failure sets (the paper's
gadgets have ≤ 16 links, so exhaustive checking is exact); larger graphs
use structured plus uniformly random samples.  Checkers always skip
failure sets that break the respective promise.

Checkers run on the fast engine (:mod:`repro.core.engine`) by default:
integer-indexed networks, memoized ``(node, inport, local mask)``
forwarding decisions, and a component cache shared across the whole
destination × failure-set grid.  Engine state is owned by an
:class:`~repro.experiments.session.ExperimentSession` — pass ``session=``
to share index maps and caches across calls; the default is the shared
:func:`~repro.experiments.session.default_session`.  A session with
``backend="naive"`` selects the hop-by-hop reference path (same
verdicts) — kept for differential testing and the speedup benchmarks;
the legacy ``use_engine=`` keyword is still accepted and resolves to
the matching session backend with a :class:`DeprecationWarning`.
``processes`` fans independent destinations/pairs out across forked
workers.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from itertools import combinations

import networkx as nx

from ..graphs.connectivity import component_of, st_edge_connectivity
from ..graphs.edges import Edge, FailureSet, Node, edge, edge_sort_key, sorted_nodes
from .model import (
    DestinationAlgorithm,
    ForwardingPattern,
    SourceDestinationAlgorithm,
    TouringAlgorithm,
)
from .simulator import Network, Outcome, RouteResult, route, tours_component

#: exhaustively enumerate failure sets up to this many links
EXHAUSTIVE_LINK_LIMIT = 17

#: the default enumeration's (max_failures, samples, seed) — the ONE
#: definition every surface (naive checkers, scalar engine sweeps, the
#: vectorized mask batches) resolves, so all backends face the
#: identical scenario family
DEFAULT_FAILURE_PARAMS: tuple[int | None, int, int] = (None, 400, 0)


@dataclass
class Counterexample:
    """A failure scenario on which a pattern fails."""

    source: Node | None
    destination: Node | None
    failures: FailureSet
    result: RouteResult | None
    note: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        outcome = self.result.outcome.value if self.result else "tour failure"
        return (
            f"{outcome} for s={self.source!r}, t={self.destination!r}, "
            f"|F|={len(self.failures)}: {sorted(self.failures)}"
        )


@dataclass
class Verdict:
    """Outcome of a resilience check."""

    resilient: bool
    scenarios_checked: int
    counterexample: Counterexample | None = None
    exhaustive: bool = False

    def __bool__(self) -> bool:
        return self.resilient


def all_failure_sets(graph: nx.Graph, max_failures: int | None = None) -> Iterator[FailureSet]:
    """All failure sets of the graph, smallest first."""
    links = sorted((edge(u, v) for u, v in graph.edges), key=edge_sort_key)
    limit = len(links) if max_failures is None else min(max_failures, len(links))
    for size in range(limit + 1):
        for combo in combinations(links, size):
            yield frozenset(combo)


def sampled_failure_sets(
    graph: nx.Graph,
    samples: int = 400,
    max_failures: int | None = None,
    seed: int = 0,
) -> Iterator[FailureSet]:
    """Random failure sets: for each sample, a uniform size then subset.

    Always starts with the empty set and all singletons, so trivial bugs
    surface deterministically.
    """
    links = sorted((edge(u, v) for u, v in graph.edges), key=edge_sort_key)
    limit = len(links) if max_failures is None else min(max_failures, len(links))
    yield frozenset()
    for link in links:
        yield frozenset([link])
    rng = random.Random(seed)
    for _ in range(samples):
        size = rng.randint(0, limit)
        yield frozenset(rng.sample(links, size))


def default_failure_sets(
    graph: nx.Graph,
    max_failures: int | None = DEFAULT_FAILURE_PARAMS[0],
    samples: int = DEFAULT_FAILURE_PARAMS[1],
    seed: int = DEFAULT_FAILURE_PARAMS[2],
) -> tuple[Iterator[FailureSet], bool]:
    """Exhaustive enumeration when feasible, else sampling.

    Returns the iterator and whether it is exhaustive.
    """
    if graph.number_of_edges() <= EXHAUSTIVE_LINK_LIMIT:
        return all_failure_sets(graph, max_failures), True
    return sampled_failure_sets(graph, samples=samples, max_failures=max_failures, seed=seed), False


# ---------------------------------------------------------------------------
# Perfect resilience.
# ---------------------------------------------------------------------------


def check_pattern_resilience(
    graph: nx.Graph,
    pattern: ForwardingPattern,
    destination: Node,
    sources: Iterable[Node] | None = None,
    failure_sets: Iterable[FailureSet] | None = None,
    use_engine: bool | None = None,
    session=None,
) -> Verdict:
    """Check one concrete pattern: every connected source must be served.

    This is the §II definition specialized to a fixed destination (and
    optionally a fixed source, for the source-destination model).
    """
    from ..experiments.session import resolve_session

    session = resolve_session(session, use_engine, caller="check_pattern_resilience")
    if session.use_engine:
        from .engine.sweep import sweep_pattern_resilience

        return sweep_pattern_resilience(
            session.state(graph),
            pattern,
            destination,
            sources=sources,
            failure_sets=failure_sets,
            backend=session.backend,
        )
    network = Network(graph)
    failure_iter, exhaustive = (
        (failure_sets, False) if failure_sets is not None else default_failure_sets(graph)
    )
    wanted = None if sources is None else set(sources)
    checked = 0
    for failures in failure_iter:
        # sorted: deterministic counterexamples, matching the engine path
        component = sorted_nodes(component_of(graph, destination, failures))
        for source in component:
            if source == destination or (wanted is not None and source not in wanted):
                continue
            checked += 1
            result = route(network, pattern, source, destination, failures)
            if not result.delivered:
                return Verdict(
                    False,
                    checked,
                    Counterexample(source, destination, failures, result),
                    exhaustive,
                )
    return Verdict(True, checked, exhaustive=exhaustive)


def check_perfect_resilience_source_destination(
    graph: nx.Graph,
    algorithm: SourceDestinationAlgorithm,
    pairs: Iterable[tuple[Node, Node]] | None = None,
    failure_sets: Iterable[FailureSet] | None = None,
    use_engine: bool | None = None,
    processes: int | None = None,
    session=None,
) -> Verdict:
    """Is the algorithm perfectly resilient on ``graph`` in the π^{s,t} model?"""
    from ..experiments.session import resolve_session

    session = resolve_session(
        session, use_engine, caller="check_perfect_resilience_source_destination"
    )
    if session.use_engine:
        from .engine.sweep import ScenarioGrid, sweep_resilience

        grid = ScenarioGrid(pairs=pairs, failure_sets=failure_sets)
        return sweep_resilience(
            graph,
            algorithm,
            grid,
            processes=_effective_processes(processes, session),
            state=session.state(graph),
            backend=session.backend,
        ).verdict
    nodes = list(graph.nodes)
    if pairs is None:
        pairs = [(s, t) for t in nodes for s in nodes if s != t]
    total = 0
    exhaustive = True
    materialized = list(failure_sets) if failure_sets is not None else None
    for source, destination in pairs:
        pattern = algorithm.build(graph, source, destination)
        verdict = check_pattern_resilience(
            graph, pattern, destination, sources=[source], failure_sets=materialized,
            session=session,
        )
        total += verdict.scenarios_checked
        exhaustive = exhaustive and (verdict.exhaustive or materialized is not None)
        if not verdict.resilient:
            verdict.scenarios_checked = total
            return verdict
    return Verdict(True, total, exhaustive=exhaustive and materialized is None)


def check_perfect_resilience_destination(
    graph: nx.Graph,
    algorithm: DestinationAlgorithm,
    destinations: Iterable[Node] | None = None,
    failure_sets: Iterable[FailureSet] | None = None,
    use_engine: bool | None = None,
    processes: int | None = None,
    session=None,
) -> Verdict:
    """Is the algorithm perfectly resilient on ``graph`` in the π^t model?

    Every node of the destination's surviving component must be served,
    whatever the source (§II).
    """
    from ..experiments.session import resolve_session

    session = resolve_session(session, use_engine, caller="check_perfect_resilience_destination")
    if session.use_engine:
        from .engine.sweep import ScenarioGrid, sweep_resilience

        grid = ScenarioGrid(destinations=destinations, failure_sets=failure_sets)
        return sweep_resilience(
            graph,
            algorithm,
            grid,
            processes=_effective_processes(processes, session),
            state=session.state(graph),
            backend=session.backend,
        ).verdict
    nodes = list(destinations) if destinations is not None else list(graph.nodes)
    total = 0
    exhaustive = True
    materialized = list(failure_sets) if failure_sets is not None else None
    for destination in nodes:
        pattern = algorithm.build(graph, destination)
        verdict = check_pattern_resilience(
            graph, pattern, destination, failure_sets=materialized, session=session
        )
        total += verdict.scenarios_checked
        exhaustive = exhaustive and verdict.exhaustive
        if not verdict.resilient:
            verdict.scenarios_checked = total
            return verdict
    return Verdict(True, total, exhaustive=exhaustive and materialized is None)


# ---------------------------------------------------------------------------
# r-tolerance (Definition 1).
# ---------------------------------------------------------------------------


def check_r_tolerance(
    graph: nx.Graph,
    algorithm: SourceDestinationAlgorithm,
    source: Node,
    destination: Node,
    r: int,
    failure_sets: Iterable[FailureSet] | None = None,
    use_engine: bool | None = None,
    session=None,
) -> Verdict:
    """Is the pattern r-tolerant for (source, destination) on ``graph``?

    Only failure sets under which s and t remain r-connected count
    (Definition 1); everything else is vacuously fine.
    """
    from ..experiments.session import resolve_session

    session = resolve_session(session, use_engine, caller="check_r_tolerance")
    pattern = algorithm.build(graph, source, destination)
    failure_iter, exhaustive = (
        (failure_sets, False) if failure_sets is not None else default_failure_sets(graph)
    )
    if session.backend == "numpy":
        # batch the r-connected scenarios through the vectorized walker,
        # one bounded buffer at a time: the (expensive, per-set)
        # connectivity filter stays lazy, so a pattern that fails early
        # never pays for filtering the whole enumeration — the scalar
        # path's short-circuit, kept.  Gate on vectorizability first and
        # never run the filter twice.
        from .engine.vectorized import VectorizedUnsupported, delivered_flags, vectorizable

        state = session.state(graph)
        if vectorizable(state.network):
            memo = state.memoized(pattern)
            checked = 0

            def check_buffer(buffer: list) -> Verdict | None:
                nonlocal checked
                try:
                    flags = delivered_flags(state, memo, source, destination, buffer)
                except VectorizedUnsupported as unsupported:
                    # rare late fallback (e.g. table budget): walk the
                    # already-filtered buffer scalar, no second filter
                    from repro import obs as _obs

                    telemetry = _obs.active()
                    if telemetry is not None:
                        telemetry.count(
                            "repro_numpy_fallbacks_total",
                            help="vectorized attempts that fell back to the scalar engine",
                            site="tolerance",
                            reason=unsupported.reason,
                        )
                    flags = None
                for position, failures in enumerate(buffer):
                    checked += 1
                    if flags is not None and flags[position]:
                        continue
                    result = state.route(memo, source, destination, failures)
                    if not result.delivered:
                        return Verdict(
                            False,
                            checked,
                            Counterexample(
                                source, destination, failures, result, note=f"r={r}"
                            ),
                            exhaustive,
                        )
                return None

            buffer: list = []
            for failures in failure_iter:
                if st_edge_connectivity(graph, source, destination, failures, stop_at=r) < r:
                    continue
                buffer.append(failures)
                if len(buffer) >= 256:
                    verdict = check_buffer(buffer)
                    if verdict is not None:
                        return verdict
                    buffer = []
            if buffer:
                verdict = check_buffer(buffer)
                if verdict is not None:
                    return verdict
            return Verdict(True, checked, exhaustive=exhaustive)
    if session.use_engine:
        state = session.state(graph)
        memo = state.memoized(pattern)
        simulate = lambda failures: state.route(memo, source, destination, failures)  # noqa: E731
    else:
        network = Network(graph)
        simulate = lambda failures: route(  # noqa: E731
            network, pattern, source, destination, failures
        )
    checked = 0
    for failures in failure_iter:
        if st_edge_connectivity(graph, source, destination, failures, stop_at=r) < r:
            continue
        checked += 1
        result = simulate(failures)
        if not result.delivered:
            return Verdict(
                False,
                checked,
                Counterexample(source, destination, failures, result, note=f"r={r}"),
                exhaustive,
            )
    return Verdict(True, checked, exhaustive=exhaustive)


# ---------------------------------------------------------------------------
# Touring (§VII).
# ---------------------------------------------------------------------------


def check_perfect_touring(
    graph: nx.Graph,
    algorithm: TouringAlgorithm,
    starts: Iterable[Node] | None = None,
    failure_sets: Iterable[FailureSet] | None = None,
    use_engine: bool | None = None,
    session=None,
) -> Verdict:
    """Does the π^∀ pattern tour every component under every failure set?"""
    from ..experiments.session import resolve_session

    session = resolve_session(session, use_engine, caller="check_perfect_touring")
    if session.use_engine:
        from .engine.sweep import ScenarioGrid, sweep_resilience

        grid = ScenarioGrid(sources=starts, failure_sets=failure_sets)
        return sweep_resilience(
            graph, algorithm, grid, state=session.state(graph), backend=session.backend
        ).verdict
    network = Network(graph)
    pattern = algorithm.build(graph)
    failure_iter, exhaustive = (
        (failure_sets, False) if failure_sets is not None else default_failure_sets(graph)
    )
    start_nodes = list(starts) if starts is not None else list(graph.nodes)
    checked = 0
    for failures in failure_iter:
        for start in start_nodes:
            checked += 1
            if not tours_component(network, pattern, start, failures):
                return Verdict(
                    False,
                    checked,
                    Counterexample(start, None, failures, None, note="tour does not cover component"),
                    exhaustive,
                )
    return Verdict(True, checked, exhaustive=exhaustive)


def check_ideal_resilience(
    graph: nx.Graph,
    algorithm: DestinationAlgorithm,
    destinations: Iterable[Node] | None = None,
    k: int | None = None,
    use_engine: bool | None = None,
    session=None,
) -> Verdict:
    """Ideal resilience (§I.B.1, Chiesa et al.): survive k-1 failures.

    Defined for k-connected graphs: the pattern must deliver under every
    failure set of size at most ``k - 1`` (such failures can never
    disconnect the graph).  Weaker than perfect resilience: a perfectly
    resilient pattern is ideally resilient, not vice versa.
    """
    from ..experiments.session import resolve_session
    from ..graphs.connectivity import global_edge_connectivity

    session = resolve_session(session, use_engine, caller="check_ideal_resilience")
    if k is None:
        k = global_edge_connectivity(graph)
    if k < 1:
        raise ValueError("ideal resilience needs a connected graph")
    nodes = list(destinations) if destinations is not None else list(graph.nodes)
    state = None
    if session.use_engine:
        from .engine.sweep import sweep_pattern_resilience

        state = session.state(graph)
    total = 0
    for destination in nodes:
        pattern = algorithm.build(graph, destination)
        if state is not None:
            verdict = sweep_pattern_resilience(
                state, pattern, destination,
                failure_sets=all_failure_sets(graph, max_failures=k - 1),
                backend=session.backend,
            )
        else:
            verdict = check_pattern_resilience(
                graph,
                pattern,
                destination,
                failure_sets=all_failure_sets(graph, max_failures=k - 1),
                session=session,
            )
        total += verdict.scenarios_checked
        if not verdict.resilient:
            verdict.scenarios_checked = total
            return verdict
    return Verdict(True, total, exhaustive=True)


def check_k_resilient_touring(
    graph: nx.Graph,
    algorithm: TouringAlgorithm,
    max_failures: int,
    starts: Iterable[Node] | None = None,
    failure_sets: Iterable[FailureSet] | None = None,
    use_engine: bool | None = None,
    session=None,
) -> Verdict:
    """k-resilient touring: tours must survive every |F| <= max_failures."""
    if failure_sets is None:
        # exhaustive up to the size cap when the count is tractable
        count = _binomial_prefix(graph.number_of_edges(), max_failures)
        if count <= 200_000:
            failure_sets = all_failure_sets(graph, max_failures)
        else:
            failure_sets = sampled_failure_sets(graph, samples=500, max_failures=max_failures)
    return check_perfect_touring(
        graph,
        algorithm,
        starts=starts,
        failure_sets=failure_sets,
        use_engine=use_engine,
        session=session,
    )


def _binomial_prefix(n: int, k: int) -> int:
    from math import comb

    return sum(comb(n, size) for size in range(min(k, n) + 1))


def _effective_processes(processes: int | None, session) -> int:
    """Explicit ``processes`` wins; the ``None`` default defers to the session."""
    return session.processes if processes is None else processes
