"""Algorithm 1: perfectly resilient source-destination routing on K5 (Thm 8).

The paper's Algorithm 1, verbatim logic:

1. if the link to the destination is alive, deliver;
2. at the source, explore the alive neighbours ``u < v < w`` in the fixed
   order the algorithm prescribes (which neighbour is next depends only on
   the in-port);
3. at any other node: a packet fresh from the source goes to the lowest-ID
   other neighbour; otherwise to a reachable neighbour that is neither the
   in-port nor the source; otherwise back to the source; otherwise bounce.

Correct for every graph on at most five nodes (hence for ``K5`` and all
its minors, [2, Cor 4.2]), verified exhaustively by the test suite over
all failure sets and all (s, t) pairs.
"""

from __future__ import annotations

import networkx as nx

from ...graphs.edges import Node
from ..model import ForwardingPattern, LocalView, SourceDestinationAlgorithm


class _Algorithm1Pattern(ForwardingPattern):
    def __init__(self, source: Node, destination: Node):
        self._source = source
        self._destination = destination

    def forward(self, view: LocalView) -> Node | None:
        source, destination = self._source, self._destination
        alive = view.alive_set
        if destination in alive:  # line 1-2
            return destination
        if view.node == source:
            return self._forward_at_source(view)
        if view.inport == source:  # line 14
            others = view.alive_without(source, destination)
            if others:
                return others[0]
            return source if source in alive else None
        others = view.alive_without(source, destination, view.inport)  # line 15
        if others:
            return others[0]
        if source in alive:  # line 16
            return source
        return view.inport if view.inport in alive else None  # line 17

    def _forward_at_source(self, view: LocalView) -> Node | None:
        reachable = view.alive_without(self._destination)
        if not reachable:
            return view.inport if view.inport in view.alive_set else None
        if len(reachable) == 1:  # line 4-5
            return reachable[0]
        if len(reachable) == 2:  # line 6-8
            low, high = reachable
            return low if view.inport is None else high
        low, mid, high = reachable  # line 9-12: u < v < w
        if view.inport is None:
            return low
        if view.inport == high:
            return mid
        return high


class K5SourceRouting(SourceDestinationAlgorithm):
    """Algorithm 1 — any graph on at most five nodes (Theorem 8)."""

    name = "Algorithm 1 (K5, source-destination)"

    def supports(self, graph: nx.Graph, source: Node, destination: Node) -> bool:
        return graph.number_of_nodes() <= 5

    def build(self, graph: nx.Graph, source: Node, destination: Node) -> ForwardingPattern:
        if graph.number_of_nodes() > 5:
            raise ValueError("Algorithm 1 applies to graphs with at most five nodes")
        return _Algorithm1Pattern(source, destination)
