"""Destination-based routing on ``K5^-2`` and its minors (Theorem 12).

Case analysis of the paper's proof, on any graph with at most five nodes:

* if ``G - t`` is outerplanar (the destination lost at most one link),
  Corollary 5 applies: tour ``G - t`` and deliver on sight;
* otherwise ``G - t`` is the ``K4`` (the only non-outerplanar graph on
  four nodes) and the destination kept exactly two neighbours
  ``v1, v2`` — route with the explicit Fig. 4 table, which guarantees the
  walk visits *both* ``v1`` and ``v2`` in every surviving component;
* a degree-one destination behind a relay falls back to the two-stage
  tour (shared with Theorem 13).

Notes on Fig. 4 (both repairs verified exhaustively by the test suite):

* the published row ``@v4 ⊥: v1, v2, v4`` lists ``v4`` itself, which
  cannot be an out-port of ``v4``; we read it as ``v3`` (typo);
* the published row ``@v2 ⊥: v1, v3, v4`` loops when the links
  ``(v1,v2)`` and ``(v1,v3)`` fail: the walk cycles ``v2-v3-v4-v2`` and
  never reaches ``v1`` through the surviving link ``(v4,v1)``.
  Exhaustive search over priority tables shows ``@v2 ⊥: v1, v4, v3`` is
  the (unique single-row) repair.
"""

from __future__ import annotations

import networkx as nx

from ...graphs.edges import Node
from ...graphs.planarity import is_outerplanar
from ..model import DestinationAlgorithm, ForwardingPattern
from ..tables import ORIGIN, PriorityTable
from .outerplanar import TourToDestination, TwoStageTour

#: Fig. 4 — visit both neighbours (v1, v2) of t inside the K4 {v1..v4}.
_FIG4 = {
    "v1": {ORIGIN: ("v2", "v3", "v4"), "v3": ("v2", "v4", "v3"), "v4": ("v2", "v3", "v4")},
    "v2": {ORIGIN: ("v1", "v4", "v3"), "v3": ("v1", "v4", "v3"), "v4": ("v1", "v3", "v4")},
    "v3": {
        ORIGIN: ("v2", "v1", "v4"),
        "v1": ("v2", "v4", "v1"),
        "v2": ("v1", "v4", "v2"),
        "v4": ("v1", "v2", "v4"),
    },
    "v4": {
        ORIGIN: ("v1", "v2", "v3"),
        "v1": ("v2", "v3", "v1"),
        "v2": ("v1", "v3", "v2"),
        "v3": ("v2", "v1", "v3"),
    },
}


def fig4_pattern(graph: nx.Graph, destination: Node) -> ForwardingPattern:
    """The Fig. 4 table for a degree-2 destination attached to a K4."""
    neighbors = sorted(graph.neighbors(destination), key=repr)
    if len(neighbors) != 2:
        raise ValueError("Fig. 4 table needs a degree-2 destination")
    others = sorted((n for n in graph.nodes if n != destination and n not in neighbors), key=repr)
    roles = {
        "v1": neighbors[0],
        "v2": neighbors[1],
        "v3": others[0],
        "v4": others[1],
    }
    rules: dict[Node, dict[Node | None, tuple[Node, ...]]] = {}
    for role, row in _FIG4.items():
        node = roles[role]
        rules[node] = {
            (None if inport is ORIGIN else roles[inport]): tuple(roles[c] for c in candidates)
            for inport, candidates in row.items()
        }
    return PriorityTable(rules=rules, deliver_first=destination, name="Fig. 4 table")


class K5Minus2Routing(DestinationAlgorithm):
    """Theorem 12 — destination-based perfect resilience on ``K5^-2`` minors."""

    name = "K5^-2 routing (Thm 12, destination)"

    def supports(self, graph: nx.Graph, destination: Node) -> bool:
        if graph.number_of_nodes() > 5:
            return False
        try:
            self.build(graph, destination)
        except ValueError:
            return False
        return True

    def build(self, graph: nx.Graph, destination: Node) -> ForwardingPattern:
        if graph.number_of_nodes() > 5:
            raise ValueError("Theorem 12 applies to graphs with at most five nodes")
        without = nx.Graph(graph)
        without.remove_node(destination)
        if is_outerplanar(without):
            return TourToDestination().build(graph, destination)
        degree = graph.degree(destination)
        if degree == 2 and without.number_of_nodes() == 4 and without.number_of_edges() == 6:
            return fig4_pattern(graph, destination)
        two_stage = TwoStageTour()
        if two_stage.supports(graph, destination):
            return two_stage.build(graph, destination)
        raise ValueError(
            "graph is not a minor of K5^-2 for this destination "
            "(Theorem 10 makes denser cases impossible)"
        )
