"""Positive results: the paper's constructive routing algorithms."""

from .arborescence_routing import ArborescenceRouting
from .distance2 import Distance2Algorithm
from .distance3_bipartite import Distance3BipartiteAlgorithm
from .hamiltonian_touring import HamiltonianTouring
from .k33_minus2 import K33Minus2Routing
from .k33_source import K33SourceRouting
from .k5_minus2 import K5Minus2Routing, fig4_pattern
from .k5_source import K5SourceRouting
from .naive import (
    GreedyLowestNeighbor,
    RandomCyclicDestinationOnly,
    RandomCyclicPermutations,
    RandomPortCycles,
)
from .outerplanar import RightHandTouring, TourToDestination, TwoStageTour

__all__ = [
    "ArborescenceRouting",
    "Distance2Algorithm",
    "Distance3BipartiteAlgorithm",
    "GreedyLowestNeighbor",
    "HamiltonianTouring",
    "K33Minus2Routing",
    "K33SourceRouting",
    "K5Minus2Routing",
    "K5SourceRouting",
    "RandomCyclicDestinationOnly",
    "RandomCyclicPermutations",
    "RandomPortCycles",
    "RightHandTouring",
    "TourToDestination",
    "TwoStageTour",
    "fig4_pattern",
]
