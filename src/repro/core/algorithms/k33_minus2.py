"""Destination-based routing on ``K3,3^-2`` and its minors (Theorem 13).

The paper's proof splits on the destination's lost links:

* zero or one lost link: ``G - t`` is a proper subgraph of ``K2,3`` and
  hence outerplanar — Corollary 5 tours it and delivers on sight;
* two lost links: the destination keeps a single neighbour ``v6``; the
  graph without ``t`` and ``v6`` is (a subgraph of) the outerplanar
  ``K2,2`` — tour it, deliver to ``v6`` first and to ``t`` from ``v6``
  (the :class:`~repro.core.algorithms.outerplanar.TwoStageTour`).

The dispatcher below accepts any graph for which one of the two cases
applies, which covers every minor of ``K3,3^-2`` ([2, Thm 4.3] transfers
the pattern; structurally each minor lands in one of the cases).
"""

from __future__ import annotations

import networkx as nx

from ...graphs.edges import Node
from ...graphs.planarity import is_outerplanar
from ..model import DestinationAlgorithm, ForwardingPattern
from .outerplanar import TourToDestination, TwoStageTour


class K33Minus2Routing(DestinationAlgorithm):
    """Theorem 13 — destination-based perfect resilience on ``K3,3^-2`` minors."""

    name = "K3,3^-2 routing (Thm 13, destination)"

    def supports(self, graph: nx.Graph, destination: Node) -> bool:
        try:
            self.build(graph, destination)
        except ValueError:
            return False
        return True

    def build(self, graph: nx.Graph, destination: Node) -> ForwardingPattern:
        if graph.number_of_nodes() > 6:
            raise ValueError("Theorem 13 applies to graphs with at most six nodes")
        without = nx.Graph(graph)
        without.remove_node(destination)
        if is_outerplanar(without):
            return TourToDestination().build(graph, destination)
        two_stage = TwoStageTour()
        if two_stage.supports(graph, destination):
            return two_stage.build(graph, destination)
        raise ValueError(
            "graph is not a minor of K3,3^-2 for this destination "
            "(Theorem 11 makes denser cases impossible)"
        )
