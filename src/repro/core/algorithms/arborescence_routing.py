"""Arborescence failover routing (Chiesa et al. baseline).

The paper's related-work foil: decompose a k-connected graph into k
arc-disjoint spanning in-arborescences rooted at the destination [40]-[43]
and, on hitting a failure, switch circularly to the next arborescence.
This provides *ideal resilience*-style guarantees on k-connected graphs
(tolerating k-1 failures on complete graphs, [48 §B.2-B.3]) but — unlike
perfect resilience — promises nothing when more links fail.

The packet's current arborescence is identified locally from the in-port:
arborescences are arc-disjoint, so a directed arrival arc belongs to at
most one of them.
"""

from __future__ import annotations

import networkx as nx

from ...graphs.arborescences import arc_disjoint_in_arborescences
from ...graphs.edges import Node
from ..model import DestinationAlgorithm, ForwardingPattern, LocalView


class _ArborescencePattern(ForwardingPattern):
    def __init__(self, trees: list[dict[Node, Node]], root: Node):
        self._trees = trees
        self._root = root
        self._tree_of_arc: dict[tuple[Node, Node], int] = {}
        for index, parent in enumerate(trees):
            for child, ancestor in parent.items():
                self._tree_of_arc[(child, ancestor)] = index

    def forward(self, view: LocalView) -> Node | None:
        if view.node == self._root:
            return view.inport if view.inport in view.alive_set else None
        if view.inport is None:
            current = 0
        else:
            current = self._tree_of_arc.get((view.inport, view.node), 0)
        alive = view.alive_set
        count = len(self._trees)
        for offset in range(count):
            index = (current + offset) % count
            parent = self._trees[index].get(view.node)
            if parent is not None and parent in alive:
                return parent
        return None


class ArborescenceRouting(DestinationAlgorithm):
    """Circular-arborescence failover routing toward the destination."""

    name = "circular arborescence routing (Chiesa baseline)"

    def __init__(self, k: int | None = None):
        self._k = k

    def build(self, graph: nx.Graph, destination: Node) -> ForwardingPattern:
        trees = arc_disjoint_in_arborescences(graph, destination, k=self._k)
        return _ArborescencePattern(trees, destination)
