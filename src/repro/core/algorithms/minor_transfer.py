"""Transferring perfectly resilient patterns to minors ([2, §4]).

The paper repeatedly leans on Foerster et al.'s closure results: if a
graph admits a perfectly resilient pattern, so do all of its minors
(Thms 8/9/12/13 all say "... and its minors"; Corollary 7 is the touring
version).  The two primitive operations are implemented here as *pattern
wrappers*, so that closure is not just a citation but executable code:

* **subgraphs** — a missing link behaves exactly like a permanently
  failed one: the wrapper adds the absent links of the host graph to
  every local failure view before consulting the host pattern;

* **contractions** — the merged node simulates both endpoints of the
  contracted link: a packet arriving at the merged node is walked through
  the two host nodes internally (the contracted link is always "alive")
  until it leaves the pair; every other node translates its view, mapping
  the merged neighbour back to whichever endpoint it was attached to.

Both wrappers work for all three routing models because patterns are pure
functions of the local view.  The test suite validates the machinery by
contracting/deleting its way down from K5 / K3,3 and re-checking perfect
resilience exhaustively on every minor produced.
"""

from __future__ import annotations

import networkx as nx

from ...graphs.edges import Edge, Node, edge
from ..model import ForwardingPattern, LocalView


class SubgraphPattern(ForwardingPattern):
    """Run a host pattern on a spanning subgraph: absent links = failed."""

    def __init__(self, host: nx.Graph, pattern: ForwardingPattern, subgraph: nx.Graph):
        self._pattern = pattern
        self._host_adjacency = {v: set(host.neighbors(v)) for v in host.nodes}
        self._subgraph = subgraph

    def forward(self, view: LocalView) -> Node | None:
        host_neighbors = self._host_adjacency[view.node]
        alive = set(view.alive)
        failed = frozenset(
            edge(view.node, neighbor)
            for neighbor in host_neighbors
            if neighbor not in alive
        )
        translated = LocalView(
            node=view.node,
            inport=view.inport,
            alive=view.alive,
            failed_links=failed,
        )
        out = self._pattern.forward(translated)
        if out is not None and out not in alive:
            return None
        return out


class ContractionPattern(ForwardingPattern):
    """Run a host pattern on ``G / (keep, absorb)``.

    ``absorb`` is merged into ``keep``; the merged node carries the label
    ``keep`` in the minor.  Two ingredients make this sound:

    * the contracted link is treated as always alive, so the merged node
      internally relays the packet between the two host endpoints until
      it leaves the pair (a deterministic internal loop would mean the
      host pattern loops in the host graph — the packet is dropped, which
      can only happen when the host pattern was not perfectly resilient
      for the corresponding host failure set);

    * patterns are *port mappings* (the paper's Corollary 7 remark): a
      neighbour adjacent to **both** endpoints has two host ports into
      the pair but only one minor link, so the contraction fixes a
      canonical host port per neighbour (the one to ``keep`` when it
      exists) and marks the duplicate port as permanently failed — the
      host pattern already knows how to route around failed links.
      Without this rule the merged node could not tell which endpoint an
      incoming packet was aimed at.
    """

    def __init__(self, host: nx.Graph, pattern: ForwardingPattern, keep: Node, absorb: Node):
        if not host.has_edge(keep, absorb):
            raise ValueError(f"({keep!r}, {absorb!r}) is not a link of the host graph")
        self._pattern = pattern
        self._keep = keep
        self._absorb = absorb
        self._adjacency = {v: set(host.neighbors(v)) for v in host.nodes}
        #: canonical host endpoint of each external neighbour of the pair
        self._canonical: dict[Node, Node] = {}
        for neighbor in self._adjacency[keep] | self._adjacency[absorb]:
            if neighbor in (keep, absorb):
                continue
            self._canonical[neighbor] = keep if neighbor in self._adjacency[keep] else absorb

    def _port_alive(self, node: Node, neighbor: Node, minor_alive: set[Node]) -> bool:
        """Is the host port (node, neighbor) alive under the minor view?"""
        pair = {self._keep, self._absorb}
        if node in pair and neighbor in pair:
            return True  # the contracted link itself
        if node in pair:
            # port from inside the pair to an external neighbour
            return self._canonical[neighbor] == node and self._keep_alive(neighbor, minor_alive)
        if neighbor in pair:
            # port from an external node into the pair
            return self._canonical[node] == neighbor and self._keep in minor_alive
        return neighbor in minor_alive

    @staticmethod
    def _keep_alive(neighbor: Node, minor_alive: set[Node]) -> bool:
        return neighbor in minor_alive

    def _host_view(self, node: Node, inport: Node | None, minor_alive: set[Node]) -> LocalView:
        alive = [
            neighbor
            for neighbor in sorted(self._adjacency[node], key=repr)
            if self._port_alive(node, neighbor, minor_alive)
        ]
        failed = frozenset(
            edge(node, neighbor)
            for neighbor in self._adjacency[node]
            if neighbor not in alive
        )
        return LocalView(node=node, inport=inport, alive=tuple(alive), failed_links=failed)

    def forward(self, view: LocalView) -> Node | None:
        pair = {self._keep, self._absorb}
        minor_alive = set(view.alive)
        if view.node == self._keep:
            if view.inport is None:
                node, inport = self._keep, None
            else:
                node, inport = self._canonical[view.inport], view.inport
            seen: set[tuple[Node, Node | None]] = set()
            while True:
                state = (node, inport)
                if state in seen:
                    return None  # host pattern loops inside the pair
                seen.add(state)
                out = self._pattern.forward(self._host_view(node, inport, minor_alive))
                if out is None:
                    return None
                if out in pair and out != node:
                    node, inport = out, node
                    continue
                return out if out in minor_alive else None
        # Ordinary node: the merged neighbour maps to its canonical port.
        inport = view.inport
        if inport == self._keep and view.node in self._canonical:
            inport = self._canonical[view.node]
        out = self._pattern.forward(self._host_view(view.node, inport, minor_alive))
        if out is None:
            return None
        if out in pair:
            return self._keep if self._keep in minor_alive else None
        return out if out in minor_alive else None


def delete_link_with_pattern(
    host: nx.Graph, pattern: ForwardingPattern, u: Node, v: Node
) -> tuple[nx.Graph, ForwardingPattern]:
    """The subgraph operation: remove one link, keep the pattern working."""
    minor = nx.Graph(host)
    minor.remove_edge(u, v)
    return minor, SubgraphPattern(host, pattern, minor)


def contract_link_with_pattern(
    host: nx.Graph, pattern: ForwardingPattern, keep: Node, absorb: Node
) -> tuple[nx.Graph, ForwardingPattern]:
    """The contraction operation: merge ``absorb`` into ``keep``."""
    minor = nx.contracted_nodes(host, keep, absorb, self_loops=False)
    minor = nx.Graph(minor)
    return minor, ContractionPattern(host, pattern, keep, absorb)
