"""k-resilient touring via Hamiltonian decompositions (Theorem 17).

A 2k-connected complete or complete bipartite graph contains ``k``
link-disjoint Hamiltonian cycles (Walecki; Laskar–Auerbach).  The pattern
routes along cycle ``H_1`` until the next link has failed, then switches
to the smallest-index higher cycle with an alive link at the current node.
The current cycle is identified *locally* from the in-port, because every
link belongs to exactly one cycle.  After at most ``k - 1`` failures some
cycle is failure-free; once the walk enters it, it tours all nodes
forever.  The index only ever moves upward and a failure-free cycle is
never skipped (its links are always alive), which is the paper's
convergence argument.
"""

from __future__ import annotations

import networkx as nx

from ...graphs.edges import Edge, Node, edge
from ...graphs.hamiltonian import hamiltonian_decomposition
from ..model import ForwardingPattern, LocalView, TouringAlgorithm


class _HamiltonianPattern(ForwardingPattern):
    def __init__(self, cycles: list[list[Node]]):
        self._cycle_of: dict[Edge, int] = {}
        self._successor: list[dict[Node, Node]] = []
        self._predecessor: list[dict[Node, Node]] = []
        for index, cycle in enumerate(cycles):
            successor: dict[Node, Node] = {}
            predecessor: dict[Node, Node] = {}
            for u, v in zip(cycle, cycle[1:] + cycle[:1]):
                successor[u] = v
                predecessor[v] = u
                self._cycle_of[edge(u, v)] = index
            self._successor.append(successor)
            self._predecessor.append(predecessor)
        self._count = len(cycles)

    def forward(self, view: LocalView) -> Node | None:
        alive = view.alive_set
        if view.inport is None:
            return self._scan(view.node, alive, start=0)
        current = self._cycle_of.get(edge(view.node, view.inport))
        if current is None:  # pragma: no cover - arrivals follow cycle links
            return self._scan(view.node, alive, start=0)
        # Continue the current cycle in the travel direction.
        if self._predecessor[current][view.node] == view.inport:
            onward = self._successor[current][view.node]
        else:
            onward = self._predecessor[current][view.node]
        if onward in alive:
            return onward
        nxt = self._scan(view.node, alive, start=current + 1)
        if nxt is not None:
            return nxt
        # Beyond the k-1 failure promise: wrap around, else bounce.
        nxt = self._scan(view.node, alive, start=0)
        if nxt is not None:
            return nxt
        return view.inport if view.inport in alive else None

    def _scan(self, node: Node, alive: frozenset[Node], start: int) -> Node | None:
        for index in range(start, self._count):
            successor = self._successor[index][node]
            if successor in alive:
                return successor
            predecessor = self._predecessor[index][node]
            if predecessor in alive:
                return predecessor
        return None


class HamiltonianTouring(TouringAlgorithm):
    """Theorem 17: tour 2k-connected ``K_n`` / ``K_{n,n}`` under k-1 failures."""

    name = "Hamiltonian-cycle touring (Thm 17)"

    def build(self, graph: nx.Graph) -> ForwardingPattern:
        return _HamiltonianPattern(hamiltonian_decomposition(graph))

    @staticmethod
    def tolerated_failures(graph: nx.Graph) -> int:
        """``k - 1`` where ``k`` is the number of decomposition cycles."""
        return len(hamiltonian_decomposition(graph)) - 1
