"""Perfectly resilient source-destination routing on K3,3 (Theorem 9).

The paper proves Theorem 9 by exhibiting, for both placements of the
source/destination pair, an explicit priority table ("we state for each
node and inport combination the order in which a node tries to forward a
packet").  We reproduce those tables in role space (``a, b, c`` in one
part, ``v1, v2, v3`` in the other), embed an arbitrary bipartite subgraph
of ``K3,3`` into the roles, and translate the tables to the actual node
labels.  Absent links behave exactly like permanently failed ones, which
is the paper's own simulation argument for subgraphs.

Together with Algorithm 1 (every graph on <= 5 nodes) this covers *all*
minors of ``K3,3``: a proper minor either has at most five nodes or is a
spanning subgraph of ``K3,3`` itself.
"""

from __future__ import annotations

from itertools import product

import networkx as nx

from ...graphs.construct import bipartition
from ...graphs.edges import Node
from ..model import ForwardingPattern, SourceDestinationAlgorithm
from ..tables import ORIGIN, PriorityTable

#: Theorem 9 table for source and destination in different parts
#: (roles: s = a, relay nodes b, c; v1, v2, destination t = v3).
_DIFFERENT_PARTS = {
    "s": {ORIGIN: ("t", "v1", "v2"), "v1": ("v2",), "v2": ("v2",)},
    "b": {"v1": ("t", "v2", "v1"), "v2": ("t", "v1", "v2")},
    "c": {"v1": ("t", "v2", "v1"), "v2": ("t", "v1", "v2")},
    "v1": {"s": ("b", "c", "s"), "b": ("c", "s", "b"), "c": ("b", "s", "c")},
    "v2": {"s": ("b", "c"), "b": ("c", "b"), "c": ("b", "c")},
}

#: Theorem 9 table for source and destination in the same part
#: (roles: s = a, relay b, destination t = c; other part v1, v2, v3).
#:
#: Deviation from the paper: the table printed in the proof of Theorem 9
#: loops on K3,3 under F = {(t,v2),(t,v3),(s,v1)} — the packet circulates
#: s->v2->b->v3->s without ever trying b->v1, because b is always
#: re-entered through v2 (the "detour to s" of the published case analysis
#: re-enters b through the same in-port).  The table below is the closest
#: correct repair, found by exhaustive search over priority tables and
#: verified over *all* failure sets and same-part pairs; it differs from
#: the published one in three entries (s/v1 row, v2/b row, v3/b row).
_SAME_PART = {
    "s": {ORIGIN: ("v1", "v2", "v3"), "v1": ("v2", "v3"), "v2": ("v3",), "v3": ("v2",)},
    "b": {"v1": ("v2", "v3", "v1"), "v2": ("v3", "v1", "v2"), "v3": ("v1", "v2", "v3")},
    "v1": {"s": ("t", "b", "s"), "b": ("t", "s", "b")},
    "v2": {"s": ("t", "b", "s"), "b": ("t", "s", "b")},
    "v3": {"s": ("t", "b", "s"), "b": ("t", "b", "s")},
}


def _embed(graph: nx.Graph, source: Node, destination: Node) -> tuple[list[Node], list[Node]]:
    """Partition the nodes into the two K3,3 parts (source's part first).

    Components are 2-coloured independently; the flip of each component is
    brute-forced until both parts fit three nodes.
    """
    if not nx.is_bipartite(graph):
        raise ValueError("graph is not a subgraph of K3,3 (not bipartite)")
    if graph.number_of_nodes() > 6:
        raise ValueError("graph has more than six nodes")
    components = [graph.subgraph(c) for c in nx.connected_components(graph)]
    colourings = []
    for component in components:
        left, right = bipartition(component)
        colourings.append((sorted(left, key=repr), sorted(right, key=repr)))
    for flips in product((False, True), repeat=len(colourings)):
        part_a: list[Node] = []
        part_b: list[Node] = []
        for (left, right), flip in zip(colourings, flips):
            part_a.extend(right if flip else left)
            part_b.extend(left if flip else right)
        if len(part_a) <= 3 and len(part_b) <= 3:
            if source in part_b:
                part_a, part_b = part_b, part_a
            return part_a, part_b
    raise ValueError("graph does not embed into K3,3")


def _role_map(
    part_a: list[Node], part_b: list[Node], source: Node, destination: Node
) -> tuple[dict[str, Node], dict]:
    same_part = destination in part_a
    roles: dict[str, Node] = {"s": source}
    if same_part:
        roles["t"] = destination
        spare = [n for n in part_a if n not in (source, destination)]
        if spare:
            roles["b"] = spare[0]
        for role, node in zip(("v1", "v2", "v3"), sorted(part_b, key=repr)):
            roles[role] = node
        return roles, _SAME_PART
    roles["t"] = destination
    spares = [n for n in part_a if n != source]
    for role, node in zip(("b", "c"), sorted(spares, key=repr)):
        roles[role] = node
    others = [n for n in part_b if n != destination]
    for role, node in zip(("v1", "v2"), sorted(others, key=repr)):
        roles[role] = node
    return roles, _DIFFERENT_PARTS


class K33SourceRouting(SourceDestinationAlgorithm):
    """Theorem 9 tables — bipartite subgraphs of ``K3,3``."""

    name = "K3,3 tables (Thm 9, source-destination)"

    def supports(self, graph: nx.Graph, source: Node, destination: Node) -> bool:
        try:
            _embed(graph, source, destination)
        except ValueError:
            return False
        return True

    def build(self, graph: nx.Graph, source: Node, destination: Node) -> ForwardingPattern:
        part_a, part_b = _embed(graph, source, destination)
        roles, table = _role_map(part_a, part_b, source, destination)
        present = {role: node for role, node in roles.items() if node is not None}
        rules: dict[Node, dict[Node | None, tuple[Node, ...]]] = {}
        for role, row in table.items():
            node = present.get(role)
            if node is None:
                continue
            translated: dict[Node | None, tuple[Node, ...]] = {}
            for inport_role, candidates in row.items():
                inport = None if inport_role is ORIGIN else present.get(inport_role)
                if inport is None and inport_role is not ORIGIN:
                    continue
                translated[inport] = tuple(
                    present[c] for c in candidates if c in present
                )
            rules[node] = translated
        return PriorityTable(
            rules=rules, deliver_first=destination, name="Theorem 9 table"
        )
