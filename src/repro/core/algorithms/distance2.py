"""The distance-2 exploration pattern ([2, Thm 6.1], used by Theorem 3).

Foerster et al. showed that routing with source and destination always
succeeds when ``dist(s, t) <= 2`` after failures.  The pattern:

* every node forwards straight to ``t`` whenever the direct link is alive;
* the source cycles through its alive neighbours in ID order (the in-port
  tells it which neighbour just gave up, so it can move to the next one);
* every other node bounces the packet back.

Theorem 3 derives r-tolerance of ``K_{2r+1}`` from this: if s and t stay
r-connected, a common neighbour survives, i.e. ``dist(s, t) <= 2``.
"""

from __future__ import annotations

import networkx as nx

from ...graphs.edges import Node
from ..model import ForwardingPattern, LocalView, SourceDestinationAlgorithm


class _Distance2Pattern(ForwardingPattern):
    def __init__(self, source: Node, destination: Node):
        self._source = source
        self._destination = destination

    def forward(self, view: LocalView) -> Node | None:
        alive = view.alive_set
        if self._destination in alive:
            return self._destination
        if view.node != self._source:
            return view.inport if view.inport in alive else None
        candidates = view.alive_without(self._destination)
        if not candidates:
            return None
        if view.inport is None or view.inport not in candidates:
            return candidates[0]
        anchor = candidates.index(view.inport)
        return candidates[(anchor + 1) % len(candidates)]


class Distance2Algorithm(SourceDestinationAlgorithm):
    """Guaranteed delivery whenever ``dist_{G\\F}(s, t) <= 2``."""

    name = "distance-2 exploration"

    def build(self, graph: nx.Graph, source: Node, destination: Node) -> ForwardingPattern:
        return _Distance2Pattern(source, destination)
