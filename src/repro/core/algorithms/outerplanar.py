"""Right-hand-rule routing on outerplanar structure (Cor 5, Cor 6).

Two building blocks from Foerster et al. [2, §6.2] that the paper uses as
its positive workhorses:

* :class:`RightHandTouring` — a ``π^∀`` pattern touring any outerplanar
  graph under perfect resilience (the positive half of Corollary 6).  The
  pattern walks the outer face: all nodes of an outerplanar graph lie on
  it, and failures only merge faces *into* the outer face, so the static
  local rule keeps covering the surviving component.

* :class:`TourToDestination` — Corollary 5: when ``G - t`` is outerplanar,
  destination-based perfect resilience is possible by touring ``G - t``
  and delivering the moment the direct link to ``t`` is alive.

* :class:`TwoStageTour` — the extra case of Theorem 13: when the
  destination has a single neighbour ``w`` and ``G - t - w`` is
  outerplanar, tour that graph, deliver to ``w`` first and to ``t`` from
  ``w``.
"""

from __future__ import annotations

import networkx as nx

from ...graphs.edges import Node
from ...graphs.embeddings import RotationSystem, outerplanar_rotation
from ...graphs.planarity import is_outerplanar
from ..model import (
    DestinationAlgorithm,
    ForwardingPattern,
    LocalView,
    TouringAlgorithm,
)


class _RotationPattern(ForwardingPattern):
    """Right-hand-rule walk over a rotation system, with delivery hooks.

    ``targets`` are delivered to (in order of preference) whenever their
    direct link is alive; they are otherwise invisible to the walk, which
    only moves along links of the embedded subgraph.
    """

    def __init__(self, rotation: RotationSystem, targets: tuple[Node, ...] = ()):
        self._rotation = rotation
        self._targets = targets

    def forward(self, view: LocalView) -> Node | None:
        alive = view.alive_set
        for target in self._targets:
            if view.node == target:
                continue
            if target in alive:
                return target
        if view.node not in self._rotation.rotation:
            # Node outside the embedded subgraph (e.g. the destination
            # itself): nothing sensible to do.
            return view.inport if view.inport in alive else None
        embedded_alive = {
            neighbor for neighbor in self._rotation.rotation[view.node] if neighbor in alive
        }
        if view.inport is None or view.inport not in self._rotation.rotation[view.node]:
            return self._rotation.first(view.node, embedded_alive)
        successor = self._rotation.successor(view.node, view.inport, embedded_alive)
        if successor is not None:
            return successor
        return view.inport if view.inport in alive else None


class RightHandTouring(TouringAlgorithm):
    """Perfectly resilient touring of outerplanar graphs (Cor 6, positive)."""

    name = "right-hand-rule touring"

    def build(self, graph: nx.Graph) -> ForwardingPattern:
        return _RotationPattern(outerplanar_rotation(graph))


class TourToDestination(DestinationAlgorithm):
    """Corollary 5: perfect resilience when ``G - t`` is outerplanar."""

    name = "tour-to-destination (Cor 5)"

    def supports(self, graph: nx.Graph, destination: Node) -> bool:
        without = nx.Graph(graph)
        without.remove_node(destination)
        return is_outerplanar(without)

    def build(self, graph: nx.Graph, destination: Node) -> ForwardingPattern:
        without = nx.Graph(graph)
        without.remove_node(destination)
        return _RotationPattern(outerplanar_rotation(without), targets=(destination,))


class TwoStageTour(DestinationAlgorithm):
    """Theorem 13 extra case: degree-1 destination behind relay ``w``.

    Tours ``G - t - w`` delivering first to ``w`` (and to ``t`` from
    ``w``).  Perfectly resilient when ``G - t - w`` is outerplanar: if the
    packet's start is connected to ``t``, the connection runs through
    ``w``, whose direct link is found by the tour.
    """

    name = "two-stage tour (Thm 13)"

    def supports(self, graph: nx.Graph, destination: Node) -> bool:
        neighbors = list(graph.neighbors(destination))
        if len(neighbors) != 1:
            return False
        without = nx.Graph(graph)
        without.remove_node(destination)
        without.remove_node(neighbors[0])
        return is_outerplanar(without)

    def build(self, graph: nx.Graph, destination: Node) -> ForwardingPattern:
        neighbors = list(graph.neighbors(destination))
        if len(neighbors) != 1:
            raise ValueError("TwoStageTour requires a degree-1 destination")
        relay = neighbors[0]
        without = nx.Graph(graph)
        without.remove_node(destination)
        without.remove_node(relay)
        return _RotationPattern(outerplanar_rotation(without), targets=(destination, relay))
