"""The distance-3 pattern for bipartite graphs (Theorem 4, used by Thm 5).

In a bipartite graph the distance-2 exploration extends one hop further:

* every node forwards straight to ``t`` whenever the direct link is alive;
* the source *and each graph-neighbour of the source* route in a cyclic
  permutation of their alive neighbours;
* every other node bounces.

Bipartiteness keeps the exploration sane: the neighbours of a neighbour of
``s`` lie in ``s``'s part, so the cycling frontier never leaks beyond
distance 2, yet every link adjacent to a link incident to ``s`` is tried —
which finds ``t`` whenever ``dist(s, t) <= 3`` (the destination at
distance 3 is adjacent to one of those links).  Theorem 5 instantiates
this on ``K_{2r-1,2r-1}`` to obtain r-tolerance.
"""

from __future__ import annotations

import networkx as nx

from ...graphs.edges import Node
from ..model import ForwardingPattern, LocalView, SourceDestinationAlgorithm


class _Distance3Pattern(ForwardingPattern):
    def __init__(self, source: Node, destination: Node, cycling: frozenset[Node]):
        self._source = source
        self._destination = destination
        self._cycling = cycling

    def forward(self, view: LocalView) -> Node | None:
        alive = view.alive_set
        if self._destination in alive:
            return self._destination
        if view.node not in self._cycling:
            return view.inport if view.inport in alive else None
        candidates = view.alive_without(self._destination)
        if not candidates:
            return view.inport if view.inport in alive else None
        if view.inport is None or view.inport not in candidates:
            return candidates[0]
        anchor = candidates.index(view.inport)
        return candidates[(anchor + 1) % len(candidates)]


class Distance3BipartiteAlgorithm(SourceDestinationAlgorithm):
    """Guaranteed delivery on bipartite graphs whenever ``dist(s, t) <= 3``."""

    name = "distance-3 bipartite exploration"

    def build(self, graph: nx.Graph, source: Node, destination: Node) -> ForwardingPattern:
        if not nx.is_bipartite(graph):
            raise ValueError("Theorem 4 pattern requires a bipartite graph")
        cycling = frozenset({source, *graph.neighbors(source)})
        return _Distance3Pattern(source, destination, cycling)
