"""Naive baselines.

Strawman patterns for the adversary benchmarks: the impossibility theorems
quantify over *all* static patterns, so the experiments demonstrate the
constructions against both the paper's best algorithms and these simple
ones.  They are also handy as "arbitrary pattern" inputs when exercising
the adaptive adversaries of §III and §IV.
"""

from __future__ import annotations

import random

import networkx as nx

from ...graphs.edges import Node
from ..model import (
    DestinationAlgorithm,
    ForwardingPattern,
    LocalView,
    SourceDestinationAlgorithm,
    TouringAlgorithm,
)
from ..tables import CyclicPermutationPattern


class _GreedyPattern(ForwardingPattern):
    def __init__(self, destination: Node):
        self._destination = destination

    def forward(self, view: LocalView) -> Node | None:
        alive = view.alive_set
        if self._destination in alive:
            return self._destination
        for candidate in view.alive:
            if candidate != view.inport:
                return candidate
        return view.inport if view.inport in alive else None


class GreedyLowestNeighbor(DestinationAlgorithm):
    """Forward to the lowest-ID alive neighbour that is not the in-port."""

    name = "greedy lowest-neighbour"

    def build(self, graph: nx.Graph, destination: Node) -> ForwardingPattern:
        return _GreedyPattern(destination)


class RandomCyclicPermutations(SourceDestinationAlgorithm):
    """Seeded random cyclic permutation per node, destination first.

    The "generic" static fast-rerouting scheme: every node sends the
    packet onward along a fixed random cycle of its ports.  Perfectly
    reasonable-looking — and exactly the shape the paper's adversaries
    (Thm 1 step 3, Thm 6) are built to defeat.
    """

    name = "random cyclic permutations"

    def __init__(self, seed: int = 0):
        self._seed = seed

    def build(self, graph: nx.Graph, source: Node, destination: Node) -> ForwardingPattern:
        rng = random.Random(f"{self._seed}/{source!r}/{destination!r}")
        cycles = {}
        for node in graph.nodes:
            neighbors = sorted(graph.neighbors(node), key=repr)
            rng.shuffle(neighbors)
            cycles[node] = tuple(neighbors)
        return CyclicPermutationPattern(cycles=cycles, deliver_first=destination)


class RandomPortCycles(TouringAlgorithm):
    """Seeded random per-node port cycle, no header information at all.

    The natural strawman for the touring model of §VII — Lemma 1 shows
    every perfectly resilient touring pattern must look like this, and
    Lemmas 3 / 4 show that on ``K4`` and ``K2,3`` no such pattern works.
    """

    name = "random port cycles (touring)"

    def __init__(self, seed: int = 0):
        self._seed = seed

    def build(self, graph: nx.Graph) -> ForwardingPattern:
        rng = random.Random(f"{self._seed}/touring")
        cycles = {}
        for node in graph.nodes:
            neighbors = sorted(graph.neighbors(node), key=repr)
            rng.shuffle(neighbors)
            cycles[node] = tuple(neighbors)
        return CyclicPermutationPattern(cycles=cycles)


class RandomCyclicDestinationOnly(DestinationAlgorithm):
    """Destination-based variant of :class:`RandomCyclicPermutations`."""

    name = "random cyclic permutations (destination-based)"

    def __init__(self, seed: int = 0):
        self._seed = seed

    def build(self, graph: nx.Graph, destination: Node) -> ForwardingPattern:
        rng = random.Random(f"{self._seed}/{destination!r}")
        cycles = {}
        for node in graph.nodes:
            neighbors = sorted(graph.neighbors(node), key=repr)
            rng.shuffle(neighbors)
            cycles[node] = tuple(neighbors)
        return CyclicPermutationPattern(cycles=cycles, deliver_first=destination)
