"""Generic adversarial failure-set search.

The impossibility theorems quantify over all patterns; their constructive
adversaries (``rtolerance``, ``k7``, ``k44``) follow the proofs, but every
adversary in this package *verifies* its candidate failure set by
simulation and can fall back to the searches here, so a returned witness
is always genuine: the promise holds and the routing fails.

The searches run on the fast engine: one :class:`EngineState` per
search, one memoized decision table per pattern, mask-cached
connectivity — so greedy minimization and exhaustive enumeration pay
for network construction once instead of once per candidate.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterable
from dataclasses import dataclass

import networkx as nx

from ...graphs.connectivity import are_connected, st_edge_connectivity
from ...graphs.edges import Edge, FailureSet, Node, edge, edge_sort_key
from ..engine.memo import MemoizedPattern
from ..engine.sweep import EngineState
from ..model import ForwardingPattern, LocalView
from ..resilience import all_failure_sets
from ..simulator import Network, route

Promise = Callable[[FailureSet], bool]


@dataclass
class AttackResult:
    """A verified adversarial witness."""

    failures: FailureSet
    method: str

    @property
    def size(self) -> int:
        return len(self.failures)


def make_view(graph: nx.Graph, node: Node, inport: Node | None, alive: Iterable[Node]) -> LocalView:
    """A hypothetical local view: ``alive`` neighbours survive, the rest failed.

    The adaptive adversaries use this to *query* a pattern's behaviour
    under candidate local failure sets before committing to them.
    """
    alive_set = set(alive)
    try:
        alive_sorted = tuple(sorted(alive_set))
    except TypeError:
        alive_sorted = tuple(sorted(alive_set, key=repr))
    failed = frozenset(
        edge(node, neighbor) for neighbor in graph.neighbors(node) if neighbor not in alive_set
    )
    return LocalView(node=node, inport=inport, alive=alive_sorted, failed_links=failed)


def verify_attack(
    graph: nx.Graph,
    pattern: ForwardingPattern,
    source: Node,
    destination: Node,
    failures: FailureSet,
    min_connectivity: int = 1,
    network: Network | EngineState | None = None,
) -> bool:
    """Does the witness hold: promise satisfied but the packet not delivered?

    Pass a prebuilt ``network`` (naive :class:`Network` or engine
    :class:`EngineState`) when verifying many candidates on the same
    graph — rebuilding it per call made greedy minimization quadratic
    in network construction.
    """
    if isinstance(network, EngineState):
        return _verify_fast(
            network, network.memoized(pattern), source, destination, failures, min_connectivity
        )
    if min_connectivity <= 1:
        if not are_connected(graph, source, destination, failures):
            return False
    elif (
        st_edge_connectivity(graph, source, destination, failures, stop_at=min_connectivity)
        < min_connectivity
    ):
        return False
    result = route(network if network is not None else Network(graph), pattern,
                   source, destination, failures)
    return not result.delivered


def _verify_fast(
    state: EngineState,
    memo: MemoizedPattern,
    source: Node,
    destination: Node,
    failures: FailureSet,
    min_connectivity: int,
) -> bool:
    """Engine-shared verifier: one decision table across all candidates."""
    if min_connectivity <= 1:
        if not state.connected(source, destination, failures):
            return False
    elif (
        st_edge_connectivity(state.graph, source, destination, failures, stop_at=min_connectivity)
        < min_connectivity
    ):
        return False
    return not state.route(memo, source, destination, failures).delivered


def exhaustive_attack(
    graph: nx.Graph,
    pattern: ForwardingPattern,
    source: Node,
    destination: Node,
    max_failures: int | None = None,
    min_connectivity: int = 1,
) -> AttackResult | None:
    """Smallest breaking failure set by exhaustive enumeration (small graphs)."""
    state = EngineState(graph)
    memo = state.memoized(pattern)
    for failures in all_failure_sets(graph, max_failures):
        if _verify_fast(state, memo, source, destination, failures, min_connectivity):
            return AttackResult(failures, method="exhaustive")
    return None


def random_attack(
    graph: nx.Graph,
    pattern: ForwardingPattern,
    source: Node,
    destination: Node,
    max_failures: int | None = None,
    min_connectivity: int = 1,
    attempts: int = 5_000,
    seed: int = 0,
) -> AttackResult | None:
    """Randomized search for a breaking failure set, then greedy minimization."""
    rng = random.Random(seed)
    links = sorted((edge(u, v) for u, v in graph.edges), key=edge_sort_key)
    limit = len(links) if max_failures is None else min(max_failures, len(links))
    state = EngineState(graph)
    memo = state.memoized(pattern)
    for _ in range(attempts):
        size = rng.randint(1, limit)
        failures = frozenset(rng.sample(links, size))
        if not _verify_fast(state, memo, source, destination, failures, min_connectivity):
            continue
        failures = _minimize(
            state, memo, source, destination, failures, min_connectivity
        )
        return AttackResult(failures, method="random")
    return None


def _minimize(
    state: EngineState,
    memo: MemoizedPattern,
    source: Node,
    destination: Node,
    failures: FailureSet,
    min_connectivity: int,
) -> FailureSet:
    """Drop failures one by one while the witness still holds."""
    current = set(failures)
    try:
        order = sorted(failures)
    except TypeError:
        order = sorted(failures, key=edge_sort_key)
    for link in order:
        candidate = frozenset(current - {link})
        if _verify_fast(state, memo, source, destination, candidate, min_connectivity):
            current.discard(link)
    return frozenset(current)
