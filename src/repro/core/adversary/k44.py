"""The K4,4 adversary (Theorem 7, Lemma 6, Corollary 4).

Breaks any source-destination pattern on ``K4,4`` (and ``K4,4^-1``) with
at most 11 failures while keeping s and t connected.  The proof's final
configuration leaves alive exactly the links of the walk

    s - b - v1 - a - v2 - d - v1 - a - v3 - t

(8 of the 16 links): the hub nodes ``a`` and ``v1`` route in cyclic
permutations, so the packet gets caught in the loop ``a-v2-d-v1-a`` while
the path ``s-b-v1-a-v3-t`` survives.  As in the K7 case, the adversary is
adaptive where the proof says "w.l.o.g.": it enumerates the role
assignments (which is exactly what the proof's relabelling arguments do),
verifies each candidate, and falls back to randomized search.

Via ``part_*``/``base_failures`` the same construction runs on a ``K4,4``
embedded in a larger complete bipartite graph (Theorem 15).
"""

from __future__ import annotations

from itertools import permutations

import networkx as nx

from ...graphs.construct import bipartition
from ...graphs.edges import FailureSet, Node, edge
from ..engine.sweep import EngineState
from ..model import ForwardingPattern, SourceDestinationAlgorithm
from .search import AttackResult, random_attack, verify_attack

#: Corollary 4: 11 failures suffice on K4,4.
K44_FAILURE_BUDGET = 11


def attack_k44(
    graph: nx.Graph,
    algorithm: SourceDestinationAlgorithm,
    source: Node,
    destination: Node,
) -> AttackResult | None:
    """Theorem 7 / Corollary 4 witness on (a graph containing) ``K4,4``.

    ``source`` and ``destination`` must lie in different parts (the
    Lemma 6 setup).
    """
    left, right = bipartition(graph)
    if (source in left) == (destination in left):
        raise ValueError("Lemma 6 places source and destination in different parts")
    t_side = sorted((v for v in (left if destination in left else right) if v != destination), key=repr)[:3]
    s_side = sorted((v for v in (left if source in left else right) if v != source), key=repr)[:3]
    pattern = algorithm.build(graph, source, destination)
    return attack_embedded_k44(graph, pattern, source, destination, t_side, s_side)


def attack_embedded_k44(
    graph: nx.Graph,
    pattern: ForwardingPattern,
    source: Node,
    destination: Node,
    t_side: list[Node],
    s_side: list[Node],
    base_failures: FailureSet = frozenset(),
) -> AttackResult | None:
    """Attack the K4,4 spanned by the given role candidates.

    ``t_side`` holds the three non-destination nodes of the destination's
    part (the roles ``a, b, d``); ``s_side`` the three non-source nodes of
    the source's part (the roles ``v1, v2, v3``).
    """
    if len(t_side) != 3 or len(s_side) != 3:
        raise ValueError("need three role candidates on each side")
    real = {source, destination, *t_side, *s_side}
    inner_links = {edge(u, v) for u, v in graph.edges if u in real and v in real}
    network = EngineState(graph)  # shared across all candidate verifications
    for a, b, d in permutations(t_side):
        for v1, v2, v3 in permutations(s_side):
            alive = {
                edge(source, b),
                edge(b, v1),
                edge(v1, a),
                edge(a, v2),
                edge(v2, d),
                edge(d, v1),
                edge(a, v3),
                edge(v3, destination),
            }
            failures = frozenset((inner_links - alive) | base_failures)
            if verify_attack(graph, pattern, source, destination, failures, network=network):
                return AttackResult(failures, method="theorem-7 construction")
    if base_failures:
        return None
    return random_attack(
        graph, pattern, source, destination, max_failures=K44_FAILURE_BUDGET, attempts=50_000
    )
