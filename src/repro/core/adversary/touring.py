"""Touring adversaries (§VII: Lemmas 1, 3, 4 and Theorem 16).

* :func:`attack_touring` — exhaustively find a (start, failure set) pair
  on which a touring pattern fails to cover its component (used on the
  forbidden minors ``K4`` and ``K2,3``, whose link counts make exhaustive
  enumeration trivial).

* :func:`cyclic_permutation_violation` — Lemma 1's structural necessity:
  a perfectly resilient touring pattern must route a *cyclic permutation*
  of all alive neighbours at every node under every local failure set.
  The function returns a witnessing (node, local failure set) where a
  given pattern violates this, together with the global failure set the
  Lemma's proof uses to punish the violation (fail everything not
  incident to the node).
"""

from __future__ import annotations

import networkx as nx

from ...graphs.connectivity import component_of
from ...graphs.edges import FailureSet, Node, edge, iter_subsets
from ..model import ForwardingPattern, TouringAlgorithm
from ..resilience import all_failure_sets
from ..simulator import Network, tours_component
from .search import make_view


def attack_touring(
    graph: nx.Graph,
    algorithm: TouringAlgorithm,
    max_failures: int | None = None,
) -> tuple[Node, FailureSet] | None:
    """Exhaustively search for a failing (start, failure set) pair."""
    pattern = algorithm.build(graph)
    return attack_touring_pattern(graph, pattern, max_failures)


def attack_touring_pattern(
    graph: nx.Graph,
    pattern: ForwardingPattern,
    max_failures: int | None = None,
) -> tuple[Node, FailureSet] | None:
    network = Network(graph)
    try:
        starts = sorted(graph.nodes)
    except TypeError:
        starts = sorted(graph.nodes, key=repr)
    for failures in all_failure_sets(graph, max_failures):
        for start in starts:
            if len(component_of(graph, start, failures)) == 1:
                continue
            if not tours_component(network, pattern, start, failures):
                return start, failures
    return None


def cyclic_permutation_violation(
    graph: nx.Graph, pattern: ForwardingPattern
) -> tuple[Node, FailureSet] | None:
    """Lemma 1 witness: a node whose forwarding is not a cyclic permutation.

    For every node with at least two alive neighbours under some local
    failure set, iterating in-port -> out-port must produce one cycle
    through *all* alive neighbours.  Returns ``(node, global failure
    set)`` for the first violation: the failure set kills every link not
    incident to the node, so a tour starting at a neighbour must cross
    the node's permutation — and cannot, by the violation.
    """
    for node in graph.nodes:
        neighbors = sorted(graph.neighbors(node), key=repr)
        for alive in iter_subsets([(node, v) for v in neighbors]):
            alive_nodes = [v for _, v in sorted(alive, key=repr)]
            if len(alive_nodes) < 2:
                continue
            if not _is_cyclic(graph, pattern, node, alive_nodes):
                failures = frozenset(
                    edge(u, v)
                    for u, v in graph.edges
                    if node not in (u, v) or _other(u, v, node) not in alive_nodes
                )
                return node, failures
    return None


def _other(u: Node, v: Node, node: Node) -> Node:
    return v if u == node else u


def _is_cyclic(graph: nx.Graph, pattern: ForwardingPattern, node: Node, alive: list[Node]) -> bool:
    start = alive[0]
    seen = []
    current = start
    for _ in range(len(alive)):
        out = pattern.forward(make_view(graph, node, inport=current, alive=alive))
        if out is None or out not in alive or out in seen:
            return False
        seen.append(out)
        current = out
    return seen[-1] == start and set(seen) == set(alive)


def touring_impossibility_graphs() -> list[tuple[str, nx.Graph]]:
    """The two forbidden-minor gadgets of Theorem 16."""
    from ...graphs.construct import complete_bipartite, complete_graph

    return [("K4", complete_graph(4)), ("K2,3", complete_bipartite(2, 3))]
