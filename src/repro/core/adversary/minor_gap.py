"""Theorem 2: r-tolerance is not preserved under taking minors (r >= 2).

The construction: start from the Theorem 1 graph ``G' = K_{3+5r}`` (which
admits no r-tolerant pattern), add a fresh source ``s'`` joined to the old
source by ``r - 1`` disjoint paths plus a direct link ``(s', t)``.  The
new graph *is* r-tolerant for ``(s', t)``: whenever the promise
``λ(s', t) >= r`` holds, all ``r`` links incident to ``s'`` survive — in
particular the direct link, which :class:`GuardedSourcePattern` uses.
Contracting ``s'`` back into ``s`` (and dropping the direct link)
recovers ``G'``, where Theorem 1's adversary wins: a minor of an
r-tolerant graph that is not r-tolerant.
"""

from __future__ import annotations

import networkx as nx

from ...graphs.edges import Node
from ..model import ForwardingPattern, LocalView, SourceDestinationAlgorithm


def theorem2_graph(r: int) -> tuple[nx.Graph, Node, Node]:
    """The Theorem 2 construction: (graph, new source s', destination t)."""
    if r < 2:
        raise ValueError("Theorem 2 concerns r >= 2")
    n = 3 + 5 * r
    graph = nx.Graph(nx.complete_graph(n))
    source_old, destination = 0, n - 1
    source_new = "s'"
    # r - 1 internally disjoint paths from s' to the old source ...
    for index in range(r - 1):
        relay = f"p{index}"
        graph.add_edge(source_new, relay)
        graph.add_edge(relay, source_old)
    # ... plus the direct link to the destination.
    graph.add_edge(source_new, destination)
    return graph, source_new, destination


class GuardedSourcePattern(ForwardingPattern):
    """Route ``s' -> t`` over the direct link; the promise guarantees it.

    ``s'`` has exactly ``r`` incident links (r-1 relays + the direct
    link); ``λ(s', t) >= r`` therefore forces all of them — including
    ``(s', t)`` — to be alive.
    """

    def __init__(self, source: Node, destination: Node):
        self._source = source
        self._destination = destination

    def forward(self, view: LocalView) -> Node | None:
        if self._destination in view.alive_set:
            return self._destination
        if view.node == self._source:
            return view.alive[0] if view.alive else None
        return view.inport if view.inport in view.alive_set else None


class GuardedSourceAlgorithm(SourceDestinationAlgorithm):
    """The (trivially) r-tolerant scheme for the Theorem 2 graph."""

    name = "guarded direct link (Thm 2)"

    def build(self, graph: nx.Graph, source: Node, destination: Node) -> ForwardingPattern:
        return GuardedSourcePattern(source, destination)
