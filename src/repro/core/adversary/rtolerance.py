"""The Theorem 1 adversary: r-tolerance is impossible on ``K_{3+5r}``.

Given *any* source-destination pattern on the complete graph with
``3 + 5r`` nodes, the adversary constructs a failure set under which the
source and destination remain r-connected yet the packet never arrives.
It follows the proof's three-step, per-gadget strategy, adaptively
*querying* the pattern's forwarding behaviour under hypothetical local
failure sets (the pattern is static, so the adversary can evaluate it
offline before choosing the failures):

1. hunt for a triple ``a-b-c`` inside the 5-node gadget where ``b`` with
   alive links only to ``a`` and ``c`` refuses to pass the packet through
   — then keep exactly the path ``s-a-b-c-t`` alive in the gadget;
2. otherwise inspect the *orbit* of the gadget hub ``v2`` (alive links to
   ``v1`` and the three far nodes): if the orbit from ``v1`` misses a far
   node, hide the destination behind it; if it covers the far nodes but
   never returns to ``v1``, destroy the gadget's path — the packet is
   trapped among the far nodes (the spare node restores connectivity);
3. otherwise the orbit is a full cyclic permutation ``v1 -> A -> B -> C``:
   keep ``(A, C)`` and ``(B, t)`` alive — step 1 guarantees ``A`` and
   ``C`` relay each other, so the walk cycles ``v2-A-C-v2-v1`` and never
   reaches the surviving path through ``B``.

The spare node restores the connectivity lost by trapping gadgets.  The
proof places the spare "last in the visiting order of s" w.l.o.g.; the
implementation achieves the same by trying every rotation of the role
assignment and both spare configurations, *verifying* each candidate and
falling back to randomized search (never needed in the experiments, but
it keeps the function total).

Deviation from the paper: the proof's step-3 text keeps "(v2, v5)" alive;
consistent with its own packet trace ``s-v1-v2-v3-v5-v2`` this must be
"(v3, v5)" (the chord between the first and last far node), which is what
we implement.
"""

from __future__ import annotations

import networkx as nx

from ...graphs.edges import FailureSet, Node, edge
from ..engine.sweep import EngineState
from ..model import ForwardingPattern, SourceDestinationAlgorithm
from .search import AttackResult, make_view, random_attack, verify_attack


def gadget_count(graph: nx.Graph) -> int:
    """How many 5-node gadgets fit: r for ``K_{3+5r}``."""
    return (graph.number_of_nodes() - 3) // 5


def attack_r_tolerance(
    graph: nx.Graph,
    algorithm: SourceDestinationAlgorithm,
    source: Node,
    destination: Node,
    r: int | None = None,
) -> AttackResult | None:
    """Break the pattern while keeping s and t r-connected (Theorem 1).

    ``graph`` should be (a supergraph of) ``K_{3+5r}``; ``r`` defaults to
    the number of gadgets that fit.  Returns a verified witness.
    """
    if r is None:
        r = gadget_count(graph)
    if r < 1:
        raise ValueError("graph too small for any gadget (need 3 + 5r nodes)")
    pattern = algorithm.build(graph, source, destination)
    others = sorted((v for v in graph.nodes if v not in (source, destination)), key=repr)
    if len(others) < 5 * r + 1:
        raise ValueError(f"need {5 * r + 1} non-terminal nodes, have {len(others)}")

    all_links = {edge(u, v) for u, v in graph.edges}
    network = EngineState(graph)  # shared across all candidate verifications
    for shift in range(len(others)):
        rotated = others[shift:] + others[:shift]
        gadgets = [rotated[5 * i : 5 * i + 5] for i in range(r)]
        spare = rotated[5 * r]
        alive: set = set()
        any_trap = False
        for gadget in gadgets:
            gadget_alive, trapped = _build_gadget(graph, pattern, source, destination, gadget)
            alive.update(gadget_alive)
            any_trap = any_trap or trapped
        spare_links = {edge(source, spare), edge(spare, destination)}
        candidates = [alive | spare_links, set(alive)] if any_trap else [set(alive), alive | spare_links]
        for candidate_alive in candidates:
            failures: FailureSet = frozenset(all_links - candidate_alive)
            if verify_attack(
                graph, pattern, source, destination, failures,
                min_connectivity=r, network=network,
            ):
                return AttackResult(failures, method="theorem-1 construction")
    return random_attack(
        graph, pattern, source, destination, min_connectivity=r, attempts=20_000
    )


def _build_gadget(
    graph: nx.Graph,
    pattern: ForwardingPattern,
    source: Node,
    destination: Node,
    gadget: list[Node],
) -> tuple[set, bool]:
    """Alive links for one gadget and whether it traps the packet.

    A trapping gadget contributes no s-t path (the spare node compensates);
    all other cases leave exactly one alive path that the walk never uses.
    """
    # Step 1: a blocking middle node.
    for b in gadget:
        for a in gadget:
            if a == b:
                continue
            for c in gadget:
                if c in (a, b):
                    continue
                view = make_view(graph, b, inport=a, alive=[a, c])
                if pattern.forward(view) != c:
                    return (
                        {edge(source, a), edge(a, b), edge(b, c), edge(c, destination)},
                        False,
                    )
    # Steps 2/3: orbit of the hub v2 with alive {v1, far1, far2, far3}.
    v1, v2 = gadget[0], gadget[1]
    far = gadget[2:]
    hub_alive = [v1] + far
    outputs = _orbit_outputs(graph, pattern, v2, start=v1, alive=hub_alive)
    base = {edge(source, v1), edge(v1, v2)}
    base.update(edge(v2, node) for node in far)
    missing_far = [node for node in far if node not in outputs]
    if missing_far:
        # Step 2a: hide the destination behind a far node the hub never uses.
        return base | {edge(missing_far[0], destination)}, False
    if v1 not in outputs:
        # Step 2b: the hub cycles among the far nodes and never lets the
        # packet out again: trap it, destroying the gadget's path.
        return base, True
    # Step 3: full cyclic permutation v1 -> A -> B -> C -> v1.
    sequence = outputs[: outputs.index(v1)]
    a, b, c = sequence[0], sequence[1], sequence[2]
    return base | {edge(a, c), edge(b, destination)}, False


def _orbit_outputs(
    graph: nx.Graph, pattern: ForwardingPattern, node: Node, start: Node, alive: list[Node]
) -> list[Node]:
    """Iterate the node's forwarding function: in-port -> out-port -> ...

    Returns the sequence of out-ports produced from in-port ``start``
    until the first repetition (or a non-neighbour/None output).  For a
    cyclic permutation over all alive neighbours this is
    ``[A, B, C, start]``.
    """
    outputs: list[Node] = []
    current = start
    for _ in range(len(alive) + 1):
        out = pattern.forward(make_view(graph, node, inport=current, alive=alive))
        if out is None or out not in alive or out in outputs:
            break
        outputs.append(out)
        current = out
    return outputs
