"""The K7 adversary (Theorem 6, Lemma 5, Corollary 3).

Breaks any source-destination pattern on ``K7`` (and ``K7^-1``) with at
most 15 link failures while keeping s and t connected.  The proof's final
failure set (Fig. 10) leaves exactly the links

    (s,v1), (v1,v2), (v2,v3), (v2,v4), (v2,v5), (v3,v5), (v4,t)

alive: the hub ``v2`` routes in a cyclic permutation, ``v3`` and ``v5``
relay each other, and the walk loops ``v2-v3-v5-v2-v1`` forever while the
path ``s-v1-v2-v4-t`` survives unused.  This is exactly the step-3 gadget
of the Theorem 1 adversary with (A, B, C) = (v3, v4, v5).

The implementation is adaptive where the proof is ("w.l.o.g."): it reads
the hub's actual cyclic behaviour off the pattern, falls back to the
blocking-triple and hidden-neighbour gadgets for non-cyclic patterns, then
to enumerating all role assignments of the Fig. 10 shape, and finally to
randomized search — every candidate is verified before being returned.

The same machinery runs on an embedded ``K7`` inside a larger complete
graph (Theorem 14): ``middles``/``base_failures`` restrict the
construction to the real nodes while the padding failures cut them off
from the virtual ones.
"""

from __future__ import annotations

from itertools import permutations

import networkx as nx

from ...graphs.edges import FailureSet, Node, edge
from ..engine.sweep import EngineState
from ..model import ForwardingPattern, SourceDestinationAlgorithm
from .search import AttackResult, make_view, random_attack, verify_attack

#: Corollary 3: 15 failures suffice on K7.
K7_FAILURE_BUDGET = 15


def attack_k7(
    graph: nx.Graph,
    algorithm: SourceDestinationAlgorithm,
    source: Node,
    destination: Node,
) -> AttackResult | None:
    """Theorem 6 / Corollary 3 witness on (a graph containing) ``K7``."""
    pattern = algorithm.build(graph, source, destination)
    middles = sorted(
        (v for v in graph.nodes if v not in (source, destination)), key=repr
    )[:5]
    return attack_embedded_k7(graph, pattern, source, destination, middles)


def attack_embedded_k7(
    graph: nx.Graph,
    pattern: ForwardingPattern,
    source: Node,
    destination: Node,
    middles: list[Node],
    base_failures: FailureSet = frozenset(),
) -> AttackResult | None:
    """Attack the K7 spanned by ``{source, destination} ∪ middles``.

    ``base_failures`` (e.g. Theorem 14 padding) are added to every
    candidate; all links among the seven real nodes not kept alive are
    failed as well.
    """
    if len(middles) != 5:
        raise ValueError("the K7 gadget needs exactly five middle nodes")
    inner_links = _inner_links(graph, source, destination, middles)
    network = EngineState(graph)  # shared across all candidate verifications

    def finish(alive: set) -> AttackResult | None:
        failures = frozenset((inner_links - alive) | base_failures)
        if verify_attack(graph, pattern, source, destination, failures, network=network):
            return AttackResult(failures, method="theorem-6 construction")
        return None

    # Adaptive gadget (blocking triple / hidden neighbour / cyclic hub),
    # trying each middle node as the entry point v1.
    for shift in range(5):
        rotated = middles[shift:] + middles[:shift]
        alive = _gadget_alive(graph, pattern, source, destination, rotated)
        if alive is not None:
            result = finish(alive)
            if result is not None:
                return result
    # All Fig. 10 role assignments.
    for roles in permutations(middles):
        v1, v2, v3, v4, v5 = roles
        alive = {
            edge(source, v1),
            edge(v1, v2),
            edge(v2, v3),
            edge(v2, v4),
            edge(v2, v5),
            edge(v3, v5),
            edge(v4, destination),
        }
        result = finish(alive)
        if result is not None:
            return result
    if base_failures:
        return None
    return random_attack(
        graph, pattern, source, destination, max_failures=K7_FAILURE_BUDGET, attempts=50_000
    )


def _inner_links(graph: nx.Graph, source: Node, destination: Node, middles: list[Node]) -> set:
    real = {source, destination, *middles}
    return {edge(u, v) for u, v in graph.edges if u in real and v in real}


def _gadget_alive(
    graph: nx.Graph,
    pattern: ForwardingPattern,
    source: Node,
    destination: Node,
    gadget: list[Node],
) -> set | None:
    """The Theorem-1-style adaptive gadget over the five middle nodes.

    Returns an alive-link set or ``None`` when the hub's orbit covers the
    far nodes but never returns to v1 (the trap case needs a spare node
    that K7 does not have; the Fig. 10 enumeration takes over).
    """
    for b in gadget:
        for a in gadget:
            if a == b:
                continue
            for c in gadget:
                if c in (a, b):
                    continue
                view = make_view(graph, b, inport=a, alive=[a, c])
                if pattern.forward(view) != c:
                    # The packet is stuck in {s, a, b}; everything behind
                    # the blockade may stay alive, keeping |F| <= 15
                    # (Corollary 3's budget).
                    rest = [node for node in gadget if node not in (a, b)] + [destination]
                    alive = {edge(source, a), edge(a, b), edge(b, c)}
                    alive.update(
                        edge(u, v)
                        for i, u in enumerate(rest)
                        for v in rest[i + 1 :]
                        if graph.has_edge(u, v)
                    )
                    return alive
    v1, v2 = gadget[0], gadget[1]
    far = gadget[2:]
    hub_alive = [v1] + far
    outputs: list[Node] = []
    current = v1
    for _ in range(len(hub_alive) + 1):
        out = pattern.forward(make_view(graph, v2, inport=current, alive=hub_alive))
        if out is None or out not in hub_alive or out in outputs:
            break
        outputs.append(out)
        current = out
    base = {edge(source, v1), edge(v1, v2)}
    base.update(edge(v2, node) for node in far)
    missing_far = [node for node in far if node not in outputs]
    if missing_far:
        return base | {edge(missing_far[0], destination)}
    if v1 not in outputs:
        return None
    sequence = outputs[: outputs.index(v1)]
    a, b, c = sequence[0], sequence[1], sequence[2]
    return base | {edge(a, c), edge(b, destination)}
