"""Few-failure impossibility via simulation arguments (Theorems 14, 15).

On large complete (bipartite) graphs the K7 / K4,4 adversaries still
apply after *padding*: fail every link between the non-destination nodes
of an embedded gadget and the rest of the graph.  The packet then never
leaves the gadget, the pattern restricted to the gadget is a static
pattern on ``K7`` (resp. ``K4,4``), and the inner adversary finishes the
job.  Total failure budgets:

* ``K_n`` (n >= 8): ``6(n-7)`` padding + at most 15 inner failures, i.e.
  ``6n - 27`` — the paper reports ``6n - 33``, counting ``6(n-8)``
  padding links; either way the budget is ``6n - O(1)``, asymptotically
  optimal against the ``n - 2`` positive bound;
* ``K_{a,b}`` (a, b >= 4): ``3`` / ``4`` padding links per virtual node
  plus at most 11 inner failures (paper: ``3a + 4b - 21``).
"""

from __future__ import annotations

import networkx as nx

from ...graphs.construct import bipartition
from ...graphs.edges import FailureSet, Node, edge
from ..model import SourceDestinationAlgorithm
from .k44 import attack_embedded_k44
from .k7 import attack_embedded_k7
from .search import AttackResult


def complete_graph_budget(n: int) -> int:
    """The paper's Theorem 14 failure budget for ``K_n``."""
    return 6 * n - 33


def complete_bipartite_budget(a: int, b: int) -> int:
    """The paper's Theorem 15 failure budget for ``K_{a,b}``."""
    return 3 * a + 4 * b - 21


def attack_complete_graph(
    graph: nx.Graph,
    algorithm: SourceDestinationAlgorithm,
    source: Node,
    destination: Node,
) -> AttackResult | None:
    """Theorem 14: break any pattern on ``K_n`` (n >= 8) with O(n) failures."""
    n = graph.number_of_nodes()
    if n < 8:
        raise ValueError("Theorem 14 needs n >= 8")
    pattern = algorithm.build(graph, source, destination)
    middles = sorted(
        (v for v in graph.nodes if v not in (source, destination)), key=repr
    )[:5]
    real_non_destination = {source, *middles}
    virtual = [v for v in graph.nodes if v != destination and v not in real_non_destination]
    padding: set = set()
    for node in real_non_destination:
        for outsider in virtual:
            if graph.has_edge(node, outsider):
                padding.add(edge(node, outsider))
    result = attack_embedded_k7(
        graph, pattern, source, destination, middles, base_failures=frozenset(padding)
    )
    if result is None:
        return None
    return AttackResult(result.failures, method="theorem-14 padding + " + result.method)


def attack_complete_bipartite(
    graph: nx.Graph,
    algorithm: SourceDestinationAlgorithm,
    source: Node,
    destination: Node,
) -> AttackResult | None:
    """Theorem 15: break any pattern on ``K_{a,b}`` (a, b >= 4).

    ``source`` and ``destination`` must lie in different parts (the
    embedded Lemma 6 instance).
    """
    left, right = bipartition(graph)
    if (source in left) == (destination in left):
        raise ValueError("place source and destination in different parts")
    if min(len(left), len(right)) < 4:
        raise ValueError("Theorem 15 needs a, b >= 4")
    destination_part = left if destination in left else right
    source_part = left if source in left else right
    t_side = sorted((v for v in destination_part if v != destination), key=repr)[:3]
    s_side = sorted((v for v in source_part if v != source), key=repr)[:3]
    real_non_destination = {source, *t_side, *s_side}
    real = real_non_destination | {destination}
    padding: set = set()
    for node in real_non_destination:
        for outsider in graph.neighbors(node):
            if outsider not in real:
                padding.add(edge(node, outsider))
    pattern = algorithm.build(graph, source, destination)
    result = attack_embedded_k44(
        graph, pattern, source, destination, t_side, s_side, base_failures=frozenset(padding)
    )
    if result is None:
        return None
    return AttackResult(result.failures, method="theorem-15 padding + " + result.method)
