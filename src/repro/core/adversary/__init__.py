"""Negative results: constructive adversaries for the impossibility theorems."""

from .few_failures import (
    attack_complete_bipartite,
    attack_complete_graph,
    complete_bipartite_budget,
    complete_graph_budget,
)
from .k44 import K44_FAILURE_BUDGET, attack_k44
from .minor_gap import GuardedSourceAlgorithm, GuardedSourcePattern, theorem2_graph
from .k7 import K7_FAILURE_BUDGET, attack_k7
from .rtolerance import attack_r_tolerance, gadget_count
from .search import (
    AttackResult,
    exhaustive_attack,
    make_view,
    random_attack,
    verify_attack,
)
from .touring import (
    attack_touring,
    attack_touring_pattern,
    cyclic_permutation_violation,
    touring_impossibility_graphs,
)

__all__ = [name for name in dir() if not name.startswith("_")]
