"""Dense integer indexing of a network: labels → ints, failure sets → masks.

The naive :class:`~repro.core.simulator.Network` answers ``view(node,
inport, failures)`` by filtering a ``frozenset`` of failed links per hop.
:class:`IndexedNetwork` does the label → integer translation once: nodes
get dense indices, links get bit positions (in the same canonical order
:func:`~repro.core.resilience.all_failure_sets` enumerates them), and a
failure set becomes one integer mask.  A node's local state under a mask
is then ``fmask & incident_mask[node]`` — and everything derived from it
(alive neighbours, the ``F ∩ E(v)`` frozenset, the label → index map for
translating a pattern's answer) is cached per ``(node, local mask)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ...graphs.edges import Edge, FailureSet, Node, edge, edge_sort_key
from ...graphs.edges import _sort_key  # one definition: engine/naive order must agree
from ..model import LocalView


@dataclass(frozen=True)
class LocalState:
    """Everything derivable from ``(node, local failure mask)`` alone."""

    #: alive neighbours as labels, in the naive simulator's sorted order
    alive_labels: tuple[Node, ...]
    #: alive neighbour label -> dense node index (doubles as the alive set)
    alive_index: dict[Node, int]
    #: ``F ∩ E(v)`` as canonical links (what a ``LocalView`` reports)
    failed_links: FailureSet


class IndexedNetwork:
    """A graph indexed for mask-based simulation.

    Node order and per-node neighbour order match the naive
    :class:`~repro.core.simulator.Network` (sorted labels, with the
    type-name/repr fallback for non-comparable labels), so indexed walks
    reproduce naive walks hop for hop.
    """

    def __init__(self, graph: nx.Graph):
        self.graph = graph
        # All-or-nothing fallback, exactly like the naive Network: one
        # non-comparable neighbourhood switches the *whole* graph to the
        # (type name, repr) order, so per-node orders never mix regimes.
        try:
            adjacency = {v: tuple(sorted(graph.neighbors(v))) for v in graph.nodes}
            labels = sorted(graph.nodes)
        except TypeError:
            adjacency = {
                v: tuple(sorted(graph.neighbors(v), key=_sort_key)) for v in graph.nodes
            }
            labels = sorted(graph.nodes, key=_sort_key)
        self.labels: tuple[Node, ...] = tuple(labels)
        self.n = len(self.labels)
        self.index: dict[Node, int] = {label: i for i, label in enumerate(self.labels)}

        links = sorted((edge(u, v) for u, v in graph.edges), key=edge_sort_key)
        self.links: tuple[Edge, ...] = tuple(links)
        self.m = len(self.links)
        self.link_bit: dict[Edge, int] = {link: 1 << i for i, link in enumerate(self.links)}
        #: bit position -> (endpoint index, endpoint index)
        self.link_ends: tuple[tuple[int, int], ...] = tuple(
            (self.index[u], self.index[v]) for u, v in self.links
        )

        neighbor_labels: list[tuple[Node, ...]] = []
        neighbor_indices: list[tuple[int, ...]] = []
        neighbor_bits: list[tuple[int, ...]] = []
        incident_mask: list[int] = []
        for label in self.labels:
            nbrs = adjacency[label]
            bits = tuple(self.link_bit[edge(label, nbr)] for nbr in nbrs)
            neighbor_labels.append(nbrs)
            neighbor_indices.append(tuple(self.index[nbr] for nbr in nbrs))
            neighbor_bits.append(bits)
            mask = 0
            for bit in bits:
                mask |= bit
            incident_mask.append(mask)
        self.neighbor_labels = tuple(neighbor_labels)
        self.neighbor_indices = tuple(neighbor_indices)
        self.neighbor_bits = tuple(neighbor_bits)
        self.incident_mask = tuple(incident_mask)

        #: same bound the naive simulator uses: one (node, inport) state
        #: per directed link plus one ⊥ state per node.
        self.state_bound = 2 * self.m + self.n + 1

        self._local_cache: dict[tuple[int, int], LocalState] = {}

    # ------------------------------------------------------------------
    # Masks.
    # ------------------------------------------------------------------

    def mask_of(self, failures: FailureSet) -> int | None:
        """The failure set as a link bitmask, or ``None`` if any entry is
        not a canonical graph link.

        ``None`` sends the caller down the naive fallback, which is what
        keeps exotic inputs (links outside the graph, *non-canonical*
        tuples like ``(1, 0)`` for canonical ``(0, 1)``) behaving exactly
        as the naive checkers treat them — notably, the naive path
        matches failures against canonical edges only, so a
        non-canonical entry is effectively alive and must NOT be
        canonicalized into a failed bit here.
        """
        mask = 0
        bit_of = self.link_bit
        for link in failures:
            bit = bit_of.get(link)
            if bit is None:
                return None
            mask |= bit
        return mask

    def failures_of(self, mask: int) -> FailureSet:
        """The inverse of :meth:`mask_of` (for reporting)."""
        links = self.links
        failed = []
        while mask:
            bit = mask & -mask
            failed.append(links[bit.bit_length() - 1])
            mask ^= bit
        return frozenset(failed)

    # ------------------------------------------------------------------
    # Local state.
    # ------------------------------------------------------------------

    def local_state(self, node: int, local_mask: int) -> LocalState:
        """The cached per-``(node, F ∩ E(v))`` derived state."""
        key = (node, local_mask)
        state = self._local_cache.get(key)
        if state is None:
            nbr_labels = self.neighbor_labels[node]
            nbr_indices = self.neighbor_indices[node]
            nbr_bits = self.neighbor_bits[node]
            alive_labels = []
            alive_index = {}
            for label, idx, bit in zip(nbr_labels, nbr_indices, nbr_bits):
                if not bit & local_mask:
                    alive_labels.append(label)
                    alive_index[label] = idx
            state = LocalState(
                alive_labels=tuple(alive_labels),
                alive_index=alive_index,
                failed_links=self.failures_of(local_mask),
            )
            self._local_cache[key] = state
        return state

    def component_of_indices(self, fmask: int, start: int) -> list[int]:
        """``start``'s component under ``fmask`` as node indices.

        Uncached flood — for sampled sweeps on graphs too large for the
        per-mask partition cache to pay off.
        """
        neighbor_indices = self.neighbor_indices
        neighbor_bits = self.neighbor_bits
        seen = bytearray(self.n)
        seen[start] = 1
        stack = [start]
        members = [start]
        while stack:
            node = stack.pop()
            indices = neighbor_indices[node]
            bits = neighbor_bits[node]
            for i in range(len(indices)):
                if bits[i] & fmask:
                    continue
                nxt = indices[i]
                if not seen[nxt]:
                    seen[nxt] = 1
                    stack.append(nxt)
                    members.append(nxt)
        return members

    def connected_indices(self, fmask: int, a: int, b: int) -> bool:
        """Is ``b`` reachable from ``a`` under ``fmask``?  (Uncached BFS —
        for one-off queries where caching whole partitions would not pay.)"""
        if a == b:
            return True
        neighbor_indices = self.neighbor_indices
        neighbor_bits = self.neighbor_bits
        seen = bytearray(self.n)
        seen[a] = 1
        stack = [a]
        while stack:
            node = stack.pop()
            indices = neighbor_indices[node]
            bits = neighbor_bits[node]
            for i in range(len(indices)):
                if bits[i] & fmask:
                    continue
                nxt = indices[i]
                if nxt == b:
                    return True
                if not seen[nxt]:
                    seen[nxt] = 1
                    stack.append(nxt)
        return False

    def view(self, node: int, inport: int, fmask: int) -> LocalView:
        """The :class:`LocalView` a pattern would see (``inport < 0`` = ⊥).

        Only materialized on memoization misses; byte-for-byte equal to
        what the naive simulator builds for the same scenario.
        """
        state = self.local_state(node, fmask & self.incident_mask[node])
        return LocalView(
            node=self.labels[node],
            inport=None if inport < 0 else self.labels[inport],
            alive=state.alive_labels,
            failed_links=state.failed_links,
        )
