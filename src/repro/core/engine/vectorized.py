"""Vectorized numpy mask-walk backend (``ExperimentSession(backend="numpy")``).

The scalar engine (:mod:`.memo`) walks one ``(source, destination,
failure mask)`` scenario at a time; exhaustive sweeps spend almost all
their time re-running that loop 2^|E| times per destination.  This
module batches **many failure masks at once** through numpy array ops:

* a family of failure sets becomes one multi-word ``uint64`` bitset
  array of shape ``(k, ceil(m / 64))`` (:class:`MaskBatch`, chunked so
  working sets stay bounded) — one word per 64 links, so fat-tree(8)+
  and large zoo members vectorize instead of falling back;
* forwarding decisions are flattened into a dense per-chunk table
  indexed by ``offset[state] + compact_local``, where ``compact_local``
  ranks the node's *observed* local failure masks
  (:class:`_DecisionTable`).  Entries are produced by the same
  :meth:`~repro.core.engine.memo.MemoizedPattern.next_hop` the scalar
  walks use, so decision semantics are identical by construction;
* all walks of a batch advance one hop per step via gathers on that
  table, with finished walks compacted away
  (:func:`_walk_delivered`); a walk that neither delivers nor drops
  within ``state_bound`` steps has necessarily revisited a ``(node,
  inport)`` state and is a loop — no per-walk seen-sets needed;
* connectivity comes from a min-label propagation over the link list
  (:meth:`_MaskChunk.labels_for`), giving every destination's surviving
  component for the whole chunk in one pass.

Verdict parity is bit-for-bit: scenario counts, the ``exhaustive``
flag, and the first counterexample (re-walked scalar for its exact
trace, sources re-ranked in the checkers' ``sorted_nodes`` order) all
match the scalar engine and the naive reference.  Failure sets naming
links outside the graph take the same naive fallback the scalar engine
takes, in their original positions.

numpy is an *optional* dependency: everything here imports without it,
:func:`require_numpy` raises the clean gating error, and every entry
point raises :class:`VectorizedUnsupported` (carrying any materialized
failure sets) when an instance cannot take the vectorized path — the
scalar engine then produces the identical verdict.
"""

from __future__ import annotations

from itertools import combinations

try:  # numpy is optional: the module must import (and gate) without it
    import numpy as np
except ModuleNotFoundError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

from repro import obs as _obs

from ...graphs.connectivity import component_of
from ...graphs.edges import FailureSet, Node, sorted_nodes
from ..resilience import DEFAULT_FAILURE_PARAMS
from ..simulator import route as naive_route
from .indexed import IndexedNetwork
from .memo import MemoizedPattern, route_indexed

#: masks per vectorized chunk — bounds every (masks x nodes) matrix
CHUNK_MASKS = 1 << 15
#: cap on dense decision-table entries per chunk (sum over states of
#: observed local masks); beyond it the scalar engine is the better tool
TABLE_BUDGET = 1 << 21
#: cap on the (walks x states) seen-bitmap of the traffic walker
SEEN_BUDGET = 1 << 26
#: bounded number of cached mask batches per engine state
BATCH_CACHE_LIMIT = 8

NUMPY_GATING_ERROR = (
    'backend="numpy" requires the optional numpy dependency, which is not '
    'installed; install numpy or use backend="engine"'
)


def numpy_available() -> bool:
    """Is the optional numpy dependency importable?"""
    return np is not None


def require_numpy() -> None:
    """Raise the clean gating error when numpy is missing."""
    if np is None:
        raise RuntimeError(NUMPY_GATING_ERROR)


def vectorizable(network: IndexedNetwork) -> bool:
    """Can this network take the vectorized path at all?

    Masks pack into multi-word bitset arrays (one ``uint64`` word per
    64 links), so link count is no longer a ceiling — only a missing
    numpy keeps an instance off the vectorized path up front.
    """
    return np is not None


def mask_words(count: int) -> int:
    """``uint64`` words needed for ``count`` bits (at least one)."""
    return max(1, (count + 63) >> 6)


class VectorizedUnsupported(Exception):
    """This instance cannot take the vectorized path.

    ``reason`` is a short machine-readable label for *why* the sweep
    dropped off the vectorized path — it feeds the ``reason`` label of
    ``repro_numpy_fallbacks_total`` so ``repro stats`` can say exactly
    which budget or gate fired (``table_budget``, ``seen_budget``,
    ``unindexed_node``, ``pattern_error``, ...).

    Carries an equivalent failure-set list when the attempt already
    consumed a one-shot iterator (reconstructed from the packed batch
    by :func:`reconstruct_failure_sets`), so the caller can fall back
    to the scalar engine without re-consuming it.  Raised *before* any
    partial evaluation — the fallback always recomputes from scratch
    and stays bit-identical.
    """

    def __init__(
        self,
        failure_sets: list[FailureSet] | None = None,
        reason: str = "unsupported",
    ):
        super().__init__(f"instance not vectorizable ({reason})")
        self.failure_sets = failure_sets
        self.reason = reason


# ---------------------------------------------------------------------------
# Mask batches.
# ---------------------------------------------------------------------------


_WORD = 0xFFFFFFFFFFFFFFFF


def _pack_words(values: list[int], words: int):
    """Python-int bitmasks -> a ``(len(values), words)`` uint64 array."""
    packed = np.empty((len(values), words), dtype=np.uint64)
    if words == 1:
        packed[:, 0] = np.array(values, dtype=np.uint64)
        return packed
    for j in range(words):
        shift = 64 * j
        packed[:, j] = [(value >> shift) & _WORD for value in values]
    return packed


def _combine_words(row) -> int:
    """One multi-word uint64 row -> the python-int bitmask it packs."""
    mask = 0
    for j, word in enumerate(row):
        mask |= int(word) << (64 * j)
    return mask


class _MaskChunk:
    """One bounded slice of a mask batch plus its lazily-built matrices.

    ``masks`` is a ``(k, W)`` uint64 bitset array with ``W =
    mask_words(network.m)`` — bit ``b`` of mask row ``r`` lives at
    ``masks[r, b >> 6] >> (b & 63)``.
    """

    def __init__(self, masks, positions):
        self.masks = masks  # uint64 (k, W), one word per 64 link bits
        self.positions = positions  # int64 (k,), original enumeration order
        self._locals: tuple[list, object] | None = None
        self._labels = None
        self._alive: list | None = None
        self._dist: dict[int, object] = {}

    def __len__(self) -> int:
        return len(self.positions)

    def mask_int(self, row: int) -> int:
        """Mask row ``row`` as the python-int bitmask the scalar engine uses."""
        return _combine_words(self.masks[row])

    def alive_columns(self, network: IndexedNetwork) -> list:
        """Per link bit: a bool column, True where the link survives
        (cached — labelling and every per-destination BFS reuse it)."""
        if self._alive is None:
            one = np.uint64(1)
            self._alive = [
                ((self.masks[:, b >> 6] >> np.uint64(b & 63)) & one) == 0
                for b in range(network.m)
            ]
        return self._alive

    def locals_for(self, network: IndexedNetwork):
        """Per node: observed local masks (unique python ints, in the
        dedup order the decision table is laid out in) and, as a
        ``(k, n)`` matrix, each row's rank among them."""
        if self._locals is None:
            words = self.masks.shape[1]
            incident = _pack_words(
                [network.incident_mask[v] for v in range(network.n)], words
            )
            uniqs = []
            compact = np.empty((len(self.positions), network.n), dtype=np.int64)
            for v in range(network.n):
                local = self.masks & incident[v][None, :]
                if words == 1:
                    uniq, inverse = np.unique(local[:, 0], return_inverse=True)
                    uniq_ints = [int(u) for u in uniq]
                else:
                    uniq, inverse = np.unique(local, axis=0, return_inverse=True)
                    uniq_ints = [_combine_words(urow) for urow in uniq]
                uniqs.append(uniq_ints)
                compact[:, v] = inverse.reshape(-1)
            self._locals = (uniqs, compact)
        return self._locals

    def labels_for(self, network: IndexedNetwork):
        """Component label (minimum member index) per node, per mask row.

        Min-label propagation over the link list until fixpoint — the
        numpy twin of one :class:`~.components.ComponentTracker` flood
        per mask, computed for the whole chunk at once.
        """
        if self._labels is None:
            k = len(self.positions)
            labels = np.broadcast_to(
                np.arange(network.n, dtype=np.int64), (k, network.n)
            ).copy()
            alive = self.alive_columns(network)
            changed = True
            while changed:
                changed = False
                for b, (u, v) in enumerate(network.link_ends):
                    a = alive[b]
                    lu = labels[:, u]
                    lv = labels[:, v]
                    best = np.where(a, np.minimum(lu, lv), lu)
                    if (best < lu).any():
                        labels[:, u] = best
                        changed = True
                        lu = best
                    best = np.where(a, np.minimum(lu, lv), lv)
                    if (best < lv).any():
                        labels[:, v] = best
                        changed = True
            self._labels = labels
        return self._labels

    def distances_to(self, network: IndexedNetwork, destination: int):
        """Hops to ``destination`` per (mask row, node); ``-1`` means
        disconnected.  One level-synchronous BFS for the whole chunk."""
        dist = self._dist.get(destination)
        if dist is None:
            k = len(self.positions)
            dist = np.full((k, network.n), -1, dtype=np.int64)
            dist[:, destination] = 0
            frontier = np.zeros((k, network.n), dtype=bool)
            frontier[:, destination] = True
            alive = self.alive_columns(network)
            level = 0
            while frontier.any():
                level += 1
                nxt = np.zeros((k, network.n), dtype=bool)
                for b, (u, v) in enumerate(network.link_ends):
                    a = alive[b]
                    nxt[:, v] |= frontier[:, u] & a
                    nxt[:, u] |= frontier[:, v] & a
                nxt &= dist < 0
                dist[nxt] = level
                frontier = nxt
            self._dist[destination] = dist
        return dist


class MaskBatch:
    """An ordered family of failure sets packed for vectorized walks.

    ``chunks`` hold the maskable sets (original positions attached);
    ``fallbacks`` hold the sets naming links outside the canonical link
    set, which keep their naive-matching semantics via per-set scalar
    evaluation in their original order.
    """

    def __init__(self, network: IndexedNetwork):
        self.network = network
        self.chunks: list[_MaskChunk] = []
        self.fallbacks: list[tuple[int, FailureSet]] = []
        self.total = 0

    def _finish(self, masks: list[int], positions: list[int], total: int) -> "MaskBatch":
        self.total = total
        if masks:
            mask_array = _pack_words(masks, mask_words(self.network.m))
            position_array = np.array(positions, dtype=np.int64)
            for lo in range(0, len(masks), CHUNK_MASKS):
                hi = lo + CHUNK_MASKS
                self.chunks.append(
                    _MaskChunk(mask_array[lo:hi], position_array[lo:hi])
                )
        return self

    @classmethod
    def from_failure_sets(cls, network: IndexedNetwork, failure_sets) -> "MaskBatch":
        batch = cls(network)
        bit_of = network.link_bit
        masks: list[int] = []
        positions: list[int] = []
        total = 0
        for position, failures in enumerate(failure_sets):
            total = position + 1
            mask = 0
            for link in failures:
                bit = bit_of.get(link)
                if bit is None:
                    mask = -1  # non-canonical entry: naive semantics
                    break
                mask |= bit
            if mask < 0:
                batch.fallbacks.append((position, failures))
            else:
                masks.append(mask)
                positions.append(position)
        return batch._finish(masks, positions, total)

    @classmethod
    def exhaustive(cls, network: IndexedNetwork, max_failures: int | None = None) -> "MaskBatch":
        """All failure masks, in ``all_failure_sets`` enumeration order.

        The canonical link order *is* the bit order
        (:class:`~.indexed.IndexedNetwork` sorts links exactly like
        ``all_failure_sets``), so enumerating bit-position combinations
        reproduces the frozenset enumeration without building a single
        frozenset.
        """
        batch = cls(network)
        m = network.m
        limit = m if max_failures is None else min(max_failures, m)
        masks: list[int] = []
        append = masks.append
        for size in range(limit + 1):
            for combo in combinations(range(m), size):
                mask = 0
                for b in combo:
                    mask |= 1 << b
                append(mask)
        return batch._finish(masks, list(range(len(masks))), len(masks))


def _state_cache(state) -> dict:
    cache = getattr(state, "_vector_cache", None)
    if cache is None:
        cache = {}
        state._vector_cache = cache
    return cache


def _bounded_insert(cache: dict, key, value) -> None:
    """FIFO-bounded insert with the session caches' discipline: an
    existing key replaces its own slot (never evicting a neighbour) and
    refreshed keys move to the tail (dict order is insertion order)."""
    if key in cache:
        del cache[key]
    while len(cache) >= BATCH_CACHE_LIMIT:
        cache.pop(next(iter(cache)))
    cache[key] = value


def default_batch(state, default_params=DEFAULT_FAILURE_PARAMS) -> tuple[MaskBatch, bool]:
    """The (cached) batch for the checkers' default failure enumeration.

    Mirrors :func:`~repro.core.resilience.default_failure_sets`:
    exhaustive below the link limit, the deterministic sample above it.
    Cached on the engine state so every destination of a grid sweep
    shares one batch (and its component labels).
    """
    cache = _state_cache(state)
    key = ("default", default_params)
    entry = cache.get(key)
    if entry is not None:
        cache[key] = cache.pop(key)  # refresh: move to the FIFO tail
    else:
        from ..resilience import EXHAUSTIVE_LINK_LIMIT, sampled_failure_sets

        max_failures, samples, seed = default_params
        network = state.network
        if network.m <= EXHAUSTIVE_LINK_LIMIT:
            entry = (MaskBatch.exhaustive(network, max_failures), True)
        else:
            iterator = sampled_failure_sets(
                state.graph, samples=samples, max_failures=max_failures, seed=seed
            )
            entry = (MaskBatch.from_failure_sets(network, iterator), False)
        _bounded_insert(cache, key, entry)
    return entry


def batch_for(state, failure_sets) -> MaskBatch:
    """A batch for an explicit failure-set family.

    Lists/tuples are cached by identity plus an element snapshot — grid
    sweeps pass the same materialized list for every destination, and
    the snapshot comparison (identity-shortcut per element, so O(n)
    pointer checks on the unchanged case) catches both in-place
    mutation and a recycled id, never serving a stale batch.  One-shot
    iterators build streaming, uncached.
    """
    if isinstance(failure_sets, (list, tuple)):
        cache = _state_cache(state)
        snapshot = tuple(failure_sets)
        key = ("sets", id(failure_sets))
        entry = cache.get(key)
        if entry is None or entry[0] != snapshot:
            entry = (snapshot, MaskBatch.from_failure_sets(state.network, snapshot))
        _bounded_insert(cache, key, entry)  # insert, or refresh to the tail
        return entry[1]
    return MaskBatch.from_failure_sets(state.network, failure_sets)


# ---------------------------------------------------------------------------
# Dense decision tables.
# ---------------------------------------------------------------------------


class _DecisionTable:
    """Per-(chunk, pattern) dense decision (and link) tables.

    ``D[OFF[state] + compact[row, node]]`` is the scalar engine's
    ``next_hop(node, inport, local_mask)`` for mask row ``row`` — every
    entry comes from the shared :class:`MemoizedPattern`, so the two
    backends cannot disagree on a single decision.  States whose inport
    link is locally failed are unreachable (the previous hop only
    forwards over alive links) and are filled without consulting the
    pattern.
    """

    def __init__(
        self,
        network: IndexedNetwork,
        memo: MemoizedPattern,
        chunk: _MaskChunk,
        with_links: bool = False,
    ):
        from .memo import ILLEGAL

        uniqs, compact = chunk.locals_for(network)
        self.compact = compact
        n = network.n
        stride = n + 1
        self.state_space = (n + 1) * stride
        size = sum(
            (len(network.neighbor_indices[v]) + 1) * len(uniqs[v]) for v in range(n)
        )
        if size > TABLE_BUDGET:
            raise VectorizedUnsupported(reason="table_budget")
        offsets = np.zeros(self.state_space, dtype=np.int64)
        decisions = np.empty(size, dtype=np.int64)
        links = np.full(size, -1, dtype=np.int64) if with_links else None
        link_id = (
            {pair: i for i, pair in enumerate(network.link_ends)} if with_links else None
        )
        next_hop = memo.next_hop
        pos = 0
        for v in range(n):
            uniq_ints = uniqs[v]  # already python ints (multi-word safe)
            inports = (-1,) + network.neighbor_indices[v]
            inport_bits = (0,) + network.neighbor_bits[v]
            for inport, bit in zip(inports, inport_bits):
                offsets[v * stride + inport + 1] = pos
                for local in uniq_ints:
                    if bit & local:
                        decisions[pos] = ILLEGAL  # unreachable state
                    else:
                        decision = next_hop(v, inport, local)
                        decisions[pos] = decision
                        if with_links and decision >= 0:
                            pair = (v, decision) if v < decision else (decision, v)
                            links[pos] = link_id[pair]
                    pos += 1
        self.offsets = offsets
        self.decisions = decisions
        self.links = links


def reconstruct_failure_sets(batch: MaskBatch) -> list[FailureSet]:
    """The batch's ordered failure-set family, rebuilt from its masks.

    Exact: every maskable set round-trips through ``failures_of`` (its
    entries were all canonical links, or it would be a fallback), and
    fallbacks kept their original frozensets.  Lets the vectorized
    sweeps consume one-shot iterators *streaming* and still hand the
    scalar path an equivalent list if they must fall back later.
    """
    sets: list[FailureSet | None] = [None] * batch.total
    for position, failures in batch.fallbacks:
        sets[position] = failures
    network = batch.network
    for chunk in batch.chunks:
        for row, position in enumerate(chunk.positions):
            sets[int(position)] = network.failures_of(chunk.mask_int(row))
    return sets


def _recovered_unsupported(recover_batch, reason, state) -> VectorizedUnsupported:
    """The fallback exception, with the one-shot family reconstructed
    exactly once: the rebuilt list rides the exception *and* is
    pre-seeded (with its packed batch) into the state's batch cache, so
    the scalar retry neither re-consumes the iterator nor re-walks the
    family through :meth:`MaskBatch.from_failure_sets`."""
    if recover_batch is None:
        return VectorizedUnsupported(reason=reason)
    recovered = reconstruct_failure_sets(recover_batch)
    if state is not None:
        _bounded_insert(
            _state_cache(state), ("sets", id(recovered)), (tuple(recovered), recover_batch)
        )
    return VectorizedUnsupported(recovered, reason=reason)


def _table_for(
    network, memo, chunk, recover_batch=None, with_links=False, state=None
) -> _DecisionTable:
    """Build the chunk's table; pattern misbehavior on never-reached
    states must not change outcomes, so any error falls back scalar.
    ``recover_batch`` marks a batch built from a consumed one-shot
    iterator: its reconstructed family rides the exception so the
    scalar fallback can re-walk it.  When ``state`` is given the
    reconstructed list is also seeded into the state's batch cache, so
    a retry through :func:`batch_for` with that list is a cache hit
    (served the already-packed batch) instead of a second full pack."""
    try:
        table = _DecisionTable(network, memo, chunk, with_links=with_links)
    except VectorizedUnsupported as unsupported:
        raise _recovered_unsupported(
            recover_batch, unsupported.reason, state
        ) from None
    except Exception:
        raise _recovered_unsupported(recover_batch, "pattern_error", state) from None
    telemetry = _obs.active()
    if telemetry is not None:
        # one update per chunk — the only instrumentation granularity
        # the vectorized hot path ever pays for
        telemetry.count("repro_numpy_chunks_total", help="mask chunks walked")
        telemetry.count(
            "repro_numpy_masks_total", len(chunk), help="failure masks walked in chunks"
        )
        telemetry.count(
            "repro_numpy_table_entries_total",
            len(table.decisions),
            help="dense decision-table entries built",
        )
    return table


# ---------------------------------------------------------------------------
# The mask walk.
# ---------------------------------------------------------------------------


def _walk_delivered(network: IndexedNetwork, table: _DecisionTable, destination: int, eligible):
    """Delivery flags for every eligible ``(mask row, source)`` walk.

    Walks advance in lock-step; finished walks are compacted away.  A
    walk still alive after ``state_bound`` steps has revisited a packed
    ``(node, inport)`` state (pigeonhole) and can never deliver — the
    exact condition under which the scalar walk reports a loop.
    """
    rows, sources = np.nonzero(eligible)  # row-major: mask order, then node order
    delivered = np.zeros(len(rows), dtype=bool)
    if len(rows) == 0:
        return delivered, rows, sources
    stride = network.n + 1
    walk = np.arange(len(rows))
    node = sources.astype(np.int64)
    state = node * stride
    mrow = rows.astype(np.int64)
    offsets = table.offsets
    decisions = table.decisions
    compact = table.compact
    lane_steps = 0
    steps_run = 0
    for _ in range(network.state_bound):
        lane_steps += len(walk)
        steps_run += 1
        decision = decisions[offsets[state] + compact[mrow, node]]
        arrived = decision == destination
        if arrived.any():
            delivered[walk[arrived]] = True
        alive = decision >= 0
        cont = alive & ~arrived
        if not cont.any():
            break
        previous = node[cont]
        node = decision[cont]
        state = node * stride + previous + 1
        mrow = mrow[cont]
        walk = walk[cont]
    telemetry = _obs.active()
    if telemetry is not None:
        # batched per chunk walk: lane_steps / walked_lanes is the
        # compaction ratio (1.0 would mean no walk ever finished early)
        telemetry.count("repro_numpy_walks_total", len(rows), help="vectorized mask walks")
        telemetry.count(
            "repro_numpy_lane_steps_total",
            lane_steps,
            help="vectorized walk-steps actually advanced (post-compaction)",
        )
        telemetry.count(
            "repro_numpy_dense_steps_total",
            len(rows) * steps_run,
            help="walk-steps a compaction-free walker would have advanced",
        )
    return delivered, rows, sources


# ---------------------------------------------------------------------------
# Destination-pattern resilience sweep (the numpy twin of
# ``sweep_pattern_resilience``).
# ---------------------------------------------------------------------------


def _naive_set_check(state, pattern, destination, wanted, failures):
    """Scalar evaluation of one non-maskable failure set — the letter of
    the scalar engine's naive-fallback branch.  Returns
    ``(scenarios checked within this set, Counterexample | None)``."""
    from ..resilience import Counterexample

    telemetry = _obs.active()
    if telemetry is not None:
        telemetry.count(
            "repro_numpy_naive_sets_total",
            help="non-maskable failure sets evaluated scalar inside numpy sweeps",
        )

    component = sorted_nodes(component_of(state.graph, destination, failures))
    naive = state.naive_network
    checked = 0
    for source in component:
        if source == destination or (wanted is not None and source not in wanted):
            continue
        checked += 1
        result = naive_route(naive, pattern, source, destination, failures)
        if not result.delivered:
            return checked, Counterexample(source, destination, failures, result)
    return checked, None


def _ordered_row_failure(network, component_row, eligible_row, delivered_flags_row):
    """The first failing source of one mask row, in checker order.

    The scalar checkers iterate the *whole component* via
    ``sorted_nodes`` (which native-sorts a homogeneous component even
    when the graph fell back to repr order) and then skip ineligible
    sources without counting them — so node-index order is not always
    iteration order.  Re-rank the one failing row scalarly.  Returns
    ``(source index, scenarios checked within this row)``.
    """
    labels = network.labels
    eligible_members = [int(i) for i in np.nonzero(eligible_row)[0]]
    rank_of = {labels[i]: position for position, i in enumerate(eligible_members)}
    ordered = sorted_nodes(
        labels[int(i)] for i in np.nonzero(component_row)[0]
    )
    checked = 0
    for label in ordered:
        position = rank_of.get(label)
        if position is None:
            continue  # the destination itself, or outside sources=
        checked += 1
        if not delivered_flags_row[position]:
            return network.index[label], checked
    raise AssertionError("no failing source in a failing row")  # pragma: no cover


def pattern_sweep_numpy(
    state,
    pattern,
    destination: Node,
    sources=None,
    failure_sets=None,
    exhaustive: bool | None = None,
    default_params=DEFAULT_FAILURE_PARAMS,
):
    """Vectorized twin of :func:`~.sweep.sweep_pattern_resilience`.

    Identical :class:`~repro.core.resilience.Verdict`: same scenario
    count, same ``exhaustive`` flag, same first counterexample with the
    same scalar-rewalked trace.  Raises :class:`VectorizedUnsupported`
    (carrying any materialized failure sets) when the instance cannot
    vectorize.
    """
    from ..resilience import Counterexample, Verdict

    network = state.network
    if not vectorizable(network):
        raise VectorizedUnsupported(reason="numpy_missing")
    dest_idx = network.index.get(destination)
    if dest_idx is None:
        raise VectorizedUnsupported(reason="unindexed_node")

    one_shot_batch = None
    if failure_sets is None:
        batch, default_exhaustive = default_batch(state, default_params)
        if exhaustive is None:
            exhaustive = default_exhaustive
    else:
        batch = batch_for(state, failure_sets)
        if not isinstance(failure_sets, (list, tuple)):
            # the caller's one-shot iterator is consumed: a later
            # fallback reconstructs the family from this batch
            one_shot_batch = batch
        if exhaustive is None:
            exhaustive = False

    wanted = None if sources is None else set(sources)
    src_ok = np.ones(network.n, dtype=bool)
    src_ok[dest_idx] = False
    if wanted is not None:
        allow = np.zeros(network.n, dtype=bool)
        for source in wanted:
            index = network.index.get(source)
            if index is not None:
                allow[index] = True
        src_ok &= allow

    counts = np.zeros(batch.total, dtype=np.int64)
    # best = (position, scenarios checked within that set, counterexample
    # thunk) for the earliest failing failure set found so far
    best = None

    for position, failures in batch.fallbacks:
        checked, counterexample = _naive_set_check(
            state, pattern, destination, wanted, failures
        )
        counts[position] = checked
        if counterexample is not None:
            # fallback positions ascend, so this is the earliest fallback
            # failure; later fallbacks cannot matter (their counts only
            # feed the slice before the winning position)
            best = (position, checked, counterexample)
            break

    memo = MemoizedPattern(network, pattern)
    for chunk in batch.chunks:
        if best is not None and int(chunk.positions[0]) > best[0]:
            break  # everything here lies after the earliest failure
        labels = chunk.labels_for(network)
        eligible = (labels == labels[:, dest_idx][:, None]) & src_ok[None, :]
        counts[chunk.positions] = eligible.sum(axis=1)
        table = _table_for(network, memo, chunk, one_shot_batch, state=state)
        delivered, rows, sources_idx = _walk_delivered(network, table, dest_idx, eligible)
        failed = ~delivered
        if failed.any():
            first = int(np.argmax(failed))
            row = int(rows[first])
            position = int(chunk.positions[row])
            if best is None or position < best[0]:
                row_flags = delivered[rows == row]
                component_row = labels[row] == labels[row, dest_idx]
                src_idx, partial = _ordered_row_failure(
                    network, component_row, eligible[row], row_flags
                )
                fmask = chunk.mask_int(row)
                failures = network.failures_of(fmask)
                result = route_indexed(network, memo, src_idx, dest_idx, fmask)
                counterexample = Counterexample(
                    network.labels[src_idx], destination, failures, result
                )
                best = (position, partial, counterexample)
            break  # chunks are position-ordered: later failures lose

    if best is not None:
        position, partial, counterexample = best
        checked = int(counts[:position].sum()) + partial
        return Verdict(False, checked, counterexample, exhaustive)
    return Verdict(True, int(counts.sum()), exhaustive=exhaustive)


# ---------------------------------------------------------------------------
# Touring sweep (the numpy twin of ``_sweep_touring``'s inner loop).
# ---------------------------------------------------------------------------


def touring_sweep_numpy(
    state,
    pattern,
    starts: list[Node],
    failure_sets=None,
    exhaustive: bool | None = None,
    default_params=DEFAULT_FAILURE_PARAMS,
):
    """Vectorized perfect-touring check: identical Verdicts.

    Phase 1 advances every ``(start, mask)`` walk ``state_bound + 1``
    steps — any undropped walk is then provably inside its terminal
    cycle.  Phase 2 walks the cycle once more, accumulating the visited
    nodes as a multi-word ``n``-bit bitset (one uint64 word per 64
    nodes), and coverage is one vectorized compare against the
    component bitset.
    """
    from ..resilience import Counterexample, Verdict

    network = state.network
    if not vectorizable(network):
        raise VectorizedUnsupported(reason="numpy_missing")
    start_indices = []
    for start in starts:
        index = network.index.get(start)
        if index is None:
            # naive per-start fallback: scalar path
            raise VectorizedUnsupported(reason="unindexed_node")
        start_indices.append(index)
    if not start_indices:
        raise VectorizedUnsupported(reason="no_starts")

    one_shot_batch = None
    if failure_sets is None:
        batch, default_exhaustive = default_batch(state, default_params)
        if exhaustive is None:
            exhaustive = default_exhaustive
    else:
        batch = batch_for(state, failure_sets)
        if not isinstance(failure_sets, (list, tuple)):
            one_shot_batch = batch
        if exhaustive is None:
            exhaustive = False

    n_starts = len(start_indices)
    memo = MemoizedPattern(network, pattern)
    best = None  # (position, start offset, failures frozenset)

    from ..simulator import tours_component

    for position, failures in batch.fallbacks:
        if best is not None:
            break  # fallback positions ascend: the earliest failure is set
        for offset, start in enumerate(starts):
            if not tours_component(state.naive_network, pattern, start, failures):
                best = (position, offset, failures)
                break

    stride = network.n + 1
    # visited-node bitsets: one uint64 word per 64 nodes, so touring
    # vectorizes past 64 nodes exactly like masks do past 64 links
    node_words = mask_words(network.n)
    node_bits = np.zeros((network.n, node_words), dtype=np.uint64)
    node_range = np.arange(network.n)
    node_bits[node_range, node_range >> 6] = np.left_shift(
        np.uint64(1), (node_range & 63).astype(np.uint64)
    )
    starts_column = np.array(start_indices, dtype=np.int64)
    for chunk in batch.chunks:
        if best is not None and int(chunk.positions[0]) > best[0]:
            break
        k = len(chunk)
        table = _table_for(network, memo, chunk, one_shot_batch, state=state)
        labels = chunk.labels_for(network)
        # component bitset and size per (mask row, start)
        comp_bits = np.empty((k, n_starts, node_words), dtype=np.uint64)
        comp_size = np.empty((k, n_starts), dtype=np.int64)
        for offset, start_idx in enumerate(start_indices):
            member = labels == labels[:, start_idx][:, None]
            for j in range(node_words):
                lo, hi = 64 * j, min(network.n, 64 * (j + 1))
                segment = np.left_shift(
                    np.uint64(1), np.arange(hi - lo, dtype=np.uint64)
                )
                comp_bits[:, offset, j] = (member[:, lo:hi] * segment[None, :]).sum(
                    axis=1, dtype=np.uint64
                )
            comp_size[:, offset] = member.sum(axis=1)
        walks = k * n_starts
        mrow = np.repeat(np.arange(k, dtype=np.int64), n_starts)
        node = np.tile(starts_column, k)
        state_arr = node * stride
        walk = np.arange(walks)
        dropped = np.zeros(walks, dtype=bool)
        final_state = np.zeros(walks, dtype=np.int64)
        offsets = table.offsets
        decisions = table.decisions
        compact = table.compact
        # phase 1: run past every transient prefix (into the cycle)
        for _ in range(network.state_bound + 1):
            decision = decisions[offsets[state_arr] + compact[mrow, node]]
            bad = decision < 0
            if bad.any():
                dropped[walk[bad]] = True
            cont = ~bad
            if not cont.any():
                walk = walk[:0]
                state_arr = state_arr[:0]
                break
            previous = node[cont]
            node = decision[cont]
            state_arr = node * stride + previous + 1
            mrow = mrow[cont]
            walk = walk[cont]
        final_state[walk] = state_arr
        # phase 2: lap the cycle once, accumulating visited-node bitsets
        survivors = np.nonzero(~dropped)[0]
        cycle_bits = np.zeros((walks, node_words), dtype=np.uint64)
        if len(survivors):
            entry = final_state[survivors]
            cur_state = entry.copy()
            cur_node = cur_state // stride
            acc = node_bits[cur_node]  # fancy index: a fresh (survivors, W) copy
            mrow2 = survivors // n_starts
            walk2 = np.arange(len(survivors))
            active_entry = entry
            for _ in range(network.state_bound + 1):
                decision = decisions[offsets[cur_state] + compact[mrow2, cur_node]]
                previous = cur_node
                cur_node = decision
                cur_state = cur_node * stride + previous + 1
                acc[walk2] |= node_bits[cur_node]
                open_walks = cur_state != active_entry
                if not open_walks.any():
                    break
                cur_state = cur_state[open_walks]
                cur_node = cur_node[open_walks]
                mrow2 = mrow2[open_walks]
                walk2 = walk2[open_walks]
                active_entry = active_entry[open_walks]
            cycle_bits[survivors] = acc
        comp_bits_flat = comp_bits.reshape(walks, node_words)
        covered = (comp_size.reshape(-1) <= 1) | (
            ~dropped & ((cycle_bits & comp_bits_flat) == comp_bits_flat).all(axis=1)
        )
        if not covered.all():
            first = int(np.argmax(~covered))
            row, offset = divmod(first, n_starts)
            position = int(chunk.positions[row])
            if best is None or position < best[0]:
                best = (position, offset, network.failures_of(chunk.mask_int(row)))
            break

    if best is not None:
        position, offset, failures = best
        checked = position * n_starts + offset + 1
        counterexample = Counterexample(
            starts[offset], None, failures, None, note="tour does not cover component"
        )
        return Verdict(False, checked, counterexample, exhaustive)
    return Verdict(True, batch.total * n_starts, exhaustive=exhaustive)


# ---------------------------------------------------------------------------
# Batched traffic routing (many failure masks per demand matrix).
# ---------------------------------------------------------------------------

#: per-walk outcome codes of the traffic walker
_PENDING, _DELIVERED, _DROPPED, _LOOPED = 0, 1, 2, 3


def _walk_traffic(network, table, chunk, destination, starts, volumes, loads, out, steps_out):
    """Walk every ``(start state, mask)`` flow with its exact trajectory.

    Unlike the resilience walker, per-link loads need each walk stopped
    at its first revisited ``(node, inport)`` state (a loop loads its
    transient prefix plus each cycle link exactly once), so walks carry
    a dense seen-bitmap over the packed state space.  ``loads`` is the
    global ``(sets, links)`` counter; ``out``/``steps_out`` are
    ``(start, sets)`` outcome/step matrices, scatter-written here.
    """
    k = len(chunk)
    n_starts = len(starts)
    if n_starts * k * table.state_space > SEEN_BUDGET:
        raise VectorizedUnsupported(reason="seen_budget")
    stride = network.n + 1
    positions = chunk.positions
    walks = n_starts * k
    srow = np.repeat(np.arange(n_starts, dtype=np.int64), k)
    mrow = np.tile(np.arange(k, dtype=np.int64), n_starts)
    state = np.repeat(np.array(starts, dtype=np.int64), k)
    node = state // stride
    volume = np.repeat(np.array(volumes, dtype=np.int64), k)
    walk = np.arange(walks)
    seen = np.zeros((walks, table.state_space), dtype=bool)
    seen[walk, state] = True
    # no trivial source==destination walks: Demand rejects self-demands,
    # and starts come from the router's validated demand groups
    offsets = table.offsets
    decisions = table.decisions
    link_ids = table.links
    compact = table.compact
    for step in range(1, table.state_space + 2):
        if not len(walk):
            return
        offset = offsets[state] + compact[mrow, node]
        decision = decisions[offset]
        dropped = decision < 0
        crossing = ~dropped
        if crossing.any():
            np.add.at(
                loads,
                (positions[mrow[crossing]], link_ids[offset][crossing]),
                volume[crossing],
            )
        arrived = decision == destination
        columns = positions[mrow]
        if arrived.any():
            out[srow[arrived], columns[arrived]] = _DELIVERED
            steps_out[srow[arrived], columns[arrived]] = step
        if dropped.any():
            out[srow[dropped], columns[dropped]] = _DROPPED
        cont = crossing & ~arrived
        if not cont.any():
            return
        previous = node[cont]
        next_node = decision[cont]
        next_state = next_node * stride + previous + 1
        srow, mrow, volume, walk, columns = (
            a[cont] for a in (srow, mrow, volume, walk, columns)
        )
        looped = seen[walk, next_state]
        if looped.any():
            # the crossing into the repeated state is already loaded,
            # exactly like the naive walk's final path entry
            out[srow[looped], columns[looped]] = _LOOPED
        go = ~looped
        walk = walk[go]
        state = next_state[go]
        node = next_node[go]
        seen[walk, state] = True
        srow, mrow, volume = srow[go], mrow[go], volume[go]
    raise AssertionError("traffic walk outran the state space")  # pragma: no cover


def traffic_load_sweep(engine, demands, failure_sets):
    """Batched :class:`~repro.traffic.load.LoadReport` list for one
    demand matrix over many failure sets.

    Same grouping, same per-demand accounting order, and the same
    integer loads as scalar :meth:`TrafficEngine.load` per set — only
    the walks run batched across masks.  Sets naming links outside the
    graph take the scalar per-set path in place.  Raises
    :class:`VectorizedUnsupported` when the instance cannot vectorize.
    """
    from ...traffic.load import LoadReport, _VolumeAccounting

    state = engine.state
    network = state.network
    if not vectorizable(network):
        raise VectorizedUnsupported(reason="numpy_missing")
    index = network.index
    engine._validate_demands(demands)
    failure_list = list(failure_sets)
    batch = batch_for(state, failure_list)
    stride = network.n + 1

    # the scalar router's grouping, verbatim (shared code): identical
    # groups and iteration order keep the reports bit-equal
    groups = engine.grouped_demands(demands)

    loads = np.zeros((batch.total, network.m), dtype=np.int64)
    results = {}
    for key, (memo, injections, members) in groups.items():
        starts = sorted(injections)
        volumes = [injections[start] for start in starts]
        out = np.zeros((len(starts), batch.total), dtype=np.int8)
        steps = np.zeros((len(starts), batch.total), dtype=np.int64)
        for chunk in batch.chunks:
            table = _table_for(network, memo, chunk, with_links=True, state=state)
            _walk_traffic(network, table, chunk, key[1], starts, volumes, loads, out, steps)
        results[key] = (out, steps, {start: rank for rank, start in enumerate(starts)})

    row_of = {}
    for chunk in batch.chunks:
        for row in range(len(chunk)):
            row_of[int(chunk.positions[row])] = (chunk, row)
    fallback_positions = dict(batch.fallbacks)
    links = network.links
    total_volume = sum(demand.volume for demand in demands)

    reports: list = []
    for position in range(batch.total):
        if position in fallback_positions:
            reports.append(engine.load(demands, fallback_positions[position]))
            continue
        chunk, row = row_of[position]
        accounting = _VolumeAccounting()
        for key, (memo, injections, members) in groups.items():
            out, steps, rank_of = results[key]
            dist_row = chunk.distances_to(network, key[1])[row]
            for demand in members:
                rank = rank_of[index[demand.source] * stride]
                verdict = int(out[rank, position])
                accounting.add(
                    demand.volume,
                    delivered=verdict == _DELIVERED,
                    looped=verdict == _LOOPED,
                    hops=int(steps[rank, position]),
                    shortest=int(dist_row[index[demand.source]]),
                )
        reports.append(
            LoadReport(
                loads={links[i]: int(loads[position, i]) for i in range(network.m)},
                demands=len(demands),
                total_volume=total_volume,
                delivered_volume=accounting.delivered_volume,
                dropped_volume=accounting.dropped_volume,
                looped_volume=accounting.looped_volume,
                disconnected_volume=accounting.disconnected_volume,
                delivered_hops=accounting.delivered_hops,
                stretch_volume=accounting.stretch_volume,
            )
        )
    return reports


# ---------------------------------------------------------------------------
# Batched single-pair delivery (r-tolerance).
# ---------------------------------------------------------------------------


def delivered_flags(state, memo: MemoizedPattern, source: Node, destination: Node, failure_sets):
    """Per-set delivery of the ``source -> destination`` walk, batched.

    ``failure_sets`` must be materialized (a list); returns a list of
    bools in order.  Non-maskable sets take the scalar naive fallback,
    exactly like :meth:`EngineState.route`.
    """
    network = state.network
    if not vectorizable(network):
        raise VectorizedUnsupported(reason="numpy_missing")
    src = network.index.get(source)
    dst = network.index.get(destination)
    if src is None or dst is None:
        raise VectorizedUnsupported(reason="unindexed_node")
    batch = batch_for(state, failure_sets)
    flags = [False] * batch.total
    for position, failures in batch.fallbacks:
        result = naive_route(
            state.naive_network, memo.pattern, source, destination, failures
        )
        flags[position] = result.delivered
    if source == destination:
        for chunk in batch.chunks:
            for position in chunk.positions:
                flags[int(position)] = True
        return flags
    for chunk in batch.chunks:
        table = _table_for(network, memo, chunk, state=state)
        eligible = np.zeros((len(chunk), network.n), dtype=bool)
        eligible[:, src] = True
        delivered, rows, _ = _walk_delivered(network, table, dst, eligible)
        for row, ok in zip(rows, delivered):
            flags[int(chunk.positions[row])] = bool(ok)
    return flags
