"""Batched scenario sweeps: (destination × source × failure set) grids.

This is the engine's public face.  :func:`sweep_resilience` evaluates a
whole grid of scenarios for one algorithm with shared state — one
:class:`IndexedNetwork`, one component cache across all destinations,
one decision table per pattern — and optionally fans destinations out
across ``multiprocessing`` workers.  The serial path reproduces the
naive checkers' verdicts *exactly* (same counterexample, same
``scenarios_checked``, same ``exhaustive`` flag); the parallel path
evaluates eagerly but aggregates in deterministic grid order, so the
final verdict is identical too (it merely wastes work past the first
failing destination).

Verdict semantics note: sub-checks driven by an explicitly supplied
failure-set list report ``exhaustive=False`` exactly like the naive
checkers do.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
import os
import pickle
import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

import networkx as nx

from repro import obs as _obs
from repro.obs import diff_snapshots

from ...graphs.connectivity import component_of
from ...graphs.edges import FailureSet, Node, sorted_nodes
from ...runtime.deadline import Deadline
from ...runtime.faults import fire as _fault_fire
from ..resilience import DEFAULT_FAILURE_PARAMS
from ..model import (
    DestinationAlgorithm,
    ForwardingPattern,
    SourceDestinationAlgorithm,
    TouringAlgorithm,
)
from ..simulator import Network, RouteResult
from ..simulator import route as naive_route
from .components import ComponentTracker
from .indexed import IndexedNetwork
from .memo import (
    MemoizedPattern,
    _record_walk,
    _route_covers,
    _tour_recurrent_indices,
    route_indexed,
)


class EngineState:
    """Shared engine state for one graph: index maps + caches.

    Build once, reuse across patterns, destinations and failure sets —
    the component cache and the per-``(node, local mask)`` view cache
    amortize across the whole sweep.
    """

    def __init__(self, graph: nx.Graph):
        self.graph = graph
        self.network = IndexedNetwork(graph)
        self.tracker = ComponentTracker(self.network)
        self._naive: Network | None = None
        self._memos: dict[int, MemoizedPattern] = {}

    @property
    def naive_network(self) -> Network:
        """Naive fallback network, for failure sets outside the index."""
        if self._naive is None:
            self._naive = Network(self.graph)
        return self._naive

    #: decision tables kept per state — bounds memory (and pattern
    #: pinning) when one long-lived state sees many patterns
    MEMO_CACHE_LIMIT = 8

    def memoized(self, pattern: ForwardingPattern) -> MemoizedPattern:
        """The pattern's decision table, shared across calls.

        Keyed by object identity; the cached entry keeps the pattern
        alive, so the id cannot be recycled while the key is live.  A
        small FIFO cap evicts the oldest tables so a state reused for
        many patterns (e.g. adversarial candidate loops) stays bounded.
        """
        memo = self._memos.get(id(pattern))
        if memo is None or memo.pattern is not pattern:
            memo = MemoizedPattern(self.network, pattern)
            while len(self._memos) >= self.MEMO_CACHE_LIMIT:
                self._memos.pop(next(iter(self._memos)))
            self._memos[id(pattern)] = memo
        return memo

    def route(
        self,
        pattern: MemoizedPattern,
        source: Node,
        destination: Node,
        failures: FailureSet,
    ) -> RouteResult:
        """Label-level routing; falls back to the naive walk when the
        failure set mentions links outside the graph."""
        network = self.network
        fmask = network.mask_of(failures)
        src = network.index.get(source)
        dst = network.index.get(destination)
        if fmask is None or src is None or dst is None:
            return naive_route(self.naive_network, pattern.pattern, source, destination, failures)
        return route_indexed(network, pattern, src, dst, fmask)

    def connected(self, source: Node, destination: Node, failures: FailureSet) -> bool:
        """Engine twin of :func:`repro.graphs.connectivity.are_connected`.

        Uses the mask-cached partition on small graphs (where sweeps
        revisit masks) and a one-off mask BFS on large ones (where
        caching every random mask's partition would not pay).
        """
        if source == destination:
            return True
        network = self.network
        fmask = network.mask_of(failures)
        src = network.index.get(source)
        dst = network.index.get(destination)
        if fmask is None or src is None or dst is None:
            from ...graphs.connectivity import are_connected

            return are_connected(self.graph, source, destination, failures)
        from ..resilience import EXHAUSTIVE_LINK_LIMIT

        if network.m <= EXHAUSTIVE_LINK_LIMIT:
            return self.tracker.same_component(fmask, src, dst)
        return network.connected_indices(fmask, src, dst)


@dataclass
class ScenarioGrid:
    """A (destination × source × failure set) scenario grid.

    ``None`` fields mean the checker defaults: all destinations, every
    source in the destination's surviving component, and exhaustive
    failure enumeration when the graph has few enough links (else the
    deterministic-prefix random sample) — exactly the naive checkers'
    behaviour.  ``pairs`` overrides destinations × sources for the
    source-destination model.
    """

    destinations: Sequence[Node] | None = None
    sources: Sequence[Node] | None = None
    pairs: Sequence[tuple[Node, Node]] | None = None
    failure_sets: Iterable[FailureSet] | None = None
    max_failures: int | None = None
    samples: int = 400
    seed: int = 0

    def resolved_failures(
        self, graph: nx.Graph
    ) -> tuple[list[FailureSet] | None, Callable[[], Iterable[FailureSet]], bool]:
        """(materialized list or None, per-unit iterator factory, exhaustive)."""
        from ..resilience import default_failure_sets

        if self.failure_sets is not None:
            materialized = list(self.failure_sets)
            return materialized, lambda: materialized, False

        def factory() -> Iterable[FailureSet]:
            iterator, _ = default_failure_sets(
                graph, max_failures=self.max_failures, samples=self.samples, seed=self.seed
            )
            return iterator

        _, exhaustive = default_failure_sets(
            graph, max_failures=self.max_failures, samples=self.samples, seed=self.seed
        )
        return None, factory, exhaustive


@dataclass
class SweepResult:
    """Aggregate verdict plus the per-unit breakdown of a sweep.

    ``units`` holds ``(unit, Verdict)`` in grid order, where a unit is a
    destination (π^t), an (s, t) pair (π^{s,t}), or ``None`` for the
    single touring pattern.  Both the serial and the parallel path stop
    recording at the first failing unit (each parallel worker likewise
    stops within its own chunk at that chunk's first failure), so after
    a failure ``units`` is a prefix of the grid, not the full breakdown.
    """

    verdict: Any
    units: list[tuple[Any, Any]] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.verdict)


# ---------------------------------------------------------------------------
# Fork fan-out.
# ---------------------------------------------------------------------------

_FORK_PAYLOAD: Callable[[Any], Any] | None = None

#: builds the per-worker warm value (run once per worker, post-fork)
_FORK_INITIALIZER: Callable[[], Any] | None = None

#: the warm value `_fork_init` built in THIS process (None in the parent)
_WORKER_WARM: Any = None

#: how often the receive loop wakes up to check worker health / timeout
_POLL_SECONDS = 0.02


def _fork_init() -> None:
    """Per-worker warm-up, run once right after the fork.

    Builds (or, with fork inheritance, simply adopts) the warm value the
    caller's ``initializer`` returns — shared engine state, decision
    tables — so every chunk the worker processes reuses it instead of
    rebuilding per chunk."""
    global _WORKER_WARM
    builder = _FORK_INITIALIZER
    _WORKER_WARM = builder() if builder is not None else None


def worker_warm() -> Any:
    """The warm value built by this worker's initializer (None when not
    inside an initialized ``parallel_map`` worker — e.g. the serial
    path or the final serial fallback pass, which run in the parent)."""
    return _WORKER_WARM


def _fork_call(task: tuple[int, Any, Any]) -> tuple[int, Any, Any]:
    index, item, fault = task
    if fault is not None:
        # injected-fault verdicts are decided in the parent (fork copies
        # of the plan never report back) and executed here, in the worker
        if fault.kind == "worker-crash":
            os._exit(3)
        elif fault.kind == "slow-chunk":
            time.sleep(fault.seconds)
    assert _FORK_PAYLOAD is not None
    telemetry = _obs.active()
    if telemetry is None or telemetry.registry is None:
        return index, _FORK_PAYLOAD(item), None
    # the forked worker inherited the parent's registry at fork time:
    # snapshot before/after the payload and ship only the delta home
    # with the result (the parent merges it, so worker-side counters
    # equal what a serial run would have recorded)
    before = telemetry.registry.snapshot()
    value = _FORK_PAYLOAD(item)
    return index, value, diff_snapshots(before, telemetry.registry.snapshot())


def parallel_map(
    function: Callable[[Any], Any],
    items: Sequence[Any],
    processes: int,
    timeout: float | None = None,
    retries: int = 2,
    backoff: float = 0.05,
    initializer: Callable[[], Any] | None = None,
) -> list[Any]:
    """``[function(x) for x in items]`` with a crash-recovering fan-out.

    Uses the ``fork`` start method so arbitrary (closure) functions and
    unpicklable build inputs work: the callable is inherited by the
    forked workers via a module global, never pickled.  Items stream
    through ``imap_unordered`` so every completed result is salvaged the
    moment it arrives; when a fork dies (detected by the worker pid set
    changing or a nonzero exit code) or no result lands within
    ``timeout`` seconds, only the *missing* items are retried — up to
    ``retries`` fresh pools with linear ``backoff``, then a final serial
    pass completes whatever is still missing, so a poisoned item can
    never lose its siblings' work.

    ``initializer`` is the warm-worker seam: it runs once per worker
    (right after the fork, never in the parent) and its return value is
    available to ``function`` via :func:`worker_warm` — e.g. one shared
    :class:`EngineState` per worker instead of one per chunk.  With the
    fork start method the initializer typically just returns a value the
    parent already built (closure capture), so workers adopt the
    parent's warm caches as copy-on-write pages and pay zero rebuild
    cost.  The serial path and the final serial fallback pass run in the
    parent, where :func:`worker_warm` returns None — callers fall back
    to their own (parent-side) warm state there.

    Pools are entered as context managers, so workers are terminated on
    every path — including KeyboardInterrupt and exceptions raised by
    ``function`` itself, which propagate exactly as in the serial loop
    (a real workload bug is not a crash to be retried).  Fan-out
    *infrastructure* failures (fork unavailable, unpicklable
    items/results) drop to the serial pass with serial semantics.
    """
    items = list(items)
    if processes <= 1 or len(items) <= 1:
        return [function(item) for item in items]
    global _FORK_PAYLOAD, _FORK_INITIALIZER
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return [function(item) for item in items]
    telemetry = _obs.active()
    previous = _FORK_PAYLOAD
    previous_initializer = _FORK_INITIALIZER
    _FORK_PAYLOAD = function
    _FORK_INITIALIZER = initializer
    results: dict[int, Any] = {}
    with _obs.span("parallel_map", items=len(items), processes=processes):
        try:
            for attempt in range(retries + 1):
                pending = [i for i in range(len(items)) if i not in results]
                if not pending:
                    break
                if attempt:
                    time.sleep(backoff * attempt)
                    if telemetry is not None:
                        telemetry.count(
                            "repro_parallel_retries_total",
                            help="parallel_map retry rounds after a broken pool",
                        )
                        telemetry.point("parallel_retry", attempt=attempt, pending=len(pending))
                tasks = [(i, items[i], _fault_fire("worker", i, attempt)) for i in pending]
                try:
                    pool = context.Pool(min(processes, len(pending)), initializer=_fork_init)
                except OSError:  # pragma: no cover - fork failed (resource limits)
                    break
                if initializer is not None and telemetry is not None:
                    telemetry.count(
                        "repro_parallel_warm_pools_total",
                        help="parallel_map pools started with a warm-worker initializer",
                    )
                broken = False
                try:
                    with pool:
                        # _maintain_pool silently respawns dead workers, so a
                        # changed pid set is the durable sign of an abnormal
                        # death (workers never exit on their own before close)
                        initial_pids = {worker.pid for worker in pool._pool}
                        iterator = pool.imap_unordered(_fork_call, tasks)
                        received = 0
                        waited = 0.0
                        while received < len(tasks):
                            try:
                                index, value, delta = iterator.next(timeout=_POLL_SECONDS)
                            except multiprocessing.TimeoutError:
                                waited += _POLL_SECONDS
                                workers = pool._pool
                                died = {w.pid for w in workers} != initial_pids or any(
                                    w.exitcode not in (None, 0) for w in workers
                                )
                                if died or (timeout is not None and waited >= timeout):
                                    broken = True
                                    if telemetry is not None:
                                        reason = "worker_died" if died else "timeout"
                                        telemetry.count(
                                            "repro_parallel_pool_breaks_total",
                                            help="parallel_map pools abandoned, by reason",
                                            reason=reason,
                                        )
                                        telemetry.point(
                                            "parallel_pool_broken",
                                            reason=reason,
                                            received=received,
                                            tasks=len(tasks),
                                        )
                                    break
                                continue
                            results[index] = value
                            received += 1
                            waited = 0.0
                            if delta is not None and telemetry is not None and telemetry.registry is not None:
                                # the worker's metrics delta rides home
                                # with its result; merging keeps parent
                                # counters equal to a serial run's
                                telemetry.registry.merge(delta)
                            if telemetry is not None:
                                telemetry.count(
                                    "repro_parallel_chunks_total",
                                    help="parallel_map chunk results received from workers",
                                )
                except (
                    pickle.PicklingError,
                    multiprocessing.pool.MaybeEncodingError,
                ):  # pragma: no cover - unpicklable items/results: serial semantics win
                    break
                if not broken:
                    break
        finally:
            _FORK_PAYLOAD = previous
            _FORK_INITIALIZER = previous_initializer
        missing = [index for index in range(len(items)) if index not in results]
        if missing and telemetry is not None:
            telemetry.count(
                "repro_parallel_serial_fallback_total",
                len(missing),
                help="items completed by the serial fallback pass",
            )
            telemetry.point("parallel_serial_fallback", items=len(missing))
        for index in missing:
            results[index] = function(items[index])
    return [results[index] for index in range(len(items))]


# ---------------------------------------------------------------------------
# Single-pattern sweep (the inner loop of every checker).
# ---------------------------------------------------------------------------


def sweep_pattern_resilience(
    state: EngineState,
    pattern: ForwardingPattern,
    destination: Node,
    sources: Iterable[Node] | None = None,
    failure_sets: Iterable[FailureSet] | None = None,
    exhaustive: bool | None = None,
    backend: str = "engine",
    default_params: tuple = DEFAULT_FAILURE_PARAMS,
) -> Any:
    """Engine twin of the naive ``check_pattern_resilience``.

    Identical verdicts: failure sets are walked in the same order,
    sources in the same (component frozenset) order, and the
    counterexample carries the same route trace.  ``exhaustive``
    overrides the reported flag (used by grid sweeps that generate the
    default enumeration themselves).  ``backend="numpy"`` batches the
    failure masks through the vectorized walker where the instance
    supports it (and falls back to this scalar path, same verdicts,
    where it does not); ``default_params`` are the ``(max_failures,
    samples, seed)`` of the default failure enumeration, so both
    backends resolve the identical scenario family.
    """
    telemetry = _obs.active()
    if telemetry is None:
        return _sweep_pattern_resilience(
            state, pattern, destination, sources, failure_sets, exhaustive, backend, default_params
        )
    with telemetry.span("pattern_sweep", destination=destination, backend=backend):
        verdict = _sweep_pattern_resilience(
            state, pattern, destination, sources, failure_sets, exhaustive, backend, default_params
        )
    telemetry.count(
        "repro_engine_scenarios_total",
        verdict.scenarios_checked,
        help="(source, destination, failure set) scenarios evaluated",
    )
    return verdict


def _sweep_pattern_resilience(
    state: EngineState,
    pattern: ForwardingPattern,
    destination: Node,
    sources: Iterable[Node] | None = None,
    failure_sets: Iterable[FailureSet] | None = None,
    exhaustive: bool | None = None,
    backend: str = "engine",
    default_params: tuple = DEFAULT_FAILURE_PARAMS,
) -> Any:
    from ..resilience import EXHAUSTIVE_LINK_LIMIT, Counterexample, Verdict, default_failure_sets

    if backend == "numpy":
        from .vectorized import VectorizedUnsupported, pattern_sweep_numpy

        try:
            return pattern_sweep_numpy(
                state,
                pattern,
                destination,
                sources=sources,
                failure_sets=failure_sets,
                exhaustive=exhaustive,
                default_params=default_params,
            )
        except VectorizedUnsupported as unsupported:
            telemetry = _obs.active()
            if telemetry is not None:
                telemetry.count(
                    "repro_numpy_fallbacks_total",
                    help="vectorized attempts that fell back to the scalar engine",
                    site="pattern",
                    reason=unsupported.reason,
                )
            if unsupported.failure_sets is not None:
                # a consumed one-shot iterator, reconstructed for us
                failure_sets = unsupported.failure_sets

    if failure_sets is not None:
        failure_iter: Iterable[FailureSet] = failure_sets
        if exhaustive is None:
            exhaustive = False
    else:
        max_failures, samples, seed = default_params
        failure_iter, default_exhaustive = default_failure_sets(
            state.graph, max_failures=max_failures, samples=samples, seed=seed
        )
        if exhaustive is None:
            exhaustive = default_exhaustive
    network = state.network
    tracker = state.tracker
    memo = MemoizedPattern(network, pattern)
    index = network.index
    node_labels = network.labels
    dest_idx = index.get(destination)
    wanted = None if sources is None else set(sources)
    # the per-mask partition cache pays off when masks repeat across
    # destinations (exhaustive sweeps); on larger, sampled graphs the
    # incremental peel would cache every random mask's prefixes forever
    use_tracker = network.m <= EXHAUSTIVE_LINK_LIMIT
    checked = 0
    # walk accounting is batched over the WHOLE sweep (one registry
    # flush in the finally below): a covers walk is sub-microsecond, so
    # even a per-walk counter update would dominate it
    telemetry = _obs.active()
    covers_walks = 0
    memo_before = len(memo.table)
    try:
        for failures in failure_iter:
            fmask = network.mask_of(failures) if dest_idx is not None else None
            if fmask is None:
                # Links outside the graph (or an un-indexed destination):
                # keep the naive path's semantics to the letter.
                component = sorted_nodes(component_of(state.graph, destination, failures))
                naive = state.naive_network
                for source in component:
                    if source == destination or (wanted is not None and source not in wanted):
                        continue
                    checked += 1
                    result = naive_route(naive, pattern, source, destination, failures)
                    if not result.delivered:
                        return Verdict(
                            False,
                            checked,
                            Counterexample(source, destination, failures, result),
                            exhaustive,
                        )
                continue
            if use_tracker:
                component = tracker.component_sorted(fmask, dest_idx)
            else:
                component = sorted_nodes(
                    node_labels[i] for i in network.component_of_indices(fmask, dest_idx)
                )
            delivered_states: set[int] = set()
            for source in component:
                if source == destination or (wanted is not None and source not in wanted):
                    continue
                checked += 1
                covers_walks += 1
                if not _route_covers(
                    network, memo, index[source], dest_idx, fmask, delivered_states
                ):
                    # re-walk for the exact trace (decisions are all cached)
                    result = route_indexed(network, memo, index[source], dest_idx, fmask)
                    return Verdict(
                        False,
                        checked,
                        Counterexample(source, destination, failures, result),
                        exhaustive,
                    )
        return Verdict(True, checked, exhaustive=exhaustive)
    finally:
        if telemetry is not None:
            _record_walk(
                telemetry, "covers", memo.table, memo_before, None, walks=covers_walks
            )


# ---------------------------------------------------------------------------
# Grid sweeps per routing model.
# ---------------------------------------------------------------------------


def sweep_resilience(
    graph: nx.Graph,
    algorithm: DestinationAlgorithm | SourceDestinationAlgorithm | TouringAlgorithm,
    scenarios: ScenarioGrid | None = None,
    processes: int = 1,
    state: EngineState | None = None,
    backend: str = "engine",
    deadline: Deadline | None = None,
) -> SweepResult:
    """Evaluate a whole scenario grid for one algorithm, batched.

    Dispatches on the algorithm's routing model.  ``processes > 1``
    fans independent grid units (destinations / pair chunks) out across
    forked workers; the touring model has a single network-wide pattern
    and always runs serially.  ``state`` injects a prebuilt (usually
    session-owned) :class:`EngineState` so sweeps reuse its caches —
    including forked workers, which adopt the parent-built warm state
    (index maps, component caches, packed mask batches) across the fork
    as copy-on-write pages via :func:`parallel_map`'s initializer seam
    instead of re-indexing the graph per chunk.
    ``backend="numpy"`` routes every per-unit check through the
    vectorized mask walker (same verdicts; instances it cannot handle
    fall back to the scalar engine).

    ``deadline`` makes the sweep cooperative: it is checked between
    grid units (destinations / pairs / failure buckets) and on expiry
    the sweep stops cleanly, returning the verdict over the units
    actually evaluated with ``exhaustive=False``.  Completed units are
    always whole, so their verdicts match an uncut run; the numpy
    batched paths check only at unit entry (a vectorized batch is one
    unit of work).  Forked workers inherit the deadline; wall-clock
    expiry is consistent across the fork because ``time.monotonic`` is
    system-wide.
    """
    grid = scenarios if scenarios is not None else ScenarioGrid()
    if state is not None and state.graph is not graph:
        raise ValueError("the injected EngineState indexes a different graph")
    if deadline is not None and deadline.expired():
        from ..resilience import Verdict

        return SweepResult(Verdict(True, 0, exhaustive=False), [])
    if isinstance(algorithm, TouringAlgorithm):
        model = "touring"
    elif isinstance(algorithm, SourceDestinationAlgorithm):
        model = "source-destination"
    elif isinstance(algorithm, DestinationAlgorithm):
        model = "destination"
    else:
        raise TypeError(f"not a routing algorithm: {algorithm!r}")
    telemetry = _obs.active()
    if telemetry is not None:
        telemetry.count(
            "repro_engine_sweeps_total", help="sweep_resilience calls, by model", model=model
        )
    with _obs.span("sweep_resilience", model=model, backend=backend, processes=processes):
        if model == "touring":
            return _sweep_touring(graph, algorithm, grid, state, backend, deadline)
        if model == "source-destination":
            return _sweep_source_destination(
                graph, algorithm, grid, processes, state, backend, deadline
            )
        return _sweep_destination(graph, algorithm, grid, processes, state, backend, deadline)


def _sweep_destination(
    graph: nx.Graph,
    algorithm: DestinationAlgorithm,
    grid: ScenarioGrid,
    processes: int,
    shared_state: EngineState | None = None,
    backend: str = "engine",
    deadline: Deadline | None = None,
) -> SweepResult:
    from ..resilience import Verdict

    destinations = list(grid.destinations) if grid.destinations is not None else list(graph.nodes)
    materialized, factory, default_exhaustive = grid.resolved_failures(graph)
    grid_params = (grid.max_failures, grid.samples, grid.seed)

    def check_one(destination: Node, state: EngineState) -> Any:
        pattern = algorithm.build(graph, destination)
        if materialized is not None:
            return sweep_pattern_resilience(
                state,
                pattern,
                destination,
                sources=grid.sources,
                failure_sets=materialized,
                backend=backend,
            )
        if backend == "numpy":
            # no per-destination iterator: the vectorized path resolves
            # (and caches) the default mask batch from the grid params
            return sweep_pattern_resilience(
                state,
                pattern,
                destination,
                sources=grid.sources,
                exhaustive=default_exhaustive,
                backend=backend,
                default_params=grid_params,
            )
        return sweep_pattern_resilience(
            state,
            pattern,
            destination,
            sources=grid.sources,
            failure_sets=factory(),
            exhaustive=default_exhaustive,
        )

    def check_chunk(chunk: Sequence[Node]) -> list[Any]:
        # warm shared state: forked workers adopt the parent-built state
        # (copy-on-write pages via the initializer seam) instead of
        # re-indexing the graph per chunk; the parent-side serial
        # fallback pass uses the same state directly
        state = worker_warm() or warm_state
        verdicts = []
        for destination in chunk:
            if deadline is not None and deadline.expired():
                break  # partial chunk: the aggregate is flagged non-exhaustive
            verdict = check_one(destination, state)
            verdicts.append(verdict)
            if deadline is not None:
                deadline.charge()
            if not verdict.resilient:
                break  # later destinations cannot affect the aggregate
        return verdicts

    units: list[tuple[Any, Any]] = []
    total = 0
    exhaustive = True
    if processes > 1 and len(destinations) > 1:
        warm_state = shared_state if shared_state is not None else EngineState(graph)
        workers = min(processes, len(destinations))
        size = (len(destinations) + workers - 1) // workers
        chunks = [destinations[i : i + size] for i in range(0, len(destinations), size)]
        verdict_lists = parallel_map(
            check_chunk, chunks, processes, initializer=lambda: warm_state
        )
        ordered: Iterable[tuple[Node, Any]] = (
            pair
            for chunk, verdicts in zip(chunks, verdict_lists)
            for pair in zip(chunk, verdicts)
        )
    else:
        state = shared_state if shared_state is not None else EngineState(graph)

        def serial_units() -> Iterable[tuple[Node, Any]]:
            for d in destinations:
                if deadline is not None and deadline.expired():
                    return
                yield d, check_one(d, state)
                if deadline is not None:
                    deadline.charge()

        ordered = serial_units()
    for destination, verdict in ordered:
        units.append((destination, verdict))
        total += verdict.scenarios_checked
        exhaustive = exhaustive and verdict.exhaustive
        if not verdict.resilient:
            verdict.scenarios_checked = total
            return SweepResult(verdict, units)
    # a deadline cut (serial break or a worker's short chunk) leaves
    # fewer units than destinations — the verdict is then non-exhaustive
    complete = len(units) == len(destinations)
    return SweepResult(
        Verdict(True, total, exhaustive=exhaustive and materialized is None and complete),
        units,
    )


def _sweep_source_destination(
    graph: nx.Graph,
    algorithm: SourceDestinationAlgorithm,
    grid: ScenarioGrid,
    processes: int,
    shared_state: EngineState | None = None,
    backend: str = "engine",
    deadline: Deadline | None = None,
) -> SweepResult:
    from ..resilience import Verdict

    if grid.pairs is not None:
        pairs = list(grid.pairs)
    else:
        destinations = (
            list(grid.destinations) if grid.destinations is not None else list(graph.nodes)
        )
        sources = list(grid.sources) if grid.sources is not None else list(graph.nodes)
        pairs = [(s, t) for t in destinations for s in sources if s != t]
    materialized, factory, default_exhaustive = grid.resolved_failures(graph)
    grid_params = (grid.max_failures, grid.samples, grid.seed)

    def check_chunk(
        chunk: Sequence[tuple[Node, Node]], state: EngineState | None = None
    ) -> list[Any]:
        if state is None:  # parallel workers adopt the fork-inherited warm state
            state = worker_warm() or warm_state
        verdicts = []
        for source, destination in chunk:
            if deadline is not None and deadline.expired():
                break  # partial chunk: the aggregate is flagged non-exhaustive
            pattern = algorithm.build(graph, source, destination)
            if materialized is not None:
                verdict = sweep_pattern_resilience(
                    state,
                    pattern,
                    destination,
                    sources=[source],
                    failure_sets=materialized,
                    backend=backend,
                )
            elif backend == "numpy":
                verdict = sweep_pattern_resilience(
                    state,
                    pattern,
                    destination,
                    sources=[source],
                    exhaustive=default_exhaustive,
                    backend=backend,
                    default_params=grid_params,
                )
            else:
                verdict = sweep_pattern_resilience(
                    state,
                    pattern,
                    destination,
                    sources=[source],
                    failure_sets=factory(),
                    exhaustive=default_exhaustive,
                )
            verdicts.append(verdict)
            if deadline is not None:
                deadline.charge()
            if not verdict.resilient:
                break  # later pairs cannot affect the aggregate
        return verdicts

    if processes > 1 and len(pairs) > 1:
        warm_state = shared_state if shared_state is not None else EngineState(graph)
        workers = min(processes, len(pairs))
        size = (len(pairs) + workers - 1) // workers
        chunks = [pairs[i : i + size] for i in range(0, len(pairs), size)]
        verdict_lists = parallel_map(
            check_chunk, chunks, processes, initializer=lambda: warm_state
        )
        flattened = []
        for chunk, verdicts in zip(chunks, verdict_lists):
            flattened.extend(zip(chunk, verdicts))
    else:
        flattened = list(zip(pairs, check_chunk(pairs, shared_state)))
    units: list[tuple[Any, Any]] = []
    total = 0
    exhaustive = True
    for pair, verdict in flattened:
        units.append((pair, verdict))
        total += verdict.scenarios_checked
        exhaustive = exhaustive and (verdict.exhaustive or materialized is not None)
        if not verdict.resilient:
            verdict.scenarios_checked = total
            return SweepResult(verdict, units)
    # deadline cuts leave fewer evaluated pairs — then non-exhaustive
    complete = len(units) == len(pairs)
    return SweepResult(
        Verdict(True, total, exhaustive=exhaustive and materialized is None and complete),
        units,
    )


def _sweep_touring(
    graph: nx.Graph,
    algorithm: TouringAlgorithm,
    grid: ScenarioGrid,
    shared_state: EngineState | None = None,
    backend: str = "engine",
    deadline: Deadline | None = None,
) -> SweepResult:
    from ..resilience import EXHAUSTIVE_LINK_LIMIT, Counterexample, Verdict

    state = shared_state if shared_state is not None else EngineState(graph)
    network = state.network
    tracker = state.tracker
    use_tracker = network.m <= EXHAUSTIVE_LINK_LIMIT
    pattern = algorithm.build(graph)
    starts = list(grid.sources) if grid.sources is not None else list(graph.nodes)
    explicit_sets = grid.failure_sets
    if backend == "numpy":
        from .vectorized import VectorizedUnsupported, touring_sweep_numpy

        try:
            verdict = touring_sweep_numpy(
                state,
                pattern,
                starts,
                failure_sets=explicit_sets,
                exhaustive=False if explicit_sets is not None else None,
                default_params=(grid.max_failures, grid.samples, grid.seed),
            )
            return SweepResult(verdict, [(None, verdict)])
        except VectorizedUnsupported as unsupported:
            telemetry = _obs.active()
            if telemetry is not None:
                telemetry.count(
                    "repro_numpy_fallbacks_total",
                    help="vectorized attempts that fell back to the scalar engine",
                    site="touring",
                    reason=unsupported.reason,
                )
            if unsupported.failure_sets is not None:
                # a one-shot generator was consumed before the fallback:
                # the exception carries the reconstructed family
                explicit_sets = unsupported.failure_sets
    memo = MemoizedPattern(network, pattern)
    # single pattern, single pass: stream the failure sets, never
    # materialize (k-resilient touring can pass ~200k-set generators)
    if explicit_sets is not None:
        failure_iter: Iterable[FailureSet] = explicit_sets
        exhaustive = False
    else:
        _, factory, exhaustive = grid.resolved_failures(graph)
        failure_iter = factory()
    index = network.index
    checked = 0
    # same sweep-level walk batching as the pattern sweep above: one
    # registry flush for the whole mask loop, never one per tour
    telemetry = _obs.active()
    tour_walks = 0
    memo_before = len(memo.table)
    try:
        for failures in failure_iter:
            if deadline is not None and deadline.expired():
                # cut between failure buckets: the covered prefix is whole
                exhaustive = False
                break
            fmask = network.mask_of(failures)
            for start in starts:
                checked += 1
                if fmask is None or start not in index:
                    from ..simulator import tours_component

                    covered = tours_component(state.naive_network, pattern, start, failures)
                else:
                    start_idx = index[start]
                    if use_tracker:
                        component: frozenset[int] | set[int] = tracker.component_index_set(
                            fmask, start_idx
                        )
                    else:
                        component = set(network.component_of_indices(fmask, start_idx))
                    if len(component) == 1:
                        covered = True
                    else:
                        tour_walks += 1
                        recurrent = _tour_recurrent_indices(network, memo, start_idx, fmask)
                        covered = recurrent is not None and recurrent >= component
                if not covered:
                    verdict = Verdict(
                        False,
                        checked,
                        Counterexample(
                            start, None, failures, None, note="tour does not cover component"
                        ),
                        exhaustive,
                    )
                    return SweepResult(verdict, [(None, verdict)])
            if deadline is not None:
                deadline.charge()
        verdict = Verdict(True, checked, exhaustive=exhaustive)
        return SweepResult(verdict, [(None, verdict)])
    finally:
        if telemetry is not None:
            _record_walk(telemetry, "tour", memo.table, memo_before, None, walks=tour_walks)
