"""Fast simulation engine: the hot path behind every checker.

Every result of the paper — the Table 1 landscape, the k=7 / K4,4
impossibilities, the §VIII Topology Zoo study — reduces to simulating
deterministic forwarding over huge families of failure scenarios.  The
naive :mod:`..simulator` walks each packet with per-hop ``frozenset``
algebra and re-runs a BFS per failure set; this package replaces that
with three layers that share work across scenarios:

1. :class:`~repro.core.engine.indexed.IndexedNetwork` maps arbitrary
   node labels to dense integers **once** and stores adjacency as flat
   index tuples with a per-node incident-link bitmask.  A failure set
   becomes a single integer mask, and building a node's local view is
   mask arithmetic (``fmask & incident[node]``) plus a cache lookup
   instead of frozenset construction.

2. :class:`~repro.core.engine.memo.MemoizedPattern` caches forwarding
   decisions per pattern, keyed by ``(node, inport, local failure
   mask)``.

   **Soundness.**  The paper's model (§II) makes a forwarding pattern a
   *static* function configured before any failure happens, and a rule
   may only read the packet's in-port and the locally incident failures
   ``F ∩ E(v)`` (header fields are baked into the pattern at build
   time, and headers are immutable in flight).  Determinism plus that
   locality means ``pattern.forward(view)`` is a pure function of
   ``(view.node, view.inport, view.failed_links)`` — the remaining
   ``LocalView`` field, ``alive``, is itself determined by the node and
   its incident failures.  Hence caching the result under the triple
   ``(node index, inport index, local mask)`` can never change an
   outcome: two scenarios that agree on the triple present the pattern
   with identical views.  Exhaustive enumeration over ``2^|E|`` failure
   sets revisits the same local states constantly, so most hops become
   a dictionary hit.  (Patterns that violate the model — nondeterminism
   or hidden mutable state — are out of scope for the whole library,
   not just for the cache.)

3. :class:`~repro.core.engine.components.ComponentTracker` memoizes the
   connected-component partition per failure mask and derives the
   partition for a mask incrementally from the mask with its highest
   bit cleared (its enumeration-order prefix), re-flooding only the one
   component the removed link could split.  Checkers sweeping
   destination × failure-set grids thus run one bounded BFS per mask
   instead of one per scenario.

:mod:`~repro.core.engine.sweep` stitches the layers into the batched
scenario-sweep API (:func:`sweep_resilience`) used by the public
checkers in :mod:`repro.core.resilience`, with an optional
``multiprocessing`` fan-out across destinations.

:mod:`~repro.core.engine.vectorized` adds a fourth, optional layer on
top of the same state: when numpy is installed, an
``ExperimentSession(backend="numpy")`` batches many failure masks per
destination through array ops (dense decision tables gathered per hop,
vectorized component labelling), with the scalar layers as the
always-available fallback — verdicts are identical either way.
"""

from .components import ComponentTracker
from .indexed import IndexedNetwork
from .memo import DROP, ILLEGAL, MemoizedPattern, route_indexed, tour_indexed
from .sweep import (
    EngineState,
    ScenarioGrid,
    SweepResult,
    parallel_map,
    sweep_pattern_resilience,
    sweep_resilience,
    worker_warm,
)
from .vectorized import (
    MaskBatch,
    VectorizedUnsupported,
    mask_words,
    numpy_available,
    require_numpy,
)

__all__ = [
    "ComponentTracker",
    "DROP",
    "ILLEGAL",
    "EngineState",
    "IndexedNetwork",
    "MaskBatch",
    "MemoizedPattern",
    "ScenarioGrid",
    "SweepResult",
    "VectorizedUnsupported",
    "mask_words",
    "numpy_available",
    "parallel_map",
    "require_numpy",
    "route_indexed",
    "sweep_pattern_resilience",
    "sweep_resilience",
    "tour_indexed",
    "worker_warm",
]
