"""Memoized forwarding decisions and mask-based packet walks.

``pattern.forward`` is a pure function of ``(node, inport, F ∩ E(v))``
(see the package docstring for the soundness argument), so each pattern
gets a decision table keyed by that triple.  The walks below mirror the
naive :func:`repro.core.simulator.route` / ``tour`` step for step —
identical outcomes, paths and step counts — but a revisited local state
costs one dictionary lookup instead of frozenset algebra plus a pattern
invocation.
"""

from __future__ import annotations

from repro import obs as _obs

from ..model import ForwardingPattern
from ..simulator import Outcome, RouteResult, TourResult
from .indexed import IndexedNetwork

#: decision-table sentinels (real next hops are node indices >= 0)
DROP = -1
ILLEGAL = -2


def _record_walk(
    telemetry, kind: str, table: dict, before: int, lookups: int | None, walks: int = 1
) -> None:
    """Batch walk counters into the active telemetry.

    Called once per walk for the standalone entry points — never per
    step — and once per *sweep* by the hot mask loops in ``sweep.py``,
    which accumulate ``walks`` in a local int and flush here (a registry
    update per walk would dwarf a sub-microsecond covers walk).  Misses
    are exact either way: every table miss inserts exactly one entry,
    so the table-size delta *is* the miss count.  Hits derive from the
    walk's own step count where the caller exposes one
    (``lookups=None`` otherwise).
    """
    if not walks:
        return
    telemetry.count(
        "repro_engine_walks_total", walks, help="scalar mask walks, by kind", kind=kind
    )
    misses = len(table) - before
    if misses:
        telemetry.count(
            "repro_engine_memo_misses_total", misses, help="memo decision-table misses"
        )
    if lookups is not None:
        telemetry.count(
            "repro_engine_walk_steps_total", lookups, help="scalar walk steps, by kind", kind=kind
        )
        hits = lookups - misses
        if hits > 0:
            telemetry.count(
                "repro_engine_memo_hits_total", hits, help="memo decision-table hits"
            )
    telemetry.gauge_max(
        "repro_engine_memo_table_entries_max",
        len(table),
        help="largest memo decision table observed",
    )


class MemoizedPattern:
    """A forwarding pattern with a ``(node, inport, local mask)`` cache.

    The triple is packed into one integer key: ``((node * (n + 1) +
    inport + 1) << m) | local_mask`` (``inport = -1`` is the ⊥ state).
    Integer keys hash faster than tuples, and the walks inline the
    table lookup, so a revisited local state costs a single dict hit.
    """

    def __init__(self, network: IndexedNetwork, pattern: ForwardingPattern):
        self.network = network
        self.pattern = pattern
        #: packed (node, inport, local mask) -> next-hop index, DROP, or ILLEGAL
        self.table: dict[int, int] = {}

    def next_hop(self, node: int, inport: int, local_mask: int) -> int:
        network = self.network
        key = ((node * (network.n + 1) + inport + 1) << network.m) | local_mask
        decision = self.table.get(key)
        if decision is None:
            decision = self._decide(node, inport, local_mask)
            self.table[key] = decision
        return decision

    def _decide(self, node: int, inport: int, local_mask: int) -> int:
        network = self.network
        state = network.local_state(node, local_mask)
        view = network.view(node, inport, local_mask)
        nxt = self.pattern.forward(view)
        if nxt is None:
            return DROP
        idx = state.alive_index.get(nxt)
        if idx is None:
            # forwarding over a failed or non-existent link
            return ILLEGAL
        return idx


def route_indexed(
    network: IndexedNetwork,
    pattern: MemoizedPattern,
    source: int,
    destination: int,
    fmask: int,
) -> RouteResult:
    """Mask-based twin of :func:`repro.core.simulator.route`.

    Returns the identical :class:`RouteResult` (outcome, label path,
    step count) the naive walk would produce.
    """
    telemetry = _obs.active()
    if telemetry is None:
        return _route_indexed(network, pattern, source, destination, fmask)
    before = len(pattern.table)
    result = _route_indexed(network, pattern, source, destination, fmask)
    # every loop iteration does one table lookup; drop/illegal exits
    # happen before the step increment, so they add one lookup
    lookups = result.steps + (1 if result.outcome in (Outcome.DROPPED, Outcome.ILLEGAL) else 0)
    _record_walk(telemetry, "route", pattern.table, before, lookups)
    return result


def _route_indexed(
    network: IndexedNetwork,
    pattern: MemoizedPattern,
    source: int,
    destination: int,
    fmask: int,
) -> RouteResult:
    labels = network.labels
    if source == destination:
        return RouteResult(Outcome.DELIVERED, [labels[source]], 0)
    incident = network.incident_mask
    stride = network.n + 1
    shift = network.m
    current = source
    inport = -1
    state = source * stride  # packed (node, inport+1), ⊥ = 0
    path = [labels[source]]
    seen = {state}
    steps = 0
    limit = network.state_bound
    table = pattern.table
    decide = pattern._decide
    while steps < limit:
        local_mask = fmask & incident[current]
        key = (state << shift) | local_mask  # state == current * stride + inport + 1
        decision = table.get(key)
        if decision is None:
            decision = decide(current, inport, local_mask)
            table[key] = decision
        if decision < 0:
            if decision == DROP:
                return RouteResult(Outcome.DROPPED, path, steps)
            return RouteResult(Outcome.ILLEGAL, path, steps)
        steps += 1
        path.append(labels[decision])
        if decision == destination:
            return RouteResult(Outcome.DELIVERED, path, steps)
        current, inport = decision, current
        state = current * stride + inport + 1
        if state in seen:
            return RouteResult(Outcome.LOOP, path, steps)
        seen.add(state)
    return RouteResult(Outcome.LOOP, path, steps)


def route_covers(
    network: IndexedNetwork,
    pattern: MemoizedPattern,
    source: int,
    destination: int,
    fmask: int,
    delivered: set[int],
) -> bool:
    """Does the walk from ``source`` deliver?  Shares work across sources.

    ``delivered`` accumulates packed ``(node, inport)`` states proven to
    deliver **under this exact** ``(pattern, destination, fmask)`` —
    determinism makes the future of a walk a function of its state, so a
    walk that joins a delivered state is itself delivered and can stop
    early.  Callers reset the set whenever the failure mask (or the
    destination or pattern) changes.  On a ``False`` answer, re-run
    :func:`route_indexed` for the exact counterexample trace.
    """
    telemetry = _obs.active()
    if telemetry is None:
        return _route_covers(network, pattern, source, destination, fmask, delivered)
    before = len(pattern.table)
    covered = _route_covers(network, pattern, source, destination, fmask, delivered)
    # no step count here (the walk exits early through the shared
    # delivered set); misses stay exact via the table delta
    _record_walk(telemetry, "covers", pattern.table, before, None)
    return covered


def _route_covers(
    network: IndexedNetwork,
    pattern: MemoizedPattern,
    source: int,
    destination: int,
    fmask: int,
    delivered: set[int],
) -> bool:
    if source == destination:
        return True
    incident = network.incident_mask
    stride = network.n + 1
    shift = network.m
    current = source
    inport = -1
    state = source * stride
    if state in delivered:
        return True
    trail = [state]
    seen = {state}
    table = pattern.table
    decide = pattern._decide
    while True:
        local_mask = fmask & incident[current]
        key = (state << shift) | local_mask
        decision = table.get(key)
        if decision is None:
            decision = decide(current, inport, local_mask)
            table[key] = decision
        if decision < 0:
            return False
        if decision == destination:
            delivered.update(trail)
            return True
        current, inport = decision, current
        state = current * stride + inport + 1
        if state in delivered:
            delivered.update(trail)
            return True
        if state in seen:
            return False
        seen.add(state)
        trail.append(state)


def tour_indexed(
    network: IndexedNetwork,
    pattern: MemoizedPattern,
    start: int,
    fmask: int,
) -> TourResult:
    """Mask-based twin of :func:`repro.core.simulator.tour`."""
    telemetry = _obs.active()
    if telemetry is None:
        return _tour_indexed(network, pattern, start, fmask)
    before = len(pattern.table)
    result = _tour_indexed(network, pattern, start, fmask)
    _record_walk(telemetry, "tour", pattern.table, before, len(result.path))
    return result


def _tour_indexed(
    network: IndexedNetwork,
    pattern: MemoizedPattern,
    start: int,
    fmask: int,
) -> TourResult:
    labels = network.labels
    incident = network.incident_mask
    stride = network.n + 1
    current = start
    inport = -1
    order: list[int] = [start * stride]
    index: dict[int, int] = {start * stride: 0}
    next_hop = pattern.next_hop
    for _ in range(network.state_bound + 1):
        decision = next_hop(current, inport, fmask & incident[current])
        if decision < 0:
            return TourResult(
                visited=frozenset(labels[state // stride] for state in order),
                recurrent=frozenset(),
                failed=Outcome.DROPPED if decision == DROP else Outcome.ILLEGAL,
                path=[labels[state // stride] for state in order],
            )
        current, inport = decision, current
        state = current * stride + inport + 1
        if state in index:
            cycle = order[index[state] :]
            return TourResult(
                visited=frozenset(labels[s // stride] for s in order),
                recurrent=frozenset(labels[s // stride] for s in cycle),
                failed=None,
                path=[labels[s // stride] for s in order],
            )
        index[state] = len(order)
        order.append(state)
    raise AssertionError("state bound exceeded without repeating a state")  # pragma: no cover


def tour_recurrent_indices(
    network: IndexedNetwork,
    pattern: MemoizedPattern,
    start: int,
    fmask: int,
) -> set[int] | None:
    """The node indices toured forever, or ``None`` if the walk fails.

    The allocation-light core of :func:`tour_indexed` for yes/no
    coverage checks: no label translation, no path materialization.
    """
    telemetry = _obs.active()
    if telemetry is None:
        return _tour_recurrent_indices(network, pattern, start, fmask)
    before = len(pattern.table)
    result = _tour_recurrent_indices(network, pattern, start, fmask)
    _record_walk(telemetry, "tour", pattern.table, before, None)
    return result


def _tour_recurrent_indices(
    network: IndexedNetwork,
    pattern: MemoizedPattern,
    start: int,
    fmask: int,
) -> set[int] | None:
    incident = network.incident_mask
    stride = network.n + 1
    current = start
    inport = -1
    order: list[int] = [start * stride]
    index: dict[int, int] = {start * stride: 0}
    next_hop = pattern.next_hop
    for _ in range(network.state_bound + 1):
        decision = next_hop(current, inport, fmask & incident[current])
        if decision < 0:
            return None
        current, inport = decision, current
        state = current * stride + inport + 1
        if state in index:
            return {s // stride for s in order[index[state] :]}
        index[state] = len(order)
        order.append(state)
    raise AssertionError("state bound exceeded without repeating a state")  # pragma: no cover
