"""Incremental connected-component tracking per failure mask.

The naive checkers run one BFS per ``(destination, failure set)``
scenario.  Two observations kill almost all of that work:

* the component **partition** of ``G \\ F`` depends on the mask alone,
  so one flood per mask serves every destination and source; and
* :func:`~repro.core.resilience.all_failure_sets` emits sets in
  combination order, so the mask with the highest bit cleared (the
  enumeration prefix) has always been seen already.  Failing one more
  link can only split the single component containing that link —
  every other component's labels are reused verbatim and only the
  affected one is re-flooded.

Component labels are canonical (the minimum member index), so equal
partitions get equal label tuples regardless of the path that produced
them.
"""

from __future__ import annotations

from ...graphs.edges import sorted_nodes
from .indexed import IndexedNetwork


class ComponentTracker:
    """Memoized component partitions of ``G \\ F`` keyed by failure mask."""

    def __init__(self, network: IndexedNetwork):
        self.network = network
        #: fmask -> component label (minimum member index) per node index
        self._labels: dict[int, tuple[int, ...]] = {}
        #: (fmask, component label) -> member node indices, ascending
        self._members: dict[tuple[int, int], tuple[int, ...]] = {}
        self._label_tuples: dict[tuple[int, int], tuple] = {}
        self._index_sets: dict[tuple[int, int], frozenset[int]] = {}

    # ------------------------------------------------------------------
    # Partitions.
    # ------------------------------------------------------------------

    def labels(self, fmask: int) -> tuple[int, ...]:
        """Component label per node index under ``fmask`` (memoized)."""
        cached = self._labels.get(fmask)
        if cached is not None:
            return cached
        # Peel highest bits until we hit a cached prefix (iteratively, so
        # sampled sweeps with deep uncached suffixes cannot blow the
        # recursion limit), then reapply them one link at a time.
        pending: list[int] = []
        mask = fmask
        parent: tuple[int, ...] | None = None
        while True:
            parent = self._labels.get(mask)
            if parent is not None:
                break
            if mask == 0:
                parent = self._flood_all()
                self._labels[0] = parent
                break
            bit = 1 << (mask.bit_length() - 1)
            pending.append(bit)
            mask ^= bit
        for bit in reversed(pending):
            mask |= bit
            parent = self._split(parent, mask, bit)
            self._labels[mask] = parent
        return parent

    def _flood_all(self) -> tuple[int, ...]:
        network = self.network
        labels = [-1] * network.n
        for root in range(network.n):
            if labels[root] >= 0:
                continue
            self._flood(labels, root, 0, root)
        return tuple(labels)

    def _split(self, parent: tuple[int, ...], fmask: int, bit: int) -> tuple[int, ...]:
        u, v = self.network.link_ends[bit.bit_length() - 1]
        affected = parent[u]  # == parent[v]: the link was alive in the prefix
        labels = list(parent)
        for node in range(self.network.n):
            if parent[node] == affected:
                labels[node] = -1
        for node in range(self.network.n):
            if labels[node] < 0:
                self._flood(labels, node, fmask, node)
        return tuple(labels)

    def _flood(self, labels: list[int], root: int, fmask: int, mark: int) -> None:
        """BFS from ``root`` over links alive under ``fmask``, writing
        ``mark`` into every node reached that is still unlabelled (-1) or
        carries ``mark`` already."""
        network = self.network
        neighbor_indices = network.neighbor_indices
        neighbor_bits = network.neighbor_bits
        labels[root] = mark
        stack = [root]
        while stack:
            node = stack.pop()
            indices = neighbor_indices[node]
            bits = neighbor_bits[node]
            for i in range(len(indices)):
                if bits[i] & fmask:
                    continue
                nxt = indices[i]
                if labels[nxt] == -1:
                    labels[nxt] = mark
                    stack.append(nxt)

    # ------------------------------------------------------------------
    # Component views.
    # ------------------------------------------------------------------

    def same_component(self, fmask: int, a: int, b: int) -> bool:
        labels = self.labels(fmask)
        return labels[a] == labels[b]

    def component_indices(self, fmask: int, node: int) -> tuple[int, ...]:
        """Member node indices of ``node``'s component, ascending."""
        labels = self.labels(fmask)
        key = (fmask, labels[node])
        members = self._members.get(key)
        if members is None:
            mark = labels[node]
            members = tuple(i for i, label in enumerate(labels) if label == mark)
            self._members[key] = members
        return members

    def component_index_set(self, fmask: int, node: int) -> frozenset[int]:
        labels = self.labels(fmask)
        key = (fmask, labels[node])
        got = self._index_sets.get(key)
        if got is None:
            got = frozenset(self.component_indices(fmask, node))
            self._index_sets[key] = got
        return got

    def component_sorted(self, fmask: int, node: int) -> tuple:
        """The component's node *labels* in the checkers' deterministic
        sorted-source order (``sorted_nodes``); matches the naive path
        even when the graph mixes comparable and non-comparable labels
        (a homogeneous component sorts natively there)."""
        labels = self.labels(fmask)
        key = (fmask, labels[node])
        got = self._label_tuples.get(key)
        if got is None:
            node_labels = self.network.labels
            got = tuple(
                sorted_nodes(node_labels[i] for i in self.component_indices(fmask, node))
            )
            self._label_tuples[key] = got
        return got
