"""§VIII topology classification w.r.t. perfect resilience.

The paper classifies each Topology Zoo instance, per routing model, into:

* **possible** — a perfectly resilient scheme exists for every
  source/destination (outerplanar graphs, via touring; plus the small
  graphs covered by the positive theorems);
* **impossible** — a forbidden minor was found (``K4``/``K2,3`` for
  touring — equivalently non-outerplanarity; ``K5^-1``/``K3,3^-1`` for
  destination-based routing, Thms 10/11; ``K7^-1``/``K4,4^-1`` for
  source-destination routing, Thms 6/7) and no destination is known to
  work;
* **sometimes** — for *some* destinations ``t`` the graph minus ``t`` is
  outerplanar, so destination-based perfect resilience holds for those
  destinations (footnote 7 / Fig. 6) — this dominates a found forbidden
  minor, which only rules out a blanket scheme (Netrail contains
  ``K3,3^-1`` yet is the paper's flagship "sometimes" example);
* **unknown** — none of the above could be established.

The minor searches are budgeted exactly like the paper's ``minorminer``
heuristic runs; an exhausted budget contributes to *unknown*.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import networkx as nx

from ..graphs.edges import Node
from ..graphs.minors import (
    MinorOutcome,
    forbidden_minor_destination,
    forbidden_minor_source_destination,
    is_minor_of,
)
from ..graphs.construct import complete_bipartite, complete_graph, k_bipartite_minus, k_minus
from ..graphs.planarity import density, is_outerplanar, planarity_class


class Possibility(Enum):
    POSSIBLE = "possible"
    SOMETIMES = "sometimes"
    UNKNOWN = "unknown"
    IMPOSSIBLE = "impossible"


@dataclass
class Classification:
    """Per-model feasibility of perfect resilience for one topology."""

    name: str
    n: int
    m: int
    density: float
    planarity: str
    touring: Possibility
    destination: Possibility
    source_destination: Possibility
    #: fraction of destinations t with G - t outerplanar (Cor 5 applies)
    good_destination_fraction: float


def good_destinations(graph: nx.Graph, cap: int = 400) -> tuple[int, int]:
    """How many destinations ``t`` leave ``G - t`` outerplanar.

    Returns ``(good, examined)``; at most ``cap`` candidate destinations
    are examined (deterministically, in sorted order) to bound the cost on
    the largest topologies.
    """
    n = graph.number_of_nodes()
    m = graph.number_of_edges()
    nodes = sorted(graph.nodes, key=repr)[:cap]
    good = 0
    for node in nodes:
        # Quick Euler-style filter: outerplanarity needs m' <= 2n' - 3.
        if m - graph.degree(node) > max(2 * (n - 1) - 3, 0):
            continue
        without = nx.Graph(graph)
        without.remove_node(node)
        if is_outerplanar(without):
            good += 1
    return good, len(nodes)


def _small_positive_destination(graph: nx.Graph, budget: int) -> bool:
    """Thms 12/13: is the graph a minor of ``K5^-2`` or ``K3,3^-2``?"""
    if graph.number_of_nodes() > 6 or not nx.is_connected(graph):
        return False
    for host in (k_minus(5, 2), k_bipartite_minus(3, 3, 2)):
        if is_minor_of(graph, host, budget=budget) is MinorOutcome.YES:
            return True
    return False


def _small_positive_source_destination(graph: nx.Graph, budget: int) -> bool:
    """Thms 8/9: is the graph a minor of ``K5`` or ``K3,3``?"""
    if graph.number_of_nodes() <= 5:
        return True
    if graph.number_of_nodes() > 6 or not nx.is_connected(graph):
        return False
    return is_minor_of(graph, complete_bipartite(3, 3), budget=budget) is MinorOutcome.YES


def classify(
    graph: nx.Graph,
    name: str = "",
    minor_budget: int = 2_500,
    destination_cap: int = 400,
    use_small_positives: bool = True,
) -> Classification:
    """Classify one topology for all three routing models (§VIII)."""
    outerplanar = is_outerplanar(graph)
    plan_class = planarity_class(graph)
    if outerplanar:
        full = Possibility.POSSIBLE
        return Classification(
            name=name,
            n=graph.number_of_nodes(),
            m=graph.number_of_edges(),
            density=density(graph),
            planarity=plan_class,
            touring=full,
            destination=full,
            source_destination=full,
            good_destination_fraction=1.0,
        )

    good, examined = good_destinations(graph, cap=destination_cap)
    fraction = good / examined if examined else 0.0
    has_good_destination = good > 0

    destination = _classify_routing(
        forbidden_minor_destination(graph, budget=minor_budget),
        has_good_destination,
        positive=use_small_positives and _small_positive_destination(graph, minor_budget),
    )
    source_destination = _classify_routing(
        forbidden_minor_source_destination(graph, budget=minor_budget),
        has_good_destination,
        positive=use_small_positives and _small_positive_source_destination(graph, minor_budget),
    )
    return Classification(
        name=name,
        n=graph.number_of_nodes(),
        m=graph.number_of_edges(),
        density=density(graph),
        planarity=plan_class,
        touring=Possibility.IMPOSSIBLE,
        destination=destination,
        source_destination=source_destination,
        good_destination_fraction=fraction,
    )


def _classify_routing(
    minor: MinorOutcome, has_good_destination: bool, positive: bool
) -> Possibility:
    if positive:
        return Possibility.POSSIBLE
    if has_good_destination:
        # Cor-5 destinations work regardless of a forbidden minor: the
        # impossibility theorems only rule out a *blanket* scheme.
        # Fig. 6's Netrail is exactly this case — it contains K3,3^-1
        # (verifiable by hand: branch sets {v1},{v2,v6},{v4},{v5},{v3},
        # {v7}), yet routes perfectly for its marked destinations.
        return Possibility.SOMETIMES
    if minor is MinorOutcome.YES:
        return Possibility.IMPOSSIBLE
    return Possibility.UNKNOWN
