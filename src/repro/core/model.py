"""The paper's routing model (§II).

Each node ``v`` is configured with a static local forwarding function
``π(v)``.  A rule may depend on (a subset of):

* the set of incident failed links ``F ∩ E(v)``;
* the packet's source ``s`` and/or destination ``t`` (depending on the
  routing model);
* the in-port the packet arrived on (``⊥`` for the originating node).

Rules are *static* (pre-configured before failures are known) and headers
are immutable, so a forwarding pattern is just a deterministic function of
the local view.  The three models of the paper:

* ``SOURCE_DESTINATION`` — rules match both s and t (``π^{s,t}``, §IV);
* ``DESTINATION`` — rules match only t (``π^t``, §V);
* ``PORT`` — rules match neither (``π^∀``, the touring model of §VII).

The model distinction is enforced *by construction*: an algorithm for a
given model only receives the header fields of that model when its pattern
is built, and the per-hop :class:`LocalView` never contains header fields
at all.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum
from functools import cached_property

import networkx as nx

from ..graphs.edges import FailureSet, Node


class RoutingModel(Enum):
    """Which header fields forwarding rules may match on."""

    SOURCE_DESTINATION = "source-destination"
    DESTINATION = "destination"
    PORT = "port"


@dataclass(frozen=True)
class LocalView:
    """Everything a node may legally observe when forwarding one packet.

    ``inport`` is the neighbour the packet arrived from, or ``None`` for
    the paper's ``⊥`` (the packet originates here).  ``alive`` lists the
    neighbours whose incident link has not failed, in a stable sorted
    order.  ``failed_links`` is ``F ∩ E(v)``.
    """

    node: Node
    inport: Node | None
    alive: tuple[Node, ...]
    failed_links: FailureSet

    @cached_property
    def alive_set(self) -> frozenset[Node]:
        # cached: route() consults this every hop, and patterns often do
        # too; frozen dataclasses still have a __dict__ for the cache.
        return frozenset(self.alive)

    def alive_without(self, *excluded: Node | None) -> tuple[Node, ...]:
        """Alive neighbours minus the given nodes (``None`` entries ignored)."""
        drop = {node for node in excluded if node is not None}
        return tuple(neighbor for neighbor in self.alive if neighbor not in drop)


class ForwardingPattern(ABC):
    """A configured forwarding function for one routing task.

    Patterns are built by an algorithm for a concrete graph (and header
    fields according to the routing model) and are then queried hop by hop
    with :class:`LocalView` objects only.
    """

    @abstractmethod
    def forward(self, view: LocalView) -> Node | None:
        """The neighbour to forward to, or ``None`` to drop the packet."""


class SourceDestinationAlgorithm(ABC):
    """A family of patterns ``π^{s,t}`` (§IV): one pattern per (s, t) pair."""

    name: str = "source-destination algorithm"
    model = RoutingModel.SOURCE_DESTINATION

    @abstractmethod
    def build(self, graph: nx.Graph, source: Node, destination: Node) -> ForwardingPattern:
        """Pre-compute the pattern for packets from ``source`` to ``destination``."""


class DestinationAlgorithm(ABC):
    """A family of patterns ``π^t`` (§V): one pattern per destination."""

    name: str = "destination algorithm"
    model = RoutingModel.DESTINATION

    @abstractmethod
    def build(self, graph: nx.Graph, destination: Node) -> ForwardingPattern:
        """Pre-compute the pattern for packets destined to ``destination``."""


class TouringAlgorithm(ABC):
    """A single pattern ``π^∀`` (§VII): no header information at all."""

    name: str = "touring algorithm"
    model = RoutingModel.PORT

    @abstractmethod
    def build(self, graph: nx.Graph) -> ForwardingPattern:
        """Pre-compute the network-wide touring pattern."""


class FunctionPattern(ForwardingPattern):
    """Adapter turning a plain function ``view -> next hop`` into a pattern."""

    def __init__(self, function):
        self._function = function

    def forward(self, view: LocalView) -> Node | None:
        return self._function(view)


def destination_as_source_destination(algorithm: DestinationAlgorithm) -> SourceDestinationAlgorithm:
    """Use a destination-based algorithm in the source-destination model.

    Any ``π^t`` is trivially also a ``π^{s,t}`` (it simply ignores the
    source); the paper uses this direction implicitly throughout.
    """

    class _Adapted(SourceDestinationAlgorithm):
        name = f"{algorithm.name} (ignoring source)"

        def build(self, graph: nx.Graph, source: Node, destination: Node) -> ForwardingPattern:
            return algorithm.build(graph, destination)

    return _Adapted()


def touring_as_destination(algorithm: TouringAlgorithm) -> DestinationAlgorithm:
    """Use a touring pattern for destination-based routing (§VII).

    The paper notes that a touring pattern doubles as a destination-based
    scheme: the packet eventually visits the destination, where it is
    removed from the network.  The simulator removes packets on arrival,
    so the adaptation is the identity on the pattern.
    """

    class _Adapted(DestinationAlgorithm):
        name = f"{algorithm.name} (tour until destination)"

        def build(self, graph: nx.Graph, destination: Node) -> ForwardingPattern:
            return algorithm.build(graph)

    return _Adapted()
