"""Deterministic forwarding simulation.

Forwarding patterns are static and deterministic, so the trajectory of a
packet under a fixed failure set is fully determined by the pair
``(current node, in-port)``.  Revisiting such a state therefore proves a
permanent forwarding loop — the simulator needs no step bound to decide
between delivery and looping.

Outcomes:

* ``DELIVERED`` — the packet reached the destination;
* ``LOOP`` — a ``(node, in-port)`` state repeated: permanent loop;
* ``DROPPED`` — the pattern returned no out-port;
* ``ILLEGAL`` — the pattern forwarded over a failed or non-existent link
  (a bug in the pattern, never silently tolerated).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import networkx as nx

from ..graphs.connectivity import component_of
from ..graphs.edges import FailureSet, Node, edge
from .model import ForwardingPattern, LocalView


class Outcome(Enum):
    DELIVERED = "delivered"
    LOOP = "loop"
    DROPPED = "dropped"
    ILLEGAL = "illegal"


@dataclass
class RouteResult:
    """Trace of one routed packet."""

    outcome: Outcome
    path: list[Node]
    steps: int

    @property
    def delivered(self) -> bool:
        return self.outcome is Outcome.DELIVERED


@dataclass
class TourResult:
    """Trace of one touring packet (it never stops; we walk to the cycle)."""

    visited: frozenset[Node]
    recurrent: frozenset[Node]
    failed: Outcome | None = None
    path: list[Node] = field(default_factory=list)

    def tours(self, component: frozenset[Node]) -> bool:
        """Does the packet visit the whole component forever?"""
        return self.failed is None and self.recurrent >= component


def _sort_key(node: Node) -> tuple[str, str]:
    return (type(node).__name__, repr(node))


class Network:
    """A graph prepared for fast repeated simulation.

    Precomputes sorted adjacency; building one per (graph) and reusing it
    across failure sets is the hot path of the resilience checkers.
    """

    def __init__(self, graph: nx.Graph):
        self.graph = graph
        try:
            self.adjacency: dict[Node, tuple[Node, ...]] = {
                v: tuple(sorted(graph.neighbors(v))) for v in graph.nodes
            }
        except TypeError:
            self.adjacency = {
                v: tuple(sorted(graph.neighbors(v), key=_sort_key)) for v in graph.nodes
            }

    def view(self, node: Node, inport: Node | None, failures: FailureSet) -> LocalView:
        local = frozenset(e for e in failures if node in e)
        if local:
            alive = tuple(
                neighbor for neighbor in self.adjacency[node] if edge(node, neighbor) not in local
            )
        else:
            alive = self.adjacency[node]
        return LocalView(node=node, inport=inport, alive=alive, failed_links=local)


def route(
    network: Network | nx.Graph,
    pattern: ForwardingPattern,
    source: Node,
    destination: Node,
    failures: FailureSet = frozenset(),
    max_steps: int | None = None,
) -> RouteResult:
    """Walk one packet from ``source`` to ``destination`` under ``failures``."""
    if isinstance(network, nx.Graph):
        network = Network(network)
    if source == destination:
        return RouteResult(Outcome.DELIVERED, [source], 0)
    current: Node = source
    inport: Node | None = None
    path = [source]
    seen: set[tuple[Node, Node | None]] = {(source, None)}
    steps = 0
    limit = max_steps if max_steps is not None else _state_bound(network)
    while steps < limit:
        view = network.view(current, inport, failures)
        nxt = pattern.forward(view)
        if nxt is None:
            return RouteResult(Outcome.DROPPED, path, steps)
        if nxt not in view.alive_set:
            return RouteResult(Outcome.ILLEGAL, path, steps)
        steps += 1
        path.append(nxt)
        if nxt == destination:
            return RouteResult(Outcome.DELIVERED, path, steps)
        current, inport = nxt, current
        state = (current, inport)
        if state in seen:
            return RouteResult(Outcome.LOOP, path, steps)
        seen.add(state)
    return RouteResult(Outcome.LOOP, path, steps)


def tour(
    network: Network | nx.Graph,
    pattern: ForwardingPattern,
    start: Node,
    failures: FailureSet = frozenset(),
) -> TourResult:
    """Walk one touring packet until its state cycle is identified.

    The walk is deterministic, so it consists of a transient prefix and a
    recurrent cycle of ``(node, in-port)`` states; ``recurrent`` holds the
    nodes visited by that cycle (the nodes toured forever).
    """
    if isinstance(network, nx.Graph):
        network = Network(network)
    current: Node = start
    inport: Node | None = None
    order: list[tuple[Node, Node | None]] = [(start, None)]
    index: dict[tuple[Node, Node | None], int] = {(start, None): 0}
    limit = _state_bound(network)
    for _ in range(limit + 1):
        view = network.view(current, inport, failures)
        nxt = pattern.forward(view)
        if nxt is None:
            return TourResult(
                visited=frozenset(node for node, _ in order),
                recurrent=frozenset(),
                failed=Outcome.DROPPED,
                path=[node for node, _ in order],
            )
        if nxt not in view.alive_set:
            return TourResult(
                visited=frozenset(node for node, _ in order),
                recurrent=frozenset(),
                failed=Outcome.ILLEGAL,
                path=[node for node, _ in order],
            )
        current, inport = nxt, current
        state = (current, inport)
        if state in index:
            cycle = order[index[state] :]
            return TourResult(
                visited=frozenset(node for node, _ in order),
                recurrent=frozenset(node for node, _ in cycle),
                failed=None,
                path=[node for node, _ in order],
            )
        index[state] = len(order)
        order.append(state)
    raise AssertionError("state bound exceeded without repeating a state")  # pragma: no cover


def tours_component(
    network: Network | nx.Graph,
    pattern: ForwardingPattern,
    start: Node,
    failures: FailureSet = frozenset(),
) -> bool:
    """Does the touring walk from ``start`` perpetually cover its component?"""
    graph = network.graph if isinstance(network, Network) else network
    component = component_of(graph, start, failures)
    if len(component) == 1:
        return True
    return tour(network, pattern, start, failures).tours(component)


def _state_bound(network: Network) -> int:
    # (node, inport) states: one per directed link plus one ⊥ state per node.
    return 2 * network.graph.number_of_edges() + network.graph.number_of_nodes() + 1
