"""Touring-based broadcast with local completion detection (§VII).

The paper motivates touring beyond theory: *"if we also have the source,
we can use touring to implement a broadcast or flooding protocol.  Once
the source gets the packet again, it checks if the next outport is the
same outport as for ⊥: if yes, the packet has toured the whole network
(assuming resilience), and if not, it is still underway in its tour."*

:class:`TouringBroadcast` implements exactly that: the source launches a
packet along a touring pattern, and detects completion locally by
comparing the out-port it would use for the returning packet with the
out-port it used at start.  On outerplanar graphs (Cor 6) the detection
is sound and complete: every node of the source's surviving component is
informed before the source declares the broadcast finished.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ...graphs.connectivity import component_of
from ...graphs.edges import FailureSet, Node
from ..model import ForwardingPattern, TouringAlgorithm
from ..simulator import Network


@dataclass
class BroadcastResult:
    """Outcome of one broadcast."""

    informed: frozenset[Node]
    completed: bool
    hops: int
    walk: list[Node] = field(default_factory=list)

    def covers(self, component: frozenset[Node]) -> bool:
        return self.informed >= component


class TouringBroadcast:
    """Broadcast a message by touring; detect completion at the source."""

    def __init__(self, algorithm: TouringAlgorithm):
        self._algorithm = algorithm

    def run(
        self,
        graph: nx.Graph,
        source: Node,
        failures: FailureSet = frozenset(),
        max_hops: int | None = None,
    ) -> BroadcastResult:
        """Walk the touring packet until the source detects completion.

        Completion rule (verbatim from §VII): when the packet returns to
        the source, compare the out-port the pattern prescribes *now*
        with the out-port it prescribed at ``⊥``; equality means the tour
        has wrapped around.
        """
        network = Network(graph)
        pattern = self._algorithm.build(graph)
        limit = max_hops if max_hops is not None else 4 * graph.number_of_edges() + 4

        start_view = network.view(source, None, failures)
        first_port = pattern.forward(start_view)
        if first_port is None:
            return BroadcastResult(frozenset({source}), True, 0, [source])
        informed = {source, first_port}
        walk = [source, first_port]
        current, inport = first_port, source
        hops = 1
        while hops < limit:
            view = network.view(current, inport, failures)
            nxt = pattern.forward(view)
            if nxt is None or nxt not in view.alive_set:
                return BroadcastResult(frozenset(informed), False, hops, walk)
            hops += 1
            informed.add(nxt)
            walk.append(nxt)
            current, inport = nxt, current
            if current == source:
                view = network.view(source, inport, failures)
                if pattern.forward(view) == first_port:
                    return BroadcastResult(frozenset(informed), True, hops, walk)
        return BroadcastResult(frozenset(informed), False, hops, walk)

    def verify(self, graph: nx.Graph, source: Node, failures: FailureSet = frozenset()) -> bool:
        """Did the broadcast inform the whole surviving component of the source?"""
        result = self.run(graph, source, failures)
        return result.completed and result.covers(component_of(graph, source, failures))
