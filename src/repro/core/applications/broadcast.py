"""Touring-based broadcast with local completion detection (§VII).

The paper motivates touring beyond theory: *"if we also have the source,
we can use touring to implement a broadcast or flooding protocol.  Once
the source gets the packet again, it checks if the next outport is the
same outport as for ⊥: if yes, the packet has toured the whole network
(assuming resilience), and if not, it is still underway in its tour."*

:class:`TouringBroadcast` implements exactly that: the source launches a
packet along a touring pattern, and detects completion locally by
comparing the out-port it would use for the returning packet with the
out-port it used at start.  On outerplanar graphs (Cor 6) the detection
is sound and complete: every node of the source's surviving component is
informed before the source declares the broadcast finished.

Runs on the fast engine by default: one :class:`~repro.core.engine.sweep.
EngineState` and one memoized decision table are cached per graph, so
sweeping a broadcast over many failure sets pays for network indexing
and pattern construction once.  Pass ``session=`` (an
:class:`~repro.experiments.session.ExperimentSession`) to source engine
state from a shared session; a ``backend="naive"`` session selects the
hop-by-hop reference walk (identical results, kept for differential
testing), as does the deprecated ``use_engine=False`` keyword.  Failure
sets naming links outside the graph fall back to the naive walk
automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ...graphs.connectivity import component_of
from ...graphs.edges import FailureSet, Node
from ..engine.memo import MemoizedPattern
from ..engine.sweep import EngineState
from ..model import ForwardingPattern, TouringAlgorithm
from ..simulator import Network


@dataclass
class BroadcastResult:
    """Outcome of one broadcast."""

    informed: frozenset[Node]
    completed: bool
    hops: int
    walk: list[Node] = field(default_factory=list)

    def covers(self, component: frozenset[Node]) -> bool:
        return self.informed >= component


class TouringBroadcast:
    """Broadcast a message by touring; detect completion at the source."""

    def __init__(self, algorithm: TouringAlgorithm, session=None):
        self._algorithm = algorithm
        self._session = session
        self._graph: nx.Graph | None = None
        self._fingerprint: tuple | None = None
        self._state: EngineState | None = None
        self._memo: MemoizedPattern | None = None
        self._pattern: ForwardingPattern | None = None

    def _prepared(self, graph: nx.Graph, session) -> tuple[EngineState, MemoizedPattern]:
        """Engine state + decision table, cached per graph.

        Keyed by object identity *and* the exact node/edge sets, so a
        graph mutated in place between calls — including same-size
        rewirings — is re-indexed instead of silently served from the
        stale cache.  The O(n + m) fingerprint check is negligible next
        to the O(m) broadcast walk it guards.
        """
        fingerprint = (
            frozenset(graph.nodes),
            frozenset(frozenset(link) for link in graph.edges),
        )
        if (
            self._state is None
            or self._graph is not graph
            or self._fingerprint != fingerprint
        ):
            # build everything before touching the cache: a failing
            # pattern build must not leave a half-updated cache behind
            state = session.state(graph)
            pattern = self._algorithm.build(graph)
            memo = MemoizedPattern(state.network, pattern)
            self._graph = graph
            self._fingerprint = fingerprint
            self._state = state
            self._pattern = pattern
            self._memo = memo
        assert self._memo is not None
        return self._state, self._memo

    def run(
        self,
        graph: nx.Graph,
        source: Node,
        failures: FailureSet = frozenset(),
        max_hops: int | None = None,
        use_engine: bool | None = None,
        session=None,
    ) -> BroadcastResult:
        """Walk the touring packet until the source detects completion.

        Completion rule (verbatim from §VII): when the packet returns to
        the source, compare the out-port the pattern prescribes *now*
        with the out-port it prescribed at ``⊥``; equality means the tour
        has wrapped around.
        """
        from ...experiments.session import resolve_session

        if session is None and use_engine is None:
            # the constructor-level session is only the default; an
            # explicit use_engine= (deprecated) still overrides it
            session = self._session
        session = resolve_session(session, use_engine, caller="TouringBroadcast.run")
        limit = max_hops if max_hops is not None else 4 * graph.number_of_edges() + 4
        if session.use_engine:
            state, memo = self._prepared(graph, session)
            fmask = state.network.mask_of(failures)
            if fmask is not None and source in state.network.index:
                return self._run_indexed(state, memo, source, fmask, limit)
            pattern = self._pattern
            assert pattern is not None
            network: Network = state.naive_network
        else:
            pattern = self._algorithm.build(graph)
            network = Network(graph)
        return self._run_naive(network, pattern, source, failures, limit)

    def _run_indexed(
        self,
        state: EngineState,
        memo: MemoizedPattern,
        source: Node,
        fmask: int,
        limit: int,
    ) -> BroadcastResult:
        """Mask-based twin of :meth:`_run_naive` — identical results."""
        network = state.network
        labels = network.labels
        index = network.index
        incident = network.incident_mask
        pattern = memo.pattern
        src = index[source]
        # ⊥ step: query the pattern directly (the naive walk does not
        # check aliveness of the very first port, so neither do we)
        first_port = pattern.forward(network.view(src, -1, fmask))
        if first_port is None:
            return BroadcastResult(frozenset({source}), True, 0, [source])
        first_idx = index.get(first_port)
        informed = {source, first_port}
        walk = [source, first_port]
        hops = 1
        if first_idx is None:  # pattern named a non-node: naive semantics
            return self._run_naive(
                state.naive_network, pattern, source, network.failures_of(fmask), limit
            )
        current, inport = first_idx, src
        next_hop = memo.next_hop
        while hops < limit:
            decision = next_hop(current, inport, fmask & incident[current])
            if decision < 0:  # dropped, or forwarded over a failed link
                return BroadcastResult(frozenset(informed), False, hops, walk)
            hops += 1
            informed.add(labels[decision])
            walk.append(labels[decision])
            current, inport = decision, current
            if current == src:
                returning = next_hop(src, inport, fmask & incident[src])
                if returning >= 0:
                    wrapped = labels[returning] == first_port
                else:
                    # the naive check compares the raw pattern answer,
                    # alive or not — ask the pattern directly here
                    wrapped = (
                        pattern.forward(network.view(src, inport, fmask)) == first_port
                    )
                if wrapped:
                    return BroadcastResult(frozenset(informed), True, hops, walk)
        return BroadcastResult(frozenset(informed), False, hops, walk)

    def _run_naive(
        self,
        network: Network,
        pattern: ForwardingPattern,
        source: Node,
        failures: FailureSet,
        limit: int,
    ) -> BroadcastResult:
        start_view = network.view(source, None, failures)
        first_port = pattern.forward(start_view)
        if first_port is None:
            return BroadcastResult(frozenset({source}), True, 0, [source])
        informed = {source, first_port}
        walk = [source, first_port]
        current, inport = first_port, source
        hops = 1
        while hops < limit:
            view = network.view(current, inport, failures)
            nxt = pattern.forward(view)
            if nxt is None or nxt not in view.alive_set:
                return BroadcastResult(frozenset(informed), False, hops, walk)
            hops += 1
            informed.add(nxt)
            walk.append(nxt)
            current, inport = nxt, current
            if current == source:
                view = network.view(source, inport, failures)
                if pattern.forward(view) == first_port:
                    return BroadcastResult(frozenset(informed), True, hops, walk)
        return BroadcastResult(frozenset(informed), False, hops, walk)

    def verify(
        self,
        graph: nx.Graph,
        source: Node,
        failures: FailureSet = frozenset(),
        use_engine: bool | None = None,
        session=None,
    ) -> bool:
        """Did the broadcast inform the whole surviving component of the source?"""
        result = self.run(graph, source, failures, use_engine=use_engine, session=session)
        return result.completed and result.covers(component_of(graph, source, failures))
