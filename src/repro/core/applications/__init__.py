"""Applications built on the paper's primitives (§VII remarks)."""

from .broadcast import BroadcastResult, TouringBroadcast

__all__ = ["BroadcastResult", "TouringBroadcast"]
