"""The paper's contribution: routing models, simulator, checkers, algorithms."""

from .model import (
    DestinationAlgorithm,
    ForwardingPattern,
    FunctionPattern,
    LocalView,
    RoutingModel,
    SourceDestinationAlgorithm,
    TouringAlgorithm,
    destination_as_source_destination,
    touring_as_destination,
)
from .engine import (
    ComponentTracker,
    EngineState,
    IndexedNetwork,
    MemoizedPattern,
    ScenarioGrid,
    SweepResult,
    route_indexed,
    sweep_pattern_resilience,
    sweep_resilience,
    tour_indexed,
)
from .export import ForwardingTable, MaterializedPattern, materialize, reload_pattern
from .orbits import corollary8_violation, orbit_of, relevant_neighbors, same_orbit
from .resilience import (
    Counterexample,
    Verdict,
    all_failure_sets,
    check_ideal_resilience,
    check_k_resilient_touring,
    check_pattern_resilience,
    check_perfect_resilience_destination,
    check_perfect_resilience_source_destination,
    check_perfect_touring,
    check_r_tolerance,
    sampled_failure_sets,
)
from .simulator import Network, Outcome, RouteResult, TourResult, route, tour, tours_component
from .tables import ORIGIN, CyclicPermutationPattern, PriorityTable

__all__ = [name for name in dir() if not name.startswith("_")]
