"""Priority-table forwarding patterns (the paper's table notation).

Several of the paper's constructive proofs specify forwarding patterns as
small tables: *"we state for each inport in which order outports are
considered"* (proof of Thm 9; Fig. 4 for Thm 12).  This module implements
that notation directly:

* per node and in-port, an ordered list of out-port candidates;
* the first candidate whose link is alive wins;
* when the list is exhausted the packet bounces back to its in-port
  (always legal, the packet just arrived over that link), or is dropped if
  it has no in-port;
* an optional *deliver-first* rule sends the packet straight to a
  designated node whenever the direct link is alive — the paper's
  ubiquitous "if ``(i, t) ∉ F_i`` then send to ``t``" (Algorithm 1, line 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graphs.edges import Node
from .model import ForwardingPattern, LocalView

#: key for the ⊥ in-port in table definitions
ORIGIN = None


@dataclass
class PriorityTable(ForwardingPattern):
    """A forwarding pattern given by per-(node, inport) priority lists.

    ``rules[node][inport]`` is the ordered tuple of out-port candidates;
    ``inport`` may be :data:`ORIGIN` (``None``) for packets starting at the
    node.  Missing entries fall back to *bounce to in-port*.
    """

    rules: dict[Node, dict[Node | None, tuple[Node, ...]]]
    deliver_first: Node | None = None
    name: str = "priority table"
    #: nodes where deliver_first must NOT short-circuit (rarely needed)
    no_shortcut: frozenset[Node] = field(default_factory=frozenset)

    def forward(self, view: LocalView) -> Node | None:
        alive = view.alive_set
        if (
            self.deliver_first is not None
            and view.node not in self.no_shortcut
            and self.deliver_first in alive
        ):
            return self.deliver_first
        node_rules = self.rules.get(view.node, {})
        candidates = node_rules.get(view.inport)
        if candidates is None and view.inport is not None:
            candidates = node_rules.get("*")  # optional wildcard row
        if candidates is not None:
            for candidate in candidates:
                if candidate in alive:
                    return candidate
        if view.inport is not None and view.inport in alive:
            return view.inport
        return None


def table(**rows) -> dict:
    """Sugar for building rule dicts in tests: ``table(a={None: ('b',)})``."""
    return dict(rows)


@dataclass
class CyclicPermutationPattern(ForwardingPattern):
    """Forward along a fixed cyclic permutation of each node's neighbours.

    The packet arriving from ``u`` leaves via the first alive neighbour
    after ``u`` in the node's cycle; packets originating at the node leave
    via the first alive entry.  An optional deliver-first rule short
    circuits to the destination.  This is the canonical "forwarding
    pattern that follows a cyclic permutation" of the paper's Fig. 1 and
    the shape Lemma 1 / Corollary 8 force on perfectly resilient patterns.
    """

    cycles: dict[Node, tuple[Node, ...]]
    deliver_first: Node | None = None
    name: str = "cyclic permutation"

    def forward(self, view: LocalView) -> Node | None:
        alive = view.alive_set
        if self.deliver_first is not None and self.deliver_first in alive:
            return self.deliver_first
        cycle = self.cycles.get(view.node, ())
        if not cycle:
            return view.inport if view.inport in alive else None
        if view.inport is None or view.inport not in cycle:
            for candidate in cycle:
                if candidate in alive:
                    return candidate
            return None
        anchor = cycle.index(view.inport)
        size = len(cycle)
        for offset in range(1, size + 1):
            candidate = cycle[(anchor + offset) % size]
            if candidate in alive:
                return candidate
        return None
