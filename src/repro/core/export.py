"""Materializing patterns into installable forwarding tables.

The paper's whole premise is that failover rules are *pre-installed*
state: finitely many conditional rules per router, matched on (header,
in-port, set of locally failed links).  This module makes that concrete:
it enumerates a pattern's behaviour over all local failure sets and
in-ports of a node and emits the explicit rule list a router would
install — i.e. it compiles any :class:`~repro.core.model.ForwardingPattern`
(including the algorithmic ones) into static match/action tables, and can
reload those tables as a :class:`~repro.core.tables.PriorityTable`-style
pattern whose behaviour is bit-identical.

Rule counts grow as ``2^degree`` per node (one row per incident failure
set), which is exactly the table-size cost the paper's §VII table-space
remark is about.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from itertools import combinations

import networkx as nx

from ..graphs.edges import FailureSet, Node, edge
from .model import ForwardingPattern, LocalView


@dataclass(frozen=True)
class Rule:
    """One installable rule: (failed local links, in-port) -> out-port."""

    node: Node
    failed_links: tuple
    inport: Node | None
    out: Node | None


@dataclass
class ForwardingTable:
    """The materialized rules of one pattern on one graph."""

    rules: list[Rule] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rules)

    def lookup(self, node: Node, failed_links: FailureSet, inport: Node | None) -> Node | None:
        key = (node, tuple(sorted(failed_links, key=repr)), inport)
        return self._index()[key]

    def _index(self):
        if not hasattr(self, "_cached_index"):
            self._cached_index = {
                (rule.node, rule.failed_links, rule.inport): rule.out for rule in self.rules
            }
        return self._cached_index

    def to_json(self) -> str:
        payload = [
            {
                "node": repr(rule.node),
                "failed": [[repr(u), repr(v)] for u, v in rule.failed_links],
                "inport": None if rule.inport is None else repr(rule.inport),
                "out": None if rule.out is None else repr(rule.out),
            }
            for rule in self.rules
        ]
        return json.dumps(payload, indent=2)


class MaterializedPattern(ForwardingPattern):
    """A pattern replayed from a materialized forwarding table."""

    def __init__(self, table: ForwardingTable):
        self._table = table

    def forward(self, view: LocalView) -> Node | None:
        return self._table.lookup(view.node, view.failed_links, view.inport)


def materialize(
    graph: nx.Graph,
    pattern: ForwardingPattern,
    nodes=None,
    max_degree: int = 12,
) -> ForwardingTable:
    """Compile a pattern into explicit per-router rules.

    Enumerates, per node, every subset of incident links as the local
    failure condition and every possible in-port (including ``⊥``).
    Nodes of degree above ``max_degree`` are rejected (their tables would
    exceed 2^12 rows — the practical table-space limit the paper alludes
    to).
    """
    table = ForwardingTable()
    try:
        chosen = list(nodes) if nodes is not None else sorted(graph.nodes)
    except TypeError:
        chosen = sorted(graph.nodes, key=repr)
    for node in chosen:
        neighbors = sorted(graph.neighbors(node), key=repr)
        if len(neighbors) > max_degree:
            raise ValueError(
                f"node {node!r} has degree {len(neighbors)} > {max_degree}; "
                "its failure-conditional table would be impractically large"
            )
        incident = [edge(node, neighbor) for neighbor in neighbors]
        for size in range(len(incident) + 1):
            for combo in combinations(sorted(incident, key=repr), size):
                failed = frozenset(combo)
                alive = tuple(
                    neighbor for neighbor in neighbors if edge(node, neighbor) not in failed
                )
                inports: list[Node | None] = [None] + list(alive)
                for inport in inports:
                    view = LocalView(
                        node=node, inport=inport, alive=alive, failed_links=failed
                    )
                    out = pattern.forward(view)
                    table.rules.append(
                        Rule(
                            node=node,
                            failed_links=tuple(sorted(failed, key=repr)),
                            inport=inport,
                            out=out,
                        )
                    )
    return table


def reload_pattern(table: ForwardingTable) -> ForwardingPattern:
    """A pattern whose behaviour replays the materialized table exactly."""
    return MaterializedPattern(table)
