"""repro — reproduction of "On the Price of Locality in Static Fast Rerouting".

Foerster, Hirvonen, Pignolet, Schmid, Trédan — DSN 2022
(arXiv:2204.03413).

The library implements the paper's model of static local fast rerouting
(§II), its positive algorithms (Algorithm 1, the K3,3 / K5^-2 / K3,3^-2
tables, distance-2/3 exploration, right-hand-rule and Hamiltonian
touring), its constructive impossibility adversaries (Theorems 1, 6, 7,
14, 15 and the touring lemmas), and the §VIII topology classification
pipeline, on top of self-contained graph substrates (connectivity,
planarity, minors, Hamiltonian decompositions, arborescence packings).
:mod:`repro.traffic` extends the single-packet view to whole traffic
matrices: batched multi-flow load accounting under failures, congestion
sweeps and worst-case load adversaries on datacenter fabrics
(fat-tree, hypercube, torus).  :mod:`repro.experiments` is the unified
experiment API: scheme/topology registries, sessions that own engine
state, and the ``run_grid`` runner emitting typed records.

Quickstart::

    import repro
    from repro.graphs import complete_graph
    from repro.core import route, Network

    g = repro.topology("k5").build()
    pattern = repro.scheme("k5-source").instantiate().build(g, source=0, destination=4)
    result = route(Network(g), pattern, 0, 4, failures=repro.failure_set((0, 4), (1, 4)))
    assert result.delivered

    # the experiment grid: registries -> session -> records
    result = repro.run_grid(["ring", "fattree"], ["arborescence", "greedy"])
    print(result.table())

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
regeneration of every table and figure of the paper.
"""

from .graphs.edges import EMPTY_FAILURES, Edge, FailureSet, Node, edge, edges, failure_set
from .core import (
    Network,
    Outcome,
    RouteResult,
    TourResult,
    route,
    tour,
    tours_component,
)
from .core.classification import Classification, Possibility, classify
from .experiments import (
    ExperimentRecord,
    ExperimentSession,
    FailureModel,
    GridResult,
    ResultStore,
    SchemeNotApplicable,
    SchemeSpec,
    TopologySpec,
    list_schemes,
    list_topologies,
    resolve_topology,
    run_grid,
    scheme,
    topology,
)

__version__ = "1.1.0"

__all__ = [
    "Classification",
    "EMPTY_FAILURES",
    "Edge",
    "ExperimentRecord",
    "ExperimentSession",
    "FailureModel",
    "FailureSet",
    "GridResult",
    "Network",
    "Node",
    "Outcome",
    "Possibility",
    "ResultStore",
    "RouteResult",
    "SchemeNotApplicable",
    "SchemeSpec",
    "TopologySpec",
    "TourResult",
    "classify",
    "edge",
    "edges",
    "failure_set",
    "list_schemes",
    "list_topologies",
    "resolve_topology",
    "route",
    "run_grid",
    "scheme",
    "tour",
    "topology",
    "tours_component",
]
