"""repro — reproduction of "On the Price of Locality in Static Fast Rerouting".

Foerster, Hirvonen, Pignolet, Schmid, Trédan — DSN 2022
(arXiv:2204.03413).

The library implements the paper's model of static local fast rerouting
(§II), its positive algorithms (Algorithm 1, the K3,3 / K5^-2 / K3,3^-2
tables, distance-2/3 exploration, right-hand-rule and Hamiltonian
touring), its constructive impossibility adversaries (Theorems 1, 6, 7,
14, 15 and the touring lemmas), and the §VIII topology classification
pipeline, on top of self-contained graph substrates (connectivity,
planarity, minors, Hamiltonian decompositions, arborescence packings).
:mod:`repro.traffic` extends the single-packet view to whole traffic
matrices: batched multi-flow load accounting under failures, congestion
sweeps and worst-case load adversaries on datacenter fabrics
(fat-tree, hypercube, torus).

Quickstart::

    import repro
    from repro.graphs import complete_graph
    from repro.core.algorithms import K5SourceRouting
    from repro.core import route, Network

    g = complete_graph(5)
    pattern = K5SourceRouting().build(g, source=0, destination=4)
    result = route(Network(g), pattern, 0, 4, failures=repro.failure_set((0, 4), (1, 4)))
    assert result.delivered

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
regeneration of every table and figure of the paper.
"""

from .graphs.edges import EMPTY_FAILURES, Edge, FailureSet, Node, edge, edges, failure_set
from .core import (
    Network,
    Outcome,
    RouteResult,
    TourResult,
    route,
    tour,
    tours_component,
)
from .core.classification import Classification, Possibility, classify

__version__ = "1.0.0"

__all__ = [
    "Classification",
    "EMPTY_FAILURES",
    "Edge",
    "FailureSet",
    "Network",
    "Node",
    "Outcome",
    "Possibility",
    "RouteResult",
    "TourResult",
    "classify",
    "edge",
    "edges",
    "failure_set",
    "route",
    "tour",
    "tours_component",
]
