"""Traffic-matrix generators: demand iterables for the load router.

A traffic matrix is simply a list of :class:`Demand` entries — (source,
destination, integer volume) — routed *simultaneously* through a static
forwarding pattern by :mod:`repro.traffic.load`.  The generators here
cover the standard shapes of the congestion literature (Bankhamer,
Elsässer, Schmid 2020/2021): all-to-one incast, uniform all-to-all,
random permutations, hotspot skew, and a degree-weighted gravity model.

All generators are deterministic: random ones take an explicit ``seed``
and node order is the engine's sorted label order, so a matrix is
reproducible across runs and across the batched/naive router pair.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import networkx as nx

from ..graphs.edges import Node, sorted_nodes


@dataclass(frozen=True)
class Demand:
    """One entry of a traffic matrix: ``volume`` units from ``source`` to
    ``destination``.  Volumes are integers (think: packet or flow counts)
    so per-link load counters stay exact."""

    source: Node
    destination: Node
    volume: int = 1

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise ValueError(f"demand from {self.source!r} to itself")
        if self.volume < 1:
            raise ValueError(f"demand volume must be >= 1, got {self.volume}")


TrafficMatrix = list[Demand]


def all_to_one(graph: nx.Graph, destination: Node, volume: int = 1) -> TrafficMatrix:
    """Incast: every other node sends ``volume`` units to ``destination``."""
    if destination not in graph:
        raise ValueError(f"destination {destination!r} not in graph")
    return [
        Demand(source, destination, volume)
        for source in sorted_nodes(graph.nodes)
        if source != destination
    ]


def all_to_all(graph: nx.Graph, volume: int = 1) -> TrafficMatrix:
    """Uniform all-to-all: every ordered pair exchanges ``volume`` units."""
    nodes = sorted_nodes(graph.nodes)
    return [
        Demand(source, destination, volume)
        for destination in nodes
        for source in nodes
        if source != destination
    ]


def permutation(graph: nx.Graph, seed: int = 0, volume: int = 1) -> TrafficMatrix:
    """A random permutation matrix: each node sends to one distinct target.

    Fixed points are rerolled away (a node never sends to itself), so on
    ``n >= 2`` nodes the matrix always has exactly ``n`` demands.
    """
    nodes = sorted_nodes(graph.nodes)
    if len(nodes) < 2:
        raise ValueError("permutation matrix needs >= 2 nodes")
    rng = random.Random(seed)
    targets = list(nodes)
    while any(s == t for s, t in zip(nodes, targets)):
        rng.shuffle(targets)
    return [Demand(source, target, volume) for source, target in zip(nodes, targets)]


def hotspot(
    graph: nx.Graph,
    hotspots: int = 1,
    seed: int = 0,
    hot_volume: int = 4,
    background_volume: int = 1,
) -> TrafficMatrix:
    """Skewed incast: a few random hot destinations drawing heavy volume.

    Every node sends ``hot_volume`` to each of the ``hotspots`` randomly
    chosen hot destinations, plus ``background_volume`` to one random
    background target — the elephant/mice mix of datacenter traces.
    """
    nodes = sorted_nodes(graph.nodes)
    if hotspots < 1 or hotspots >= len(nodes):
        raise ValueError("hotspots must be in [1, n)")
    rng = random.Random(seed)
    hot = rng.sample(nodes, hotspots)
    demands: TrafficMatrix = []
    for source in nodes:
        for target in hot:
            if source != target:
                demands.append(Demand(source, target, hot_volume))
        background = rng.choice(nodes)
        while background == source:
            background = rng.choice(nodes)
        demands.append(Demand(source, background, background_volume))
    return demands


def gravity(graph: nx.Graph, total_volume: int = 1000, seed: int = 0) -> TrafficMatrix:
    """Degree-weighted gravity model: volume(s, t) ∝ deg(s) · deg(t).

    The classic WAN traffic model, integerized: each pair's share of
    ``total_volume`` is rounded down, pairs with zero share are dropped,
    and ties are broken deterministically by node order.  ``seed`` jitters
    the weights slightly so distinct seeds give distinct (but still
    degree-shaped) matrices.
    """
    nodes = sorted_nodes(graph.nodes)
    if len(nodes) < 2:
        raise ValueError("gravity matrix needs >= 2 nodes")
    rng = random.Random(seed)
    weight = {node: graph.degree(node) + rng.random() * 0.5 for node in nodes}
    mass = sum(
        weight[s] * weight[t] for t in nodes for s in nodes if s != t
    )
    demands: TrafficMatrix = []
    for destination in nodes:
        for source in nodes:
            if source == destination:
                continue
            volume = int(total_volume * weight[source] * weight[destination] / mass)
            if volume >= 1:
                demands.append(Demand(source, destination, volume))
    if not demands:
        raise ValueError("total_volume too small: every pair rounded to zero")
    return demands


MATRICES = {
    "all-to-one": all_to_one,
    "all-to-all": all_to_all,
    "permutation": permutation,
    "hotspot": hotspot,
    "gravity": gravity,
}


def build_named_matrix(
    graph: nx.Graph,
    name: str,
    seed: int = 0,
    destination: Node | None = None,
) -> tuple[TrafficMatrix, str]:
    """Build a matrix by generator name; returns ``(matrix, label)``.

    The single dispatch shared by the CLI and the grid runner, so the
    same workload name means the same matrix on every surface.  The
    default ``all-to-one`` sink is the last node in the engine's
    canonical :func:`~repro.graphs.edges.sorted_nodes` order.
    """
    if name == "all-to-one":
        sink = destination if destination is not None else sorted_nodes(graph.nodes)[-1]
        return all_to_one(graph, sink), f"all-to-one({sink})"
    if name == "all-to-all":
        return all_to_all(graph), "all-to-all"
    generator = MATRICES.get(name)
    if generator is None:
        raise ValueError(f"unknown matrix {name!r}; known: {', '.join(sorted(MATRICES))}")
    return generator(graph, seed=seed), name


def total_volume(matrix: TrafficMatrix) -> int:
    """Total demand volume of a matrix."""
    return sum(demand.volume for demand in matrix)
