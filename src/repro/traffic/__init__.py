"""Traffic & congestion subsystem: multi-flow load analysis under failures.

The paper prices locality in *resilience* and *stretch*; its companion
line of work — "Local Fast Rerouting with Low Congestion" (Bankhamer,
Elsässer, Schmid 2020) and the 2021 datacenter follow-up — prices it in
*link load* when many flows reroute at once.  This package turns the
single-packet simulation engine into a traffic-engineering evaluator:

* :mod:`~repro.traffic.matrices` — deterministic traffic-matrix
  generators (all-to-one, all-to-all, permutation, hotspot, gravity);
* :mod:`~repro.traffic.load` — the batched multi-flow router: one pass
  per failure mask over a functional graph of ``(node, in-port)``
  states, producing exact per-link integer loads
  (:class:`~repro.traffic.load.LoadReport`), differentially equal to
  per-packet simulation;
* :mod:`~repro.traffic.congestion` — sweep drivers: congestion-vs-
  failures curves, greedy worst-case load adversaries, and the
  fixed-grid comparison harness across the repo's algorithms.

Datacenter topologies for the 2021 setting (``fat_tree``, ``hypercube``,
``torus``) live in :mod:`repro.graphs.construct`.
"""

from .congestion import (
    ComparisonResult,
    CongestionAttack,
    CongestionCurve,
    CongestionPoint,
    compare_congestion,
    congestion_table,
    congestion_vs_failures,
    default_competitors,
    default_sizes,
    greedy_congestion_attack,
    preflight_congestion_curve,
    sample_failure_grid,
)
from .load import LoadReport, TrafficEngine, per_packet_loads, route_matrix
from .matrices import (
    MATRICES,
    Demand,
    TrafficMatrix,
    all_to_all,
    all_to_one,
    gravity,
    hotspot,
    permutation,
    total_volume,
)

__all__ = [
    "MATRICES",
    "ComparisonResult",
    "CongestionAttack",
    "CongestionCurve",
    "CongestionPoint",
    "Demand",
    "LoadReport",
    "TrafficEngine",
    "TrafficMatrix",
    "all_to_all",
    "all_to_one",
    "compare_congestion",
    "congestion_table",
    "congestion_vs_failures",
    "default_competitors",
    "default_sizes",
    "gravity",
    "greedy_congestion_attack",
    "hotspot",
    "per_packet_loads",
    "permutation",
    "preflight_congestion_curve",
    "route_matrix",
    "sample_failure_grid",
    "total_volume",
]
