"""Congestion sweeps: load-vs-failures curves, adversarial load search,
and an algorithm comparison harness.

Mirrors :func:`repro.core.engine.sweep.sweep_resilience` one layer up:
instead of asking "does every packet arrive?", each scenario routes a
whole traffic matrix through :class:`~repro.traffic.load.TrafficEngine`
and records what the rerouted flows do to link loads — the "price of
locality" measured in congestion rather than resilience (Bankhamer,
Elsässer, Schmid 2020/2021).

Three drivers:

* :func:`congestion_vs_failures` — congestion curve over failure-set
  sizes, sampled on a deterministic seeded grid;
* :func:`greedy_congestion_attack` — worst-case failure search for load,
  greedy link-by-link with a pruning pass, following the verified-witness
  scaffolding of :mod:`repro.core.adversary.search` (every returned
  witness is re-simulated, never trusted from the search);
* :func:`compare_congestion` — the repo's algorithms (arborescence,
  distance-2/3, outerplanar touring, naive) on the **same** scenario
  grid, skipping algorithms a topology cannot support.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..core.engine.sweep import EngineState

# the grid sampler moved to repro.failures (it is RandomGridModel's
# internals now); re-exported here because every congestion surface —
# and years of call sites — import it from this module
from ..failures.models import default_sizes, sample_failure_grid  # noqa: F401
from ..graphs.connectivity import surviving_graph
from ..graphs.edges import FailureSet, edge, edge_sort_key
from .load import LoadReport, RoutingAlgorithm, TrafficEngine
from .matrices import TrafficMatrix


@dataclass
class CongestionPoint:
    """Aggregate load statistics at one failure-set size."""

    failures: int
    scenarios: int
    mean_max_load: float
    worst_max_load: int
    mean_p99_load: float
    delivered_fraction: float
    looped_fraction: float
    dropped_fraction: float
    mean_stretch: float


@dataclass
class CongestionCurve:
    """Congestion-vs-#failures curve for one algorithm on one matrix."""

    algorithm: str
    graph: str
    matrix: str
    samples_per_size: int
    points: list[CongestionPoint] = field(default_factory=list)

    def at(self, size: int) -> CongestionPoint:
        for point in self.points:
            if point.failures == size:
                return point
        raise KeyError(f"no point at |F| = {size}")


def congestion_vs_failures(
    graph: nx.Graph | EngineState,
    algorithm: RoutingAlgorithm,
    demands: TrafficMatrix,
    sizes: list[int] | None = None,
    samples: int = 20,
    seed: int = 0,
    graph_name: str = "",
    matrix_name: str = "",
    failure_grid: dict[int, list[FailureSet]] | None = None,
    engine: TrafficEngine | None = None,
    session=None,
) -> CongestionCurve:
    """Load statistics per failure-set size for one algorithm.

    One :class:`TrafficEngine` serves the whole sweep, so patterns and
    decision tables are built once (pass a prebuilt ``engine``, or a
    ``session`` that owns the engine state, to reuse them across
    calls).  Pass ``failure_grid`` to pin the exact scenarios (the
    comparison harness does).
    """
    if engine is None:
        engine = TrafficEngine(graph, algorithm, session=session)
    if failure_grid is None:
        if sizes is None:
            sizes = default_sizes(engine.graph)
        failure_grid = sample_failure_grid(engine.graph, sizes, samples, seed)
    curve = CongestionCurve(
        algorithm=algorithm.name,
        graph=graph_name or f"n={engine.graph.number_of_nodes()}",
        matrix=matrix_name or f"{len(demands)} demands",
        samples_per_size=samples,
    )
    for size in sorted(failure_grid):
        # one batched call per size: a numpy-backend engine walks the
        # whole bucket as one mask batch, everything else loops scalar
        reports = engine.load_sweep(demands, failure_grid[size])
        if reports:  # an explicitly passed grid may carry empty buckets
            curve.points.append(_aggregate(size, reports))
    return curve


def _aggregate(size: int, reports: list[LoadReport]) -> CongestionPoint:
    count = len(reports)
    total = sum(report.total_volume for report in reports)
    delivered = sum(report.delivered_volume for report in reports)
    return CongestionPoint(
        failures=size,
        scenarios=count,
        mean_max_load=sum(report.max_load for report in reports) / count,
        worst_max_load=max(report.max_load for report in reports),
        mean_p99_load=sum(report.p99_load for report in reports) / count,
        delivered_fraction=delivered / total if total else 0.0,
        looped_fraction=sum(r.looped_volume for r in reports) / total if total else 0.0,
        dropped_fraction=sum(r.dropped_volume for r in reports) / total if total else 0.0,
        mean_stretch=(
            sum(report.stretch_volume for report in reports) / delivered if delivered else 0.0
        ),
    )


# ---------------------------------------------------------------------------
# Worst-case (adversarial) load search.
# ---------------------------------------------------------------------------


@dataclass
class CongestionAttack:
    """A verified worst-case-load witness (cf. ``adversary.search.AttackResult``)."""

    failures: FailureSet
    max_load: int
    baseline_max_load: int
    method: str

    @property
    def size(self) -> int:
        return len(self.failures)

    @property
    def amplification(self) -> float:
        """How much the failures inflate the failure-free max link load."""
        if self.baseline_max_load == 0:
            return float(self.max_load)
        return self.max_load / self.baseline_max_load


def greedy_congestion_attack(
    graph: nx.Graph | EngineState,
    algorithm: RoutingAlgorithm,
    demands: TrafficMatrix,
    max_failures: int,
    keep_connected: bool = True,
    session=None,
) -> CongestionAttack:
    """Greedily fail the link that maximizes the resulting max link load.

    Follows the :mod:`repro.core.adversary.search` scaffolding: candidates
    are evaluated by full simulation on a shared engine (one decision
    table across all candidates), the final witness is pruned link by
    link (drop any failure whose removal does not lower the achieved
    load), and the reported load is re-verified on the pruned set.
    ``keep_connected`` restricts the adversary to failures that keep the
    surviving graph connected — the promise of the congestion papers.
    """
    engine = TrafficEngine(graph, algorithm, session=session)
    links = sorted((edge(u, v) for u, v in engine.graph.edges), key=edge_sort_key)
    baseline = engine.load(demands).max_load
    chosen: set = set()
    # the greedy trajectory is not monotone (a failure can *lower* max
    # load by disconnecting heavy flows), so remember the best prefix
    # seen across rounds rather than trusting the final set
    best_load = baseline
    best_prefix: frozenset = frozenset()
    for _ in range(max_failures):
        round_best = None
        for link in links:
            if link in chosen:
                continue
            candidate = frozenset(chosen | {link})
            if keep_connected and not nx.is_connected(surviving_graph(engine.graph, candidate)):
                continue
            load = engine.load(demands, candidate).max_load
            if round_best is None or load > round_best[0]:
                round_best = (load, link)
        if round_best is None:
            break  # every remaining link would disconnect the graph
        chosen.add(round_best[1])
        if round_best[0] >= best_load:
            best_load = round_best[0]
            best_prefix = frozenset(chosen)
    # pruning pass: drop failures that are not pulling their weight
    chosen = set(best_prefix)
    for link in sorted(chosen, key=edge_sort_key):
        candidate = frozenset(chosen - {link})
        if engine.load(demands, candidate).max_load >= best_load:
            chosen.discard(link)
    witness = frozenset(chosen)
    verified = engine.load(demands, witness).max_load
    return CongestionAttack(
        failures=witness,
        max_load=verified,
        baseline_max_load=baseline,
        method="greedy",
    )


# ---------------------------------------------------------------------------
# Comparison harness.
# ---------------------------------------------------------------------------


@dataclass
class ComparisonResult:
    """Curves for every supported algorithm plus the skip list."""

    curves: list[CongestionCurve]
    skipped: list[tuple[str, str]] = field(default_factory=list)


def default_competitors() -> list[RoutingAlgorithm]:
    """The repo's standard line-up for congestion comparisons.

    Resolved from the scheme registry (the ``congestion-default`` tag,
    in registration order) — there is no private scheme list here;
    registering a new tagged scheme adds it to every comparison.
    """
    from ..experiments.registry import list_schemes

    return [spec.instantiate() for spec in list_schemes(tag="congestion-default")]


def preflight_congestion_curve(
    engine: TrafficEngine,
    algorithm: RoutingAlgorithm,
    demands: TrafficMatrix,
    failure_grid: dict[int, list[FailureSet]],
    samples: int = 20,
    graph_name: str = "",
    matrix_name: str = "",
) -> tuple[CongestionCurve | None, str | None]:
    """Pre-flight the patterns, then sweep the pinned grid.

    The one implementation of "try to build every pattern once, skip
    the scheme with a reason on failure, otherwise sweep the shared
    grid" — used by :func:`compare_congestion`, the experiments grid
    runner, and the CLI so their skip semantics and load numbers cannot
    drift apart.  Returns ``(curve, None)`` or ``(None, skip reason)``.
    """
    try:
        # pre-flight: building the failure-free report exercises every
        # pattern constructor the sweep will need
        engine.load(demands)
    except Exception as error:  # noqa: BLE001 - precondition failures vary by algorithm
        return None, str(error) or type(error).__name__
    curve = congestion_vs_failures(
        engine.state,
        algorithm,
        demands,
        samples=samples,
        graph_name=graph_name,
        matrix_name=matrix_name,
        failure_grid=failure_grid,
        engine=engine,  # patterns built by the pre-flight are reused
    )
    return curve, None


def compare_congestion(
    graph: nx.Graph,
    demands: TrafficMatrix,
    algorithms: list[RoutingAlgorithm] | None = None,
    sizes: list[int] | None = None,
    samples: int = 20,
    seed: int = 0,
    graph_name: str = "",
    matrix_name: str = "",
    session=None,
    failure_grid: dict[int, list[FailureSet]] | None = None,
) -> ComparisonResult:
    """Congestion curves for several algorithms on one shared scenario grid.

    Algorithms whose preconditions the topology violates (bipartite-only
    distance-3, outerplanar-only touring, ...) are skipped and reported
    rather than crashing the sweep; every surviving competitor sees the
    exact same failure sets.  Pass ``failure_grid`` (e.g. a
    :class:`repro.failures.FailureModel`'s grid) to pin the scenarios
    explicitly — ``sizes``/``samples``/``seed`` then only label the
    curve.  The default ``algorithms`` line-up comes
    from the scheme registry; engine state comes from ``session``
    (default: the shared session).  The loads always come from the
    batched router (differentially equal to per-packet simulation); for
    the per-packet reference surface itself, run the grid through
    :func:`repro.experiments.run_grid` with a ``backend="naive"``
    session.
    """
    from ..experiments.session import resolve_session

    if algorithms is None:
        algorithms = default_competitors()
    if failure_grid is not None:
        grid = failure_grid  # a FailureModel's grid, pinned by the caller
    else:
        if sizes is None:
            sizes = default_sizes(graph)
        grid = sample_failure_grid(graph, sizes, samples, seed)
    resolved = resolve_session(session)
    state = resolved.state(graph)
    backend = "numpy" if resolved.backend == "numpy" else "engine"
    result = ComparisonResult(curves=[])
    for algorithm in algorithms:
        curve, reason = preflight_congestion_curve(
            TrafficEngine(state, algorithm, backend=backend),
            algorithm,
            demands,
            grid,
            samples=samples,
            graph_name=graph_name,
            matrix_name=matrix_name,
        )
        if curve is None:
            result.skipped.append((algorithm.name, reason))
        else:
            result.curves.append(curve)
    return result


def congestion_table(curves: list[CongestionCurve]) -> str:
    """Fixed-width text table of congestion curves (CLI / examples)."""
    from ..analysis.reporting import simple_table

    rows = []
    for curve in curves:
        for point in curve.points:
            rows.append(
                [
                    curve.algorithm,
                    point.failures,
                    point.scenarios,
                    f"{point.mean_max_load:.1f}",
                    point.worst_max_load,
                    f"{100 * point.delivered_fraction:.1f}%",
                    f"{point.mean_stretch:.2f}",
                ]
            )
    return simple_table(
        ["algorithm", "|F|", "scenarios", "mean max load", "worst", "delivered", "stretch"],
        rows,
    )
