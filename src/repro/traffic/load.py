"""Batched multi-flow routing: traffic matrices → per-link load counters.

The single-packet checkers ask *whether* a packet arrives; the congestion
line of work (Bankhamer, Elsässer, Schmid 2020/2021) asks how much *load*
the rerouted flows pile onto individual links.  This module routes a whole
traffic matrix through a static forwarding pattern under one failure set
and accumulates exact integer per-link loads — in one pass per failure
mask instead of one walk per flow.

**How the batching works.**  Forwarding is deterministic, so under a fixed
``(pattern, destination, failure mask)`` the packet trajectory is a
functional graph over packed ``(node, in-port)`` states: every state has
at most one outgoing transition.  :class:`_DestinationFlows` explores that
graph lazily (sharing the engine's memoized decision tables), classifies
each state as delivered / dropped / looping, and records the transition's
link.  Demand volumes are then injected at the flows' start states and
propagated through the functional graph in decreasing suffix-depth order;
a link's load is the total volume crossing its transition.  Trajectory
suffixes shared by many flows are therefore walked **once**, yet the
resulting loads equal a per-packet simulation link for link:

* a delivered flow loads every link of its walk (``RouteResult.path``);
* a dropped flow loads its walk up to the drop;
* a looping flow loads its transient prefix plus each cycle link exactly
  once — precisely the prefix the naive walk traverses before a
  ``(node, in-port)`` state repeats, regardless of where it entered the
  cycle.

:func:`per_packet_loads` is the naive reference implementation (one
:func:`repro.core.simulator.route` call per demand) used for differential
testing; :class:`TrafficEngine` is the batched router, and
:func:`route_matrix` the one-shot convenience wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro import obs as _obs

from ..core.engine.memo import DROP, MemoizedPattern
from ..core.engine.sweep import EngineState
from ..core.model import (
    DestinationAlgorithm,
    ForwardingPattern,
    SourceDestinationAlgorithm,
    TouringAlgorithm,
)
from ..core.simulator import Network, Outcome, route as naive_route
from ..graphs.connectivity import are_connected, surviving_graph
from ..graphs.edges import EMPTY_FAILURES, Edge, FailureSet, Node, edge
from .matrices import Demand, TrafficMatrix

RoutingAlgorithm = DestinationAlgorithm | SourceDestinationAlgorithm | TouringAlgorithm

#: sentinel next-state for the transition that arrives at the destination
_DELIVERED_EXIT = -1


@dataclass
class LoadReport:
    """Link loads and volume accounting for one (matrix, failure set) run.

    ``loads`` maps every canonical graph link (failed ones included) to
    the integer volume that crossed it.  The volume counters partition
    the matrix by outcome; ``disconnected_volume`` is the orthogonal
    classification "source and destination were disconnected" (such
    volume also shows up as dropped or looped — it cannot arrive).
    """

    loads: dict[Edge, int]
    demands: int
    total_volume: int
    delivered_volume: int
    dropped_volume: int
    looped_volume: int
    disconnected_volume: int
    #: volume-weighted hop count of the delivered traffic
    delivered_hops: int
    #: Σ volume · (hops / surviving shortest path) over delivered demands
    stretch_volume: float

    @property
    def max_load(self) -> int:
        return max(self.loads.values(), default=0)

    @property
    def mean_load(self) -> float:
        return sum(self.loads.values()) / len(self.loads) if self.loads else 0.0

    def percentile(self, q: float) -> int:
        """Nearest-rank ``q``-th percentile of the per-link loads."""
        if not self.loads:
            return 0
        ranked = sorted(self.loads.values())
        rank = max(1, -(-len(ranked) * q // 100))  # ceil without floats
        return ranked[int(rank) - 1]

    @property
    def p99_load(self) -> int:
        return self.percentile(99)

    @property
    def delivered_fraction(self) -> float:
        return self.delivered_volume / self.total_volume if self.total_volume else 0.0

    @property
    def mean_stretch(self) -> float:
        """Volume-weighted mean stretch of the delivered traffic."""
        return self.stretch_volume / self.delivered_volume if self.delivered_volume else 0.0


@dataclass
class _VolumeAccounting:
    """Per-outcome volume counters shared by every router flavour.

    Both the scalar router and the vectorized ``load_sweep`` funnel each
    demand through :meth:`add` in the same (group, member) order, so the
    volume totals — including the float ``stretch_volume`` summation
    order — are equal by construction, not by parallel maintenance.
    """

    delivered_volume: int = 0
    dropped_volume: int = 0
    looped_volume: int = 0
    disconnected_volume: int = 0
    delivered_hops: int = 0
    stretch_volume: float = 0.0

    def add(self, volume: int, delivered: bool, looped: bool, hops: int, shortest: int) -> None:
        """Account one demand: ``shortest`` is the surviving-graph hop
        distance (``< 0`` when source and destination are disconnected)."""
        if delivered:
            self.delivered_volume += volume
            self.delivered_hops += volume * hops
            self.stretch_volume += volume * (hops / shortest)
        else:
            if looped:
                self.looped_volume += volume
            else:
                self.dropped_volume += volume
            if shortest < 0:
                self.disconnected_volume += volume


class _DestinationFlows:
    """Lazy functional-graph classification for one (memo, dest, fmask).

    Packed states are ``node * (n + 1) + inport + 1`` (``⊥`` = 0 offset),
    exactly as in :mod:`repro.core.engine.memo`.  ``succ[state]`` is
    ``(link index, next state)`` — next state :data:`_DELIVERED_EXIT` for
    the arrival transition — or ``None`` where the pattern drops.
    ``depth[state]`` is the number of transitions the naive walk from
    ``state`` performs before it terminates (for looping states: the
    cycle length — a walk entering anywhere traverses each cycle
    transition exactly once before a state repeats).
    """

    def __init__(
        self,
        state: EngineState,
        memo: MemoizedPattern,
        destination: int,
        fmask: int,
        link_index: dict[tuple[int, int], int],
    ):
        self.engine = state
        self.network = state.network
        self.memo = memo
        self.destination = destination
        self.fmask = fmask
        self.link_index = link_index
        self.succ: dict[int, tuple[int, int] | None] = {}
        self.outcome: dict[int, Outcome] = {}
        self.depth: dict[int, int] = {}
        self.cycle_of: dict[int, int] = {}
        self.cycles: list[list[int]] = []
        self._dist: list[int] | None = None

    # ------------------------------------------------------------------
    # Classification.
    # ------------------------------------------------------------------

    def explore(self, start: int) -> None:
        """Classify every state on the walk from ``start`` (idempotent)."""
        outcome = self.outcome
        if start in outcome:
            return
        network = self.network
        memo = self.memo
        stride = network.n + 1
        shift = network.m
        incident = network.incident_mask
        table = memo.table
        decide = memo._decide
        link_index = self.link_index
        trail: list[int] = []
        position: dict[int, int] = {}
        state = start
        while True:
            if state in outcome:
                self._unwind(trail, self.depth[state], outcome[state])
                return
            if state in position:
                # a fresh cycle: trail[j:] loops forever
                j = position[state]
                cycle = trail[j:]
                cid = len(self.cycles)
                self.cycles.append(cycle)
                length = len(cycle)
                for member in cycle:
                    outcome[member] = Outcome.LOOP
                    self.depth[member] = length
                    self.cycle_of[member] = cid
                self._unwind(trail[:j], length, Outcome.LOOP)
                return
            node = state // stride
            inport = state % stride - 1
            local_mask = self.fmask & incident[node]
            key = (state << shift) | local_mask
            decision = table.get(key)
            if decision is None:
                decision = decide(node, inport, local_mask)
                table[key] = decision
            if decision < 0:
                self.succ[state] = None
                verdict = Outcome.DROPPED if decision == DROP else Outcome.ILLEGAL
                outcome[state] = verdict
                self.depth[state] = 0
                self._unwind(trail, 0, verdict)
                return
            link = link_index[(node, decision) if node < decision else (decision, node)]
            if decision == self.destination:
                self.succ[state] = (link, _DELIVERED_EXIT)
                outcome[state] = Outcome.DELIVERED
                self.depth[state] = 1
                self._unwind(trail, 1, Outcome.DELIVERED)
                return
            next_state = decision * stride + node + 1
            self.succ[state] = (link, next_state)
            position[state] = len(trail)
            trail.append(state)
            state = next_state

    def _unwind(self, trail: list[int], base_depth: int, verdict: Outcome) -> None:
        depth = base_depth
        for state in reversed(trail):
            depth += 1
            self.depth[state] = depth
            self.outcome[state] = verdict

    # ------------------------------------------------------------------
    # Volume propagation.
    # ------------------------------------------------------------------

    def accumulate(self, injections: dict[int, int], loads: list[int]) -> None:
        """Add this group's link loads: ``injections`` maps start state →
        volume; ``loads`` is the shared per-link counter array."""
        for state in injections:
            self.explore(state)
        volume_at = dict(injections)
        cycle_volume = [0] * len(self.cycles)
        cycle_of = self.cycle_of
        depth = self.depth
        succ = self.succ
        # transitions strictly decrease depth (cycles are handled as
        # collapsed sinks), so one descending sweep settles every state
        for state in sorted(
            (s for s in depth if s not in cycle_of), key=depth.__getitem__, reverse=True
        ):
            volume = volume_at.get(state)
            if not volume:
                continue
            transition = succ[state]
            if transition is None:
                continue  # dropped here: earlier links already counted
            link, next_state = transition
            loads[link] += volume
            if next_state == _DELIVERED_EXIT:
                continue
            cid = cycle_of.get(next_state)
            if cid is not None:
                cycle_volume[cid] += volume
            else:
                volume_at[next_state] = volume_at.get(next_state, 0) + volume
        for cid, volume in enumerate(cycle_volume):
            if volume:
                for state in self.cycles[cid]:
                    link, _ = self.succ[state]  # type: ignore[misc]
                    loads[link] += volume

    # ------------------------------------------------------------------
    # Distances (for stretch and disconnection accounting).
    # ------------------------------------------------------------------

    def distance_to_destination(self, source: int) -> int:
        """Hops from ``source`` to the destination in the surviving graph
        (``-1`` when disconnected).  BFS once per flows group."""
        if self._dist is None:
            network = self.network
            dist = [-1] * network.n
            dist[self.destination] = 0
            frontier = [self.destination]
            neighbor_indices = network.neighbor_indices
            neighbor_bits = network.neighbor_bits
            fmask = self.fmask
            level = 0
            while frontier:
                level += 1
                nxt: list[int] = []
                for node in frontier:
                    indices = neighbor_indices[node]
                    bits = neighbor_bits[node]
                    for i in range(len(indices)):
                        if bits[i] & fmask:
                            continue
                        candidate = indices[i]
                        if dist[candidate] < 0:
                            dist[candidate] = level
                            nxt.append(candidate)
                frontier = nxt
            self._dist = dist
        return self._dist[source]


class TrafficEngine:
    """Batched multi-flow router for one (graph, algorithm) pair.

    Reuses one :class:`EngineState` (index maps, local-view caches) and
    one memoized decision table per built pattern across every
    :meth:`load` call, so sweeping thousands of failure sets pays for
    pattern construction once.  Falls back to :func:`per_packet_loads`
    when the failure set names links outside the graph (naive-matching
    semantics, exactly like the resilience checkers).
    """

    def __init__(
        self,
        graph: nx.Graph | EngineState,
        algorithm: RoutingAlgorithm,
        session=None,
        backend: str = "engine",
    ):
        if isinstance(graph, EngineState):
            self.state = graph
        elif session is not None:  # session-owned (and cached) engine state
            self.state = session.state(graph)
            backend = "numpy" if session.backend == "numpy" else backend
        else:
            self.state = EngineState(graph)
        self.graph = self.state.graph
        self.algorithm = algorithm
        #: "numpy" batches multi-set sweeps through the vectorized
        #: walker (same loads); anything else keeps the scalar router
        self.backend = backend
        network = self.state.network
        #: (low index, high index) -> link bit position
        self.link_index: dict[tuple[int, int], int] = {
            (a, b) if a < b else (b, a): i for i, (a, b) in enumerate(network.link_ends)
        }
        self._memos: dict[object, MemoizedPattern] = {}
        self._touring_memo: MemoizedPattern | None = None

    def _memo_for(self, source: Node, destination: Node) -> MemoizedPattern:
        algorithm = self.algorithm
        if isinstance(algorithm, TouringAlgorithm):
            if self._touring_memo is None:
                self._touring_memo = MemoizedPattern(
                    self.state.network, algorithm.build(self.graph)
                )
            return self._touring_memo
        if isinstance(algorithm, SourceDestinationAlgorithm):
            key: object = (source, destination)
            if key not in self._memos:
                self._memos[key] = MemoizedPattern(
                    self.state.network, algorithm.build(self.graph, source, destination)
                )
        else:
            key = destination
            if key not in self._memos:
                self._memos[key] = MemoizedPattern(
                    self.state.network, algorithm.build(self.graph, destination)
                )
        return self._memos[key]

    def load_sweep(
        self,
        demands: TrafficMatrix,
        failure_sets: list[FailureSet],
        deadline=None,
    ) -> list[LoadReport]:
        """One :class:`LoadReport` per failure set, in order.

        On ``backend="numpy"`` the whole sweep walks as one mask batch
        through :func:`repro.core.engine.vectorized.traffic_load_sweep`
        (identical reports — integer loads and volume accounting match
        the scalar router bit for bit); otherwise, and whenever the
        vectorizer cannot take the instance, this is exactly the
        ``[self.load(demands, f) for f in failure_sets]`` loop.

        ``deadline`` (a :class:`~repro.runtime.deadline.Deadline` /
        :class:`~repro.runtime.deadline.Budget`) makes the sweep stop
        cleanly between failure sets once expired, returning the
        reports completed so far — a prefix of the full sweep, each
        report identical to what the uncut sweep would produce.  The
        numpy batch is one unit of work: it is checked only at entry
        (an expired deadline yields the empty prefix) and charged as a
        whole.
        """
        sets = list(failure_sets)
        telemetry = _obs.active()
        with _obs.span(
            "load_sweep", demands=len(demands), failure_sets=len(sets), backend=self.backend
        ):
            if self.backend == "numpy":
                from ..core.engine.vectorized import VectorizedUnsupported, traffic_load_sweep

                try:
                    if deadline is not None and deadline.expired():
                        return []
                    reports = traffic_load_sweep(self, demands, sets)
                    if deadline is not None:
                        deadline.charge(len(sets))
                    if telemetry is not None:
                        telemetry.count(
                            "repro_traffic_load_reports_total",
                            len(reports),
                            help="per-failure-set load reports produced",
                        )
                    return reports
                except VectorizedUnsupported as unsupported:
                    if telemetry is not None:
                        telemetry.count(
                            "repro_numpy_fallbacks_total",
                            help="vectorized attempts that fell back to the scalar engine",
                            site="traffic",
                            reason=unsupported.reason,
                        )
            reports = []
            for failures in sets:
                if deadline is not None and deadline.expired():
                    break
                reports.append(self.load(demands, failures))
                if deadline is not None:
                    deadline.charge()
            if telemetry is not None:
                telemetry.count(
                    "repro_traffic_load_reports_total",
                    len(reports),
                    help="per-failure-set load reports produced",
                )
            return reports

    def _validate_demands(self, demands: TrafficMatrix) -> None:
        index = self.state.network.index
        for demand in demands:
            if demand.source not in index or demand.destination not in index:
                raise ValueError(
                    f"demand endpoint not in graph: {demand.source!r} -> {demand.destination!r}"
                )

    def grouped_demands(
        self, demands: TrafficMatrix
    ) -> dict[tuple[int, int], tuple[MemoizedPattern, dict[int, int], list[Demand]]]:
        """Demands grouped per (memoized pattern, destination index).

        Each value is ``(memo, injections, members)`` with injections
        keyed by packed ``(source, ⊥)`` start state.  Shared by the
        scalar router and the vectorized ``load_sweep`` so grouping —
        and therefore the accounting iteration order — cannot drift
        between the two.
        """
        network = self.state.network
        index = network.index
        stride = network.n + 1
        groups: dict[tuple[int, int], tuple[MemoizedPattern, dict[int, int], list[Demand]]] = {}
        for demand in demands:
            memo = self._memo_for(demand.source, demand.destination)
            key = (id(memo), index[demand.destination])
            if key not in groups:
                groups[key] = (memo, {}, [])
            _, injections, members = groups[key]
            start = index[demand.source] * stride  # (source, ⊥)
            injections[start] = injections.get(start, 0) + demand.volume
            members.append(demand)
        return groups

    def load(self, demands: TrafficMatrix, failures: FailureSet = EMPTY_FAILURES) -> LoadReport:
        """Route the whole matrix under ``failures`` and count link loads."""
        network = self.state.network
        index = network.index
        self._validate_demands(demands)
        fmask = network.mask_of(failures)
        if fmask is None:
            # failure entries outside the canonical link set: keep the
            # naive matching semantics by routing per packet
            return per_packet_loads(self.graph, self.algorithm, demands, failures)

        # group demands per (memoized pattern, destination): the whole
        # group shares one functional graph and one volume propagation
        groups = self.grouped_demands(demands)
        stride = network.n + 1
        loads = [0] * network.m
        accounting = _VolumeAccounting()
        for (_, destination), (memo, injections, members) in groups.items():
            flows = _DestinationFlows(self.state, memo, destination, fmask, self.link_index)
            flows.accumulate(injections, loads)
            for demand in members:
                start = index[demand.source] * stride
                verdict = flows.outcome[start]
                accounting.add(
                    demand.volume,
                    delivered=verdict is Outcome.DELIVERED,
                    looped=verdict is Outcome.LOOP,
                    hops=flows.depth[start] if verdict is Outcome.DELIVERED else 0,
                    shortest=flows.distance_to_destination(index[demand.source]),
                )
        links = network.links
        return LoadReport(
            loads={links[i]: loads[i] for i in range(network.m)},
            demands=len(demands),
            total_volume=sum(demand.volume for demand in demands),
            delivered_volume=accounting.delivered_volume,
            dropped_volume=accounting.dropped_volume,
            looped_volume=accounting.looped_volume,
            disconnected_volume=accounting.disconnected_volume,
            delivered_hops=accounting.delivered_hops,
            stretch_volume=accounting.stretch_volume,
        )


def route_matrix(
    graph: nx.Graph | EngineState,
    algorithm: RoutingAlgorithm,
    demands: TrafficMatrix,
    failures: FailureSet = EMPTY_FAILURES,
) -> LoadReport:
    """One-shot batched load computation (build a fresh engine and run).

    Sweeping many failure sets?  Build one :class:`TrafficEngine` and
    call :meth:`TrafficEngine.load` per set instead — patterns and
    decision tables then amortize across the sweep.
    """
    return TrafficEngine(graph, algorithm).load(demands, failures)


def per_packet_loads(
    graph: nx.Graph,
    algorithm: RoutingAlgorithm,
    demands: TrafficMatrix,
    failures: FailureSet = EMPTY_FAILURES,
) -> LoadReport:
    """Naive reference: one simulated packet per demand, loads summed.

    Semantically identical to :meth:`TrafficEngine.load` (the batched
    router is differentially tested against this), just one full walk
    per flow.
    """
    network = Network(graph)
    if any(d.source not in graph or d.destination not in graph for d in demands):
        bad = next(d for d in demands if d.source not in graph or d.destination not in graph)
        raise ValueError(f"demand endpoint not in graph: {bad.source!r} -> {bad.destination!r}")
    loads: dict[Edge, int] = {edge(u, v): 0 for u, v in graph.edges}
    patterns: dict[object, ForwardingPattern] = {}
    touring_pattern: ForwardingPattern | None = None
    survivors = surviving_graph(graph, failures)
    delivered_volume = dropped_volume = looped_volume = 0
    disconnected_volume = 0
    delivered_hops = 0
    stretch_volume = 0.0
    for demand in demands:
        if isinstance(algorithm, TouringAlgorithm):
            if touring_pattern is None:
                touring_pattern = algorithm.build(graph)
            pattern = touring_pattern
        elif isinstance(algorithm, SourceDestinationAlgorithm):
            key: object = (demand.source, demand.destination)
            if key not in patterns:
                patterns[key] = algorithm.build(graph, demand.source, demand.destination)
            pattern = patterns[key]
        else:
            if demand.destination not in patterns:
                patterns[demand.destination] = algorithm.build(graph, demand.destination)
            pattern = patterns[demand.destination]
        result = naive_route(network, pattern, demand.source, demand.destination, failures)
        for u, v in zip(result.path, result.path[1:]):
            loads[edge(u, v)] += demand.volume
        if result.delivered:
            delivered_volume += demand.volume
            delivered_hops += demand.volume * result.steps
            shortest = nx.shortest_path_length(survivors, demand.source, demand.destination)
            stretch_volume += demand.volume * (result.steps / shortest)
        else:
            if result.outcome is Outcome.LOOP:
                looped_volume += demand.volume
            else:
                dropped_volume += demand.volume
            if not are_connected(graph, demand.source, demand.destination, failures):
                disconnected_volume += demand.volume
    return LoadReport(
        loads=loads,
        demands=len(demands),
        total_volume=sum(demand.volume for demand in demands),
        delivered_volume=delivered_volume,
        dropped_volume=dropped_volume,
        looped_volume=looped_volume,
        disconnected_volume=disconnected_volume,
        delivered_hops=delivered_hops,
        stretch_volume=stretch_volume,
    )
