"""Canonical undirected edges and failure sets.

The paper models a network as an undirected graph; link failures are
*undirected* (§II).  Throughout the library an edge is represented by a
canonical ordered pair so that ``(u, v)`` and ``(v, u)`` always compare and
hash equal.  A failure set is a ``frozenset`` of canonical edges.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Any, Hashable

Node = Hashable
Edge = tuple[Any, Any]
FailureSet = frozenset[Edge]

EMPTY_FAILURES: FailureSet = frozenset()


def _sort_key(node: Any) -> tuple[str, str]:
    """Total order over arbitrary hashable nodes (type name, then repr)."""
    return (type(node).__name__, repr(node))


def edge_sort_key(e: Edge) -> tuple[tuple[str, str], tuple[str, str]]:
    """Stable total order over canonical edges with mixed node types."""
    u, v = e
    return (_sort_key(u), _sort_key(v))


def sorted_nodes(nodes: Iterable[Node]) -> list[Node]:
    """Nodes in ascending order, tolerating mixed/non-comparable labels.

    The checkers iterate candidate sources in this order so that
    counterexamples are deterministic (independent of set iteration
    order and hash randomization).
    """
    pool = list(nodes)  # a one-shot iterator must survive the retry
    try:
        return sorted(pool)
    except TypeError:
        return sorted(pool, key=_sort_key)


def edge(u: Node, v: Node) -> Edge:
    """Return the canonical representation of the undirected link ``{u, v}``.

    >>> edge(3, 1)
    (1, 3)
    >>> edge('b', 'a') == edge('a', 'b')
    True
    """
    if u == v:
        raise ValueError(f"self-loop {u!r}-{v!r} is not a valid link")
    try:
        if u <= v:  # type: ignore[operator]
            return (u, v)
        return (v, u)
    except TypeError:
        # Mixed / non-comparable node types: fall back to a stable key.
        if _sort_key(u) <= _sort_key(v):
            return (u, v)
        return (v, u)


def edges(pairs: Iterable[tuple[Node, Node]]) -> FailureSet:
    """Canonicalize an iterable of node pairs into a failure set.

    >>> sorted(edges([(2, 1), (1, 2), (3, 2)]))
    [(1, 2), (2, 3)]
    """
    return frozenset(edge(u, v) for u, v in pairs)


def failure_set(*pairs: tuple[Node, Node]) -> FailureSet:
    """Convenience constructor: ``failure_set((1, 2), (3, 4))``."""
    return edges(pairs)


def incident_failures(failures: FailureSet, node: Node) -> FailureSet:
    """The failures a node can locally observe: ``F ∩ E(v)`` (§II)."""
    return frozenset(e for e in failures if node in e)


def other_endpoint(e: Edge, node: Node) -> Node:
    """The endpoint of ``e`` that is not ``node``."""
    u, v = e
    if node == u:
        return v
    if node == v:
        return u
    raise ValueError(f"{node!r} is not an endpoint of {e!r}")


def iter_subsets(items: Iterable[Edge], max_size: int | None = None) -> Iterator[FailureSet]:
    """Yield all subsets of ``items`` (optionally only those up to a size).

    Subsets are emitted in order of increasing size so that callers looking
    for a *small* counterexample find it first.
    """
    from itertools import combinations

    try:
        pool = sorted(items)
    except TypeError:
        pool = sorted(items, key=edge_sort_key)
    limit = len(pool) if max_size is None else min(max_size, len(pool))
    for size in range(limit + 1):
        for combo in combinations(pool, size):
            yield frozenset(combo)
