"""Minor-safe graph reductions.

Minor containment testing (``graphs.minors``) is exponential in the worst
case, so we first shrink the host graph with reductions that provably
preserve containment of the pattern ``H``:

* deleting isolated and pendant vertices is safe whenever ``H`` is
  connected with minimum degree >= 2 (a singleton branch set at a pendant
  vertex would need an ``H``-vertex of degree <= 1);
* suppressing a degree-2 vertex (contracting one of its links) is safe
  whenever ``H`` has minimum degree >= 3 — and *only* then: a degree-2
  host vertex may have to serve as the image of a degree-2 pattern
  vertex (suppressing the subdivision of ``K3,3^-1`` all the way down
  would lose its two degree-2 branch vertices);
* a 2-connected pattern can only appear inside a single biconnected
  component of the host, so the search decomposes into blocks.

All the paper's forbidden minors (``K4``, ``K2,3``, ``K5^-1``, ``K3,3^-1``,
``K7^-1``, ``K4,4^-1``) are 2-connected, which makes the block
decomposition the workhorse on sparse ISP-like topologies.
"""

from __future__ import annotations

import networkx as nx

from .edges import Node


def pattern_profile(pattern: nx.Graph) -> tuple[int, int]:
    """(min degree, max degree) of the pattern graph."""
    degrees = [d for _, d in pattern.degree]
    return (min(degrees), max(degrees)) if degrees else (0, 0)


def reduce_host(graph: nx.Graph, pattern: nx.Graph) -> nx.Graph:
    """Shrink ``graph`` with every reduction that is safe for ``pattern``.

    Returns a new graph; the input is left untouched.  The reduced graph
    contains ``pattern`` as a minor iff the input does.
    """
    min_deg, _max_deg = pattern_profile(pattern)
    degrees = [d for _, d in graph.degree]
    if degrees and min_deg >= 2:
        # Fast path: skip the copy when no reduction can fire (hot path of
        # the exact search, which calls reduce_host at every node).
        threshold = 3 if min_deg >= 3 else 2
        if min(degrees) >= threshold:
            return graph
    host = nx.Graph(graph)
    host.remove_edges_from(nx.selfloop_edges(host))
    changed = True
    while changed:
        changed = False
        if min_deg >= 2:
            low = [v for v, d in host.degree if d <= 1]
            if low:
                host.remove_nodes_from(low)
                changed = True
                continue
        if min_deg >= 3:
            changed = _suppress_one(host)
            if changed:
                continue
    return host


def _suppress_one(host: nx.Graph) -> bool:
    for node in list(host.nodes):
        if host.degree(node) != 2:
            continue
        u, w = host.neighbors(node)
        if host.has_edge(u, w):
            # Neighbours already adjacent: the vertex is redundant (the
            # pattern's min degree >= 3 rules out hosting a branch set).
            host.remove_node(node)
            return True
        host.remove_node(node)
        host.add_edge(u, w)
        return True
    return False


def biconnected_blocks(graph: nx.Graph) -> list[nx.Graph]:
    """The biconnected components of ``graph`` as standalone graphs."""
    blocks = []
    for component_edges in nx.biconnected_component_edges(graph):
        block = nx.Graph()
        block.add_edges_from(component_edges)
        blocks.append(block)
    return blocks


def search_units(graph: nx.Graph, pattern: nx.Graph) -> list[nx.Graph]:
    """Reduced host pieces in which the pattern search must run.

    For a 2-connected pattern: the reduced biconnected blocks, largest
    first (positives are typically found in the dense core).  For other
    patterns: the reduced connected components.
    """
    reduced = reduce_host(graph, pattern)
    if len(reduced) == 0:
        return []
    if nx.is_biconnected(pattern) if len(pattern) > 2 else False:
        pieces = biconnected_blocks(reduced)
    else:
        pieces = [reduced.subgraph(c).copy() for c in nx.connected_components(reduced)]
    pieces = [reduce_host(piece, pattern) for piece in pieces]
    pieces = [
        piece
        for piece in pieces
        if piece.number_of_nodes() >= pattern.number_of_nodes()
        and piece.number_of_edges() >= pattern.number_of_edges()
    ]
    pieces.sort(key=lambda g: g.number_of_edges(), reverse=True)
    return pieces


def contract_edge(graph: nx.Graph, u: Node, v: Node) -> nx.Graph:
    """``G / (u, v)``: merge ``v`` into ``u``, dropping loops/parallels."""
    merged = nx.contracted_nodes(graph, u, v, self_loops=False)
    if merged.is_multigraph():  # pragma: no cover - nx.Graph stays simple
        merged = nx.Graph(merged)
    return merged
