"""Constructors for the graph families used throughout the paper.

The paper's results revolve around complete graphs ``K_n``, complete
bipartite graphs ``K_{a,b}``, and those graphs with ``c`` links removed
(written ``K_n^-c`` / ``K_{a,b}^-c`` in the paper, §II).  This module also
provides the outerplanar families used by §VII and the specific gadget
topologies drawn in the paper's figures (Fig 2, Fig 6).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import networkx as nx

from .edges import Edge, Node, edge


def complete_graph(n: int) -> nx.Graph:
    """``K_n`` on nodes ``0..n-1``."""
    if n < 1:
        raise ValueError("K_n needs n >= 1")
    graph = nx.complete_graph(n)
    return graph


def complete_bipartite(a: int, b: int) -> nx.Graph:
    """``K_{a,b}``; part A is ``0..a-1``, part B is ``a..a+b-1``.

    Nodes carry a ``part`` attribute (0 or 1) so that bipartite-aware
    algorithms need not recompute the bipartition.
    """
    if a < 1 or b < 1:
        raise ValueError("K_{a,b} needs a, b >= 1")
    graph = nx.complete_bipartite_graph(a, b)
    for node in range(a):
        graph.nodes[node]["part"] = 0
    for node in range(a, a + b):
        graph.nodes[node]["part"] = 1
    return graph


def minus_links(graph: nx.Graph, removed: Iterable[tuple[Node, Node]]) -> nx.Graph:
    """A copy of ``graph`` without the given links (the ``^-c`` notation)."""
    out = graph.copy()
    for u, v in removed:
        if not out.has_edge(u, v):
            raise ValueError(f"link ({u!r}, {v!r}) not present")
        out.remove_edge(u, v)
    return out


def k_minus(n: int, c: int) -> nx.Graph:
    """``K_n^-c`` with a deterministic choice of the removed links.

    The removed links form a matching where possible (links ``(0,1)``,
    ``(2,3)``, ...), matching the paper's use of "minus one link" as an
    arbitrary single removal; callers needing a specific removal should use
    :func:`minus_links` directly.
    """
    graph = complete_graph(n)
    removed = _matching_removal(list(graph.nodes), c, graph)
    return minus_links(graph, removed)


def k_bipartite_minus(a: int, b: int, c: int) -> nx.Graph:
    """``K_{a,b}^-c`` with a deterministic matching of removed links."""
    graph = complete_bipartite(a, b)
    part_a = [v for v in graph.nodes if graph.nodes[v]["part"] == 0]
    part_b = [v for v in graph.nodes if graph.nodes[v]["part"] == 1]
    if c > min(len(part_a), len(part_b)) * max(len(part_a), len(part_b)):
        raise ValueError("cannot remove more links than exist")
    removed = []
    for i in range(c):
        removed.append((part_a[i % len(part_a)], part_b[(i + i // len(part_a)) % len(part_b)]))
    unique = {edge(u, v) for u, v in removed}
    if len(unique) < c:
        raise ValueError(f"no deterministic removal of {c} links for K_{a},{b}")
    return minus_links(graph, removed)


def _matching_removal(nodes: Sequence[Node], c: int, graph: nx.Graph) -> list[Edge]:
    removed: list[Edge] = []
    # Pair up disjoint nodes first; overflow removals use remaining links.
    index = 0
    while len(removed) < c and index + 1 < len(nodes):
        removed.append(edge(nodes[index], nodes[index + 1]))
        index += 2
    if len(removed) < c:
        for u, v in graph.edges:
            candidate = edge(u, v)
            if candidate not in removed:
                removed.append(candidate)
            if len(removed) == c:
                break
    if len(removed) < c:
        raise ValueError("cannot remove more links than exist")
    return removed


def path_graph(n: int) -> nx.Graph:
    """A chain of ``n`` nodes (outerplanar; minor of everything relevant)."""
    return nx.path_graph(n)


def cycle_graph(n: int) -> nx.Graph:
    """A ring of ``n`` nodes (outerplanar)."""
    return nx.cycle_graph(n)


def star_graph(leaves: int) -> nx.Graph:
    """A hub (node 0) with ``leaves`` spokes (outerplanar, tree)."""
    return nx.star_graph(leaves)


def wheel_graph(rim: int) -> nx.Graph:
    """Hub (node 0) + rim cycle of ``rim`` nodes.

    Wheels are planar but not outerplanar for ``rim >= 3`` (they contain a
    ``K4`` minor), which makes them handy §VIII test subjects.
    """
    return nx.wheel_graph(rim + 1)


def fan_graph(n: int) -> nx.Graph:
    """A maximal outerplanar "fan": path ``1..n-1`` plus hub 0 joined to all.

    Fans are maximal outerplanar graphs, i.e. the densest graphs for which
    touring under perfect resilience is possible (Cor 6).
    """
    if n < 2:
        raise ValueError("fan needs >= 2 nodes")
    graph = nx.path_graph(range(1, n))
    graph.add_node(0)
    for node in range(1, n):
        graph.add_edge(0, node)
    return graph


def maximal_outerplanar(n: int, seed: int | None = None) -> nx.Graph:
    """A random maximal outerplanar graph: a triangulated convex polygon.

    Built by recursively triangulating the polygon ``0..n-1`` with random
    ears; every maximal outerplanar graph arises this way.
    """
    import random

    if n < 3:
        return nx.path_graph(n)
    rng = random.Random(seed)
    graph = nx.cycle_graph(n)
    stack = [list(range(n))]
    while stack:
        polygon = stack.pop()
        if len(polygon) < 4:
            continue
        anchor = rng.randrange(len(polygon))
        target = (anchor + rng.randrange(2, len(polygon) - 1)) % len(polygon)
        u, v = polygon[anchor], polygon[target]
        graph.add_edge(u, v)
        first, second = _split_polygon(polygon, anchor, target)
        stack.append(first)
        stack.append(second)
    return graph


def _split_polygon(polygon: list[Node], i: int, j: int) -> tuple[list[Node], list[Node]]:
    if i > j:
        i, j = j, i
    return polygon[i : j + 1], polygon[j:] + polygon[: i + 1]


def theta_graph(spokes: int, length: int = 2) -> nx.Graph:
    """Two terminals joined by ``spokes`` internally disjoint paths.

    ``theta_graph(3)`` is the smallest graph with a ``K_{2,3}`` minor, hence
    the smallest non-outerplanar planar graph family for touring (§VII).
    """
    if spokes < 2 or length < 1:
        raise ValueError("theta graph needs >= 2 spokes of length >= 1")
    graph = nx.Graph()
    left, right = "s", "t"
    graph.add_node(left)
    graph.add_node(right)
    counter = 0
    for _ in range(spokes):
        previous = left
        for _ in range(length - 1):
            node = f"p{counter}"
            counter += 1
            graph.add_edge(previous, node)
            previous = node
        graph.add_edge(previous, right)
    return nx.convert_node_labels_to_integers(graph, ordering="sorted")


def fig2_two_rail(rungs: int = 3) -> nx.Graph:
    """The Fig. 2 style graph: two parallel rails between ``s`` and ``t``.

    Rail nodes ``v_i`` / ``v'_i`` with crossing links; after the adversary
    fails the crossings, s and t stay 2-connected yet local rules cannot
    find the surviving crossings.
    """
    graph = nx.Graph()
    graph.add_node("s")
    graph.add_node("t")
    top = [f"v{i}" for i in range(1, rungs + 1)]
    bottom = [f"w{i}" for i in range(1, rungs + 1)]
    for chain in (top, bottom):
        previous = "s"
        for node in chain:
            graph.add_edge(previous, node)
            previous = node
        graph.add_edge(previous, "t")
    for u, v in zip(top, bottom):
        graph.add_edge(u, v)
    return graph


def fig6_netrail() -> nx.Graph:
    """The 7-node Netrail topology of Fig. 6.

    Ring ``v1..v7`` with chords so that merging ``v3`` and ``v4`` realizes a
    ``K_{2,3}`` minor between ``{v1, v2}`` and ``{v6, v7, v34}``: not
    outerplanar (touring impossible) but "sometimes" for routing because,
    e.g., removing ``v6`` leaves an outerplanar graph.
    """
    graph = nx.Graph()
    ring = ["v1", "v2", "v3", "v4", "v5", "v6", "v7"]
    for a, b in zip(ring, ring[1:] + ring[:1]):
        graph.add_edge(a, b)
    graph.add_edge("v2", "v6")
    graph.add_edge("v1", "v3")
    graph.add_edge("v4", "v7")
    return graph


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """Planar grid (not outerplanar for rows, cols >= 3)."""
    graph = nx.grid_2d_graph(rows, cols)
    return nx.convert_node_labels_to_integers(graph, ordering="sorted")


def petersen_graph() -> nx.Graph:
    """The Petersen graph — the classic non-planar test subject."""
    return nx.petersen_graph()


# ---------------------------------------------------------------------------
# Datacenter topologies (the congestion line of work: Bankhamer, Elsässer,
# Schmid 2020/2021 study local rerouting load on exactly these fabrics).
# ---------------------------------------------------------------------------


def fat_tree(k: int) -> nx.Graph:
    """The k-ary fat-tree switch fabric (Al-Fares et al.), switches only.

    ``k`` must be even.  ``(k/2)^2`` core switches; ``k`` pods, each with
    ``k/2`` aggregation and ``k/2`` edge switches.  Every edge switch
    connects to every aggregation switch of its pod; aggregation switch
    ``a`` of each pod connects to the ``k/2`` cores in group ``a``.
    Nodes are labelled ``("core", i)``, ``("agg", pod, i)`` and
    ``("edge", pod, i)`` so that tier and pod stay readable in traces.

    Totals: ``5k^2/4`` switches and ``k^3/2`` links; ``fat_tree(4)`` is
    the classic 20-switch, 32-link instance.
    """
    if k < 2 or k % 2:
        raise ValueError("fat tree needs an even k >= 2")
    half = k // 2
    graph = nx.Graph()
    cores = [("core", i) for i in range(half * half)]
    graph.add_nodes_from(cores)
    for pod in range(k):
        aggs = [("agg", pod, i) for i in range(half)]
        edges_ = [("edge", pod, i) for i in range(half)]
        for agg in aggs:
            for edge_switch in edges_:
                graph.add_edge(agg, edge_switch)
        for i, agg in enumerate(aggs):
            for j in range(half):
                graph.add_edge(agg, cores[i * half + j])
    return graph


def hypercube(d: int) -> nx.Graph:
    """The d-dimensional hypercube: ``2^d`` nodes, labelled ``0..2^d - 1``.

    Nodes are adjacent iff their labels differ in exactly one bit — the
    canonical d-regular datacenter/interconnect topology of the 2021
    randomized-rerouting paper.
    """
    if d < 1:
        raise ValueError("hypercube needs d >= 1")
    graph = nx.Graph()
    graph.add_nodes_from(range(1 << d))
    for node in range(1 << d):
        for bit in range(d):
            neighbor = node ^ (1 << bit)
            if neighbor > node:
                graph.add_edge(node, neighbor)
    return graph


def torus(rows: int, cols: int) -> nx.Graph:
    """A 2-D torus: ``rows x cols`` grid with wraparound links.

    4-regular for ``rows, cols >= 3`` (the standard HPC/datacenter mesh
    with wrap links); node labels are flattened integers ``r * cols + c``
    in row-major order.
    """
    if rows < 3 or cols < 3:
        raise ValueError("torus needs rows, cols >= 3 (smaller wraps collapse links)")
    graph = nx.Graph()
    graph.add_nodes_from(range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            graph.add_edge(node, r * cols + (c + 1) % cols)
            graph.add_edge(node, ((r + 1) % rows) * cols + c)
    return graph


def bipartition(graph: nx.Graph) -> tuple[set[Node], set[Node]]:
    """Return the two colour classes of a bipartite graph.

    Uses stored ``part`` attributes when available (as set by
    :func:`complete_bipartite`), else 2-colours each component.
    """
    parts = nx.get_node_attributes(graph, "part")
    if len(parts) == len(graph):
        left = {v for v, p in parts.items() if p == 0}
        return left, set(graph.nodes) - left
    colouring = nx.algorithms.bipartite.color(graph)
    left = {v for v, colour in colouring.items() if colour == 0}
    return left, set(graph.nodes) - left
