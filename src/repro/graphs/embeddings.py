"""Combinatorial embeddings and rotation systems.

The right-hand-rule touring of outerplanar graphs (Foerster et al. [2,
§6.2], used by the paper's Corollaries 5 and 6) needs, per node, a cyclic
order of neighbours ("rotation system") coming from an embedding in which
*every node lies on the outer face*.  This module builds such rotation
systems via the standard apex augmentation: ``G`` is outerplanar iff
``G + universal vertex`` is planar, and the position of the apex in each
node's rotation marks the outer face.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from .edges import Node

_APEX = ("__outerplanar_apex__",)


class NotOuterplanarError(ValueError):
    """Raised when an outerplanar embedding is requested for a graph without one."""


@dataclass(frozen=True)
class RotationSystem:
    """Per-node cyclic neighbour orders of an outerplanar embedding.

    ``rotation[v]`` lists the neighbours of ``v`` in clockwise order,
    *starting with the neighbour that follows the outer face* — i.e. the
    half-edge ``v -> rotation[v][0]`` borders the outer face.  The
    right-hand rule walks this order:

    * a packet originating at ``v`` leaves via the first alive entry of
      ``rotation[v]``;
    * a packet arriving from ``u`` leaves via the first alive entry
      strictly after ``u`` (cyclically).

    Because failures only ever *merge* faces into the outer face of the
    induced embedding, this static local rule keeps walking the outer face
    of ``G \\ F``, which in an outerplanar graph contains every node of the
    component — the crux of touring under perfect resilience (Cor 6).
    """

    rotation: dict[Node, tuple[Node, ...]]

    def first(self, node: Node, alive: set[Node]) -> Node | None:
        """First alive neighbour in ``node``'s rotation (start-of-walk rule)."""
        for neighbor in self.rotation[node]:
            if neighbor in alive:
                return neighbor
        return None

    def successor(self, node: Node, inport: Node, alive: set[Node]) -> Node | None:
        """Next alive neighbour after ``inport`` in cyclic order.

        Falls back to ``inport`` itself (bounce) when it is the only alive
        neighbour; returns ``None`` when the node is isolated.
        """
        order = self.rotation[node]
        if inport not in order:
            raise ValueError(f"{inport!r} is not a neighbour of {node!r}")
        start = order.index(inport)
        size = len(order)
        for offset in range(1, size + 1):
            candidate = order[(start + offset) % size]
            if candidate in alive:
                return candidate
        return None


def outerplanar_rotation(graph: nx.Graph) -> RotationSystem:
    """Rotation system of an outerplanar embedding of ``graph``.

    Raises :class:`NotOuterplanarError` when the graph is not outerplanar.
    Disconnected graphs are embedded per component.
    """
    rotation: dict[Node, tuple[Node, ...]] = {}
    for component in nx.connected_components(graph):
        sub = graph.subgraph(component)
        rotation.update(_component_rotation(sub))
    for node in graph.nodes:
        rotation.setdefault(node, ())
    return RotationSystem(rotation)


def _component_rotation(graph: nx.Graph) -> dict[Node, tuple[Node, ...]]:
    if len(graph) == 1:
        return {next(iter(graph.nodes)): ()}
    augmented = nx.Graph(graph)
    augmented.add_node(_APEX)
    for node in graph.nodes:
        augmented.add_edge(_APEX, node)
    is_planar, embedding = nx.check_planarity(augmented)
    if not is_planar:
        raise NotOuterplanarError("graph is not outerplanar (apex augmentation non-planar)")
    rotation: dict[Node, tuple[Node, ...]] = {}
    for node in graph.nodes:
        order = list(embedding.neighbors_cw_order(node))
        anchor = order.index(_APEX)
        rotated = order[anchor + 1 :] + order[:anchor]
        rotation[node] = tuple(neighbor for neighbor in rotated if neighbor != _APEX)
    return rotation


def planar_rotation(graph: nx.Graph) -> dict[Node, tuple[Node, ...]]:
    """Clockwise rotation system of *some* planar embedding of ``graph``."""
    is_planar, embedding = nx.check_planarity(graph)
    if not is_planar:
        raise ValueError("graph is not planar")
    return {node: tuple(embedding.neighbors_cw_order(node)) for node in graph.nodes}


def outer_face_walk(graph: nx.Graph, rotation: RotationSystem, start: Node) -> list[Node]:
    """The node sequence of one full outer-face traversal from ``start``.

    Diagnostic helper (used by tests to confirm the outer face covers every
    node of an outerplanar component).
    """
    alive = {node: set(graph.neighbors(node)) for node in graph.nodes}
    first = rotation.first(start, alive[start])
    if first is None:
        return [start]
    walk = [start]
    previous, current = start, first
    for _ in range(4 * graph.number_of_edges() + 4):
        walk.append(current)
        nxt = rotation.successor(current, previous, alive[current])
        if nxt is None:
            break
        previous, current = current, nxt
        if (previous, current) == (start, first) and len(walk) > 1:
            break
    return walk
